"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Two
environment variables control the fidelity/runtime trade-off:

* ``REPRO_SCALE``  — ``quick`` (default) or ``paper`` benchmark-circuit scale;
* ``REPRO_EFFORT`` — AIG optimisation effort (``low`` default, ``medium``,
  ``high``).

``REPRO_SCALE=paper REPRO_EFFORT=medium pytest benchmarks/ --benchmark-only``
reproduces the closest approximation of the paper's setup (expect a long
runtime in pure Python).
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "quick")


@pytest.fixture(scope="session")
def effort() -> str:
    return os.environ.get("REPRO_EFFORT", "low")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
