"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Two
environment variables control the fidelity/runtime trade-off:

* ``REPRO_SCALE``  — ``quick`` (default) or ``paper`` benchmark-circuit scale;
* ``REPRO_EFFORT`` — AIG optimisation effort (``low`` default, ``medium``,
  ``high``).

``REPRO_SCALE=paper REPRO_EFFORT=medium pytest benchmarks/ --benchmark-only``
reproduces the closest approximation of the paper's setup (expect a long
runtime in pure Python).

The harness installs a session-wide synthesis engine backed by the
content-addressed result cache of :mod:`repro.eval.engine`, so experiments
that share circuits (e.g. the headline ablation re-running Tables 4 and 6)
synthesise each (circuit, scale, options) combination only once.  Set
``REPRO_CACHE_DIR`` to persist the cache across pytest sessions, or
``REPRO_NO_CACHE=1`` to time every synthesis from scratch.
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "quick")


@pytest.fixture(scope="session")
def effort() -> str:
    return os.environ.get("REPRO_EFFORT", "low")


@pytest.fixture(scope="session", autouse=True)
def shared_result_cache(tmp_path_factory):
    """Serve repeated synthesis jobs from one session-wide result cache."""
    from repro.eval import ResultCache, SynthesisEngine, set_default_engine

    if os.environ.get("REPRO_NO_CACHE"):
        # Disable both the disk cache and the engine's in-process memo so
        # every benchmark times genuine from-scratch synthesis.
        engine = SynthesisEngine(memoize=False)
    else:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or tmp_path_factory.mktemp(
            "repro-cache"
        )
        engine = SynthesisEngine(cache=ResultCache(cache_dir))
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
