"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper tables; they quantify how much each ingredient of the
flow contributes on a mid-size combinational circuit and on a sequential
one: AIG optimisation, polarity optimisation (vs. all-positive and vs. full
dual-rail), PTL vs. abutted interconnect, DROC-pair vs. legacy DRO-quad
flip-flops, and retiming of the second DROC rank.
"""

from conftest import run_once

from repro.circuits import build
from repro.core import CellKind, FlowOptions, default_library, legacy_dro_flipflop_cost, synthesize_xsfq
from repro.eval import run_headline


def _ablate_combinational(name: str, scale: str, effort: str):
    network = build(name, scale)
    variants = {
        "direct (no AIG opt, dual rail)": FlowOptions(effort="none", direct_mapping=True),
        "AIG opt only (dual rail)": FlowOptions(effort=effort, direct_mapping=True),
        "+ positive-only outputs": FlowOptions(effort=effort, optimize_polarity=False),
        "+ output phase assignment": FlowOptions(effort=effort, optimize_polarity=True),
    }
    return {label: synthesize_xsfq(network, options) for label, options in variants.items()}


def test_ablation_polarity_and_optimisation(benchmark, scale, effort):
    results = run_once(benchmark, _ablate_combinational, "c880", scale, effort)
    print(f"\n[Ablation] c880-class ALU (scale={scale}, effort={effort})")
    jj = {}
    for label, result in results.items():
        jj[label] = result.jj_count(False)
        print(f"  {label:<32} LA/FA={result.num_la_fa:5d}  JJ={jj[label]:6d}  dupl={result.duplication_penalty*100:.0f}%")
    ordered = list(jj.values())
    # Every successive optimisation must not hurt, and the full flow must
    # clearly beat the direct mapping (the paper's Section 3.1 progression).
    assert ordered[1] <= ordered[0]
    assert ordered[2] <= ordered[1]
    assert ordered[3] <= ordered[2]
    assert ordered[3] < ordered[0]


def test_ablation_ptl_cost_model(benchmark, scale, effort):
    result = run_once(
        benchmark, synthesize_xsfq, build("c1908", scale), FlowOptions(effort=effort)
    )
    no_ptl = result.jj_count(False)
    with_ptl = result.jj_count(True)
    print(f"\n[Ablation] PTL interfaces on c1908-class: {no_ptl} JJ -> {with_ptl} JJ")
    assert with_ptl > no_ptl
    # LA/FA cells triple in cost (4 -> 12 JJ) while splitters stay at 3 JJ.
    assert with_ptl < 3 * no_ptl


def _sequential_variants(scale: str, effort: str):
    network = build("s298", scale)
    retimed = synthesize_xsfq(network, FlowOptions(effort=effort, retime=True))
    paired = synthesize_xsfq(network, FlowOptions(effort=effort, retime=False))
    return retimed, paired


def test_ablation_flipflop_style_and_retiming(benchmark, scale, effort):
    retimed, paired = run_once(benchmark, _sequential_variants, scale, effort)
    lib = default_library(False)
    num_ff = len(build("s298", scale).latches)
    splitter_jj = lib.jj_count(CellKind.SPLITTER)
    # The DROC pair needs 2 clocked cells per logical flip-flop; the legacy
    # style needs 4, i.e. 2 extra clock-splitter connections per flip-flop.
    droc_pair_jj = lib.jj_count(CellKind.DROC) + lib.jj_count(CellKind.DROC_PRELOAD) + 2 * splitter_jj
    legacy_jj = legacy_dro_flipflop_cost(1, lib) + 4 * splitter_jj
    print(
        f"\n[Ablation] s298-class flip-flops (incl. clock splitting): DROC pair = {droc_pair_jj} JJ, "
        f"legacy 4xDRO = {legacy_jj} JJ per logical flip-flop"
    )
    print(
        f"  retimed: stage depths {retimed.sequential_info.stage_depths}, "
        f"back-to-back: stage depths {paired.sequential_info.stage_depths}"
    )
    # Including its clock tree, the DROC pair beats the legacy DRO-quad.
    assert droc_pair_jj < legacy_jj
    # Both mappings keep one preloaded DROC per logical flip-flop.
    assert retimed.droc_counts[1] == paired.droc_counts[1] == num_ff
    # Retiming balances the pipeline: the worst stage gets shorter (or equal).
    assert max(retimed.sequential_info.stage_depths) <= max(paired.sequential_info.stage_depths)


def test_headline_claim(benchmark, scale, effort):
    result = run_once(benchmark, run_headline, scale=scale, effort=effort)
    print(f"\n[Headline] Average JJ reduction across suites (scale={scale}, effort={effort})\n" + result.text)
    # The abstract claims >80% average reduction (4.3x); the reduced-scale
    # reproduction must at least show a large, consistent reduction.
    assert result.summary["mean_reduction"] > 0.4
    assert result.summary["max_savings"] > 3.0
