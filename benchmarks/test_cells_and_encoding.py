"""Benchmarks for Table 1 (cell protocol), Figure 1 (encoding) and Table 2 (library).

Each test regenerates the corresponding artefact and prints it, so
``pytest benchmarks/ --benchmark-only -s`` shows the paper-style output.
"""

from conftest import run_once

from repro.eval import run_figure1, run_table1, run_table2


def test_table1_cell_protocol(benchmark):
    result = run_once(benchmark, run_table1)
    print("\n[Table 1] LA/FA alternating input sequences\n" + result.text)
    assert result.summary["la_matches_and"]
    assert result.summary["fa_matches_or"]
    assert result.summary["all_reinitialised"]


def test_figure1_alternating_encoding(benchmark):
    result = run_once(benchmark, run_figure1, (1, 0, 1, 1, 0, 0, 1))
    print("\n[Figure 1] Alternating dual-rail encoding\n" + result.text)
    assert result.summary["roundtrip_ok"]


def test_table2_cell_library(benchmark):
    result = run_once(benchmark, run_table2)
    print("\n[Table 2] xSFQ cell library\n" + result.text)
    cells = [row["cell"] for row in result.rows]
    assert {"JTL", "LA", "FA", "SPLITTER"} <= set(cells)
