"""Benchmark for Figures 2-3: analog (RCSJ) cell characterisation waveforms.

The paper characterises its cells in HSPICE; this harness runs the reduced
RCSJ phase-model templates and checks the qualitative behaviour: the JTL
propagates single pulses, the LA cell behaves as a C element (fires only
after both inputs), the FA cell fires on the first arrival, and the DROC
read-out discriminates stored flux.
"""

import pytest

from conftest import run_once

from repro.sim.analog import (
    characterization_report,
    characterize_droc,
    characterize_fa,
    characterize_jtl,
    characterize_la,
)


def _characterise_all():
    return {
        "jtl": characterize_jtl(),
        "la": characterize_la(),
        "fa": characterize_fa(),
        "droc": characterize_droc(),
    }


@pytest.mark.slow
def test_figure2_3_analog_characterisation(benchmark):
    results = run_once(benchmark, _characterise_all)
    print("\n[Figures 2-3] " + characterization_report())

    jtl = results["jtl"]
    assert jtl.output_pulses == 1 and jtl.delay_ps and jtl.delay_ps > 0

    la_single, la_both = results["la"]
    assert la_single.output_pulses == 0, "LA must not fire on a single input"
    assert la_both.output_pulses >= 1, "LA must fire once both inputs arrived"

    fa_single, _ = results["fa"]
    assert fa_single.output_pulses >= 1, "FA must fire on the first arrival"

    droc_empty, droc_loaded = results["droc"]
    assert droc_loaded.output_pulses > droc_empty.output_pulses
