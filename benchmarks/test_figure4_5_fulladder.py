"""Benchmark for Figures 4-5: the full-adder mapping walk-through.

This is the one experiment whose absolute numbers must match the paper
exactly (the cost model is fully specified there): 18/16/120/264 for direct
mapping, 14/12/92/204 after AIG optimisation, 11/7/65/153 after polarity
optimisation and 10/6/58/138 with the domino-style output phase assignment.
"""

from conftest import run_once

from repro.eval import run_figure4_5


def test_figure4_5_full_adder_walkthrough(benchmark):
    result = run_once(benchmark, run_figure4_5)
    print("\n[Figures 4-5] Full-adder mapping walk-through\n" + result.text)
    assert result.summary["min_aig_nodes"] == 7
    assert result.summary["matches_paper"], "full-adder counts must match the paper exactly"
    by_step = {row["step"]: row for row in result.rows}
    assert by_step["direct"]["jj"] == 120 and by_step["direct"]["jj_ptl"] == 264
    assert by_step["domino"]["jj"] == 58 and by_step["domino"]["jj_ptl"] == 138
