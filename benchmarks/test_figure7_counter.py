"""Benchmark for Figure 7: pulse-level simulation of the 2-bit xSFQ counter."""

from conftest import run_once

from repro.eval import run_figure7


def test_figure7_counter_pulse_simulation(benchmark, effort):
    result = run_once(benchmark, run_figure7, num_cycles=8, effort=effort)
    print(f"\n[Figure 7] 2-bit xSFQ counter pulse simulation (effort={effort})\n" + result.text)
    assert result.summary["matches_expected"], "decoded counter sequence must match the reference"
    assert result.summary["trigger_used"], "the start-up trigger of Section 3.2 must be present"
    assert result.summary["wraps_around"]
    assert result.summary["num_drocs"] == 4  # two DROCs per logical flip-flop
