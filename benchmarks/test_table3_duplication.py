"""Benchmark for Table 3: duplication penalty of the EPFL control circuits."""

from conftest import run_once

from repro.eval import run_table3


def test_table3_duplication_penalty(benchmark, scale, effort):
    result = run_once(benchmark, run_table3, scale=scale, effort=effort)
    print(f"\n[Table 3] Duplication penalty (scale={scale}, effort={effort})\n" + result.text)
    # Shape checks: every circuit beats the 100% penalty of direct mapping,
    # the voter stays the pathological case, and decoders stay near zero.
    assert result.summary["all_below_direct_mapping"]
    penalties = {row["circuit"]: row["duplication"] for row in result.rows}
    assert penalties["voter"] == max(penalties.values())
    assert penalties["dec"] <= 0.1
    assert result.summary["mean_duplication"] < 0.6
