"""Benchmark for Table 4: ISCAS85 + EPFL combinational circuits vs the PBMap-like baseline."""

from conftest import run_once

from repro.eval import run_table4
from repro.eval.paper_data import TABLE4_ROWS


def test_table4_combinational_savings(benchmark, scale, effort):
    result = run_once(benchmark, run_table4, scale=scale, effort=effort)
    print(f"\n[Table 4] Combinational circuits vs PBMap-like baseline (scale={scale}, effort={effort})")
    print(result.text)
    print(
        f"mean savings: {result.summary['mean_savings']:.1f}x / "
        f"{result.summary['mean_savings_with_clock']:.1f}x "
        f"(paper: {result.summary['paper_mean_savings']}x / {result.summary['paper_mean_savings_with_clock']}x)"
    )
    # Shape checks from the paper: xSFQ wins everywhere, clock-free designs
    # contain no storage cells, and the average savings are well above 1x.
    assert result.summary["xsfq_always_wins"]
    assert result.summary["no_storage_cells"]
    assert result.summary["mean_savings"] > 1.5
    assert result.summary["mean_savings_with_clock"] > result.summary["mean_savings"]
    # Every circuit evaluated here is one the paper also evaluated.
    assert all(row["circuit"] in TABLE4_ROWS for row in result.rows)
