"""Benchmark for Table 5: pipelining the c6288-class multiplier."""

from conftest import run_once

from repro.eval import run_table5


def test_table5_pipelining(benchmark, scale, effort):
    result = run_once(benchmark, run_table5, scale=scale, effort=effort, stages=(0, 1, 2))
    print(f"\n[Table 5] Pipelined multiplier (scale={scale}, effort={effort})\n" + result.text)
    # Shape checks from the paper: pipeline stages add JJs monotonically but
    # sub-linearly in the added DROCs, depth per stage shrinks and the clock
    # frequency grows; the architectural frequency is half the circuit one.
    assert result.summary["jj_growth_monotonic"]
    assert result.summary["depth_shrinks"]
    assert result.summary["frequency_grows"]
    assert result.summary["jj_growth_sublinear_vs_droc"]
    for row in result.rows:
        assert row["clock_arch_ghz"] * 2 == row["clock_circuit_ghz"]
        if row["stages"] > 0:
            assert row["droc_plain"] + row["droc_preloaded"] > 0
