"""Benchmark for Table 6: ISCAS89-class sequential circuits vs the qSeq-like baseline."""

from conftest import run_once

from repro.eval import run_table6
from repro.eval.paper_data import TABLE6_ROWS


def test_table6_sequential_savings(benchmark, scale, effort):
    result = run_once(benchmark, run_table6, scale=scale, effort=effort)
    print(f"\n[Table 6] Sequential circuits vs qSeq-like baseline (scale={scale}, effort={effort})")
    print(result.text)
    print(
        f"mean savings: {result.summary['mean_savings']:.1f}x "
        f"(paper: {result.summary['paper_mean_savings']}x)"
    )
    # Shape checks: xSFQ wins on every circuit, every logical flip-flop has a
    # preloaded DROC, and the mean savings are well above 1x.
    assert result.summary["xsfq_always_wins"]
    assert result.summary["preloaded_matches_flipflops"]
    assert result.summary["mean_savings"] > 1.5
    assert all(row["circuit"] in TABLE6_ROWS for row in result.rows)
