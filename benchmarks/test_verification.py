"""Benchmark: fast catalog-verify campaign on the smallest circuits.

The full ``repro verify --catalog`` campaign covers all 37 registry
circuits; this benchmark keeps CI honest with the smallest combinational
and sequential entries, still asserting the subsystem's core guarantees —
equivalence everywhere, one netlist elaboration per circuit, and a real
multi-pattern budget.
"""

from repro.eval import Runner
from repro.verify import catalog_specs
from repro.circuits import CATALOG

from conftest import run_once

#: Smallest members of each suite (cells at quick scale stay in the hundreds).
SMALL_CIRCUITS = ["ctrl", "int2float", "mem_ctrl", "c432", "s27", "s298", "s386"]


def _verify_small(scale: str, effort: str):
    from repro.core import Flow, FlowOptions

    specs = catalog_specs(
        circuits=SMALL_CIRCUITS,
        scale=scale,
        flow=Flow.from_options(FlowOptions(effort=effort)),
        patterns=128,
        seed=0,
    )
    return Runner(jobs=1, cache=None).verify(specs)


def test_fast_catalog_verify(benchmark, scale, effort):
    report = run_once(benchmark, _verify_small, scale, effort)
    print()
    print(report.table())
    assert report.all_equivalent, [r["circuit"] for r in report.failures]
    assert {r["circuit"] for r in report.records} == set(SMALL_CIRCUITS)
    kinds = {r["circuit"]: r["kind"] for r in report.records}
    assert kinds == {name: CATALOG[name].kind for name in SMALL_CIRCUITS}
    for record in report.records:
        assert record["elaborations"] == 1  # batched: never re-elaborated
        assert record["patterns"] >= 32
