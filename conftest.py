"""Pytest bootstrap: make the src-layout package importable without installation.

The canonical way to use the repository is ``pip install -e .`` (or, in
offline environments that lack the ``wheel`` package, ``python setup.py
develop``).  This shim additionally lets ``pytest`` run straight from a
clean checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
