"""Link-check the markdown documentation set.

Scans ``docs/*.md`` and ``README.md`` for markdown links and verifies
that every *relative* target (``docs/cli.md``, ``../examples``,
``src/repro/core/flowgraph.py`` ...) resolves to an existing file or
directory.  External links (``http://``, ``https://``, ``mailto:``) and
pure in-page anchors are skipped.  Exit status 1 lists every broken
link — the CI docs job runs this on every push.

Usage::

    python docs/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: Path, repo_root: Path) -> list:
    broken = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        try:
            resolved.relative_to(repo_root)
        except ValueError:
            broken.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            broken.append((target, "missing"))
    return broken


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    documents = sorted((repo_root / "docs").glob("*.md")) + [repo_root / "README.md"]
    failures = 0
    for document in documents:
        for target, why in check_file(document, repo_root):
            print(f"{document.relative_to(repo_root)}: broken link {target!r} ({why})")
            failures += 1
    checked = ", ".join(str(d.relative_to(repo_root)) for d in documents)
    if failures:
        print(f"{failures} broken link(s) across {checked}")
        return 1
    print(f"all links resolve: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
