"""Benchmark sweep: reproduce the paper's evaluation tables from the command line.

Run with::

    python examples/benchmark_sweep.py [quick|paper] [low|medium|high] [--jobs N]

Synthesises the ISCAS85-, EPFL- and ISCAS89-class benchmark circuits with
the xSFQ flow and the clocked-RSFQ baselines through the parallel
experiment engine (:func:`repro.run_experiment`), then prints
Table-3/4/5/6 style reports plus the headline average JJ reduction.

With ``--jobs N`` the per-circuit synthesis jobs run on an N-process
worker pool, and completed jobs are memoised in the on-disk result cache
(``REPRO_CACHE_DIR``, default ``~/.cache/repro-xsfq``) — so re-running
the sweep, or following it with ``repro run table4 --effort low`` (the
cache key includes the effort, so it must match the sweep's), performs
zero re-synthesis.  The same sweep is available as ``repro run all``.

Expected output (quick scale; measured values vary from the paper's —
the shape is what matters)::

    Running the evaluation sweep (scale=quick, effort=low, jobs=4)

    [Table 3] Duplication penalty after polarity optimisation
    Circuit  Dupl. (measured)  Dupl. (paper)
    ...10 EPFL control circuits, all below 100%...

    [Table 4] Combinational circuits vs PBMap-like RSFQ baseline
    ...11 circuits, JJ savings between ~1.1x and ~9x...
    average savings: 3.0x / 3.9x  (paper: 4.5x / 5.9x)

    [Table 5] Pipelining the c6288-class multiplier
    ...JJ grows, depth shrinks, clock frequency rises with stages...

    [Table 6] Sequential circuits vs qSeq-like RSFQ baseline
    ...16 ISCAS89-class circuits, xSFQ always wins...

    [Headline] Abstract claim: >80% average JJ reduction
    ...measured average reduction next to the paper's numbers...
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scale", nargs="?", default="quick", choices=("quick", "paper"))
    parser.add_argument("effort", nargs="?", default="low",
                        choices=("none", "low", "medium", "high"))
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="synthesis worker processes (default: 1)")
    args = parser.parse_args()
    scale, effort, jobs = args.scale, args.effort, args.jobs
    print(f"Running the evaluation sweep (scale={scale}, effort={effort}, jobs={jobs})\n")

    def run(name):
        return repro.run_experiment(name, scale=scale, effort=effort, jobs=jobs)

    table3 = run("table3").result
    print("[Table 3] Duplication penalty after polarity optimisation")
    print(table3.text + "\n")

    table4 = run("table4").result
    print("[Table 4] Combinational circuits vs PBMap-like RSFQ baseline")
    print(table4.text)
    print(
        f"average savings: {table4.summary['mean_savings']:.1f}x / "
        f"{table4.summary['mean_savings_with_clock']:.1f}x  "
        f"(paper: {table4.summary['paper_mean_savings']}x / {table4.summary['paper_mean_savings_with_clock']}x)\n"
    )

    table5 = run("table5").result
    print("[Table 5] Pipelining the c6288-class multiplier")
    print(table5.text + "\n")

    table6 = run("table6").result
    print("[Table 6] Sequential circuits vs qSeq-like RSFQ baseline")
    print(table6.text)
    print(f"average savings: {table6.summary['mean_savings']:.1f}x  "
          f"(paper: {table6.summary['paper_mean_savings']}x)\n")

    headline = run("headline").result
    print("[Headline] Abstract claim: >80% average JJ reduction")
    print(headline.text)


if __name__ == "__main__":
    main()
