"""Benchmark sweep: reproduce the paper's evaluation tables from the command line.

Run with::

    python examples/benchmark_sweep.py [quick|paper] [low|medium|high]

Synthesises the ISCAS85-, EPFL- and ISCAS89-class benchmark circuits with
the xSFQ flow and the clocked-RSFQ baselines, then prints Table-3/4/5/6
style reports plus the headline average JJ reduction.  At the default
``quick`` scale this takes well under a minute; ``paper`` scale with
``medium``/``high`` effort approaches the paper's circuit sizes and takes
correspondingly longer in pure Python.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval import run_headline, run_table3, run_table4, run_table5, run_table6


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    effort = sys.argv[2] if len(sys.argv) > 2 else "low"
    print(f"Running the evaluation sweep (scale={scale}, effort={effort})\n")

    table3 = run_table3(scale=scale, effort=effort)
    print("[Table 3] Duplication penalty after polarity optimisation")
    print(table3.text + "\n")

    table4 = run_table4(scale=scale, effort=effort)
    print("[Table 4] Combinational circuits vs PBMap-like RSFQ baseline")
    print(table4.text)
    print(
        f"average savings: {table4.summary['mean_savings']:.1f}x / "
        f"{table4.summary['mean_savings_with_clock']:.1f}x  "
        f"(paper: {table4.summary['paper_mean_savings']}x / {table4.summary['paper_mean_savings_with_clock']}x)\n"
    )

    table5 = run_table5(scale=scale, effort=effort)
    print("[Table 5] Pipelining the c6288-class multiplier")
    print(table5.text + "\n")

    table6 = run_table6(scale=scale, effort=effort)
    print("[Table 6] Sequential circuits vs qSeq-like RSFQ baseline")
    print(table6.text)
    print(f"average savings: {table6.summary['mean_savings']:.1f}x  "
          f"(paper: {table6.summary['paper_mean_savings']}x)\n")

    headline = run_headline(scale=scale, effort=effort)
    print("[Headline] Abstract claim: >80% average JJ reduction")
    print(headline.text)


if __name__ == "__main__":
    main()
