"""Domain scenario: a small MAC (multiply-accumulate) datapath in xSFQ.

Run with::

    python examples/custom_accelerator.py

The paper's motivation is superconducting accelerators with 10x the
performance at a fraction of the power; this example builds the archetypal
accelerator datapath — an N-bit multiply-accumulate unit — from the RTL
eDSL, explores the pipelining trade-off the paper studies in Table 5
(JJ cost vs. clock frequency), and exports the synthesised design as
structural Verilog and a Liberty timing library for downstream tools.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import array_multiplier
from repro.core import FlowOptions, default_library, save_liberty, synthesize_xsfq
from repro.netlist import NetworkBuilder, write_verilog


def build_mac(width: int = 6):
    """Combinational multiply-accumulate: p = a * b + c."""
    builder = NetworkBuilder(f"mac{width}")
    multiplier = array_multiplier(width)
    # Inline the multiplier structure by rebuilding it inside this network.
    a = builder.word_inputs("a", width)
    b = builder.word_inputs("b", width)
    c = builder.word_inputs("c", 2 * width)
    columns = [[] for _ in range(2 * width)]
    for j in range(width):
        for i in range(width):
            columns[i + j].append(builder.and_(a[i], b[j]))
    for weight, column in enumerate(columns):
        while len(column) > 1:
            x = column.pop()
            y = column.pop()
            if column:
                z = column.pop()
                s, carry = builder.full_adder(x, y, z)
            else:
                s, carry = builder.half_adder(x, y)
            column.append(s)
            if weight + 1 < 2 * width:
                columns[weight + 1].append(carry)
    product = [col[0] if col else builder.const(0) for col in columns]
    total, _ = builder.ripple_adder(product, c)
    builder.word_outputs(total, "p")
    return builder.finish()


def main():
    width = 6
    network = build_mac(width)
    print(f"MAC datapath: {len(network.inputs)} inputs, {len(network.outputs)} outputs, "
          f"{network.num_gates()} gates, depth {network.depth()}")

    print("\nPipelining sweep (paper Table 5 methodology):")
    print(f"{'stages':>7} {'LA/FA':>7} {'DROC':>10} {'JJ':>8} {'depth':>6} {'circuit GHz':>12} {'arch GHz':>9}")
    for stages in (0, 1, 2, 3):
        result = synthesize_xsfq(network, FlowOptions(effort="low", pipeline_stages=stages))
        plain, preloaded = result.droc_counts
        circuit_ghz, arch_ghz = result.clock_frequencies_ghz()
        print(
            f"{stages:>7} {result.num_la_fa:>7} {f'{plain}/{preloaded}':>10} "
            f"{result.jj_count(False):>8} {result.logic_depth(False):>6} "
            f"{circuit_ghz:>12.1f} {arch_ghz:>9.1f}"
        )

    print("\nExporting artefacts:")
    out_dir = Path(__file__).resolve().parent / "output"
    out_dir.mkdir(exist_ok=True)
    result = synthesize_xsfq(network, FlowOptions(effort="low"))
    verilog_path = out_dir / "mac_source.v"
    verilog_path.write_text(write_verilog(network))
    liberty_path = out_dir / "xsfq_cells.lib"
    save_liberty(liberty_path, default_library(False))
    print(f"  structural Verilog of the source design -> {verilog_path}")
    print(f"  xSFQ Liberty timing library            -> {liberty_path}")
    print(f"  synthesised xSFQ cells: {result.num_la_fa} LA/FA + {result.num_splitters} splitters "
          f"= {result.jj_count(False)} JJs")


if __name__ == "__main__":
    main()
