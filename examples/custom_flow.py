"""Compose, observe and extend the staged synthesis flow.

Run with::

    python examples/custom_flow.py

The xSFQ flow is an ordered composition of named stages registered in
``repro.STAGES`` (``frontend -> aig-opt -> pipeline -> polarity -> map ->
sequential -> report``).  This example shows the pass-manager features in
turn:

1. run the default flow with a timing observer and print the per-stage
   progress table (the same table ``repro run --stage-timing`` shows);
2. derive a variant flow (``with_options``) and watch the stage cache
   reuse the expensive post-``aig-opt`` AIG instead of re-optimising;
3. register a *custom* stage with ``repro.register_stage`` and splice it
   into a flow built from a script of stage and AIG-pass names;
4. stop a flow mid-way (``until=``), inspect the intermediate
   ``FlowState``, and resume it to completion.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.core import render_stage_table  # noqa: E402


def main() -> None:
    net = repro.build_circuit("c880", "quick")

    # ------------------------------------------------------------------
    # 1. The default flow, observed stage by stage
    # ------------------------------------------------------------------
    print("=== 1. Default flow with a timing observer ===")
    timing = repro.TimingObserver()
    flow = repro.Flow.default()
    result = flow.run(net, observers=(timing,))
    print(timing.table())
    print(f"total {timing.total_seconds():.3f}s -> {result.jj_count()} JJs\n")

    # ------------------------------------------------------------------
    # 2. A polarity variant reuses the cached optimised AIG
    # ------------------------------------------------------------------
    print("=== 2. Variant flow: stage cache reuses the aig-opt prefix ===")
    cache = repro.get_stage_cache()
    hits_before = cache.hits
    variant = flow.with_options("polarity", mode="positive")
    events = []
    variant_result = variant.run(repro.build_circuit("c880", "quick"),
                                 observers=(events.append,))
    reused = [e.stage for e in events if e.from_cache]
    print(f"stages served from cache : {reused}")
    print(f"stage-cache hits         : {cache.hits - hits_before}")
    print(f"positive-only polarity   : {variant_result.jj_count()} JJs "
          f"(optimised: {result.jj_count()})\n")

    # ------------------------------------------------------------------
    # 3. A user-registered stage in a scripted flow
    # ------------------------------------------------------------------
    print("=== 3. Custom stage spliced into a scripted flow ===")

    @repro.register_stage(
        "and-budget",
        defaults={"max_ands": 1000},
        description="Fail fast when the optimised AIG exceeds an AND budget",
    )
    def and_budget(state, options):
        ands = state.aig.num_ands
        if ands > int(options["max_ands"]):
            raise repro.FlowError(
                f"design needs {ands} ANDs, budget is {options['max_ands']}"
            )
        print(f"  [and-budget] {ands} ANDs <= {options['max_ands']} — ok")
        return state

    scripted = repro.Flow.from_script([
        "frontend",
        "balance",            # a raw AIG pass from repro.aig.scripts.PASSES
        "rewrite",
        ("and-budget", {"max_ands": 800}),
        ("polarity", {"mode": "optimize"}),
        "map",
        "sequential",
        "report",
    ])
    scripted_result = scripted.run(repro.build_circuit("c880", "quick"))
    print(f"scripted flow            : {scripted_result.jj_count()} JJs")
    print(f"signature stages         : {[s for s, _ in scripted.signature()]}\n")

    # ------------------------------------------------------------------
    # 4. Inspect mid-flow, then resume
    # ------------------------------------------------------------------
    print("=== 4. Stop after aig-opt, inspect, resume ===")
    state = flow.run_state(repro.build_circuit("c880", "quick"), until="aig-opt")
    print(f"source network           : {state.source_stats['ands']} AIG ANDs")
    print(f"after optimisation       : {state.aig.num_ands} AIG ANDs")
    finished = flow.resume(state)
    print(f"resumed to completion    : {finished.result.jj_count()} JJs")


if __name__ == "__main__":
    main()
