"""Quickstart: synthesise a small design to clock-free xSFQ and inspect the result.

Run with::

    python examples/quickstart.py

The example walks the paper's full-adder story end to end: build the RTL,
optimise the AIG, map it to LA/FA cells with polarity optimisation, report
the component breakdown and JJ counts, verify the mapped netlist at the
pulse level, and compare against a conventional clocked-RSFQ mapping.
Everything is driven through the top-level :mod:`repro` public API.

Expected output (deterministic; sections abridged)::

    === 1. Alternating dual-rail encoding (Figure 1) ===
    ...waveform of the bit stream 1,0,1,1,0 on both rails...

    === 2. Synthesise the full adder to xSFQ ===
    AIG nodes after optimisation : 7 (paper Figure 4: 7)
    LA/FA cells                  : 10 (paper Figure 5ii: 10)
    ...
    JJ count (abutted / PTL)     : 58 / 138 (paper: 58 / 138)

    === 3. Verify the mapped netlist at the pulse level ===
    pulse-level vs gate-level on all 8 input vectors: MATCH
    all LA/FA cells re-initialised (Table 1 property): True

    === 4. Compare against a conventional clocked-RSFQ mapping ===
    ...the PBMap-like baseline needs ~3x the JJs...

    === 5. Export the cell library as Liberty (Section 2.3) ===
    ...first lines of the Liberty file...
"""

import itertools
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro


def build_full_adder():
    """The 1-bit full adder used throughout the paper's Section 3.1."""
    builder = repro.NetworkBuilder("full_adder")
    a, b, cin = builder.input("a"), builder.input("b"), builder.input("cin")
    s, cout = builder.full_adder(a, b, cin)
    builder.output(s, "s")
    builder.output(cout, "cout")
    return builder.finish()


def main():
    print("=== 1. Alternating dual-rail encoding (Figure 1) ===")
    print(repro.format_waveform([1, 0, 1, 1, 0]))

    print("\n=== 2. Synthesise the full adder to xSFQ ===")
    network = build_full_adder()
    result = repro.synthesize_xsfq(network, repro.FlowOptions(effort="high"))
    breakdown = result.component_breakdown()
    print(f"AIG nodes after optimisation : {result.aig.num_ands} (paper Figure 4: 7)")
    print(f"LA/FA cells                  : {result.num_la_fa} (paper Figure 5ii: 10)")
    print(f"Splitters                    : {result.num_splitters}")
    print(f"Duplication penalty          : {result.duplication_penalty*100:.0f}%")
    print(f"JJ count (abutted / PTL)     : {result.jj_count(False)} / {result.jj_count(True)} (paper: 58 / 138)")
    print(f"Logical depth (w/ splitters) : {breakdown['depth']} / {breakdown['depth_with_splitters']}")

    print("\n=== 3. Verify the mapped netlist at the pulse level ===")
    vectors = [
        {"a": a, "b": b, "cin": c} for a, b, c in itertools.product((0, 1), repeat=3)
    ]
    sim = repro.simulate_combinational(result.netlist, vectors)
    mismatches = 0
    for vector, outputs in zip(vectors, sim.outputs):
        expected, _ = network.evaluate(vector)
        ok = outputs == {"s": expected["s"], "cout": expected["cout"]}
        mismatches += 0 if ok else 1
    print(f"pulse-level vs gate-level on all {len(vectors)} input vectors: "
          f"{'MATCH' if mismatches == 0 else f'{mismatches} MISMATCHES'}")
    print(f"all LA/FA cells re-initialised (Table 1 property): {sim.all_cells_reinitialised}")

    print("\n=== 4. Compare against a conventional clocked-RSFQ mapping ===")
    baseline = repro.pbmap_like(network)
    print(f"RSFQ baseline: {baseline.num_logic_cells} clocked gates, "
          f"{baseline.num_balancing_dffs} path-balancing DROs, "
          f"{baseline.num_clock_splitters} clock splitters")
    print(f"RSFQ JJ count (with clock tree): {baseline.jj_count()}")
    print(f"xSFQ JJ count                  : {result.jj_count(False)}")
    print(f"JJ savings                     : {baseline.jj_count() / result.jj_count(False):.1f}x")

    print("\n=== 5. Export the cell library as Liberty (Section 2.3) ===")
    liberty = repro.write_liberty(repro.default_library(False))
    print("\n".join(liberty.splitlines()[:8]) + "\n...")


if __name__ == "__main__":
    main()
