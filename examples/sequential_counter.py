"""Sequential xSFQ synthesis: counters and state machines with DROC flip-flops.

Run with::

    python examples/sequential_counter.py

Covers the paper's Section 3.2: the design is described in the RTL eDSL,
synthesised with DROC-pair flip-flops, balanced by pushing the second DROC
rank into the logic, initialised with the preload + trigger strategy, and
finally pulse-simulated cycle by cycle (the paper's Figure 7, here for a
4-bit counter and a small FSM).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import qseq_like
from repro.core import FlowOptions, synthesize_xsfq
from repro.rtl import RtlModule, Word
from repro.sim.pulse import reference_start_state, simulate_sequential


def build_counter(width: int = 4):
    """An enable-gated binary counter described in the RTL eDSL."""
    module = RtlModule(f"counter{width}")
    enable = module.input("en")
    count = module.register_word("q", width)
    one = module.constant_word(1, width)
    zero = module.constant_word(0, width)
    increment = Word.mux(enable, zero, one)
    count.next_value(count + increment)
    module.output_word("count", count)
    return module.elaborate()


def main():
    network = build_counter(4)

    print("=== 1. Synthesise with and without retiming ===")
    retimed = synthesize_xsfq(network, FlowOptions(effort="medium", retime=True))
    paired = synthesize_xsfq(network, FlowOptions(effort="medium", retime=False))
    for label, result in (("retimed", retimed), ("back-to-back", paired)):
        plain, preloaded = result.droc_counts
        circuit_ghz, arch_ghz = result.clock_frequencies_ghz()
        print(
            f"{label:>13}: LA/FA={result.num_la_fa:3d}  DROC={plain}/{preloaded} (plain/preloaded)  "
            f"JJ={result.jj_count(False):4d}  stage depths={result.sequential_info.stage_depths}  "
            f"clock={circuit_ghz:.1f}/{arch_ghz:.1f} GHz"
        )

    print("\n=== 2. Pulse-level simulation with the trigger start-up (Figure 7) ===")
    vectors = [{"en": 1}] * 10
    sim = simulate_sequential(paired.netlist, vectors)
    state = reference_start_state([latch.name for latch in network.latches])
    print("cycle | pulse-decoded count | reference")
    matches = True
    for cycle, vector in enumerate(vectors):
        expected, state = network.evaluate(vector, state)
        decoded = sum(sim.outputs[cycle][f"count[{k}]"] << k for k in range(4))
        reference = sum(expected[f"count[{k}]"] << k for k in range(4))
        matches &= decoded == reference
        print(f"{cycle + 1:5d} | {decoded:19d} | {reference}")
    print(f"pulse-level behaviour matches the RTL reference: {matches}")

    print("\n=== 3. Compare against the qSeq-style clocked-RSFQ flow ===")
    baseline = qseq_like(network)
    print(
        f"qSeq-like: {baseline.num_logic_cells} clocked gates, {baseline.num_state_dffs} state DROs, "
        f"{baseline.num_balancing_dffs} balancing DROs -> {baseline.jj_count()} JJ"
    )
    print(f"xSFQ     : {retimed.jj_count(False)} JJ "
          f"({baseline.jj_count() / retimed.jj_count(False):.1f}x fewer JJs)")


if __name__ == "__main__":
    main()
