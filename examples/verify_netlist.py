"""Verify a synthesised netlist at the pulse level — and read a counterexample.

Run with::

    python examples/verify_netlist.py

The walkthrough has four acts:

1. synthesise a benchmark circuit with a custom staged flow that *ends in
   the ``verify`` stage*, so the flow itself produces a machine-checkable
   equivalence verdict;
2. verify a batch of patterns by hand with ``repro.verify_result`` and
   watch the elaboration counter: hundreds of patterns, one elaboration;
3. deliberately corrupt one mapped cell and read the resulting
   counterexample — the failing input pattern, the diverging output and
   the first divergence net that localises the bug;
4. run a miniature verification campaign over several catalogued
   circuits through the parallel runner, like ``repro verify`` does.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.core.cells import CellKind  # noqa: E402
from repro.sim.pulse import elaboration_count  # noqa: E402
from repro.verify import catalog_specs, render_verification_table  # noqa: E402


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A flow that ends in a verdict
    # ------------------------------------------------------------------
    print("=== 1. Flow with a terminal 'verify' stage ===")
    flow = repro.Flow.default().with_stage("verify", {"patterns": 128, "seed": 1})
    state = flow.run_state(repro.build_circuit("c880", "quick"))
    verdict = state.artifacts["verification"]
    print(f"stages  : {' -> '.join(flow.stage_names())}")
    print(f"verdict : {verdict.status} — {verdict.summary()}\n")

    # ------------------------------------------------------------------
    # 2. Batched verification by hand: N patterns, one elaboration
    # ------------------------------------------------------------------
    print("=== 2. Batched multi-pattern verification ===")
    network = repro.build_circuit("c880", "quick")
    result = repro.Flow.default().run(network)
    before = elaboration_count()
    verdict = repro.verify_result(result, golden=network, patterns=256, seed=0)
    print(f"patterns verified : {verdict.patterns} ({verdict.mode})")
    print(f"elaborations      : {elaboration_count() - before} (one batch, one build)")
    print(f"status            : {verdict.status} in {verdict.seconds:.2f}s\n")

    # ------------------------------------------------------------------
    # 3. Corrupt a cell, inspect the counterexample
    # ------------------------------------------------------------------
    print("=== 3. Reading a counterexample ===")
    broken = repro.Flow.default().run(network)
    victim = next(c for c in broken.netlist.cells if c.kind is CellKind.LA)
    victim.kind = CellKind.FA  # one AND silently becomes an OR
    print(f"corrupted cell    : {victim.name} (LA -> FA)")
    verdict = repro.verify_result(broken, golden=network, patterns=256, seed=0)
    cex = verdict.counterexample
    print(f"status            : {verdict.status}")
    print(f"failing pattern   : #{cex.pattern} {cex.inputs}")
    print(f"diverging output  : {cex.output} (expected {cex.expected}, got {cex.observed})")
    print(f"first divergence  : net {verdict.first_divergence_net!r} — the cell "
          "driving this net is the place to start debugging\n")

    # ------------------------------------------------------------------
    # 4. A miniature campaign through the parallel runner
    # ------------------------------------------------------------------
    print("=== 4. Campaign over several circuits (the `repro verify` engine) ===")
    specs = catalog_specs(circuits=["ctrl", "int2float", "s27"], patterns=64, seed=0)
    report = repro.Runner(jobs=2, cache=None).verify(specs)
    print(render_verification_table(report.records))
    print(f"all equivalent    : {report.all_equivalent} "
          f"({report.total_patterns()} patterns in {report.elapsed_s:.2f}s)")


if __name__ == "__main__":
    main()
