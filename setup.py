"""Packaging for the xSFQ reproduction (src layout, numpy as the only dep).

Kept as a plain ``setup.py`` so editable installs work in offline
environments that lack the ``wheel`` package (``python setup.py develop``
as a fallback for ``pip install -e .``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).resolve().parent


def _version() -> str:
    text = (_HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-xsfq",
    version=_version(),
    description=(
        "Reproduction of 'Synthesis of Resource-Efficient Superconducting "
        "Circuits with Clock-Free Alternating Logic' (DAC 2024)"
    ),
    long_description=(_HERE / "README.md").read_text(encoding="utf-8")
    if (_HERE / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    # numpy backs the word-parallel AIG sweep and the SoA pulse kernel
    # (repro.aig.simulate / repro.sim.pulse.soa).  The scalar kernels keep
    # working without it — see repro._compat.load_numpy for the fallback.
    install_requires=["numpy>=1.21"],
    entry_points={
        "console_scripts": [
            "repro=repro.eval.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
        "License :: OSI Approved :: MIT License",
    ],
)
