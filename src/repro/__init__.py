"""Reproduction of "Synthesis of Resource-Efficient Superconducting Circuits
with Clock-Free Alternating Logic" (DAC 2024).

The package is organised as a synthesis framework:

* :mod:`repro.netlist` — gate-level networks and file formats;
* :mod:`repro.rtl` — a small RTL eDSL front end;
* :mod:`repro.aig` — AND-Inverter graph optimisation (the "ABC" substrate);
* :mod:`repro.core` — the paper's contribution: the xSFQ cell library,
  dual-rail mapping, polarity optimisation and the sequential methodology;
* :mod:`repro.baselines` — conventional clocked RSFQ flows (PBMap/qSeq-like);
* :mod:`repro.sim` — pulse-level and analog (RCSJ) simulators;
* :mod:`repro.verify` — pulse-accurate equivalence verification: batched
  stimulus suites, the ``verify`` flow stage and catalog-wide campaigns;
* :mod:`repro.circuits` — benchmark circuit generators;
* :mod:`repro.gen` — seeded random-circuit families and differential
  fuzzing campaigns (``repro fuzz``) judged by the verification oracle;
* :mod:`repro.cov` — structural coverage for fuzzing: deterministic
  feature extraction, coverage-steered generation, and resumable
  sharded soak runs (``repro fuzz --soak``);
* :mod:`repro.perf` — declarative benchmark harness and suites
  (``repro bench``) with schema-versioned ``BENCH_*.json`` emission and
  a baseline regression gate;
* :mod:`repro.faults` — seeded pulse-level fault injection (drop /
  duplicate / jitter / skew), robustness-margin bisection and
  per-circuit robustness reports (``repro faults``);
* :mod:`repro.eval` — parallel experiment engine reproducing the paper's
  tables and figures (also exposed as the ``repro`` command-line tool).

The names most users need are re-exported here::

    import repro

    result = repro.synthesize_xsfq(repro.build_circuit("c880"),
                                   repro.FlowOptions(effort="high"))

    # ... or compose the staged pipeline directly:
    flow = repro.Flow.default().with_options("polarity", mode="positive")
    result = flow.run(repro.build_circuit("c880"))

    report = repro.run_experiment("table4", jobs=4)
"""

__version__ = "1.10.0"

from . import schema  # noqa: E402  - registers the message-type registry

from .core import (  # noqa: E402
    Flow,
    FlowError,
    FlowOptions,
    FlowState,
    Stage,
    STAGES,
    StageCache,
    StageEvent,
    TimingObserver,
    XsfqLibrary,
    XsfqNetlist,
    XsfqSynthesisResult,
    default_library,
    flow_variant,
    flow_variant_names,
    format_waveform,
    get_stage_cache,
    register_flow_variant,
    register_stage,
    set_stage_cache,
    synthesize_xsfq,
    write_liberty,
)
from .netlist import NetworkBuilder  # noqa: E402
from .baselines import pbmap_like, qseq_like  # noqa: E402
from .circuits import CATALOG, CircuitInfo  # noqa: E402
from .circuits import build as build_circuit  # noqa: E402
from .circuits import info as circuit_info  # noqa: E402
from .circuits import names as circuit_names  # noqa: E402
from .sim.pulse import (  # noqa: E402
    BatchedNetlistSimulator,
    simulate_combinational,
    simulate_sequential,
)
from .gen import (  # noqa: E402
    FAMILIES,
    FuzzCampaign,
    FuzzReport,
    GenSpec,
    generate_specs,
    shrink_network,
)
from .cov import (  # noqa: E402
    CoverageMap,
    SoakCampaign,
    SoakState,
    feature_universe,
    merge_states,
    render_coverage_report,
    run_soak,
    steered_specs,
    unit_features,
)
from .perf import (  # noqa: E402
    BenchReport,
    BenchResult,
    BenchSpec,
    compare_reports,
    load_bench,
    render_comparison,
    render_results_table,
    run_suite,
    suite_names,
    suite_specs,
)
from .verify import (  # noqa: E402  - also registers the 'verify' stage
    StimulusSuite,
    VerificationSpec,
    VerificationVerdict,
    stimulus_suite,
    verify_result,
)
from .faults import (  # noqa: E402
    FaultCampaign,
    FaultModel,
    FaultReport,
    FaultScenario,
    FaultSpec,
    fault_kind_names,
    parse_fault_name,
)
from .eval import (  # noqa: E402
    EXPERIMENTS,
    ExperimentResult,
    ExperimentSpec,
    ResultCache,
    Runner,
    RunReport,
    SynthesisEngine,
    SynthesisJob,
    run_experiment,
)

__all__ = [
    "__version__",
    # Synthesis flow
    "synthesize_xsfq",
    "FlowOptions",
    "XsfqSynthesisResult",
    # Staged pass manager
    "Flow",
    "FlowError",
    "FlowState",
    "Stage",
    "STAGES",
    "StageCache",
    "StageEvent",
    "TimingObserver",
    "register_stage",
    "get_stage_cache",
    "set_stage_cache",
    "flow_variant",
    "flow_variant_names",
    "register_flow_variant",
    "XsfqLibrary",
    "XsfqNetlist",
    "default_library",
    "format_waveform",
    "write_liberty",
    # Networks and baselines
    "NetworkBuilder",
    "pbmap_like",
    "qseq_like",
    # Benchmark circuit registry
    "CATALOG",
    "CircuitInfo",
    "build_circuit",
    "circuit_info",
    "circuit_names",
    # Simulation
    "BatchedNetlistSimulator",
    "simulate_combinational",
    "simulate_sequential",
    # Random-circuit generation and fuzzing
    "FAMILIES",
    "GenSpec",
    "generate_specs",
    "FuzzCampaign",
    "FuzzReport",
    "shrink_network",
    # Structural coverage and soak runs
    "CoverageMap",
    "SoakCampaign",
    "SoakState",
    "feature_universe",
    "merge_states",
    "render_coverage_report",
    "run_soak",
    "steered_specs",
    "unit_features",
    # Performance harness
    "BenchSpec",
    "BenchResult",
    "BenchReport",
    "compare_reports",
    "load_bench",
    "render_comparison",
    "render_results_table",
    "run_suite",
    "suite_names",
    "suite_specs",
    # Verification
    "StimulusSuite",
    "stimulus_suite",
    "VerificationSpec",
    "VerificationVerdict",
    "verify_result",
    # Fault injection and robustness
    "FaultCampaign",
    "FaultModel",
    "FaultReport",
    "FaultScenario",
    "FaultSpec",
    "fault_kind_names",
    "parse_fault_name",
    # Experiment engine
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "ResultCache",
    "Runner",
    "RunReport",
    "SynthesisEngine",
    "SynthesisJob",
    "run_experiment",
    # Typed, versioned message layer
    "schema",
]
