"""Reproduction of "Synthesis of Resource-Efficient Superconducting Circuits
with Clock-Free Alternating Logic" (DAC 2024).

The package is organised as a synthesis framework:

* :mod:`repro.netlist` — gate-level networks and file formats;
* :mod:`repro.rtl` — a small RTL eDSL front end;
* :mod:`repro.aig` — AND-Inverter graph optimisation (the "ABC" substrate);
* :mod:`repro.core` — the paper's contribution: the xSFQ cell library,
  dual-rail mapping, polarity optimisation and the sequential methodology;
* :mod:`repro.baselines` — conventional clocked RSFQ flows (PBMap/qSeq-like);
* :mod:`repro.sim` — pulse-level and analog (RCSJ) simulators;
* :mod:`repro.circuits` — benchmark circuit generators;
* :mod:`repro.eval` — experiment harness reproducing the paper's tables and
  figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
