"""Soft third-party imports shared by the vectorized simulation kernels.

``numpy`` is a declared install requirement (``setup.py`` /
``install_requires``), but the pure-Python reference and bigint kernels
keep the package fully functional without it, so every numpy touchpoint
goes through :func:`load_numpy`:

* auto-dispatched fast paths (the word-parallel AIG sweep, the SoA pulse
  core) call ``load_numpy()`` and silently fall back to the scalar
  implementation when numpy is absent;
* explicit requests (``simulate_patterns(..., backend="numpy")``) call
  ``load_numpy(required=True)`` and get an :class:`ImportError` that
  points at the install command instead of a bare module-not-found.

Setting ``REPRO_SCALAR_KERNELS=1`` in the environment disables every
auto-dispatched numpy fast path (see :func:`scalar_kernels_forced`) —
the supported way to A/B the vectorized kernels against the scalar
cores without touching code (``docs/performance.md``).
"""

from __future__ import annotations

import os

_NUMPY_INSTALL_HINT = (
    "the vectorized simulation kernels require numpy, which is a declared "
    "dependency of this package; install it with `pip install numpy` or "
    "reinstall the package with `pip install -e .` (offline fallback: "
    "`python setup.py develop`).  The scalar kernels remain available via "
    "backend='int' / REPRO_SCALAR_KERNELS=1."
)


def load_numpy(required: bool = False):
    """Import and return numpy, or ``None`` when absent and not required.

    With ``required=True`` a missing numpy raises an :class:`ImportError`
    whose message points at the install command — the error a user sees
    when explicitly asking for the numpy backend.
    """
    try:
        import numpy
    except ImportError as exc:
        if required:
            raise ImportError(_NUMPY_INSTALL_HINT) from exc
        return None
    return numpy


def scalar_kernels_forced() -> bool:
    """True when ``REPRO_SCALAR_KERNELS=1`` disables numpy auto-dispatch.

    Read per call (not cached) so tests can flip the environment variable
    around individual subprocess runs.
    """
    return os.environ.get("REPRO_SCALAR_KERNELS", "") == "1"
