"""AND-Inverter graphs and logic optimisation (the framework's "ABC").

The paper's key enabler is that dual-rail xSFQ netlists are isomorphic to
AIGs, so standard AIG optimisation directly minimises LA/FA cell count.
This package provides the AIG data structure, the optimisation passes
(balance / rewrite / refactor / cleanup), SAT-based equivalence checking,
bit-parallel simulation, and the pipelining/retiming helpers used by the
sequential xSFQ flow.
"""

from .graph import (
    FALSE,
    TRUE,
    Aig,
    AigError,
    Latch,
    NodeType,
    lit_is_complemented,
    lit_node,
    lit_not,
    lit_regular,
    make_lit,
)
from .convert import aig_to_network, network_to_aig
from .balance import balance
from .rework import refactor, rewrite
from .scripts import (
    DEFAULT_SCRIPT,
    PASSES,
    OptimizationReport,
    optimize,
    optimize_with_report,
    register_pass,
    run_script,
)
from .simulate import (
    cone_truth_table,
    exhaustive_truth_tables,
    output_signatures,
    simulate_patterns,
    simulate_patterns_reference,
    simulate_random,
)
from .cec import CecResult, assert_equivalent, check_equivalence
from .cuts import enumerate_cuts, reconvergence_cut
from .retime import (
    cut_signals,
    insert_pipeline_registers,
    level_cut,
    max_stage_depth,
    stage_assignment,
    stage_thresholds,
)
from .sat import SatSolver

__all__ = [
    "FALSE",
    "TRUE",
    "Aig",
    "AigError",
    "Latch",
    "NodeType",
    "make_lit",
    "lit_node",
    "lit_not",
    "lit_regular",
    "lit_is_complemented",
    "network_to_aig",
    "aig_to_network",
    "balance",
    "rewrite",
    "refactor",
    "optimize",
    "optimize_with_report",
    "run_script",
    "DEFAULT_SCRIPT",
    "PASSES",
    "register_pass",
    "OptimizationReport",
    "simulate_patterns",
    "simulate_patterns_reference",
    "simulate_random",
    "exhaustive_truth_tables",
    "cone_truth_table",
    "output_signatures",
    "check_equivalence",
    "assert_equivalent",
    "CecResult",
    "enumerate_cuts",
    "reconvergence_cut",
    "insert_pipeline_registers",
    "stage_thresholds",
    "stage_assignment",
    "level_cut",
    "cut_signals",
    "max_stage_depth",
    "SatSolver",
]
