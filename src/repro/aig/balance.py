"""Depth-oriented AIG balancing (ABC's ``balance``).

The xSFQ flow needs balancing for two reasons: it reduces the logical depth
(and therefore raises the achievable clock frequency reported in the paper's
Table 5), and it often reduces node count slightly by re-sharing the operands
of long AND chains.

The algorithm mirrors ABC's: maximal multi-input AND "supergates" are
collected by traversing non-complemented AND fanins that are not shared with
other parts of the circuit, and each supergate is rebuilt as a
minimum-height tree by repeatedly combining the two operands of lowest
level (Huffman-style).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .graph import FALSE, Aig, lit_is_complemented, lit_node, lit_not, make_lit


def _collect_supergate(aig: Aig, node: int, fanout_counts: List[int]) -> List[int]:
    """Collect the fanin literals of the maximal AND tree rooted at ``node``.

    Traversal descends through fanins that point to AND nodes via
    non-complemented edges and that have no other fanouts (so sharing is not
    destroyed).  Duplicate literals are dropped (idempotence);
    contradictory literals collapse the supergate to constant false,
    signalled by returning ``[FALSE]``.
    """
    operands: List[int] = []
    seen = set()
    stack = [make_lit(node)]
    while stack:
        lit = stack.pop()
        child = lit_node(lit)
        expandable = (
            not lit_is_complemented(lit)
            and aig.is_and(child)
            and (child == node or fanout_counts[child] <= 1)
        )
        if expandable:
            stack.append(aig.fanin0(child))
            stack.append(aig.fanin1(child))
        else:
            if lit_not(lit) in seen:
                return [FALSE]
            if lit not in seen:
                seen.add(lit)
                operands.append(lit)
    return operands


def balance(aig: Aig) -> Aig:
    """Return a functionally equivalent AIG with (near-)minimum tree depth.

    Every maximal AND supergate is rebuilt bottom-up, combining the two
    operands with the smallest levels first so the resulting tree is as
    shallow as possible.
    """
    fanout_counts = aig.fanout_counts()
    dest = Aig(aig.name)
    lit_map: Dict[int, int] = {FALSE: FALSE}
    level: Dict[int, int] = {FALSE: 0}

    for node, name in zip(aig.pi_nodes, aig.pi_names):
        new_lit = dest.add_pi(name)
        lit_map[make_lit(node)] = new_lit
        level[new_lit & ~1] = 0
    latch_out_map: Dict[int, int] = {}
    for latch in aig.latches:
        new_lit = dest.add_latch(latch.name, latch.init)
        lit_map[make_lit(latch.node)] = new_lit
        latch_out_map[latch.node] = new_lit
        level[new_lit & ~1] = 0

    def mapped(lit: int) -> int:
        out = lit_map[lit & ~1]
        return lit_not(out) if lit_is_complemented(lit) else out

    def new_level(lit: int) -> int:
        return level.get(lit & ~1, 0)

    # Mark supergate roots: every AND node referenced through a complemented
    # edge, referenced by a PO/latch, or with fanout > 1 must be materialised.
    root_nodes: List[int] = []
    is_root = [False] * aig.num_nodes
    for node in aig.and_nodes():
        for lit in aig.fanins(node):
            child = lit_node(lit)
            if aig.is_and(child) and (lit_is_complemented(lit) or fanout_counts[child] > 1):
                is_root[child] = True
    for lit in aig.combinational_roots():
        if aig.is_and(lit_node(lit)):
            is_root[lit_node(lit)] = True

    def build_supergate(node: int) -> int:
        operands = _collect_supergate(aig, node, fanout_counts)
        if operands == [FALSE]:
            return FALSE
        mapped_ops = [mapped(lit) for lit in operands]
        if not mapped_ops:
            return lit_not(FALSE)
        heap: List[Tuple[int, int, int]] = []
        for i, lit in enumerate(mapped_ops):
            heapq.heappush(heap, (new_level(lit), i, lit))
        counter = len(mapped_ops)
        while len(heap) > 1:
            lv0, _, a = heapq.heappop(heap)
            lv1, _, b = heapq.heappop(heap)
            combined = dest.add_and(a, b)
            level[combined & ~1] = max(lv0, lv1) + 1
            counter += 1
            heapq.heappush(heap, (level[combined & ~1], counter, combined))
        return heap[0][2]

    for node in aig.and_nodes():
        if not is_root[node]:
            continue
        # Operands must already be mapped: every operand of the supergate is a
        # PI/latch/constant or an AND node marked as a root with a smaller id.
        lit_map[make_lit(node)] = build_supergate(node)

    # Any root literal pointing at a non-root AND node (possible when that
    # node's only fanout is the PO itself) still needs materialisation.
    for lit in aig.combinational_roots():
        node = lit_node(lit)
        if aig.is_and(node) and make_lit(node) not in lit_map:
            lit_map[make_lit(node)] = build_supergate(node)

    for name, lit in zip(aig.po_names, aig.po_lits):
        dest.add_po(mapped(lit), name)
    for latch in aig.latches:
        dest.set_latch_next(latch_out_map[latch.node], mapped(latch.next_lit))
    return dest
