"""Combinational equivalence checking (CEC) of AIGs.

Every optimisation pass in this framework is verified the way ABC's ``cec``
command verifies synthesis results: the two networks are combined into a
miter and a SAT solver proves that no input assignment can make any output
pair differ.  Random bit-parallel simulation is used first as a cheap
counterexample filter.

For sequential AIGs the latches of the two designs are matched by name and
treated as free inputs (combinational equivalence of the next-state and
output functions), which is exactly the guarantee needed by the xSFQ
sequential flow (latch count and initialisation are handled separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .graph import Aig, AigError, lit_is_complemented, lit_node
from .simulate import lit_values, simulate_patterns
from .sat import SatSolver


@dataclass
class CecResult:
    """Outcome of an equivalence check.

    Attributes:
        equivalent: True when all output pairs were proved equal.
        counterexample: Input assignment (by PI name) distinguishing the
            designs, when one was found.
        failing_output: Name of the first differing output, when applicable.
        method: "simulation", "sat", or "trivial".
    """

    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None
    failing_output: Optional[str] = None
    method: str = "sat"


class _TseitinEncoder:
    """Encode the combinational logic of an AIG into CNF."""

    def __init__(self, solver: SatSolver) -> None:
        self.solver = solver

    def encode(self, aig: Aig, input_vars: Dict[str, int]) -> Dict[int, int]:
        """Encode ``aig``; returns a map from node id to solver variable.

        ``input_vars`` maps PI/latch names to already-allocated solver
        variables, so two designs can share their inputs.
        """
        node_var: Dict[int, int] = {}
        const_var = self.solver.new_var()
        self.solver.add_clause([-const_var])  # node 0 is constant false
        node_var[0] = const_var
        for node, name in zip(aig.pi_nodes, aig.pi_names):
            node_var[node] = input_vars[name]
        for latch in aig.latches:
            node_var[latch.node] = input_vars[latch.name]
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            a = self._lit_var(node_var, f0)
            b = self._lit_var(node_var, f1)
            out = self.solver.new_var()
            node_var[node] = out
            # out <-> a & b
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])
        return node_var

    @staticmethod
    def _lit_var(node_var: Dict[int, int], lit: int) -> int:
        var = node_var[lit_node(lit)]
        return -var if lit_is_complemented(lit) else var

    def output_literal(self, node_var: Dict[int, int], lit: int) -> int:
        return self._lit_var(node_var, lit)


def _collect_roots(aig: Aig) -> List[Tuple[str, int]]:
    """Output roots to compare: POs plus latch next-state functions."""
    roots = list(zip(aig.po_names, aig.po_lits))
    for latch in aig.latches:
        roots.append((f"{latch.name}$next", latch.next_lit))
    return roots


def _simulation_counterexample(
    a: Aig, b: Aig, num_patterns: int, seed: int
) -> Optional[Tuple[str, Dict[str, int]]]:
    """Random simulation filter; returns (output name, assignment) on mismatch."""
    import random

    rng = random.Random(seed)
    input_names = a.pi_names + [l.name for l in a.latches]
    words = {name: rng.getrandbits(num_patterns) for name in input_names}

    def node_patterns(aig: Aig) -> Dict[int, int]:
        patterns: Dict[int, int] = {}
        for node, name in zip(aig.pi_nodes, aig.pi_names):
            patterns[node] = words[name]
        for latch in aig.latches:
            patterns[latch.node] = words[latch.name]
        return patterns

    values_a = simulate_patterns(a, node_patterns(a), num_patterns)
    values_b = simulate_patterns(b, node_patterns(b), num_patterns)
    roots_a = dict(_collect_roots(a))
    roots_b = dict(_collect_roots(b))
    for name, lit_a in roots_a.items():
        lit_b = roots_b[name]
        word_a = lit_values(values_a, lit_a, num_patterns)
        word_b = lit_values(values_b, lit_b, num_patterns)
        diff = word_a ^ word_b
        if diff:
            bit = (diff & -diff).bit_length() - 1
            assignment = {n: (words[n] >> bit) & 1 for n in input_names}
            return name, assignment
    return None


def check_equivalence(
    a: Aig,
    b: Aig,
    num_random_patterns: int = 256,
    seed: int = 0,
    use_sat: bool = True,
    max_conflicts: Optional[int] = None,
) -> CecResult:
    """Check combinational equivalence of two AIGs.

    The designs must have identical PI, PO and latch name sets.  Latches are
    treated as cut points (free inputs / compared next-state outputs).

    Args:
        a, b: Designs to compare.
        num_random_patterns: Width of the random-simulation filter.
        seed: Random seed for the filter.
        use_sat: When False only simulation is performed (a ``True`` result
            then means "no counterexample found", not a proof).
        max_conflicts: Optional conflict budget per output for the SAT solver.

    Returns:
        A :class:`CecResult`.
    """
    if sorted(a.pi_names) != sorted(b.pi_names):
        raise AigError("cannot compare AIGs with different primary input names")
    latch_names_a = sorted(l.name for l in a.latches)
    latch_names_b = sorted(l.name for l in b.latches)
    if latch_names_a != latch_names_b:
        raise AigError("cannot compare AIGs with different latch names")
    roots_a = _collect_roots(a)
    roots_b = dict(_collect_roots(b))
    if sorted(name for name, _ in roots_a) != sorted(roots_b):
        raise AigError("cannot compare AIGs with different output names")

    counterexample = _simulation_counterexample(a, b, num_random_patterns, seed)
    if counterexample is not None:
        name, assignment = counterexample
        return CecResult(False, assignment, name, method="simulation")
    if not use_sat:
        return CecResult(True, method="simulation")

    solver = SatSolver()
    input_vars: Dict[str, int] = {}
    for name in a.pi_names + [l.name for l in a.latches]:
        input_vars[name] = solver.new_var()
    encoder = _TseitinEncoder(solver)
    vars_a = encoder.encode(a, input_vars)
    vars_b = encoder.encode(b, input_vars)

    for name, lit_a in roots_a:
        lit_b = roots_b[name]
        sat_a = encoder.output_literal(vars_a, lit_a)
        sat_b = encoder.output_literal(vars_b, lit_b)
        # XOR output: miter is SAT iff the outputs can differ.
        miter = solver.new_var()
        solver.add_clause([-miter, sat_a, sat_b])
        solver.add_clause([-miter, -sat_a, -sat_b])
        solver.add_clause([miter, -sat_a, sat_b])
        solver.add_clause([miter, sat_a, -sat_b])
        outcome = solver.solve(assumptions=[miter], max_conflicts=max_conflicts)
        if outcome is None:
            raise AigError(f"SAT conflict budget exhausted while checking output {name!r}")
        if outcome:
            assignment = {
                pi: int(solver.model_value(var)) for pi, var in input_vars.items()
            }
            return CecResult(False, assignment, name, method="sat")
    return CecResult(True, method="sat")


def assert_equivalent(a: Aig, b: Aig, **kwargs) -> None:
    """Raise :class:`AigError` unless the two designs are equivalent."""
    result = check_equivalence(a, b, **kwargs)
    if not result.equivalent:
        raise AigError(
            f"designs are not equivalent: output {result.failing_output!r} differs "
            f"under assignment {result.counterexample}"
        )
