"""Conversions between :class:`LogicNetwork` and :class:`Aig`.

``network_to_aig`` plays the role of ABC's ``strash`` command on a freshly
read netlist: every gate of the technology-independent network is expressed
with AND nodes and complemented edges, applying structural hashing on the
fly.  ``aig_to_network`` converts back for export and inspection.
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist.network import Gate, GateType, LogicNetwork, NetworkError
from .graph import FALSE, Aig, lit_is_complemented, lit_node, lit_not, make_lit


def network_to_aig(network: LogicNetwork, name: str = "") -> Aig:
    """Convert a gate-level network into a structurally hashed AIG.

    Flip-flops become AIG latches; all combinational gate types supported by
    :class:`~repro.netlist.network.LogicNetwork` are decomposed onto AND
    nodes and complemented edges.
    """
    network.validate()
    aig = Aig(name or network.name)
    lit_of: Dict[str, int] = {}

    for pi in network.inputs:
        lit_of[pi] = aig.add_pi(pi)
    latch_lits: Dict[str, int] = {}
    for latch in network.latches:
        latch_lits[latch.name] = aig.add_latch(latch.name, latch.init)
        lit_of[latch.name] = latch_lits[latch.name]

    for signal in network.topological_order():
        gate = network.gate(signal)
        if gate.gate_type in (GateType.INPUT, GateType.DFF):
            continue
        lit_of[signal] = _gate_to_lit(aig, gate, lit_of)

    for latch in network.latches:
        aig.set_latch_next(latch_lits[latch.name], lit_of[latch.fanins[0]])
    for out in network.outputs:
        aig.add_po(lit_of[out], out)
    return aig


def _gate_to_lit(aig: Aig, gate: Gate, lit_of: Dict[str, int]) -> int:
    fanins = [lit_of[f] for f in gate.fanins]
    t = gate.gate_type
    if t is GateType.CONST0:
        return FALSE
    if t is GateType.CONST1:
        return lit_not(FALSE)
    if t is GateType.BUF:
        return fanins[0]
    if t is GateType.NOT:
        return lit_not(fanins[0])
    if t is GateType.AND:
        return aig.add_and_multi(fanins)
    if t is GateType.NAND:
        return lit_not(aig.add_and_multi(fanins))
    if t is GateType.OR:
        return aig.add_or_multi(fanins)
    if t is GateType.NOR:
        return lit_not(aig.add_or_multi(fanins))
    if t is GateType.XOR:
        lit = fanins[0]
        for nxt in fanins[1:]:
            lit = aig.add_xor(lit, nxt)
        return lit
    if t is GateType.XNOR:
        lit = fanins[0]
        for nxt in fanins[1:]:
            lit = aig.add_xor(lit, nxt)
        return lit_not(lit)
    if t is GateType.MUX:
        sel, d0, d1 = fanins
        return aig.add_mux(sel, d0, d1)
    raise NetworkError(f"cannot convert gate type {t} to AIG")


def aig_to_network(aig: Aig, name: str = "") -> LogicNetwork:
    """Convert an AIG back to a gate-level network of AND/NOT/BUF gates.

    Every AND node becomes a 2-input AND gate named ``n<id>``; complemented
    edges become NOT gates; primary outputs and latch next-state inputs are
    buffered so their names survive.
    """
    network = LogicNetwork(name or aig.name)
    signal_of: Dict[int, str] = {}

    for node, pi_name in zip(aig.pi_nodes, aig.pi_names):
        network.add_input(pi_name)
        signal_of[node] = pi_name
    for latch in aig.latches:
        signal_of[latch.node] = latch.name

    const_needed = False

    def lit_signal(lit: int) -> str:
        nonlocal const_needed
        node = lit_node(lit)
        if node == 0:
            const_needed = True
            base = "const0"
        else:
            base = signal_of[node]
        if not lit_is_complemented(lit):
            return base
        inv_name = f"{base}_bar"
        if inv_name not in network:
            network.add_gate(inv_name, GateType.NOT, [base])
        return inv_name

    # The constant node might be referenced; declare it lazily afterwards by
    # first walking the AND nodes (ids are topological).
    for node in aig.and_nodes():
        signal_of[node] = f"n{node}"
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        network.add_gate(signal_of[node], GateType.AND, [lit_signal(f0), lit_signal(f1)])

    for po_name, lit in zip(aig.po_names, aig.po_lits):
        driver = lit_signal(lit)
        out_name = po_name
        if out_name in network:
            out_name = f"{po_name}_po" if driver != po_name else po_name
        if out_name not in network:
            network.add_gate(out_name, GateType.BUF, [driver])
        network.add_output(out_name)

    for latch in aig.latches:
        network.add_latch(latch.name, lit_signal(latch.next_lit), init=latch.init)

    if const_needed and "const0" not in network:
        network.add_gate("const0", GateType.CONST0, [])
    # NOT gates over the constant reference "const0"; ensure ordering validity.
    network.validate()
    return network
