"""Cut computation on AIGs.

Two flavours of cuts are provided, mirroring the two ABC passes the paper
relies on:

* :func:`reconvergence_cut` — a single, as-large-as-possible
  reconvergence-driven cut per node, used by the refactoring pass
  (collapse the cone, resynthesise it with ISOP + factoring);
* :func:`enumerate_cuts` — bottom-up k-feasible cut enumeration with
  dominance pruning, used by the rewriting pass (small cuts, cached
  resyntheses).

Also included are the cone / MFFC (maximum fanout-free cone) helpers needed
to estimate the gain of replacing a cone with a resynthesised version.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .graph import Aig, NodeType, lit_node


def reconvergence_cut(aig: Aig, node: int, max_leaves: int = 10) -> List[int]:
    """Compute a reconvergence-driven cut of up to ``max_leaves`` leaves.

    Starting from the node itself, leaves that are AND nodes are repeatedly
    expanded into their fanins, preferring expansions that do not increase
    the leaf count (i.e. where fanins are already leaves or shared), until
    no expansion fits within ``max_leaves``.

    Returns the sorted list of leaf node ids.
    """
    leaves: Set[int] = {node}
    while True:
        best_leaf = None
        best_cost = None
        for leaf in leaves:
            if not aig.is_and(leaf):
                continue
            f0, f1 = aig.fanins(leaf)
            fanin_nodes = {lit_node(f0), lit_node(f1)}
            new_leaves = len(fanin_nodes - leaves)
            cost = new_leaves - 1  # removing the expanded leaf itself
            if len(leaves) + cost > max_leaves:
                continue
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_leaf = leaf
                if cost <= 0:
                    break
        if best_leaf is None:
            break
        f0, f1 = aig.fanins(best_leaf)
        leaves.discard(best_leaf)
        leaves.add(lit_node(f0))
        leaves.add(lit_node(f1))
    return sorted(leaves)


def cone_nodes(aig: Aig, root: int, leaves: Sequence[int]) -> List[int]:
    """AND nodes strictly inside the cone between ``root`` and ``leaves`` (root included)."""
    types = aig._type
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    and_type = NodeType.AND
    leaf_set = set(leaves)
    cone: Set[int] = set()
    stack = [root]
    while stack:
        current = stack.pop()
        if current in cone or current in leaf_set:
            continue
        if types[current] is not and_type:
            continue
        cone.add(current)
        stack.append(fanin0[current] >> 1)
        stack.append(fanin1[current] >> 1)
    return sorted(cone)


def mffc_size(aig: Aig, root: int, leaves: Sequence[int], fanout_counts: Sequence[int]) -> int:
    """Number of cone nodes freed when the cone of ``root`` is replaced.

    A cone node (other than the root) is counted only when *all* of its
    fanouts lie inside the counted set — i.e. it belongs to the maximum
    fanout-free cone of the root restricted to the cut.
    """
    cone = cone_nodes(aig, root, leaves)
    # Build fanout counts and consumer lists restricted to the cone in one
    # pass (the consumer rescan per node made this quadratic in cone size).
    inside_fanouts: Dict[int, int] = {n: 0 for n in cone}
    consumers: Dict[int, List[int]] = {n: [] for n in cone}
    for n in cone:
        f0, f1 = aig.fanins(n)
        for fanin in {lit_node(f0), lit_node(f1)}:
            if fanin in inside_fanouts:
                inside_fanouts[fanin] += 1
                consumers[fanin].append(n)
    freed = {root}
    # Process in reverse topological order (descending ids).
    for n in sorted(cone, reverse=True):
        if n == root:
            continue
        if fanout_counts[n] == inside_fanouts[n]:
            # All fanouts are inside the cone; freed only if all consumers
            # (which have larger ids and are already decided) are freed.
            if all(m in freed for m in consumers[n]):
                freed.add(n)
    return len(freed)


def enumerate_cuts(
    aig: Aig, k: int = 4, max_cuts_per_node: int = 8
) -> Dict[int, List[FrozenSet[int]]]:
    """Bottom-up enumeration of k-feasible cuts for every node.

    Every node receives its trivial cut ``{node}`` plus up to
    ``max_cuts_per_node`` merged cuts of its fanins, with dominated cuts
    (supersets of other cuts) removed.  PIs, latches and the constant node
    only have their trivial cut.
    """
    cuts: Dict[int, List[FrozenSet[int]]] = {}
    for node in aig.nodes():
        if not aig.is_and(node):
            cuts[node] = [frozenset({node})]
            continue
        f0, f1 = aig.fanins(node)
        n0, n1 = lit_node(f0), lit_node(f1)
        merged: List[FrozenSet[int]] = []
        seen: Set[FrozenSet[int]] = set()
        for c0 in cuts[n0]:
            for c1 in cuts[n1]:
                cut = c0 | c1
                if len(cut) > k or cut in seen:
                    continue
                seen.add(cut)
                merged.append(cut)
        # Dominance pruning: drop any cut that is a superset of another.
        merged.sort(key=len)
        pruned: List[FrozenSet[int]] = []
        for cut in merged:
            if not any(other < cut for other in pruned):
                pruned.append(cut)
        pruned = pruned[:max_cuts_per_node]
        pruned.append(frozenset({node}))
        cuts[node] = pruned
    return cuts
