"""AND-Inverter Graphs (AIGs) with structural hashing.

The paper's central observation (Section 3.1.3) is that a dual-rail xSFQ
circuit built from LA-FA cell pairs is *isomorphic* to an AND-Inverter graph:
each AIG node corresponds to one LA/FA pair and each complemented edge to a
"twist" of the dual-rail wires.  Minimising AIG nodes therefore directly
minimises LA/FA cells, which is why the paper can use off-the-shelf ABC.

This module implements the AIG data structure itself — the substrate on which
the optimisation passes in :mod:`repro.aig.balance`, :mod:`repro.aig.rewrite`,
:mod:`repro.aig.refactor` and :mod:`repro.aig.retime` operate.  Literals are
encoded as ``2 * node_id + complement`` exactly as in ABC/AIGER; node 0 is
the constant-false node, so literal ``0`` is constant false and literal ``1``
constant true.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Literal helpers
# ---------------------------------------------------------------------------

FALSE = 0
TRUE = 1


def make_lit(node: int, complement: bool = False) -> int:
    """Build a literal from a node id and a complement flag."""
    return (node << 1) | int(bool(complement))


def lit_node(lit: int) -> int:
    """Node id referenced by a literal."""
    return lit >> 1


def lit_is_complemented(lit: int) -> bool:
    """True when the literal carries an inversion."""
    return bool(lit & 1)


def lit_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


def lit_regular(lit: int) -> int:
    """Strip the complement bit from a literal."""
    return lit & ~1


class NodeType(enum.Enum):
    """Kind of an AIG node."""

    CONST = "const"
    PI = "pi"
    LATCH = "latch"
    AND = "and"


class AigError(Exception):
    """Raised for invalid AIG operations."""


@dataclass
class Latch:
    """Sequential element of an AIG.

    Attributes:
        node: Node id of the latch output (used combinationally like a PI).
        name: Latch name (usually the present-state signal name).
        next_lit: Literal of the next-state function (``None`` until set).
        init: Initial value of the latch, 0 or 1.
    """

    node: int
    name: str
    next_lit: Optional[int] = None
    init: int = 0


class Aig:
    """AND-Inverter graph with structural hashing and constant propagation.

    Node ids are assigned in creation order; because an AND node can only be
    created after its fanins exist, iterating ids in increasing order is a
    valid topological order.  All optimisation passes construct fresh AIGs,
    preserving this invariant.
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._type: List[NodeType] = [NodeType.CONST]
        self._fanin0: List[int] = [FALSE]
        self._fanin1: List[int] = [FALSE]
        self.pi_nodes: List[int] = []
        self.pi_names: List[str] = []
        self.po_names: List[str] = []
        self.po_lits: List[int] = []
        self.latches: List[Latch] = []
        self._latch_by_node: Dict[int, Latch] = {}
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Structure creation
    # ------------------------------------------------------------------
    def _new_node(self, node_type: NodeType, f0: int = FALSE, f1: int = FALSE) -> int:
        self._type.append(node_type)
        self._fanin0.append(f0)
        self._fanin1.append(f1)
        return len(self._type) - 1

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (non-complemented) literal."""
        node = self._new_node(NodeType.PI)
        self.pi_nodes.append(node)
        self.pi_names.append(name if name is not None else f"pi{len(self.pi_nodes)}")
        return make_lit(node)

    def add_latch(self, name: Optional[str] = None, init: int = 0) -> int:
        """Create a latch (sequential element) and return its output literal.

        The next-state function must be assigned later with
        :meth:`set_latch_next`.
        """
        node = self._new_node(NodeType.LATCH)
        latch = Latch(node, name if name is not None else f"latch{len(self.latches)}", None, init)
        self.latches.append(latch)
        self._latch_by_node[node] = latch
        return make_lit(node)

    def set_latch_next(self, latch_lit: int, next_lit: int) -> None:
        """Assign the next-state literal of the latch referenced by ``latch_lit``."""
        node = lit_node(latch_lit)
        if node not in self._latch_by_node:
            raise AigError(f"node {node} is not a latch")
        if lit_is_complemented(latch_lit):
            raise AigError("latch output literal must not be complemented here")
        self._latch_by_node[node].next_lit = next_lit

    def add_po(self, lit: int, name: Optional[str] = None) -> int:
        """Register ``lit`` as a primary output; returns the output index."""
        self.po_lits.append(lit)
        self.po_names.append(name if name is not None else f"po{len(self.po_lits)}")
        return len(self.po_lits) - 1

    def add_and(self, a: int, b: int) -> int:
        """Return the literal of ``a AND b``, reusing existing structure.

        Applies the standard trivial simplifications (constants, idempotence,
        complementation) and structural hashing.
        """
        # Constant and trivial cases.
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return make_lit(existing)
        node = self._new_node(NodeType.AND, a, b)
        self._strash[key] = node
        return make_lit(node)

    # Derived operators -------------------------------------------------
    def add_or(self, a: int, b: int) -> int:
        """Literal of ``a OR b``."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_nand(self, a: int, b: int) -> int:
        """Literal of ``NOT (a AND b)``."""
        return lit_not(self.add_and(a, b))

    def add_nor(self, a: int, b: int) -> int:
        """Literal of ``NOT (a OR b)``."""
        return self.add_and(lit_not(a), lit_not(b))

    def add_xor(self, a: int, b: int) -> int:
        """Literal of ``a XOR b`` (two-level AND/OR construction)."""
        return self.add_or(self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b))

    def add_xnor(self, a: int, b: int) -> int:
        """Literal of ``NOT (a XOR b)``."""
        return lit_not(self.add_xor(a, b))

    def add_mux(self, sel: int, d0: int, d1: int) -> int:
        """Literal of ``sel ? d1 : d0``."""
        return self.add_or(self.add_and(sel, d1), self.add_and(lit_not(sel), d0))

    def add_and_multi(self, lits: Sequence[int]) -> int:
        """Conjunction of an arbitrary number of literals (balanced tree)."""
        lits = list(lits)
        if not lits:
            return TRUE
        while len(lits) > 1:
            nxt = [self.add_and(lits[i], lits[i + 1]) for i in range(0, len(lits) - 1, 2)]
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def add_or_multi(self, lits: Sequence[int]) -> int:
        """Disjunction of an arbitrary number of literals (balanced tree)."""
        return lit_not(self.add_and_multi([lit_not(l) for l in lits]))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_type(self, node: int) -> NodeType:
        return self._type[node]

    def is_and(self, node: int) -> bool:
        return self._type[node] is NodeType.AND

    def is_pi(self, node: int) -> bool:
        return self._type[node] is NodeType.PI

    def is_latch(self, node: int) -> bool:
        return self._type[node] is NodeType.LATCH

    def is_const(self, node: int) -> bool:
        return node == 0

    def fanin0(self, node: int) -> int:
        """First fanin literal of an AND node."""
        return self._fanin0[node]

    def fanin1(self, node: int) -> int:
        """Second fanin literal of an AND node."""
        return self._fanin1[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        return self._fanin0[node], self._fanin1[node]

    def latch_of(self, node: int) -> Latch:
        return self._latch_by_node[node]

    @property
    def num_nodes(self) -> int:
        """Total number of nodes, including the constant node."""
        return len(self._type)

    @property
    def num_ands(self) -> int:
        """Number of AND nodes (the paper's "AIG node" count)."""
        return sum(1 for t in self._type if t is NodeType.AND)

    @property
    def num_pis(self) -> int:
        return len(self.pi_nodes)

    @property
    def num_pos(self) -> int:
        return len(self.po_lits)

    @property
    def num_latches(self) -> int:
        return len(self.latches)

    def is_combinational(self) -> bool:
        return not self.latches

    def nodes(self) -> Iterator[int]:
        """Iterate all node ids in topological order (including const/PIs/latches)."""
        return iter(range(self.num_nodes))

    def and_nodes(self) -> Iterator[int]:
        """Iterate AND node ids in topological order."""
        return (n for n in range(self.num_nodes) if self._type[n] is NodeType.AND)

    def combinational_roots(self) -> List[int]:
        """Literals that must be preserved: POs and latch next-state functions."""
        roots = list(self.po_lits)
        for latch in self.latches:
            if latch.next_lit is None:
                raise AigError(f"latch {latch.name!r} has no next-state function")
            roots.append(latch.next_lit)
        return roots

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def fanout_counts(self) -> List[int]:
        """Number of combinational fanouts of every node (POs/latch-nexts included)."""
        counts = [0] * self.num_nodes
        for node in self.and_nodes():
            counts[lit_node(self._fanin0[node])] += 1
            counts[lit_node(self._fanin1[node])] += 1
        for lit in self.combinational_roots():
            counts[lit_node(lit)] += 1
        return counts

    def levels(self) -> List[int]:
        """Logic level of every node (PIs, latches and the constant are level 0)."""
        level = [0] * self.num_nodes
        for node in self.and_nodes():
            level[node] = 1 + max(level[lit_node(self._fanin0[node])], level[lit_node(self._fanin1[node])])
        return level

    def depth(self) -> int:
        """Maximum logic level over all combinational roots."""
        level = self.levels()
        roots = self.combinational_roots() if (self.po_lits or self.latches) else []
        if not roots:
            return 0
        return max(level[lit_node(lit)] for lit in roots)

    def reachable_nodes(self) -> List[bool]:
        """Mark nodes reachable (in the transitive fanin sense) from the roots."""
        marked = [False] * self.num_nodes
        marked[0] = True
        stack = [lit_node(lit) for lit in self.combinational_roots()]
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = True
            if self.is_and(node):
                stack.append(lit_node(self._fanin0[node]))
                stack.append(lit_node(self._fanin1[node]))
        for pi in self.pi_nodes:
            marked[pi] = True
        for latch in self.latches:
            marked[latch.node] = True
        return marked

    def num_dangling(self) -> int:
        """Number of AND nodes not reachable from any root."""
        marked = self.reachable_nodes()
        return sum(1 for node in self.and_nodes() if not marked[node])

    def stats(self) -> Dict[str, int]:
        """Summary statistics: pis, pos, latches, ands, depth."""
        return {
            "pis": self.num_pis,
            "pos": self.num_pos,
            "latches": self.num_latches,
            "ands": self.num_ands,
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<Aig {self.name!r}: {s['pis']} PI, {s['pos']} PO, {s['latches']} latch, "
            f"{s['ands']} AND, depth {s['depth']}>"
        )

    # ------------------------------------------------------------------
    # Copying / cleanup
    # ------------------------------------------------------------------
    def copy_dag_into(
        self,
        dest: "Aig",
        lit_map: Dict[int, int],
        roots: Iterable[int],
    ) -> None:
        """Copy the transitive fanin of ``roots`` into ``dest``.

        ``lit_map`` maps *literals of this AIG* to literals of ``dest``;
        it must already contain entries for the constant, all PIs and all
        latch outputs that the roots depend on.  New entries for internal
        nodes are added as they are copied.
        """

        def copy_lit(lit: int) -> int:
            reg = lit_regular(lit)
            if reg in lit_map:
                out = lit_map[reg]
                return lit_not(out) if lit_is_complemented(lit) else out
            node = lit_node(lit)
            if not self.is_and(node):
                raise AigError(f"literal {lit} has no mapping and is not an AND node")
            f0 = copy_lit(self._fanin0[node])
            f1 = copy_lit(self._fanin1[node])
            out = dest.add_and(f0, f1)
            lit_map[reg] = out
            return lit_not(out) if lit_is_complemented(lit) else out

        # Iterative pre-pass to avoid deep recursion on large circuits.
        for root in roots:
            stack = [lit_node(root)]
            post: List[int] = []
            seen = set()
            while stack:
                node = stack.pop()
                if node in seen or make_lit(node) in lit_map or not self.is_and(node):
                    continue
                seen.add(node)
                post.append(node)
                stack.append(lit_node(self._fanin0[node]))
                stack.append(lit_node(self._fanin1[node]))
            for node in sorted(post):
                if make_lit(node) not in lit_map:
                    f0 = copy_lit(self._fanin0[node])
                    f1 = copy_lit(self._fanin1[node])
                    lit_map[make_lit(node)] = dest.add_and(f0, f1)
            copy_lit(root)

    def cleanup(self) -> "Aig":
        """Return a copy without dangling AND nodes (ABC's ``sweep``/``cleanup``)."""
        dest = Aig(self.name)
        lit_map: Dict[int, int] = {FALSE: FALSE}
        for node, name in zip(self.pi_nodes, self.pi_names):
            lit_map[make_lit(node)] = dest.add_pi(name)
        latch_out_map: Dict[int, int] = {}
        for latch in self.latches:
            new_lit = dest.add_latch(latch.name, latch.init)
            lit_map[make_lit(latch.node)] = new_lit
            latch_out_map[latch.node] = new_lit
        self.copy_dag_into(dest, lit_map, self.combinational_roots())

        def mapped(lit: int) -> int:
            out = lit_map[lit_regular(lit)]
            return lit_not(out) if lit_is_complemented(lit) else out

        for name, lit in zip(self.po_names, self.po_lits):
            dest.add_po(mapped(lit), name)
        for latch in self.latches:
            dest.set_latch_next(latch_out_map[latch.node], mapped(latch.next_lit))
        return dest

    def copy(self) -> "Aig":
        """Deep copy (identical structure, including dangling nodes)."""
        dup = Aig(self.name)
        dup._type = list(self._type)
        dup._fanin0 = list(self._fanin0)
        dup._fanin1 = list(self._fanin1)
        dup.pi_nodes = list(self.pi_nodes)
        dup.pi_names = list(self.pi_names)
        dup.po_names = list(self.po_names)
        dup.po_lits = list(self.po_lits)
        dup.latches = [Latch(l.node, l.name, l.next_lit, l.init) for l in self.latches]
        dup._latch_by_node = {l.node: l for l in dup.latches}
        dup._strash = dict(self._strash)
        return dup
