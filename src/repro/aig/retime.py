"""Pipelining and register placement on AIGs.

The paper uses ABC's retiming for two purposes:

* **Table 5** — pipelining the (combinational) c6288 multiplier: register
  ranks are inserted across the logic so the critical path between
  synchronisation barriers shrinks.  :func:`insert_pipeline_registers`
  implements this by cutting the AIG at depth-balanced level boundaries
  (which is the fixed point ABC's min-period retiming reaches when registers
  start at the outputs).
* **Section 3.2 / Table 6** — splitting each DROC pair of a logical xSFQ
  flip-flop and pushing the second DROC forward into the combinational
  logic so the two synchronous phases have balanced depth.  The helpers
  :func:`level_cut` and :func:`cut_signals` compute the balanced cut used by
  :mod:`repro.core.sequential` to place that second rank.

Both operations are plain graph restructurings that preserve the
combinational functions between register boundaries; the test-suite checks
the resulting sequential behaviour cycle-by-cycle against the reference
network.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .graph import FALSE, Aig, lit_is_complemented, lit_node, lit_not, make_lit


def stage_thresholds(depth: int, num_ranks: int) -> List[int]:
    """Level thresholds that split ``depth`` levels into ``num_ranks + 1`` balanced regions.

    A node at level L belongs to stage ``sum(L > t for t in thresholds)``.
    """
    if num_ranks <= 0:
        return []
    return [round(depth * (i + 1) / (num_ranks + 1)) for i in range(num_ranks)]


def stage_assignment(aig: Aig, thresholds: Sequence[int]) -> Dict[int, int]:
    """Assign every node to a pipeline stage based on its logic level."""
    levels = aig.levels()
    stages: Dict[int, int] = {}
    for node in aig.nodes():
        level = levels[node]
        stages[node] = sum(1 for t in thresholds if level > t)
    return stages


def level_cut(aig: Aig, fraction: float = 0.5) -> int:
    """Level threshold that splits the combinational depth at ``fraction``."""
    return round(aig.depth() * fraction)


def cut_signals(aig: Aig, threshold: int) -> List[int]:
    """Nodes whose output crosses the level cut at ``threshold``.

    A node crosses the cut when its own level is <= ``threshold`` and it has
    at least one fanout (AND node, PO or latch-next) with level > ``threshold``
    — these are the signals on which pipeline registers must be placed.
    """
    levels = aig.levels()
    crossing = set()
    for node in aig.and_nodes():
        if levels[node] <= threshold:
            continue
        for lit in aig.fanins(node):
            fanin = lit_node(lit)
            if levels[fanin] <= threshold:
                crossing.add(fanin)
    for lit in aig.combinational_roots():
        fanin = lit_node(lit)
        if levels[fanin] <= threshold and threshold < aig.depth():
            crossing.add(fanin)
    return sorted(crossing)


def insert_pipeline_registers(aig: Aig, num_ranks: int, name_prefix: str = "pipe") -> Aig:
    """Insert ``num_ranks`` ranks of registers at depth-balanced cuts.

    The input must be a combinational AIG; the result is a sequential AIG in
    which every PI-to-PO path passes through exactly ``num_ranks`` latches,
    i.e. the circuit computes the same function with a latency of
    ``num_ranks`` cycles.

    Registers are shared: a signal needed by several later stages gets one
    register chain, not one per consumer.
    """
    if aig.latches:
        raise ValueError("insert_pipeline_registers expects a combinational AIG")
    if num_ranks <= 0:
        return aig.cleanup()

    thresholds = stage_thresholds(aig.depth(), num_ranks)
    stages = stage_assignment(aig, thresholds)
    last_stage = num_ranks

    dest = Aig(aig.name)
    lit_map: Dict[int, int] = {FALSE: FALSE}
    for node, name in zip(aig.pi_nodes, aig.pi_names):
        lit_map[make_lit(node)] = dest.add_pi(name)

    # delayed[(node, k)] = literal of the node value delayed by k cycles.
    delayed: Dict[Tuple[int, int], int] = {}
    latch_counter = [0]

    def delayed_lit(node: int, delay: int) -> int:
        """Literal for ``node`` delayed by ``delay`` register ranks."""
        base = lit_map[make_lit(node)]
        if delay <= 0:
            return base
        key = (node, delay)
        if key in delayed:
            return delayed[key]
        prev = delayed_lit(node, delay - 1)
        latch_counter[0] += 1
        # The register boundary (rank) this latch sits on is encoded in its
        # name so downstream mapping (repro.core.pipeline) can recover it.
        boundary = stages[node] + delay
        latch_lit = dest.add_latch(
            f"{name_prefix}_b{boundary}_n{node}_d{delay}", init=0
        )
        dest.set_latch_next(latch_lit, prev)
        delayed[key] = latch_lit
        return latch_lit

    def fanin_value(lit: int, consumer_stage: int) -> int:
        node = lit_node(lit)
        source_stage = stages.get(node, 0)
        value = delayed_lit(node, consumer_stage - source_stage)
        return lit_not(value) if lit_is_complemented(lit) else value

    for node in aig.and_nodes():
        stage = stages[node]
        f0, f1 = aig.fanins(node)
        lit_map[make_lit(node)] = dest.add_and(
            fanin_value(f0, stage), fanin_value(f1, stage)
        )

    for name, lit in zip(aig.po_names, aig.po_lits):
        dest.add_po(fanin_value(lit, last_stage), name)
    return dest


def pipeline_register_ranks(aig: Aig, name_prefix: str = "pipe") -> Dict[str, int]:
    """Recover the register boundary (rank) index of every pipeline latch.

    Latches created by :func:`insert_pipeline_registers` encode their
    boundary in their name (``<prefix>_b<rank>_n<node>_d<delay>``); this
    helper parses it back.  Boundaries are numbered from 1 (closest to the
    primary inputs).
    """
    ranks: Dict[str, int] = {}
    for latch in aig.latches:
        if not latch.name.startswith(f"{name_prefix}_b"):
            continue
        try:
            rank = int(latch.name[len(name_prefix) + 2:].split("_", 1)[0])
        except ValueError:
            continue
        ranks[latch.name] = rank
    return ranks


def max_stage_depth(aig: Aig) -> int:
    """Maximum combinational depth between register/IO boundaries.

    For a combinational AIG this is simply the depth; for a sequential AIG it
    is the longest combinational path from any PI or latch output to any PO
    or latch input, i.e. the quantity that determines the circuit clock
    period.
    """
    return aig.depth()


def register_count(aig: Aig) -> int:
    """Number of latches in the AIG."""
    return aig.num_latches
