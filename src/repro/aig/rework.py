"""Area-oriented AIG resynthesis: refactoring and rewriting.

These are the framework's counterparts of ABC's ``refactor`` and ``rewrite``
commands.  Both passes work the same way:

1. choose a cut for each AND node (one large reconvergence-driven cut for
   refactoring, several small enumerated cuts for rewriting);
2. compute the truth table of the cone over the cut;
3. resynthesise the function with Minato-Morreale ISOP + algebraic
   factoring (the cheaper of the function and its complement);
4. accept the replacement when the estimated number of new AND nodes is
   smaller than the size of the maximum fanout-free cone that would be
   freed;
5. rebuild the AIG with the accepted replacements and sweep dangling nodes.

As a safety net, the rebuilt AIG is only returned when it is not larger than
the input (otherwise the input is returned unchanged), so the passes are
monotone in node count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .cuts import cone_nodes, enumerate_cuts, mffc_size, reconvergence_cut
from .graph import FALSE, Aig, lit_is_complemented, lit_node, lit_not, make_lit
from .simulate import cone_truth_table
from .sop import FactorNode, build_factor_into_aig, factored_form_cost


class _Replacement:
    """A planned cone replacement for one AND node."""

    __slots__ = ("leaves", "factor", "complemented")

    def __init__(self, leaves: Sequence[int], factor: FactorNode, complemented: bool) -> None:
        self.leaves = list(leaves)
        self.factor = factor
        self.complemented = complemented


def _rebuild_with_replacements(aig: Aig, replacements: Dict[int, _Replacement]) -> Aig:
    """Reconstruct the AIG, substituting the planned cone replacements."""
    dest = Aig(aig.name)
    lit_map: Dict[int, int] = {FALSE: FALSE}
    for node, name in zip(aig.pi_nodes, aig.pi_names):
        lit_map[make_lit(node)] = dest.add_pi(name)
    latch_out_map: Dict[int, int] = {}
    for latch in aig.latches:
        new_lit = dest.add_latch(latch.name, latch.init)
        lit_map[make_lit(latch.node)] = new_lit
        latch_out_map[latch.node] = new_lit

    def mapped(lit: int) -> int:
        out = lit_map[lit & ~1]
        return lit_not(out) if lit_is_complemented(lit) else out

    for node in aig.and_nodes():
        replacement = replacements.get(node)
        if replacement is None:
            f0, f1 = aig.fanins(node)
            lit_map[make_lit(node)] = dest.add_and(mapped(f0), mapped(f1))
            continue
        leaf_lits = [mapped(make_lit(leaf)) for leaf in replacement.leaves]
        new_lit = build_factor_into_aig(
            replacement.factor, leaf_lits, dest.add_and, lit_not, FALSE
        )
        if replacement.complemented:
            new_lit = lit_not(new_lit)
        lit_map[make_lit(node)] = new_lit

    for name, lit in zip(aig.po_names, aig.po_lits):
        dest.add_po(mapped(lit), name)
    for latch in aig.latches:
        dest.set_latch_next(latch_out_map[latch.node], mapped(latch.next_lit))
    return dest.cleanup()


def refactor(aig: Aig, max_cut: int = 10, zero_gain: bool = False) -> Aig:
    """Collapse-and-resynthesise large cones (ABC's ``refactor``).

    Args:
        aig: Input graph.
        max_cut: Maximum number of cut leaves for the collapsed cones.
        zero_gain: Accept replacements that keep the node count unchanged
            (useful to perturb the structure between passes).

    Returns:
        A functionally equivalent AIG with at most as many AND nodes.
    """
    fanout_counts = aig.fanout_counts()
    replacements: Dict[int, _Replacement] = {}
    claimed: set[int] = set()

    for node in sorted(aig.and_nodes(), reverse=True):
        if node in claimed:
            continue
        leaves = reconvergence_cut(aig, node, max_cut)
        if len(leaves) < 2 or leaves == [node]:
            continue
        cone = cone_nodes(aig, node, leaves)
        if len(cone) < 2:
            continue
        try:
            table = cone_truth_table(aig, make_lit(node), leaves)
        except ValueError:
            continue
        cost, factor, complemented = factored_form_cost(table, len(leaves))
        freed = mffc_size(aig, node, leaves, fanout_counts)
        if cost < freed or (zero_gain and cost == freed):
            replacements[node] = _Replacement(leaves, factor, complemented)
            claimed.update(cone)

    if not replacements:
        return aig
    rebuilt = _rebuild_with_replacements(aig, replacements)
    return rebuilt if rebuilt.num_ands <= aig.num_ands else aig


def rewrite(aig: Aig, cut_size: int = 4, max_cuts_per_node: int = 8, zero_gain: bool = False) -> Aig:
    """Cut-based local rewriting (ABC's ``rewrite``).

    Each node's k-feasible cuts are evaluated; the one whose resynthesised
    implementation gives the best improvement over the freed MFFC is applied.
    """
    fanout_counts = aig.fanout_counts()
    all_cuts = enumerate_cuts(aig, cut_size, max_cuts_per_node)
    replacements: Dict[int, _Replacement] = {}
    claimed: set[int] = set()

    for node in sorted(aig.and_nodes(), reverse=True):
        if node in claimed:
            continue
        best: Optional[Tuple[int, _Replacement, List[int]]] = None
        for cut in all_cuts[node]:
            leaves = sorted(cut)
            if leaves == [node] or len(leaves) < 2:
                continue
            cone = cone_nodes(aig, node, leaves)
            if not cone:
                continue
            try:
                table = cone_truth_table(aig, make_lit(node), leaves)
            except ValueError:
                continue
            # factored_form_cost is memoised process-wide (lru_cache).
            cost, factor, complemented = factored_form_cost(table, len(leaves))
            freed = mffc_size(aig, node, leaves, fanout_counts)
            gain = freed - cost
            if gain > 0 or (zero_gain and gain == 0):
                if best is None or gain > best[0]:
                    best = (gain, _Replacement(leaves, factor, complemented), cone)
        if best is not None:
            replacements[node] = best[1]
            claimed.update(best[2])

    if not replacements:
        return aig
    rebuilt = _rebuild_with_replacements(aig, replacements)
    return rebuilt if rebuilt.num_ands <= aig.num_ands else aig
