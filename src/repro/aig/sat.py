"""A compact CDCL SAT solver.

Combinational equivalence checking (:mod:`repro.aig.cec`) converts the miter
of two AIGs into CNF with the Tseitin transformation and asks this solver
whether any input assignment distinguishes them.  The solver implements the
standard conflict-driven clause-learning loop: two-literal watching,
first-UIP conflict analysis, VSIDS-style activity-based branching, phase
saving and geometric restarts.  It is intentionally dependency-free and
small, but complete — every answer is exact.

Literal encoding follows the DIMACS convention: variables are positive
integers, a negated literal is the negative integer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class SatSolver:
    """Conflict-driven clause-learning SAT solver over integer literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.assignment: Dict[int, bool] = {}
        self.level: Dict[int, int] = {}
        self.reason: Dict[int, Optional[int]] = {}
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: Dict[int, float] = {}
        self.phase: Dict[int, bool] = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        self._ok = True

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable index (1-based)."""
        self.num_vars += 1
        var = self.num_vars
        self.activity[var] = 0.0
        self.phase[var] = False
        return var

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False when the formula became trivially unsat."""
        if not self._ok:
            return False
        seen = set()
        clause: List[int] = []
        for lit in literals:
            var = abs(lit)
            if var == 0 or var > self.num_vars:
                raise ValueError(f"literal {lit} references an unallocated variable")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._value(lit)
            if value is True and self._lit_level(lit) == 0:
                return True  # already satisfied at root level
            if value is False and self._lit_level(lit) == 0:
                continue  # falsified at root level; drop the literal
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(index)
        self.watches.setdefault(clause[1], []).append(index)
        return True

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self.assignment:
            return None
        value = self.assignment[var]
        return value if lit > 0 else not value

    def _lit_level(self, lit: int) -> int:
        return self.level.get(abs(lit), 0)

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason_clause: Optional[int]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assignment[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason_clause
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns the index of a conflicting clause or None."""
        head = getattr(self, "_qhead", 0)
        while head < len(self.trail):
            lit = self.trail[head]
            head += 1
            false_lit = -lit
            watch_list = self.watches.get(false_lit, [])
            new_watch_list: List[int] = []
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                i += 1
                clause = self.clauses[clause_index]
                # Ensure the falsified literal is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause_index)
                        found = True
                        break
                if found:
                    continue
                new_watch_list.append(clause_index)
                if self._value(first) is False:
                    # Conflict: restore remaining watches and report.
                    new_watch_list.extend(watch_list[i:])
                    self.watches[false_lit] = new_watch_list
                    self._qhead = len(self.trail)
                    return clause_index
                self._enqueue(first, clause_index)
            self.watches[false_lit] = new_watch_list
        self._qhead = head
        return None

    def _bump(self, var: int) -> None:
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc
        if self.activity[var] > 1e100:
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backtrack level)."""
        learned: List[int] = []
        seen: Dict[int, bool] = {}
        counter = 0
        lit = 0
        clause = self.clauses[conflict_index]
        index = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for q in clause if lit == 0 else clause[1:] if clause[0] == lit else [c for c in clause if c != lit]:
                var = abs(q)
                if seen.get(var) or self.level.get(var, 0) == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level.get(var, 0) == current_level:
                    counter += 1
                else:
                    learned.append(q)
            # Find the next literal on the trail to resolve on.
            while index >= 0 and not seen.get(abs(self.trail[index])):
                index -= 1
            if index < 0:
                break
            lit = self.trail[index]
            var = abs(lit)
            index -= 1
            seen[var] = False
            counter -= 1
            if counter <= 0:
                learned.insert(0, -lit)
                break
            reason_index = self.reason.get(var)
            if reason_index is None:
                learned.insert(0, -lit)
                break
            clause = self.clauses[reason_index]
            lit = lit  # resolve on this literal's reason

        if len(learned) == 1:
            return learned, 0
        # Backtrack to the second-highest decision level in the clause.
        levels = sorted((self.level.get(abs(l), 0) for l in learned[1:]), reverse=True)
        return learned, levels[0] if levels else 0

    def _backtrack(self, target_level: int) -> None:
        while self._decision_level() > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                lit = self.trail.pop()
                var = abs(lit)
                self.phase[var] = self.assignment[var]
                del self.assignment[var]
                del self.level[var]
                self.reason.pop(var, None)
        self._qhead = len(self.trail)

    def _decide(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment and self.activity.get(var, 0.0) > best_activity:
                best_var = var
                best_activity = self.activity.get(var, 0.0)
        if best_var is None:
            return None
        return best_var if self.phase.get(best_var, False) else -best_var

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None) -> Optional[bool]:
        """Solve the formula.

        Returns True (satisfiable), False (unsatisfiable), or None when the
        conflict limit was exhausted.  ``assumptions`` are temporary unit
        decisions; when the formula is unsat under assumptions the return
        value is False.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        self._qhead = 0
        conflict = self._propagate()
        if conflict is not None:
            return False

        conflicts = 0
        restart_limit = 64
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    self._backtrack(0)
                    return None
                if self._decision_level() == 0:
                    return False
                learned, back_level = self._analyze(conflict)
                # If the conflict is above assumption levels we may need to
                # drop below them; treat that as UNSAT under assumptions.
                self._backtrack(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return False
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches.setdefault(learned[0], []).append(index)
                    self.watches.setdefault(learned[1], []).append(index)
                    self._enqueue(learned[0], index)
                self.var_inc /= self.var_decay
                if conflicts % restart_limit == 0:
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
                continue

            # Apply assumptions as pseudo-decisions first.
            all_assumed = True
            for lit in assumptions:
                value = self._value(lit)
                if value is True:
                    continue
                if value is False:
                    return False
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                all_assumed = False
                break
            if not all_assumed:
                continue

            decision = self._decide()
            if decision is None:
                return True
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)

    def model(self) -> Dict[int, bool]:
        """Return the satisfying assignment found by the last successful solve."""
        return dict(self.assignment)

    def model_value(self, var: int) -> bool:
        """Value of a variable in the current model (False when unassigned)."""
        return self.assignment.get(var, False)
