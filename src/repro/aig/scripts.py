"""High-level AIG optimisation scripts.

The paper runs unmodified ABC scripts on the xSFQ-bound AIGs; this module
provides the equivalent entry points for this framework's passes.  The
default script mirrors the spirit of ABC's ``compress2``:
``balance; rewrite; refactor; balance; rewrite`` iterated until the node
count stops improving (bounded by ``max_rounds``).

Every script invocation can optionally verify each intermediate result
against the original with random simulation + SAT (:mod:`repro.aig.cec`),
which the test-suite exercises on all benchmark generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .balance import balance
from .cec import assert_equivalent
from .graph import Aig
from .rework import refactor, rewrite

PassFn = Callable[[Aig], Aig]

#: Named passes available to :func:`run_script`.
#:
#: This registry is unified with the flow-stage registry of
#: :mod:`repro.core.flowgraph`: every name here is also resolvable as a
#: :class:`~repro.core.flowgraph.Stage` (applied to ``FlowState.aig``),
#: so ``Flow.from_script(["frontend", "balance", "rewrite", ...])`` mixes
#: AIG passes and flow stages freely.  Passes added later through
#: :func:`register_pass` are picked up by the stage resolver dynamically.
PASSES: Dict[str, PassFn] = {
    "balance": balance,
    "rewrite": rewrite,
    "rewrite -z": lambda aig: rewrite(aig, zero_gain=True),
    "refactor": refactor,
    "refactor -z": lambda aig: refactor(aig, zero_gain=True),
    "cleanup": lambda aig: aig.cleanup(),
}


def register_pass(name: str) -> Callable[[PassFn], PassFn]:
    """Decorator: add a named ``(Aig) -> Aig`` pass to :data:`PASSES`.

    The pass immediately becomes usable in :func:`run_script` scripts and
    (through the registry bridge) as a stage in
    :meth:`repro.core.flowgraph.Flow.from_script` compositions.
    """

    def decorator(fn: PassFn) -> PassFn:
        PASSES[name] = fn
        return fn

    return decorator

#: The default area-oriented script (an ABC ``compress2`` analogue).
DEFAULT_SCRIPT: Sequence[str] = (
    "balance",
    "rewrite",
    "refactor",
    "balance",
    "rewrite",
    "rewrite -z",
    "balance",
    "refactor -z",
    "rewrite -z",
    "balance",
)


@dataclass
class OptimizationReport:
    """Record of an optimisation run: per-pass node and depth counts."""

    script: List[str] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    history: List[Dict[str, int]] = field(default_factory=list)

    @property
    def node_reduction(self) -> float:
        """Fractional node-count reduction achieved by the script."""
        if self.nodes_before == 0:
            return 0.0
        return 1.0 - self.nodes_after / self.nodes_before


def run_script(
    aig: Aig,
    script: Sequence[str] = DEFAULT_SCRIPT,
    verify: bool = False,
    report: Optional[OptimizationReport] = None,
) -> Aig:
    """Run a named sequence of passes over ``aig`` and return the result."""
    current = aig.cleanup()
    original = aig
    for pass_name in script:
        if pass_name not in PASSES:
            raise ValueError(f"unknown optimisation pass {pass_name!r}")
        current = PASSES[pass_name](current)
        if report is not None:
            report.history.append(
                {"pass": pass_name, "ands": current.num_ands, "depth": current.depth()}
            )
        if verify:
            assert_equivalent(original, current)
    return current


def optimize(
    aig: Aig,
    effort: str = "high",
    verify: bool = False,
    max_rounds: int = 4,
) -> Aig:
    """Area-oriented optimisation of an AIG (the flow's ``abc -script`` step).

    Args:
        aig: Input graph.
        effort: ``"low"`` (one balance+rewrite round), ``"medium"`` (one full
            default script), or ``"high"`` (default script iterated until the
            AND count stops improving, at most ``max_rounds`` times).
        verify: Verify equivalence with the input after every pass.
        max_rounds: Iteration bound for ``"high"`` effort.

    Returns:
        The optimised AIG (never larger than the cleaned-up input).
    """
    if effort not in {"low", "medium", "high"}:
        raise ValueError(f"unknown effort level {effort!r}")
    current = aig.cleanup()
    if effort == "low":
        return run_script(current, ("balance", "rewrite"), verify=verify)
    if effort == "medium":
        return run_script(current, DEFAULT_SCRIPT, verify=verify)
    best = current
    for _ in range(max_rounds):
        candidate = run_script(best, DEFAULT_SCRIPT, verify=verify)
        if candidate.num_ands >= best.num_ands:
            break
        best = candidate
    return best


def optimize_with_report(aig: Aig, effort: str = "medium", verify: bool = False) -> tuple[Aig, OptimizationReport]:
    """Like :func:`optimize` but also returns an :class:`OptimizationReport`."""
    report = OptimizationReport(
        script=list(DEFAULT_SCRIPT),
        nodes_before=aig.num_ands,
        depth_before=aig.depth(),
    )
    if effort == "low":
        script: Sequence[str] = ("balance", "rewrite")
    else:
        script = DEFAULT_SCRIPT
    result = run_script(aig, script, verify=verify, report=report)
    if effort == "high":
        improved = optimize(result, effort="high", verify=verify)
        if improved.num_ands < result.num_ands:
            result = improved
    report.nodes_after = result.num_ands
    report.depth_after = result.depth()
    report.script = list(script)
    return result, report
