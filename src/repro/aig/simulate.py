"""Bit-parallel functional simulation of AIGs.

Used for three purposes in the flow:

* fast random-vector filtering before SAT-based equivalence checking
  (:mod:`repro.aig.cec`),
* exhaustive truth-table computation of whole (small) AIGs for the test
  suite, and
* truth-table computation of cut cones for the refactoring / rewriting
  passes (:mod:`repro.aig.refactor`, :mod:`repro.aig.rewrite`).

Two interchangeable kernels back :func:`simulate_patterns`:

* ``int`` — Python integers as arbitrarily wide bit vectors, one
  topological pass over the flat fanin arrays.  CPython bigint bitwise
  ops run in C over the whole word, so this is already bit-parallel and
  it wins on the narrow, deep graphs the synthesis flow produces.
* ``numpy`` — patterns packed into little-endian uint64 word blocks, the
  graph levelised once (cached on the ``Aig``) and each level evaluated
  as three array ops (gather, xor with complement masks, and).  This
  wins when levels are wide relative to the number of 64-bit words per
  pattern block; the ``auto`` dispatch applies a measured crossover so
  callers never pay numpy overhead on graphs where bigints are faster.

Both kernels are pinned bit-equal to :func:`simulate_patterns_reference`
by the differential suites in ``tests/aig/test_simulate_kernels.py`` and
``tests/perf/test_kernels.py``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .._compat import load_numpy, scalar_kernels_forced
from .graph import Aig, NodeType, lit_is_complemented, lit_node

#: Below this node count the numpy kernel is never considered: schedule
#: construction and per-level dispatch overhead dominate tiny graphs.
_NUMPY_MIN_NODES = 512
#: ``auto`` picks numpy only when the mean AND-level width clears this
#: floor and exceeds ``_NUMPY_WIDTH_PER_WORD`` per 64-bit pattern word —
#: the measured crossover against the bigint kernel on this container
#: (bigints win ~3x on width-8 graphs; numpy wins up to ~28x at width
#: 1500 with single-word blocks).
_NUMPY_MIN_WIDTH = 32.0
_NUMPY_WIDTH_PER_WORD = 8.0


class _LevelSchedule:
    """Levelised evaluation plan for the numpy kernel, cached per graph.

    Nodes are permuted level-major (non-AND nodes first, then AND levels
    in ascending depth) so each level's results scatter into a contiguous
    row slice.  Per level we precompute the gather index vector (fanin0
    rows followed by fanin1 rows) and the complement mask column (all-ones
    words where the literal is complemented).
    """

    __slots__ = ("stamp", "pos", "levels", "max_width", "avg_width")

    def __init__(self, stamp, pos, levels, max_width, avg_width) -> None:
        self.stamp = stamp
        self.pos = pos
        self.levels = levels
        self.max_width = max_width
        self.avg_width = avg_width


def _level_schedule(aig: Aig):
    """Build (or fetch the cached) :class:`_LevelSchedule` of ``aig``.

    ``Aig`` node arrays are append-only, so the node count is a valid
    cache stamp: any structural growth invalidates the plan.
    """
    np = load_numpy(required=True)
    schedule = getattr(aig, "_np_schedule", None)
    if schedule is not None and schedule.stamp == len(aig._type):
        return schedule

    types = aig._type
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    n = len(types)
    and_type = NodeType.AND
    level = [0] * n
    max_level = 0
    for node in range(n):
        if types[node] is and_type:
            depth = 1 + max(level[fanin0[node] >> 1], level[fanin1[node] >> 1])
            level[node] = depth
            if depth > max_level:
                max_level = depth

    buckets: List[List[int]] = [[] for _ in range(max_level + 1)]
    for node in range(n):
        buckets[level[node]].append(node)

    pos = [0] * n
    row = 0
    for bucket in buckets:
        for node in bucket:
            pos[node] = row
            row += 1

    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    zero = np.uint64(0)
    levels: List[Tuple[int, int, object, object]] = []
    start = len(buckets[0])
    widths: List[int] = []
    for bucket in buckets[1:]:
        k = len(bucket)
        if not k:
            continue
        idx = np.empty(2 * k, dtype=np.intp)
        cmask = np.empty(2 * k, dtype="<u8")
        for i, node in enumerate(bucket):
            f0 = fanin0[node]
            f1 = fanin1[node]
            idx[i] = pos[f0 >> 1]
            idx[k + i] = pos[f1 >> 1]
            cmask[i] = full if f0 & 1 else zero
            cmask[k + i] = full if f1 & 1 else zero
        levels.append((start, start + k, idx, cmask.reshape(2 * k, 1)))
        widths.append(k)
        start += k

    max_width = max(widths) if widths else 0
    avg_width = (sum(widths) / len(widths)) if widths else 0.0
    schedule = _LevelSchedule(n, pos, levels, max_width, avg_width)
    aig._np_schedule = schedule
    return schedule


class PackedValues(Mapping):
    """Lazy node-id -> packed-word view over the numpy kernel's output.

    Behaves like the plain dict the ``int`` kernel returns — same keys
    (every node id), same Python-int words, equality against dicts — but
    converts rows to bigints only on access, so large-graph simulations
    don't pay an O(nodes) conversion for the handful of output words a
    caller actually reads.
    """

    __slots__ = ("_rows", "_pos", "_mask", "_cache")

    def __init__(self, rows, pos: List[int], num_patterns: int) -> None:
        self._rows = rows
        self._pos = pos
        self._mask = (1 << num_patterns) - 1
        self._cache: Dict[int, int] = {}

    def __getitem__(self, node: int) -> int:
        word = self._cache.get(node)
        if word is None:
            if not isinstance(node, int) or not 0 <= node < len(self._pos):
                raise KeyError(node)
            raw = self._rows[self._pos[node]].tobytes()
            word = int.from_bytes(raw, "little") & self._mask
            self._cache[node] = word
        return word

    def __len__(self) -> int:
        return len(self._pos)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._pos)))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedValues):
            if other is self:
                return True
            other = dict(other.items())
        if not isinstance(other, Mapping):
            return NotImplemented
        if len(other) != len(self._pos):
            return False
        sentinel = object()
        return all(other.get(node, sentinel) == self[node] for node in self)

    __hash__ = None  # mutable-mapping semantics, like dict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedValues({dict(self.items())!r})"


def _pack_word(np, word: int, width: int):
    """Pack a (pre-masked) Python int into ``width`` little-endian uint64s."""
    return np.frombuffer(word.to_bytes(width * 8, "little"), dtype="<u8")


def select_backend(aig: Aig, num_patterns: int, backend: str = "auto") -> str:
    """Resolve the kernel (``"int"`` or ``"numpy"``) for a simulation call.

    ``backend="numpy"`` forces the numpy kernel (raising a descriptive
    ``ImportError`` when numpy is absent); ``"int"`` forces the bigint
    kernel; ``"auto"`` applies the measured width/word-count crossover
    and falls back to ``"int"`` when numpy is unavailable or
    ``REPRO_SCALAR_KERNELS=1`` is set.
    """
    if backend == "int":
        return "int"
    if backend == "numpy":
        load_numpy(required=True)
        return "numpy"
    if backend != "auto":
        raise ValueError(
            f"unknown simulate_patterns backend {backend!r}; "
            f"expected 'auto', 'int' or 'numpy'"
        )
    if scalar_kernels_forced() or len(aig._type) < _NUMPY_MIN_NODES:
        return "int"
    if load_numpy() is None:
        return "int"
    schedule = _level_schedule(aig)
    words = (num_patterns + 63) // 64
    if (
        schedule.avg_width >= _NUMPY_MIN_WIDTH
        and schedule.avg_width >= _NUMPY_WIDTH_PER_WORD * max(words, 1)
    ):
        return "numpy"
    return "int"


def _simulate_patterns_numpy(
    aig: Aig, input_words: List[Tuple[int, int]], num_patterns: int
) -> PackedValues:
    """Word-parallel levelised sweep: 64 patterns per lane, W lanes per block."""
    np = load_numpy(required=True)
    schedule = _level_schedule(aig)
    mask = (1 << num_patterns) - 1
    width = (num_patterns + 63) // 64
    pos = schedule.pos
    rows = np.zeros((len(pos), width), dtype="<u8")
    for node, word in input_words:
        rows[pos[node]] = _pack_word(np, word & mask, width)
    if schedule.levels:
        gather = np.empty((2 * schedule.max_width, width), dtype="<u8")
        for start, end, idx, cmask in schedule.levels:
            k = end - start
            g = gather[: 2 * k]
            np.take(rows, idx, axis=0, out=g)
            np.bitwise_xor(g, cmask, out=g)
            np.bitwise_and(g[:k], g[k:], out=rows[start:end])
        if width and num_patterns % 64:
            # Complemented literals set garbage above bit ``num_patterns``
            # in the top word of every block; AND propagation can carry it
            # into results, so clear the tail lane before handing rows out.
            tail = np.uint64((1 << (num_patterns % 64)) - 1)
            rows[:, width - 1] &= tail
    return PackedValues(rows, pos, num_patterns)


def simulate_patterns(
    aig: Aig,
    pi_patterns: Mapping[int, int],
    num_patterns: int,
    strict: bool = True,
    backend: str = "auto",
) -> Mapping[int, int]:
    """Simulate the combinational part of ``aig`` on packed input patterns.

    The graph is walked once in topological order (node ids are created in
    topological order by construction), either over the flat fanin arrays
    with Python bigints as pattern words or — for graphs wide enough to
    amortise array dispatch — as a levelised numpy sweep over uint64 word
    blocks (see the module docstring and :func:`select_backend`).  This
    is the golden-model kernel of the verification subsystem; the original
    per-node dict/method implementation is kept as
    :func:`simulate_patterns_reference` for the differential tests in
    ``tests/perf`` and ``tests/aig``.

    Args:
        aig: The graph to simulate.
        pi_patterns: Packed pattern word for every PI *and latch* node id
            (bit ``i`` of the word is the node value in pattern ``i``).
        num_patterns: Number of valid pattern bits in each word.
        strict: Raise ``KeyError`` listing the missing node ids when
            ``pi_patterns`` does not cover every PI and latch.  Passing
            ``strict=False`` restores the historical zero-fill of absent
            inputs (only meaningful for deliberately partial stimuli).
        backend: ``"auto"`` (default) dispatches between the bigint and
            numpy kernels on graph shape; ``"int"`` / ``"numpy"`` force a
            kernel (``"numpy"`` raises ``ImportError`` with install
            instructions when numpy is missing).

    Returns:
        A mapping from every node id to its packed output word — a plain
        dict from the ``int`` kernel, a lazily converting
        :class:`PackedValues` (equal to that dict) from the numpy kernel.
    """
    mask = (1 << num_patterns) - 1
    input_words: List[Tuple[int, int]] = []
    missing = []
    for node in aig.pi_nodes:
        word = pi_patterns.get(node)
        if word is None:
            missing.append(node)
        else:
            input_words.append((node, word))
    for latch in aig.latches:
        word = pi_patterns.get(latch.node)
        if word is None:
            missing.append(latch.node)
        else:
            input_words.append((latch.node, word))
    if strict and missing:
        raise KeyError(
            f"pi_patterns is missing pattern words for PI/latch node(s) "
            f"{sorted(missing)} of {aig.name!r}; pass strict=False to "
            f"zero-fill deliberately partial stimuli"
        )
    if select_backend(aig, num_patterns, backend) == "numpy":
        return _simulate_patterns_numpy(aig, input_words, num_patterns)

    types = aig._type
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    values = [0] * len(types)
    for node, word in input_words:
        values[node] = word & mask
    and_type = NodeType.AND
    for node in range(len(types)):
        if types[node] is not and_type:
            continue
        f0 = fanin0[node]
        f1 = fanin1[node]
        v0 = values[f0 >> 1]
        if f0 & 1:
            v0 ^= mask
        v1 = values[f1 >> 1]
        if f1 & 1:
            v1 ^= mask
        values[node] = v0 & v1
    return dict(enumerate(values))


def simulate_patterns_reference(
    aig: Aig, pi_patterns: Mapping[int, int], num_patterns: int
) -> Dict[int, int]:
    """Original (pre-optimisation) pattern simulation kernel.

    Kept as the oracle for the kernel-equivalence micro-benchmarks; it
    zero-fills missing inputs like the historical implementation did.  Do
    not use in new code — call :func:`simulate_patterns`.
    """
    mask = (1 << num_patterns) - 1
    values: Dict[int, int] = {0: 0}
    for node in aig.pi_nodes:
        values[node] = pi_patterns.get(node, 0) & mask
    for latch in aig.latches:
        values[latch.node] = pi_patterns.get(latch.node, 0) & mask
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        v0 = values[lit_node(f0)]
        if lit_is_complemented(f0):
            v0 ^= mask
        v1 = values[lit_node(f1)]
        if lit_is_complemented(f1):
            v1 ^= mask
        values[node] = v0 & v1
    return values


def lit_values(values: Mapping[int, int], lit: int, num_patterns: int) -> int:
    """Extract the packed value word of a literal from node values."""
    mask = (1 << num_patterns) - 1
    word = values[lit_node(lit)]
    return (word ^ mask) if lit_is_complemented(lit) else word & mask


def simulate_random(
    aig: Aig, num_patterns: int = 256, seed: int = 0
) -> Mapping[int, int]:
    """Simulate ``num_patterns`` uniformly random input patterns.

    Latch outputs are also randomised, which makes the result usable as a
    quick combinational-equivalence filter for sequential AIGs whose latch
    correspondence is known.
    """
    rng = random.Random(seed)
    patterns: Dict[int, int] = {}
    for node in list(aig.pi_nodes) + [l.node for l in aig.latches]:
        patterns[node] = rng.getrandbits(num_patterns)
    return simulate_patterns(aig, patterns, num_patterns)


def output_signatures(aig: Aig, num_patterns: int = 256, seed: int = 0) -> List[int]:
    """Packed output words of every PO under random simulation (for CEC filtering)."""
    values = simulate_random(aig, num_patterns, seed)
    return [lit_values(values, lit, num_patterns) for lit in aig.po_lits]


def exhaustive_truth_tables(aig: Aig, max_inputs: int = 16) -> List[int]:
    """Exhaustive truth table of every PO of a combinational AIG.

    The truth table of output *o* is an integer whose bit ``i`` is the output
    value under the input assignment where PI ``k`` (in ``pi_nodes`` order)
    takes bit ``k`` of ``i``.
    """
    if aig.latches:
        raise ValueError("exhaustive_truth_tables requires a combinational AIG")
    n = aig.num_pis
    if n > max_inputs:
        raise ValueError(f"AIG has {n} inputs, exceeding limit of {max_inputs}")
    num_patterns = 1 << n
    patterns: Dict[int, int] = {}
    for k, node in enumerate(aig.pi_nodes):
        # Standard truth-table variable pattern for variable k.
        word = 0
        block = 1 << k
        for start in range(block, num_patterns, 2 * block):
            word |= ((1 << block) - 1) << start
        patterns[node] = word
    values = simulate_patterns(aig, patterns, num_patterns)
    return [lit_values(values, lit, num_patterns) for lit in aig.po_lits]


def cone_truth_table(aig: Aig, root_lit: int, leaves: Sequence[int]) -> int:
    """Truth table of the cone rooted at ``root_lit`` expressed over ``leaves``.

    ``leaves`` are node ids forming a cut of the cone; the returned table has
    ``2**len(leaves)`` bits with leaf ``k`` as variable ``k``.  All paths from
    the root must stop at leaves (or constants); otherwise a ``KeyError``-like
    :class:`ValueError` is raised.
    """
    k = len(leaves)
    num_patterns = 1 << k
    mask = (1 << num_patterns) - 1
    values: Dict[int, int] = {0: 0}
    for var, leaf in enumerate(leaves):
        word = 0
        block = 1 << var
        for start in range(block, num_patterns, 2 * block):
            word |= ((1 << block) - 1) << start
        values[leaf] = word

    types = aig._type
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    and_type = NodeType.AND

    def node_value(node: int) -> int:
        if node in values:
            return values[node]
        if types[node] is not and_type:
            raise ValueError(f"node {node} is not inside the cut cone")
        stack = [node]
        while stack:
            current = stack[-1]
            if current in values:
                stack.pop()
                continue
            f0 = fanin0[current]
            f1 = fanin1[current]
            n0 = f0 >> 1
            n1 = f1 >> 1
            v0 = values.get(n0)
            v1 = values.get(n1)
            if v0 is None or v1 is None:
                for m in (n0, n1):
                    if m not in values:
                        if types[m] is not and_type:
                            raise ValueError(f"node {m} is not inside the cut cone")
                        stack.append(m)
                continue
            if f0 & 1:
                v0 ^= mask
            if f1 & 1:
                v1 ^= mask
            values[current] = v0 & v1
            stack.pop()
        return values[node]

    root_value = node_value(lit_node(root_lit))
    if lit_is_complemented(root_lit):
        root_value ^= mask
    return root_value & mask
