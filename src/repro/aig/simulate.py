"""Bit-parallel functional simulation of AIGs.

Used for three purposes in the flow:

* fast random-vector filtering before SAT-based equivalence checking
  (:mod:`repro.aig.cec`),
* exhaustive truth-table computation of whole (small) AIGs for the test
  suite, and
* truth-table computation of cut cones for the refactoring / rewriting
  passes (:mod:`repro.aig.refactor`, :mod:`repro.aig.rewrite`).

Python integers are used as arbitrarily wide bit vectors, so a single pass
over the graph simulates any number of patterns in parallel.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .graph import Aig, NodeType, lit_is_complemented, lit_node


def simulate_patterns(
    aig: Aig,
    pi_patterns: Mapping[int, int],
    num_patterns: int,
    strict: bool = True,
) -> Dict[int, int]:
    """Simulate the combinational part of ``aig`` on packed input patterns.

    The graph is walked once in topological order (node ids are created in
    topological order by construction) over the flat fanin arrays, with
    Python integers as arbitrarily wide bit-parallel pattern words.  This
    is the golden-model kernel of the verification subsystem; the original
    per-node dict/method implementation is kept as
    :func:`simulate_patterns_reference` for the differential tests in
    ``tests/perf``.

    Args:
        aig: The graph to simulate.
        pi_patterns: Packed pattern word for every PI *and latch* node id
            (bit ``i`` of the word is the node value in pattern ``i``).
        num_patterns: Number of valid pattern bits in each word.
        strict: Raise ``KeyError`` listing the missing node ids when
            ``pi_patterns`` does not cover every PI and latch.  Passing
            ``strict=False`` restores the historical zero-fill of absent
            inputs (only meaningful for deliberately partial stimuli).

    Returns:
        A dictionary mapping every node id to its packed output word.
    """
    mask = (1 << num_patterns) - 1
    types = aig._type
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    values = [0] * len(types)
    missing = []
    for node in aig.pi_nodes:
        word = pi_patterns.get(node)
        if word is None:
            missing.append(node)
        else:
            values[node] = word & mask
    for latch in aig.latches:
        word = pi_patterns.get(latch.node)
        if word is None:
            missing.append(latch.node)
        else:
            values[latch.node] = word & mask
    if strict and missing:
        raise KeyError(
            f"pi_patterns is missing pattern words for PI/latch node(s) "
            f"{sorted(missing)} of {aig.name!r}; pass strict=False to "
            f"zero-fill deliberately partial stimuli"
        )
    and_type = NodeType.AND
    for node in range(len(types)):
        if types[node] is not and_type:
            continue
        f0 = fanin0[node]
        f1 = fanin1[node]
        v0 = values[f0 >> 1]
        if f0 & 1:
            v0 ^= mask
        v1 = values[f1 >> 1]
        if f1 & 1:
            v1 ^= mask
        values[node] = v0 & v1
    return dict(enumerate(values))


def simulate_patterns_reference(
    aig: Aig, pi_patterns: Mapping[int, int], num_patterns: int
) -> Dict[int, int]:
    """Original (pre-optimisation) pattern simulation kernel.

    Kept as the oracle for the kernel-equivalence micro-benchmarks; it
    zero-fills missing inputs like the historical implementation did.  Do
    not use in new code — call :func:`simulate_patterns`.
    """
    mask = (1 << num_patterns) - 1
    values: Dict[int, int] = {0: 0}
    for node in aig.pi_nodes:
        values[node] = pi_patterns.get(node, 0) & mask
    for latch in aig.latches:
        values[latch.node] = pi_patterns.get(latch.node, 0) & mask
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        v0 = values[lit_node(f0)]
        if lit_is_complemented(f0):
            v0 ^= mask
        v1 = values[lit_node(f1)]
        if lit_is_complemented(f1):
            v1 ^= mask
        values[node] = v0 & v1
    return values


def lit_values(values: Mapping[int, int], lit: int, num_patterns: int) -> int:
    """Extract the packed value word of a literal from node values."""
    mask = (1 << num_patterns) - 1
    word = values[lit_node(lit)]
    return (word ^ mask) if lit_is_complemented(lit) else word & mask


def simulate_random(aig: Aig, num_patterns: int = 256, seed: int = 0) -> Dict[int, int]:
    """Simulate ``num_patterns`` uniformly random input patterns.

    Latch outputs are also randomised, which makes the result usable as a
    quick combinational-equivalence filter for sequential AIGs whose latch
    correspondence is known.
    """
    rng = random.Random(seed)
    patterns: Dict[int, int] = {}
    for node in list(aig.pi_nodes) + [l.node for l in aig.latches]:
        patterns[node] = rng.getrandbits(num_patterns)
    return simulate_patterns(aig, patterns, num_patterns)


def output_signatures(aig: Aig, num_patterns: int = 256, seed: int = 0) -> List[int]:
    """Packed output words of every PO under random simulation (for CEC filtering)."""
    values = simulate_random(aig, num_patterns, seed)
    return [lit_values(values, lit, num_patterns) for lit in aig.po_lits]


def exhaustive_truth_tables(aig: Aig, max_inputs: int = 16) -> List[int]:
    """Exhaustive truth table of every PO of a combinational AIG.

    The truth table of output *o* is an integer whose bit ``i`` is the output
    value under the input assignment where PI ``k`` (in ``pi_nodes`` order)
    takes bit ``k`` of ``i``.
    """
    if aig.latches:
        raise ValueError("exhaustive_truth_tables requires a combinational AIG")
    n = aig.num_pis
    if n > max_inputs:
        raise ValueError(f"AIG has {n} inputs, exceeding limit of {max_inputs}")
    num_patterns = 1 << n
    patterns: Dict[int, int] = {}
    for k, node in enumerate(aig.pi_nodes):
        # Standard truth-table variable pattern for variable k.
        word = 0
        block = 1 << k
        for start in range(block, num_patterns, 2 * block):
            word |= ((1 << block) - 1) << start
        patterns[node] = word
    values = simulate_patterns(aig, patterns, num_patterns)
    return [lit_values(values, lit, num_patterns) for lit in aig.po_lits]


def cone_truth_table(aig: Aig, root_lit: int, leaves: Sequence[int]) -> int:
    """Truth table of the cone rooted at ``root_lit`` expressed over ``leaves``.

    ``leaves`` are node ids forming a cut of the cone; the returned table has
    ``2**len(leaves)`` bits with leaf ``k`` as variable ``k``.  All paths from
    the root must stop at leaves (or constants); otherwise a ``KeyError``-like
    :class:`ValueError` is raised.
    """
    k = len(leaves)
    num_patterns = 1 << k
    mask = (1 << num_patterns) - 1
    values: Dict[int, int] = {0: 0}
    for var, leaf in enumerate(leaves):
        word = 0
        block = 1 << var
        for start in range(block, num_patterns, 2 * block):
            word |= ((1 << block) - 1) << start
        values[leaf] = word

    types = aig._type
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    and_type = NodeType.AND

    def node_value(node: int) -> int:
        if node in values:
            return values[node]
        if types[node] is not and_type:
            raise ValueError(f"node {node} is not inside the cut cone")
        stack = [node]
        while stack:
            current = stack[-1]
            if current in values:
                stack.pop()
                continue
            f0 = fanin0[current]
            f1 = fanin1[current]
            n0 = f0 >> 1
            n1 = f1 >> 1
            v0 = values.get(n0)
            v1 = values.get(n1)
            if v0 is None or v1 is None:
                for m in (n0, n1):
                    if m not in values:
                        if types[m] is not and_type:
                            raise ValueError(f"node {m} is not inside the cut cone")
                        stack.append(m)
                continue
            if f0 & 1:
                v0 ^= mask
            if f1 & 1:
                v1 ^= mask
            values[current] = v0 & v1
            stack.pop()
        return values[node]

    root_value = node_value(lit_node(root_lit))
    if lit_is_complemented(root_lit):
        root_value ^= mask
    return root_value & mask
