"""Truth-table manipulation, irredundant sum-of-products and factoring.

These routines power the refactoring / rewriting passes: the truth table of
a cut cone is converted to an irredundant sum-of-products cover with the
Minato-Morreale procedure and then algebraically factored into an
AND/OR/NOT expression tree, which is finally rebuilt as AIG nodes.

Truth tables over ``n`` variables are plain Python integers with ``2**n``
bits; variable ``k`` follows the standard ordering where bit ``i`` of the
table corresponds to the assignment ``x_k = (i >> k) & 1``.

Cubes are dictionaries mapping variable index to 0 or 1 (missing variables
are don't-cares); a cover is a list of cubes, with the empty cube denoting
the tautology.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Cube = Dict[int, int]
Cover = List[Cube]

# The ISOP recursion evaluates these projection masks millions of times per
# synthesis run (they dominated the pre-optimisation profile of
# ``repro verify``/``repro fuzz``), so both are memoised.  The key space is
# tiny: ``num_vars`` is bounded by the cut size of the resynthesis passes.
_TABLE_MASKS: Dict[int, int] = {}
_VAR_TABLES: Dict[Tuple[int, int], int] = {}


def table_mask(num_vars: int) -> int:
    """All-ones truth table over ``num_vars`` variables."""
    mask = _TABLE_MASKS.get(num_vars)
    if mask is None:
        mask = (1 << (1 << num_vars)) - 1
        _TABLE_MASKS[num_vars] = mask
    return mask


def var_table(var: int, num_vars: int) -> int:
    """Truth table of the projection function ``x_var``."""
    word = _VAR_TABLES.get((var, num_vars))
    if word is None:
        block = 1 << var
        word = 0
        for start in range(block, 1 << num_vars, 2 * block):
            word |= ((1 << block) - 1) << start
        _VAR_TABLES[(var, num_vars)] = word
    return word


def cofactor(table: int, var: int, value: int, num_vars: int) -> int:
    """Shannon cofactor of ``table`` with respect to ``x_var = value``.

    The result is still expressed over all ``num_vars`` variables (it simply
    no longer depends on ``x_var``).
    """
    mask = table_mask(num_vars)
    vmask = var_table(var, num_vars)
    block = 1 << var
    if value:
        positive = table & vmask
        return (positive | (positive >> block)) & mask
    negative = table & ~vmask & mask
    return (negative | (negative << block)) & mask


def depends_on(table: int, var: int, num_vars: int) -> bool:
    """True when the function depends on variable ``var``."""
    low = ~var_table(var, num_vars) & table_mask(num_vars)
    return ((table >> (1 << var)) & low) != (table & low)


def support(table: int, num_vars: int) -> List[int]:
    """Variables the function actually depends on."""
    return [v for v in range(num_vars) if depends_on(table, v, num_vars)]


def cube_table(cube: Cube, num_vars: int) -> int:
    """Truth table of a single cube."""
    table = table_mask(num_vars)
    for var, value in cube.items():
        vt = var_table(var, num_vars)
        table &= vt if value else (~vt & table_mask(num_vars))
    return table


def cover_table(cover: Cover, num_vars: int) -> int:
    """Truth table of a cover (OR of its cubes)."""
    table = 0
    for cube in cover:
        table |= cube_table(cube, num_vars)
    return table


def isop(on_set: int, upper: int, num_vars: int) -> Tuple[Cover, int]:
    """Minato-Morreale irredundant sum-of-products.

    Computes a cover ``C`` with ``on_set <= table(C) <= upper`` using the
    interval-ISOP recursion.  Returns the cover and its truth table.  For a
    completely specified function call ``isop(f, f, n)``.
    """
    mask = table_mask(num_vars)
    on_set &= mask
    upper &= mask
    if on_set & ~upper & mask:
        raise ValueError("isop requires on_set to be contained in upper")
    return _isop_recursive(on_set, upper, num_vars, num_vars)


def _isop_recursive(lower: int, upper: int, num_vars: int, var_limit: int) -> Tuple[Cover, int]:
    mask = table_mask(num_vars)
    if lower == 0:
        return [], 0
    if upper == mask:
        return [{}], mask
    # Pick the highest-index variable that either bound depends on.
    var = None
    for v in reversed(range(var_limit)):
        if depends_on(lower, v, num_vars) or depends_on(upper, v, num_vars):
            var = v
            break
    if var is None:
        # lower is a non-zero constant but upper is not the tautology —
        # cannot happen for consistent bounds.
        raise ValueError("inconsistent ISOP bounds")
    l0 = cofactor(lower, var, 0, num_vars)
    l1 = cofactor(lower, var, 1, num_vars)
    u0 = cofactor(upper, var, 0, num_vars)
    u1 = cofactor(upper, var, 1, num_vars)

    cover0, table0 = _isop_recursive(l0 & ~u1 & mask, u0, num_vars, var)
    cover1, table1 = _isop_recursive(l1 & ~u0 & mask, u1, num_vars, var)
    l_new = (l0 & ~table0 & mask) | (l1 & ~table1 & mask)
    cover2, table2 = _isop_recursive(l_new, u0 & u1, num_vars, var)

    vt = var_table(var, num_vars)
    result_cover: Cover = []
    for cube in cover0:
        new_cube = dict(cube)
        new_cube[var] = 0
        result_cover.append(new_cube)
    for cube in cover1:
        new_cube = dict(cube)
        new_cube[var] = 1
        result_cover.append(new_cube)
    result_cover.extend(cover2)
    result_table = (table0 & ~vt & mask) | (table1 & vt) | table2
    return result_cover, result_table


# ---------------------------------------------------------------------------
# Factored forms
# ---------------------------------------------------------------------------


@dataclass
class FactorNode:
    """Node of a factored-form expression tree.

    ``kind`` is one of ``"lit"``, ``"and"``, ``"or"``, ``"const0"``,
    ``"const1"``.  For literals, ``var`` is the variable index and
    ``negated`` its polarity; for internal nodes ``children`` holds the
    operands.
    """

    kind: str
    var: int = -1
    negated: bool = False
    children: Tuple["FactorNode", ...] = ()

    def num_ops(self) -> int:
        """Number of two-input AND/OR operations needed to realise the tree."""
        if self.kind in ("lit", "const0", "const1"):
            return 0
        child_ops = sum(c.num_ops() for c in self.children)
        return child_ops + max(0, len(self.children) - 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "lit":
            return ("!" if self.negated else "") + f"x{self.var}"
        if self.kind in ("const0", "const1"):
            return self.kind
        sep = " & " if self.kind == "and" else " | "
        return "(" + sep.join(str(c) for c in self.children) + ")"


def _literal_counts(cover: Cover) -> Dict[Tuple[int, int], int]:
    counts: Dict[Tuple[int, int], int] = {}
    for cube in cover:
        for var, value in cube.items():
            counts[(var, value)] = counts.get((var, value), 0) + 1
    return counts


def factor_cover(cover: Cover) -> FactorNode:
    """Algebraically factor a cover into an AND/OR expression tree.

    Uses "quick factoring": the most frequent literal is chosen as divisor,
    the cover is divided into quotient and remainder, and both parts are
    factored recursively.  Single-cube covers become pure AND terms.
    """
    if not cover:
        return FactorNode("const0")
    if any(len(cube) == 0 for cube in cover):
        return FactorNode("const1")
    if len(cover) == 1:
        cube = cover[0]
        literals = [FactorNode("lit", var=v, negated=(val == 0)) for v, val in sorted(cube.items())]
        if len(literals) == 1:
            return literals[0]
        return FactorNode("and", children=tuple(literals))

    counts = _literal_counts(cover)
    (best_var, best_val), best_count = max(counts.items(), key=lambda item: (item[1], -item[0][0]))
    if best_count <= 1:
        # No common literal: plain sum of products.
        terms = [factor_cover([cube]) for cube in cover]
        return FactorNode("or", children=tuple(terms))

    divisor_lit = FactorNode("lit", var=best_var, negated=(best_val == 0))
    quotient: Cover = []
    remainder: Cover = []
    for cube in cover:
        if cube.get(best_var) == best_val:
            reduced = {v: val for v, val in cube.items() if v != best_var}
            quotient.append(reduced)
        else:
            remainder.append(cube)

    quotient_expr = factor_cover(quotient)
    if quotient_expr.kind == "const1":
        factored_part: FactorNode = divisor_lit
    else:
        factored_part = FactorNode("and", children=(divisor_lit, quotient_expr))
    if not remainder:
        return factored_part
    remainder_expr = factor_cover(remainder)
    return FactorNode("or", children=(factored_part, remainder_expr))


@lru_cache(maxsize=1 << 16)
def factor_table(table: int, num_vars: int) -> FactorNode:
    """ISOP + factoring of a completely specified truth table.

    Both the function and its complement are factored and the cheaper form
    is returned (complemented forms are handled by the caller through the
    top literal polarity — see :func:`factored_form_cost`).

    Results are memoised — the resynthesis passes re-factor the same small
    cone functions constantly — so callers must treat the returned
    :class:`FactorNode` tree as immutable (they all do: the only consumer
    is :func:`build_factor_into_aig`, which reads it).
    """
    mask = table_mask(num_vars)
    table &= mask
    if table == 0:
        return FactorNode("const0")
    if table == mask:
        return FactorNode("const1")
    cover, _ = isop(table, table, num_vars)
    return factor_cover(cover)


def build_factor_into_aig(
    factor: FactorNode,
    leaf_literals: Sequence[int],
    add_and: Callable[[int, int], int],
    lit_not: Callable[[int], int],
    const_false: int = 0,
) -> int:
    """Instantiate a factored form as AIG nodes.

    Args:
        factor: Expression tree over variables ``0..len(leaf_literals)-1``.
        leaf_literals: AIG literal for each variable.
        add_and: Callable creating/reusing an AND node and returning a literal.
        lit_not: Callable complementing a literal.
        const_false: The constant-false literal.

    Returns:
        The literal realising the factored form.
    """

    def build(node: FactorNode) -> int:
        if node.kind == "const0":
            return const_false
        if node.kind == "const1":
            return lit_not(const_false)
        if node.kind == "lit":
            lit = leaf_literals[node.var]
            return lit_not(lit) if node.negated else lit
        child_lits = [build(c) for c in node.children]
        if node.kind == "and":
            acc = child_lits[0]
            for lit in child_lits[1:]:
                acc = add_and(acc, lit)
            return acc
        if node.kind == "or":
            acc = child_lits[0]
            for lit in child_lits[1:]:
                acc = lit_not(add_and(lit_not(acc), lit_not(lit)))
            return acc
        raise ValueError(f"unknown factor node kind {node.kind!r}")

    return build(factor)


@lru_cache(maxsize=1 << 16)
def factored_form_cost(table: int, num_vars: int) -> Tuple[int, FactorNode, bool]:
    """Return the cheaper of factoring ``f`` and ``!f``.

    Returns ``(cost, factor, complemented)`` where ``complemented`` indicates
    that the factored form realises the complement of ``table`` and the
    caller must invert the resulting literal.  Memoised like
    :func:`factor_table`; the returned tree must be treated as immutable.
    """
    direct = factor_table(table, num_vars)
    inverse = factor_table(~table & table_mask(num_vars), num_vars)
    if inverse.num_ops() < direct.num_ops():
        return inverse.num_ops(), inverse, True
    return direct.num_ops(), direct, False
