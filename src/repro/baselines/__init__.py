"""Conventional clocked-RSFQ baseline flows (PBMap- and qSeq-style).

These flows rebuild the cost structure of the paper's comparison points:
every logic gate is clocked, reconvergent paths are balanced with DRO
cells, and the clock is distributed through splitter trees.  The
evaluation harness (:mod:`repro.eval`) synthesises every benchmark circuit
with both this baseline and the xSFQ flow and reports the JJ savings the
way the paper's Tables 4 and 6 do.
"""

from .cells import (
    CLOCK_SPLITTING_OVERHEAD,
    RSFQ_SPECS,
    RsfqCellKind,
    RsfqCellSpec,
    RsfqLibrary,
    clock_splitter_count,
    default_rsfq_library,
)
from .path_balance import RsfqMappingResult, map_rsfq_path_balanced
from .flows import BaselineOptions, pbmap_like, qseq_like, rsfq_clock_period_ps

__all__ = [
    "RsfqCellKind",
    "RsfqCellSpec",
    "RsfqLibrary",
    "RSFQ_SPECS",
    "CLOCK_SPLITTING_OVERHEAD",
    "clock_splitter_count",
    "default_rsfq_library",
    "RsfqMappingResult",
    "map_rsfq_path_balanced",
    "BaselineOptions",
    "pbmap_like",
    "qseq_like",
    "rsfq_clock_period_ps",
]
