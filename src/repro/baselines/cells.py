"""Conventional (clocked) RSFQ standard-cell library.

The paper compares xSFQ against the RSFQ state of the art (PBMap for
combinational circuits, qSeq for sequential ones).  Those flows target a
conventional RSFQ library in which *every* logic gate is clocked, inverters
are real cells, path balancing requires DRO (D flip-flop) cells, and each
clocked cell's clock input needs a splitter in the clock tree.

JJ counts below follow the values commonly used in the RSFQ synthesis
literature (SUNY/RSFQ cell libraries, as used by SFQmap/PBMap): roughly ten
junctions per logic gate, which is also the figure the paper quotes for
"conventional SFQ approaches".  Delays are representative values in the
same range as the xSFQ cells so that frequency comparisons are meaningful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping


class RsfqCellKind(enum.Enum):
    """Cell types of the clocked RSFQ baseline library."""

    AND2 = "AND2"
    OR2 = "OR2"
    XOR2 = "XOR2"
    XNOR2 = "XNOR2"
    NOT = "NOT"
    BUF = "BUF"        # JTL-based buffer (unclocked)
    DFF = "DFF"        # destructive read-out cell used as state / balancing FF
    SPLITTER = "SPLITTER"
    MERGER = "MERGER"
    JTL = "JTL"


@dataclass(frozen=True)
class RsfqCellSpec:
    """Static data of one RSFQ cell."""

    kind: RsfqCellKind
    jj_count: int
    delay_ps: float
    clocked: bool
    description: str = ""


#: Representative RSFQ cell data (JJ counts from the RSFQ synthesis
#: literature; see module docstring).
RSFQ_SPECS: Dict[RsfqCellKind, RsfqCellSpec] = {
    RsfqCellKind.AND2: RsfqCellSpec(RsfqCellKind.AND2, 11, 9.0, True, "clocked 2-input AND"),
    RsfqCellKind.OR2: RsfqCellSpec(RsfqCellKind.OR2, 9, 7.5, True, "clocked 2-input OR"),
    RsfqCellKind.XOR2: RsfqCellSpec(RsfqCellKind.XOR2, 11, 9.0, True, "clocked 2-input XOR"),
    RsfqCellKind.XNOR2: RsfqCellSpec(RsfqCellKind.XNOR2, 12, 9.5, True, "clocked 2-input XNOR"),
    RsfqCellKind.NOT: RsfqCellSpec(RsfqCellKind.NOT, 9, 7.0, True, "clocked inverter"),
    RsfqCellKind.BUF: RsfqCellSpec(RsfqCellKind.BUF, 2, 4.6, False, "JTL buffer"),
    RsfqCellKind.DFF: RsfqCellSpec(RsfqCellKind.DFF, 6, 6.5, True, "DRO cell (state / path balancing)"),
    RsfqCellKind.SPLITTER: RsfqCellSpec(RsfqCellKind.SPLITTER, 3, 5.1, False, "1:2 splitter"),
    RsfqCellKind.MERGER: RsfqCellSpec(RsfqCellKind.MERGER, 5, 5.0, False, "confluence buffer"),
    RsfqCellKind.JTL: RsfqCellSpec(RsfqCellKind.JTL, 2, 4.6, False, "JTL segment"),
}

#: Fractional JJ overhead the paper adds to the baselines to account for
#: clock splitting when comparing against xSFQ ("30% extra for RSFQ logic
#: cells").  Exposed as a named constant so the evaluation can report
#: savings both without and with this overhead, as the paper's tables do.
CLOCK_SPLITTING_OVERHEAD = 0.30


class RsfqLibrary:
    """Access wrapper over the RSFQ cell data."""

    def __init__(self, specs: Mapping[RsfqCellKind, RsfqCellSpec] = RSFQ_SPECS) -> None:
        self._specs = dict(specs)

    def spec(self, kind: RsfqCellKind) -> RsfqCellSpec:
        return self._specs[kind]

    def jj_count(self, kind: RsfqCellKind) -> int:
        return self._specs[kind].jj_count

    def delay(self, kind: RsfqCellKind) -> float:
        return self._specs[kind].delay_ps

    def is_clocked(self, kind: RsfqCellKind) -> bool:
        return self._specs[kind].clocked

    def cells(self) -> List[RsfqCellSpec]:
        return [self._specs[k] for k in RsfqCellKind]

    def total_jj(self, counts: Mapping[RsfqCellKind, int]) -> int:
        """Total JJ count for per-kind instance counts."""
        return sum(self.jj_count(kind) * count for kind, count in counts.items())


def default_rsfq_library() -> RsfqLibrary:
    """The baseline library used throughout the evaluation."""
    return RsfqLibrary()


def clock_splitter_count(num_clocked_cells: int) -> int:
    """Splitters needed to distribute the clock to ``num_clocked_cells`` cells.

    A binary splitter tree with N leaves needs N-1 splitters.
    """
    return max(0, num_clocked_cells - 1)
