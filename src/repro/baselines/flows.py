"""Baseline RSFQ synthesis flows in the style of PBMap and qSeq.

The paper compares its xSFQ results against two published RSFQ flows:

* **PBMap** (Pasandi & Pedram, 2019) — path-balancing technology mapping of
  *combinational* circuits onto a clocked RSFQ library;
* **qSeq** (Pasandi & Pedram, 2021) — the sequential extension, which also
  handles state flip-flops.

Neither tool is available as open source, so :func:`pbmap_like` and
:func:`qseq_like` rebuild the corresponding cost structure on the same
benchmark circuits: clocked 2-input RSFQ gates, delay-path balancing DRO
cells, fanout splitters and per-gate clock splitters.  The published JJ
counts from the paper's Tables 4 and 6 are additionally shipped in
:mod:`repro.eval.paper_data`, so every experiment can report both the
rebuilt baseline and the numbers the paper compared against.

Both entry points are themselves compositions of stages registered in
the shared :data:`repro.core.flowgraph.STAGES` registry (``rsfq-opt``
followed by ``rsfq-map``), built by :func:`baseline_flow` — the same
pass-manager machinery as the xSFQ flow, demonstrating that non-xSFQ
flows plug into the registry too.  The mapped
:class:`~repro.baselines.path_balance.RsfqMappingResult` travels in
``FlowState.artifacts["rsfq"]`` because the baseline produces no
:class:`~repro.core.flow.XsfqSynthesisResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from ..aig import Aig, aig_to_network, network_to_aig, optimize
from ..core.flowgraph import Flow, FlowState, register_stage
from ..netlist.network import LogicNetwork
from .cells import RsfqLibrary, default_rsfq_library
from .path_balance import RsfqMappingResult, map_rsfq_path_balanced


@dataclass
class BaselineOptions:
    """Options of the baseline flows.

    Attributes:
        optimize_logic: Run the shared AIG optimiser before mapping (both
            the xSFQ flow and the baselines then start from logic of the
            same quality, which keeps the comparison about the *mapping*).
        effort: Optimisation effort when ``optimize_logic`` is True.
        include_io_balancing: Balance PI/PO paths to a common stage.
        count_clock_tree: Count the explicit clock splitter tree.
    """

    optimize_logic: bool = False
    effort: str = "low"
    include_io_balancing: bool = True
    count_clock_tree: bool = True


def _as_network(design: Union[LogicNetwork, Aig]) -> LogicNetwork:
    if isinstance(design, LogicNetwork):
        return design
    return aig_to_network(design)


# ---------------------------------------------------------------------------
# Baseline stages (registered in the shared stage registry)
# ---------------------------------------------------------------------------


@register_stage(
    "rsfq-opt",
    defaults={"enabled": False, "effort": "low"},
    description="Optional shared AIG optimisation before the clocked-RSFQ mapping",
)
def _stage_rsfq_opt(state: FlowState, options: Mapping[str, object]) -> FlowState:
    if not options["enabled"]:
        return state
    network = state.network if state.network is not None else aig_to_network(state.aig)
    state = state.copy()
    # Round-trip through the optimiser; the un-optimised path maps the
    # original gate-level network untouched (no AIG decomposition).
    state.network = aig_to_network(
        optimize(network_to_aig(network), effort=str(options["effort"]))
    )
    return state


@register_stage(
    "rsfq-map",
    defaults={"include_io_balancing": True, "count_clock_tree": True},
    description="Path-balanced clocked RSFQ mapping (PBMap/qSeq cost structure)",
)
def _stage_rsfq_map(state: FlowState, options: Mapping[str, object]) -> FlowState:
    network = state.network if state.network is not None else aig_to_network(state.aig)
    state = state.copy()
    state.artifacts["rsfq"] = map_rsfq_path_balanced(
        network,
        include_io_balancing=bool(options["include_io_balancing"]),
        count_clock_tree=bool(options["count_clock_tree"]),
        name=state.name or network.name,
    )
    return state


def baseline_flow(options: Optional[BaselineOptions] = None) -> Flow:
    """The staged composition behind :func:`pbmap_like` / :func:`qseq_like`."""
    options = options or BaselineOptions()
    return Flow.from_script(
        [
            ("rsfq-opt", {"enabled": options.optimize_logic, "effort": options.effort}),
            (
                "rsfq-map",
                {
                    "include_io_balancing": options.include_io_balancing,
                    "count_clock_tree": options.count_clock_tree,
                },
            ),
        ]
    )


def _run_baseline(
    design: Union[LogicNetwork, Aig],
    options: Optional[BaselineOptions],
    name: Optional[str],
) -> RsfqMappingResult:
    network = _as_network(design)
    state = baseline_flow(options).run_state(network, name=name or network.name)
    return state.artifacts["rsfq"]


def pbmap_like(
    design: Union[LogicNetwork, Aig],
    options: Optional[BaselineOptions] = None,
    name: Optional[str] = None,
) -> RsfqMappingResult:
    """Path-balanced clocked RSFQ mapping of a combinational design.

    Mirrors the cost structure PBMap optimises within: every logic gate is
    a clocked RSFQ cell, reconvergent paths are balanced with DRO cells and
    every cell's clock arrives through a splitter tree.
    """
    network = _as_network(design)
    if not network.is_combinational():
        raise ValueError("pbmap_like expects a combinational design; use qseq_like")
    return _run_baseline(network, options, name)


def qseq_like(
    design: Union[LogicNetwork, Aig],
    options: Optional[BaselineOptions] = None,
    name: Optional[str] = None,
) -> RsfqMappingResult:
    """Path-balanced clocked RSFQ mapping of a sequential design.

    State bits become DRO flip-flops; the combinational logic between
    flip-flop boundaries is mapped and path-balanced exactly as in
    :func:`pbmap_like`.
    """
    return _run_baseline(_as_network(design), options, name)


def rsfq_clock_period_ps(
    result: RsfqMappingResult, library: Optional[RsfqLibrary] = None
) -> float:
    """Clock period of a gate-level-pipelined RSFQ design.

    In conventional RSFQ every gate is a pipeline stage, so the clock period
    is bounded by the slowest single cell (plus a splitter for its clock),
    not by the full logic depth — but a new *wave* can only produce a result
    after ``logic_levels`` cycles.
    """
    from .cells import RsfqCellKind

    library = library or default_rsfq_library()
    slowest_cell = max(
        (library.delay(kind) for kind, count in result.total_cells().items() if count),
        default=0.0,
    )
    return slowest_cell + library.delay(RsfqCellKind.SPLITTER)
