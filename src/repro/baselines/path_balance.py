"""Gate-level RSFQ mapping with full delay-path balancing.

Conventional SFQ logic evaluates every gate on every clock pulse, so all
inputs of a gate must arrive in the same clock period: whenever two
reconverging paths differ in logic depth, DRO (D flip-flop) cells must be
inserted on the shorter path — "delay path balancing".  Together with the
per-gate clock splitters this is where the bulk of a conventional RSFQ
circuit's junctions go (the paper quotes up to 70%), and it is precisely
the overhead the clock-free xSFQ mapping avoids.

This module implements that conventional mapping:

1. decompose a technology-independent :class:`LogicNetwork` onto the
   clocked RSFQ library (2-input AND/OR/XOR/XNOR, clocked inverters);
2. levelise the resulting gate network (every clocked gate occupies one
   clock stage);
3. insert ``level(consumer) - level(driver) - 1`` balancing DFFs on every
   data edge, plus DFFs that align primary inputs and outputs to the final
   stage;
4. count fanout splitters for data nets and (optionally) clock splitters
   for every clocked cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist.network import Gate, GateType, LogicNetwork, NetworkError
from .cells import (
    CLOCK_SPLITTING_OVERHEAD,
    RsfqCellKind,
    RsfqLibrary,
    clock_splitter_count,
    default_rsfq_library,
)

#: Gate decomposition targets: LogicNetwork gate type -> RSFQ cell kind used
#: for each node of the balanced 2-input tree.
_PAIRWISE_KINDS: Dict[GateType, RsfqCellKind] = {
    GateType.AND: RsfqCellKind.AND2,
    GateType.NAND: RsfqCellKind.AND2,
    GateType.OR: RsfqCellKind.OR2,
    GateType.NOR: RsfqCellKind.OR2,
    GateType.XOR: RsfqCellKind.XOR2,
    GateType.XNOR: RsfqCellKind.XOR2,
}

#: Gate types whose decomposition needs a final inverter.
_NEEDS_FINAL_INVERTER = {GateType.NAND, GateType.NOR, GateType.XNOR}


@dataclass
class RsfqMappingResult:
    """Component breakdown of a path-balanced RSFQ mapping.

    Attributes:
        name: Circuit name.
        gate_counts: Instance count per RSFQ cell kind (logic cells only).
        num_logic_cells: Total clocked logic cells (AND/OR/XOR/NOT...).
        num_state_dffs: DFFs implementing sequential state.
        num_balancing_dffs: DFFs inserted purely for path balancing.
        num_splitters: Data fanout splitters.
        num_clock_splitters: Splitters in the clock distribution tree.
        logic_levels: Number of clock stages from inputs to outputs.
    """

    name: str
    gate_counts: Dict[RsfqCellKind, int] = field(default_factory=dict)
    num_logic_cells: int = 0
    num_state_dffs: int = 0
    num_balancing_dffs: int = 0
    num_splitters: int = 0
    num_clock_splitters: int = 0
    logic_levels: int = 0

    def total_cells(self) -> Dict[RsfqCellKind, int]:
        """All cell instances, including DFFs and splitters."""
        counts = dict(self.gate_counts)
        counts[RsfqCellKind.DFF] = (
            counts.get(RsfqCellKind.DFF, 0) + self.num_state_dffs + self.num_balancing_dffs
        )
        counts[RsfqCellKind.SPLITTER] = (
            counts.get(RsfqCellKind.SPLITTER, 0) + self.num_splitters + self.num_clock_splitters
        )
        return counts

    def jj_count(
        self,
        library: Optional[RsfqLibrary] = None,
        include_clock_tree: bool = True,
    ) -> int:
        """Total JJ count, optionally excluding the explicit clock tree.

        PBMap and qSeq do not report clock tree costs, so the paper's
        comparisons use ``include_clock_tree=False`` for the baseline column
        and then add a 30% overhead for clock splitting separately.
        """
        library = library or default_rsfq_library()
        counts = dict(self.gate_counts)
        counts[RsfqCellKind.DFF] = (
            counts.get(RsfqCellKind.DFF, 0) + self.num_state_dffs + self.num_balancing_dffs
        )
        counts[RsfqCellKind.SPLITTER] = counts.get(RsfqCellKind.SPLITTER, 0) + self.num_splitters
        if include_clock_tree:
            counts[RsfqCellKind.SPLITTER] += self.num_clock_splitters
        return library.total_jj(counts)

    def jj_count_with_clock_overhead(self, library: Optional[RsfqLibrary] = None) -> int:
        """JJ count using the paper's 30% clock-splitting overhead convention."""
        return round(self.jj_count(library, include_clock_tree=False) * (1.0 + CLOCK_SPLITTING_OVERHEAD))

    @property
    def num_clocked_cells(self) -> int:
        """All cells that require a clock pulse (logic gates + DFFs)."""
        return self.num_logic_cells + self.num_state_dffs + self.num_balancing_dffs


def _decompose_gate(gate: Gate) -> Tuple[List[RsfqCellKind], int]:
    """RSFQ cells and local depth needed to implement one network gate.

    Multi-input gates become balanced trees of 2-input cells; inverting
    types get one extra clocked inverter.  Returns ``(cells, depth)``.
    """
    t = gate.gate_type
    n = len(gate.fanins)
    if t in (GateType.INPUT, GateType.CONST0, GateType.CONST1, GateType.DFF):
        return [], 0
    if t is GateType.BUF:
        return [RsfqCellKind.BUF], 0
    if t is GateType.NOT:
        return [RsfqCellKind.NOT], 1
    if t is GateType.MUX:
        # sel ? d1 : d0 = (sel AND d1) OR (NOT sel AND d0): 2 AND + 1 OR + 1 NOT
        return [
            RsfqCellKind.NOT,
            RsfqCellKind.AND2,
            RsfqCellKind.AND2,
            RsfqCellKind.OR2,
        ], 3
    if t in _PAIRWISE_KINDS:
        kind = _PAIRWISE_KINDS[t]
        num_cells = max(0, n - 1)
        depth = max(1, (n - 1).bit_length()) if n > 1 else 1
        cells = [kind] * num_cells if num_cells else [RsfqCellKind.BUF]
        if t in _NEEDS_FINAL_INVERTER:
            cells.append(RsfqCellKind.NOT)
            depth += 1
        if n == 1:
            # Degenerate single-input gate behaves like a buffer/inverter.
            cells = [RsfqCellKind.NOT] if t in _NEEDS_FINAL_INVERTER else [RsfqCellKind.BUF]
            depth = 1 if t in _NEEDS_FINAL_INVERTER else 0
        return cells, depth
    raise NetworkError(f"cannot map gate type {t} to the RSFQ library")


def map_rsfq_path_balanced(
    network: LogicNetwork,
    include_io_balancing: bool = True,
    count_clock_tree: bool = True,
    name: Optional[str] = None,
) -> RsfqMappingResult:
    """Map a network to clocked RSFQ cells with full path balancing.

    Args:
        network: Combinational or sequential gate-level network.
        include_io_balancing: Also balance primary inputs/outputs to a
            common stage (standard practice for gate-level-pipelined RSFQ).
        count_clock_tree: Compute the explicit clock splitter tree size.
        name: Result name (defaults to the network's).

    Returns:
        An :class:`RsfqMappingResult` with the component breakdown.
    """
    network.validate()
    result = RsfqMappingResult(name or network.name)

    # 1. Decompose gates, recording each signal's clocked depth contribution.
    local_depth: Dict[str, int] = {}
    for gate in network.gates.values():
        cells, depth = _decompose_gate(gate)
        for kind in cells:
            result.gate_counts[kind] = result.gate_counts.get(kind, 0) + 1
        local_depth[gate.name] = depth
    result.num_logic_cells = sum(
        count
        for kind, count in result.gate_counts.items()
        if kind not in (RsfqCellKind.BUF, RsfqCellKind.JTL, RsfqCellKind.SPLITTER)
    )

    # 2. Levelise: the clocked level of a signal is the number of clocked
    #    stages from the sources (PIs / FF outputs) up to and including it.
    level: Dict[str, int] = {}
    for signal in network.topological_order():
        gate = network.gates[signal]
        if gate.gate_type in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1):
            level[signal] = 0
        else:
            fanin_level = max((level[f] for f in gate.fanins), default=0)
            level[signal] = fanin_level + local_depth[signal]
    max_level = max(level.values(), default=0)
    result.logic_levels = max_level

    # 3. Path-balancing DFFs.  A driver feeding consumers at deeper stages
    #    needs a chain of DFFs as long as the largest stage gap; consumers
    #    with smaller gaps tap the chain at intermediate points (this
    #    sharing is what mappers like PBMap optimise for, so counting the
    #    shared chain keeps the baseline competitive / the comparison
    #    conservative).
    max_gap: Dict[str, int] = {}

    def record_gap(driver: str, consumer_entry_level: int) -> None:
        gap = consumer_entry_level - level[driver]
        if gap > 0:
            max_gap[driver] = max(max_gap.get(driver, 0), gap)

    for gate in network.gates.values():
        if gate.gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        consumer_entry_level = level[gate.name] - local_depth.get(gate.name, 0)
        if gate.gate_type is GateType.DFF:
            consumer_entry_level = max_level if include_io_balancing else level[gate.fanins[0]]
        for fanin in gate.fanins:
            record_gap(fanin, consumer_entry_level)
    if include_io_balancing:
        for out in network.outputs:
            record_gap(out, max_level)
    result.num_balancing_dffs = sum(max_gap.values())

    # 4. Sequential state cells.
    result.num_state_dffs = len(network.latches)

    # 5. Data fanout splitters: every consumer beyond the first needs one.
    fanout: Dict[str, int] = {s: 0 for s in network.gates}
    for gate in network.gates.values():
        for fanin in gate.fanins:
            fanout[fanin] = fanout.get(fanin, 0) + 1
    for out in network.outputs:
        fanout[out] = fanout.get(out, 0) + 1
    result.num_splitters = sum(max(0, count - 1) for count in fanout.values())

    # 6. Clock tree.
    if count_clock_tree:
        result.num_clock_splitters = clock_splitter_count(result.num_clocked_cells)
    return result
