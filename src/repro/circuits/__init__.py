"""Benchmark circuit generators (ISCAS85-, EPFL- and ISCAS89-class).

The original benchmark netlists are not redistributable, so this package
generates functionally analogous circuits with matching interfaces (see
DESIGN.md).  :mod:`repro.circuits.registry` maps every benchmark name used
in the paper's tables to a generator with both "paper" and "quick" scale
parameter sets.
"""

from .arith import (
    adder_comparator,
    alu,
    array_multiplier,
    equality_comparator,
    priority_interrupt_controller,
    ripple_carry_adder,
)
from .ecc import hamming_corrector, hamming_encoder, sec_ded_checker
from .epfl import (
    binary_decoder,
    cavlc_decoder,
    i2c_control_slice,
    int_to_float,
    majority_voter,
    memory_controller,
    packet_router,
    priority_encoder,
    round_robin_arbiter,
    simple_controller,
    sine_approximation,
)
from .sequential import (
    datapath_controller,
    fractional_counter,
    multiplier_control_unit,
    pld_state_machine,
    s27_like,
    sequence_detector,
    traffic_light_controller,
)
from .registry import CATALOG, CircuitInfo, build, info, names

__all__ = [
    "ripple_carry_adder",
    "array_multiplier",
    "alu",
    "adder_comparator",
    "equality_comparator",
    "priority_interrupt_controller",
    "hamming_encoder",
    "hamming_corrector",
    "sec_ded_checker",
    "round_robin_arbiter",
    "cavlc_decoder",
    "simple_controller",
    "binary_decoder",
    "i2c_control_slice",
    "int_to_float",
    "memory_controller",
    "priority_encoder",
    "packet_router",
    "majority_voter",
    "sine_approximation",
    "s27_like",
    "sequence_detector",
    "traffic_light_controller",
    "pld_state_machine",
    "fractional_counter",
    "multiplier_control_unit",
    "datapath_controller",
    "CATALOG",
    "CircuitInfo",
    "build",
    "info",
    "names",
]
