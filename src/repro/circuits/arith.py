"""Arithmetic circuit generators.

These generators produce the datapath-style combinational circuits used as
stand-ins for the ISCAS85 benchmarks (see the substitution note in
DESIGN.md): ripple and carry-save adders, array multipliers (the c6288
structure), ALUs, comparators and parity/checksum logic.  All generators
return plain :class:`~repro.netlist.network.LogicNetwork` objects and are
pure functions of their parameters, so the test-suite can check them
functionally against Python integer arithmetic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netlist.network import LogicNetwork, NetworkBuilder


def ripple_carry_adder(width: int, name: str = "rca") -> LogicNetwork:
    """``width``-bit ripple-carry adder with carry-in and carry-out."""
    b = NetworkBuilder(name)
    a = b.word_inputs("a", width)
    c = b.word_inputs("b", width)
    cin = b.input("cin")
    s, cout = b.ripple_adder(a, c, cin)
    b.word_outputs(s, "sum")
    b.output(cout, "cout")
    return b.finish()


def carry_save_sum(b: NetworkBuilder, operands: Sequence[Sequence[str]]) -> Tuple[List[str], List[str]]:
    """Reduce a list of equal-width operands with a carry-save adder tree.

    Returns the final two addends (sum word, carry word) of the reduction,
    both of the common width (carries overflowing the width are dropped by
    the caller or kept by extending the operands beforehand).
    """
    width = len(operands[0])
    rows = [list(op) for op in operands]
    while len(rows) > 2:
        next_rows: List[List[str]] = []
        for i in range(0, len(rows) - 2, 3):
            x, y, z = rows[i], rows[i + 1], rows[i + 2]
            sum_row: List[str] = []
            carry_row: List[str] = [b.const(0)]
            for k in range(width):
                s, c = _full_adder_bits(b, x[k], y[k], z[k])
                sum_row.append(s)
                if k + 1 < width:
                    carry_row.append(c)
            next_rows.append(sum_row)
            next_rows.append(carry_row[:width])
        remainder = len(rows) % 3
        if remainder:
            next_rows.extend(rows[-remainder:])
        rows = next_rows
    return rows[0], rows[1]


def _full_adder_bits(b: NetworkBuilder, x: str, y: str, z: str) -> Tuple[str, str]:
    return b.full_adder(x, y, z)


def array_multiplier(width: int = 16, name: Optional[str] = None) -> LogicNetwork:
    """Unsigned ``width x width`` array multiplier (the c6288 structure).

    c6288 is a 16x16 multiplier built from a carry-save array of full and
    half adders over AND-gate partial products; this generator builds the
    same structure for any width.
    """
    b = NetworkBuilder(name or f"mult{width}x{width}")
    a = b.word_inputs("a", width)
    c = b.word_inputs("b", width)

    # Partial products: pp[j][i] = a[i] AND b[j], weight i + j.
    product_width = 2 * width
    columns: List[List[str]] = [[] for _ in range(product_width)]
    for j in range(width):
        for i in range(width):
            columns[i + j].append(b.and_(a[i], c[j]))

    # Column-wise carry-save reduction (Wallace-style, 3:2 compressors).
    while any(len(col) > 2 for col in columns):
        new_columns: List[List[str]] = [[] for _ in range(product_width)]
        for weight, col in enumerate(columns):
            index = 0
            while len(col) - index >= 3:
                s, carry = b.full_adder(col[index], col[index + 1], col[index + 2])
                new_columns[weight].append(s)
                if weight + 1 < product_width:
                    new_columns[weight + 1].append(carry)
                index += 3
            if len(col) - index == 2:
                s, carry = b.half_adder(col[index], col[index + 1])
                new_columns[weight].append(s)
                if weight + 1 < product_width:
                    new_columns[weight + 1].append(carry)
                index += 2
            new_columns[weight].extend(col[index:])
        columns = new_columns

    # Final carry-propagate addition over the two remaining rows.
    addend_a = [col[0] if len(col) > 0 else b.const(0) for col in columns]
    addend_b = [col[1] if len(col) > 1 else b.const(0) for col in columns]
    total, _ = b.ripple_adder(addend_a, addend_b)
    b.word_outputs(total, "p")
    return b.finish()


def equality_comparator(width: int, name: str = "eq") -> LogicNetwork:
    """``a == b`` over two ``width``-bit words."""
    b = NetworkBuilder(name)
    a = b.word_inputs("a", width)
    c = b.word_inputs("b", width)
    bits = [b.xnor(x, y) for x, y in zip(a, c)]
    b.output(b.and_(*bits), "eq")
    return b.finish()


def magnitude_comparator(b: NetworkBuilder, a: Sequence[str], c: Sequence[str]) -> Tuple[str, str, str]:
    """Build an unsigned comparator; returns (a_gt_b, a_eq_b, a_lt_b) signals."""
    eq_so_far = b.const(1)
    gt = b.const(0)
    lt = b.const(0)
    for x, y in zip(reversed(list(a)), reversed(list(c))):
        bit_eq = b.xnor(x, y)
        bit_gt = b.and_(x, b.not_(y))
        bit_lt = b.and_(b.not_(x), y)
        gt = b.or_(gt, b.and_(eq_so_far, bit_gt))
        lt = b.or_(lt, b.and_(eq_so_far, bit_lt))
        eq_so_far = b.and_(eq_so_far, bit_eq)
    return gt, eq_so_far, lt


def parity_tree(b: NetworkBuilder, bits: Sequence[str]) -> str:
    """XOR-reduce a list of signals (odd parity)."""
    signals = list(bits)
    if not signals:
        return b.const(0)
    while len(signals) > 1:
        nxt = [b.xor(signals[i], signals[i + 1]) for i in range(0, len(signals) - 1, 2)]
        if len(signals) % 2:
            nxt.append(signals[-1])
        signals = nxt
    return signals[0]


def alu(width: int = 8, name: Optional[str] = None, with_shift: bool = True) -> LogicNetwork:
    """A ``width``-bit ALU with eight operations (the c880/c3540/c5315 class).

    Operations (selected by a 3-bit opcode): ADD, SUB, AND, OR, XOR, pass A,
    NOT A and, when ``with_shift`` is set, shift-left-by-one (otherwise
    pass B).  Also produces carry-out, zero and parity flags, which is what
    gives the ISCAS85 ALU circuits their wide output interface.
    """
    b = NetworkBuilder(name or f"alu{width}")
    a = b.word_inputs("a", width)
    c = b.word_inputs("b", width)
    op = b.word_inputs("op", 3)

    # Arithmetic: shared adder computes A + (B xor sub) + sub.
    sub = op[0]
    b_mod = [b.xor(bit, sub) for bit in c]
    add_sum, add_cout = b.ripple_adder(a, b_mod, sub)

    and_word = [b.and_(x, y) for x, y in zip(a, c)]
    or_word = [b.or_(x, y) for x, y in zip(a, c)]
    xor_word = [b.xor(x, y) for x, y in zip(a, c)]
    not_word = [b.not_(x) for x in a]
    if with_shift:
        shift_word = [b.const(0)] + list(a[:-1])
    else:
        shift_word = list(c)

    # Operation multiplexing: op encodes {0:ADD,1:SUB,2:AND,3:OR,4:XOR,5:PASS,6:NOT,7:SHIFT}.
    result: List[str] = []
    for i in range(width):
        arith = add_sum[i]
        logic_low = b.mux(op[0], and_word[i], or_word[i])       # op[1:3]==01
        logic_high = b.mux(op[0], xor_word[i], a[i])            # op[1:3]==10
        misc = b.mux(op[0], not_word[i], shift_word[i])         # op[1:3]==11
        sel_01 = b.mux(op[1], arith, logic_low)
        sel_23 = b.mux(op[1], logic_high, misc)
        result.append(b.mux(op[2], sel_01, sel_23))

    b.word_outputs(result, "y")
    b.output(add_cout, "cout")
    zero_bits = [b.not_(bit) for bit in result]
    b.output(b.and_(*zero_bits), "zero")
    b.output(parity_tree(b, result), "parity")
    gt, eq, lt = magnitude_comparator(b, a, c)
    b.output(gt, "a_gt_b")
    b.output(eq, "a_eq_b")
    b.output(lt, "a_lt_b")
    return b.finish()


def adder_comparator(width: int = 32, name: Optional[str] = None) -> LogicNetwork:
    """Adder + magnitude comparator + parity (the c7552 class)."""
    b = NetworkBuilder(name or f"addcmp{width}")
    a = b.word_inputs("a", width)
    c = b.word_inputs("b", width)
    cin = b.input("cin")
    s, cout = b.ripple_adder(a, c, cin)
    b.word_outputs(s, "sum")
    b.output(cout, "cout")
    gt, eq, lt = magnitude_comparator(b, a, c)
    b.output(gt, "a_gt_b")
    b.output(eq, "a_eq_b")
    b.output(lt, "a_lt_b")
    b.output(parity_tree(b, list(a) + list(c)), "parity")
    return b.finish()


def priority_interrupt_controller(channels: int = 27, name: Optional[str] = None) -> LogicNetwork:
    """Priority interrupt controller (the c432 class).

    ``channels`` request lines and matching enable lines; the controller
    grants the highest-priority enabled request and outputs the grant
    one-hot vector plus the encoded channel index.
    """
    b = NetworkBuilder(name or f"intctl{channels}")
    requests = b.word_inputs("req", channels)
    enables = b.word_inputs("en", channels)
    active = [b.and_(r, e) for r, e in zip(requests, enables)]

    grants: List[str] = []
    blocked = b.const(0)
    for signal in active:
        grant = b.and_(signal, b.not_(blocked))
        grants.append(grant)
        blocked = b.or_(blocked, signal)
    b.word_outputs(grants, "grant")
    b.output(blocked, "any")

    index_width = max(1, (channels - 1).bit_length())
    for bit in range(index_width):
        terms = [g for i, g in enumerate(grants) if (i >> bit) & 1]
        b.output(b.or_(*terms) if terms else b.const(0), f"index[{bit}]")
    return b.finish()
