"""Error-correcting-code circuit generators (the c499/c1355/c1908 class).

The ISCAS85 circuits c499/c1355 are 32-bit single-error-correcting (SEC)
circuits and c1908 is a 16-bit SEC/DED (double-error-detecting) circuit.
These generators build the same kind of logic — syndrome computation over
XOR trees, a syndrome decoder and the correction network — for arbitrary
data widths, so the evaluation exercises the same XOR-dominated structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..netlist.network import LogicNetwork, NetworkBuilder
from .arith import parity_tree


def _hamming_parity_positions(data_bits: int) -> Tuple[int, List[int]]:
    """Number of check bits and the (1-based) codeword positions of data bits."""
    check_bits = 0
    while (1 << check_bits) < data_bits + check_bits + 1:
        check_bits += 1
    # Positions that are powers of two hold check bits; everything else data.
    data_positions = [
        pos for pos in range(1, data_bits + check_bits + 1) if (pos & (pos - 1)) != 0
    ]
    return check_bits, data_positions[:data_bits]


def hamming_encoder(data_bits: int = 32, name: Optional[str] = None) -> LogicNetwork:
    """Hamming SEC encoder: data in, check bits out."""
    b = NetworkBuilder(name or f"hamming_enc{data_bits}")
    data = b.word_inputs("d", data_bits)
    check_bits, positions = _hamming_parity_positions(data_bits)
    for check in range(check_bits):
        mask = 1 << check
        covered = [data[i] for i, pos in enumerate(positions) if pos & mask]
        b.output(parity_tree(b, covered), f"c[{check}]")
    b.output(parity_tree(b, list(data)), "overall_parity")
    return b.finish()


def hamming_corrector(data_bits: int = 32, name: Optional[str] = None) -> LogicNetwork:
    """Hamming SEC decoder/corrector (the c499/c1355 class).

    Inputs are the received data word and received check bits; outputs are
    the corrected data word and an error indicator.  c499 has 41 inputs and
    32 outputs for 32 data bits, which matches this generator's interface
    (32 data + 6 check + 1 overall parity ~ 39-41 inputs depending on width).
    """
    b = NetworkBuilder(name or f"hamming_cor{data_bits}")
    data = b.word_inputs("d", data_bits)
    check_bits, positions = _hamming_parity_positions(data_bits)
    received_checks = b.word_inputs("c", check_bits)

    # Syndrome: recomputed check bits XOR received check bits.
    syndrome: List[str] = []
    for check in range(check_bits):
        mask = 1 << check
        covered = [data[i] for i, pos in enumerate(positions) if pos & mask]
        recomputed = parity_tree(b, covered)
        syndrome.append(b.xor(recomputed, received_checks[check]))

    # Correction: flip the data bit whose codeword position equals the syndrome.
    corrected: List[str] = []
    for i, pos in enumerate(positions):
        match_terms = []
        for check in range(check_bits):
            bit_set = (pos >> check) & 1
            match_terms.append(syndrome[check] if bit_set else b.not_(syndrome[check]))
        is_flipped = b.and_(*match_terms)
        corrected.append(b.xor(data[i], is_flipped))
    b.word_outputs(corrected, "q")
    b.output(b.or_(*syndrome), "error")
    return b.finish()


def sec_ded_checker(data_bits: int = 16, name: Optional[str] = None) -> LogicNetwork:
    """SEC/DED checker (the c1908 class): corrects single and flags double errors."""
    b = NetworkBuilder(name or f"secded{data_bits}")
    data = b.word_inputs("d", data_bits)
    check_bits, positions = _hamming_parity_positions(data_bits)
    received_checks = b.word_inputs("c", check_bits)
    received_overall = b.input("p")

    syndrome: List[str] = []
    for check in range(check_bits):
        mask = 1 << check
        covered = [data[i] for i, pos in enumerate(positions) if pos & mask]
        syndrome.append(b.xor(parity_tree(b, covered), received_checks[check]))
    overall = b.xor(parity_tree(b, list(data) + list(received_checks)), received_overall)

    corrected: List[str] = []
    for i, pos in enumerate(positions):
        match_terms = []
        for check in range(check_bits):
            bit_set = (pos >> check) & 1
            match_terms.append(syndrome[check] if bit_set else b.not_(syndrome[check]))
        corrected.append(b.xor(data[i], b.and_(b.and_(*match_terms), overall)))
    b.word_outputs(corrected, "q")
    syndrome_nonzero = b.or_(*syndrome)
    b.output(b.and_(syndrome_nonzero, overall), "single_error")
    b.output(b.and_(syndrome_nonzero, b.not_(overall)), "double_error")
    return b.finish()
