"""EPFL-control-class benchmark generators.

The paper's Table 3 and Table 4 use the "control" circuits of the EPFL
combinational benchmark suite (arbiter, cavlc, ctrl, dec, i2c, int2float,
mem_ctrl, priority, router, voter) plus the arithmetic circuit *sin*.  The
original netlists cannot be redistributed here, so each generator below
builds a circuit of the same functional family with a comparable interface
(see DESIGN.md's substitution note); sizes are parameterisable, with
defaults chosen to stay within a pure-Python synthesis budget while keeping
the structural character (priority chains, decoders, majority voting,
multiplier-based function evaluation...) that drives the paper's
duplication-penalty observations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..netlist.network import LogicNetwork, NetworkBuilder
from .arith import array_multiplier, carry_save_sum, magnitude_comparator, parity_tree


def round_robin_arbiter(num_requests: int = 16, name: Optional[str] = None) -> LogicNetwork:
    """Round-robin arbiter (the EPFL ``arbiter`` class).

    Inputs: request lines plus a one-hot-ish "last grant" pointer; outputs:
    one grant per requester.  The grant logic searches for the first active
    request at or after the pointer, wrapping around — the double priority
    chain is what the real arbiter circuit contains.
    """
    b = NetworkBuilder(name or f"arbiter{num_requests}")
    requests = b.word_inputs("req", num_requests)
    pointer = b.word_inputs("ptr", num_requests)

    # Masked requests: only requesters at or after the pointer position.
    mask: List[str] = []
    seen = b.const(0)
    for i in range(num_requests):
        seen = b.or_(seen, pointer[i])
        mask.append(seen)
    masked = [b.and_(r, m) for r, m in zip(requests, mask)]

    def priority_chain(signals: Sequence[str]) -> List[str]:
        grants: List[str] = []
        blocked = b.const(0)
        for signal in signals:
            grants.append(b.and_(signal, b.not_(blocked)))
            blocked = b.or_(blocked, signal)
        return grants

    masked_grants = priority_chain(masked)
    unmasked_grants = priority_chain(requests)
    any_masked = b.or_(*masked) if masked else b.const(0)
    grants = [b.mux(any_masked, u, m) for m, u in zip(masked_grants, unmasked_grants)]
    b.word_outputs(grants, "grant")
    b.output(b.or_(*requests), "busy")
    return b.finish()


def cavlc_decoder(name: Optional[str] = None) -> LogicNetwork:
    """Variable-length-code decoder slice (the EPFL ``cavlc`` class).

    10-bit code buffer plus a 2-bit context in, decoded fields out:
    leading-zero count, coefficient level, token length and a valid flag.
    """
    b = NetworkBuilder(name or "cavlc")
    code = b.word_inputs("code", 10)
    context = b.word_inputs("ctx", 2)

    # Leading-zero count (priority encode from MSB).
    lz_bits = 4
    seen = b.const(0)
    count = [b.const(0)] * lz_bits
    for position, bit in enumerate(reversed(code)):
        is_first_one = b.and_(bit, b.not_(seen))
        for k in range(lz_bits):
            if (position >> k) & 1:
                count[k] = b.or_(count[k], is_first_one)
        seen = b.or_(seen, bit)
    for k in range(lz_bits):
        b.output(count[k], f"lzc[{k}]")
    b.output(seen, "valid")

    # Decoded level: suffix bits selected by the context, sign-extended.
    level: List[str] = []
    for k in range(4):
        low = code[k]
        high = code[k + 4]
        level.append(b.mux(context[0], low, high))
    sign = b.mux(context[1], code[9], code[0])
    for k in range(4):
        b.output(b.xor(level[k], sign), f"level[{k}]")

    # Token length = leading zeros + suffix length (context dependent).
    suffix = [b.and_(context[0], context[1]), b.or_(context[0], context[1]), b.const(0)]
    length, _ = b.ripple_adder(count[:3], suffix)
    for k, bit in enumerate(length):
        b.output(bit, f"len[{k}]")
    return b.finish()


def simple_controller(opcode_bits: int = 7, control_lines: int = 26, name: Optional[str] = None) -> LogicNetwork:
    """Instruction-decoder style controller (the EPFL ``ctrl`` class)."""
    b = NetworkBuilder(name or "ctrl")
    opcode = b.word_inputs("op", opcode_bits)
    # Each control line is a small product-of-literals over the opcode with a
    # deterministic pattern, mimicking decoded control signals.
    for line in range(control_lines):
        literals: List[str] = []
        for bit in range(opcode_bits):
            if (line >> (bit % 5)) & 1 == (bit + line) % 2:
                literals.append(opcode[bit] if (line + bit) % 3 else b.not_(opcode[bit]))
        if not literals:
            literals = [opcode[line % opcode_bits]]
        term = b.and_(*literals) if len(literals) > 1 else literals[0]
        extra = b.xor(opcode[line % opcode_bits], opcode[(line + 3) % opcode_bits])
        b.output(b.or_(term, b.and_(extra, opcode[(line + 1) % opcode_bits])), f"ctl[{line}]")
    return b.finish()


def binary_decoder(address_bits: int = 8, name: Optional[str] = None) -> LogicNetwork:
    """Full binary decoder, ``address_bits`` to ``2**address_bits`` (EPFL ``dec``)."""
    b = NetworkBuilder(name or f"dec{address_bits}")
    address = b.word_inputs("a", address_bits)
    inverted = [b.not_(bit) for bit in address]
    for value in range(1 << address_bits):
        literals = [address[k] if (value >> k) & 1 else inverted[k] for k in range(address_bits)]
        b.output(b.and_(*literals), f"y[{value}]")
    return b.finish()


def i2c_control_slice(name: Optional[str] = None) -> LogicNetwork:
    """Combinational next-state/control slice of an I2C controller (EPFL ``i2c`` class).

    State inputs (bit counter, byte state, shift register, command register)
    and serial lines in; next-state values and status flags out.  The EPFL
    benchmark is the flattened combinational core of such a controller.
    """
    b = NetworkBuilder(name or "i2c")
    scl = b.input("scl")
    sda = b.input("sda")
    start = b.input("start")
    stop = b.input("stop")
    command = b.word_inputs("cmd", 4)
    bit_counter = b.word_inputs("bitcnt", 3)
    state = b.word_inputs("state", 4)
    shift = b.word_inputs("shift", 8)

    # Bit counter increments on SCL when transferring, clears on start/stop.
    one = [b.const(1)] + [b.const(0)] * 2
    incremented, _ = b.ripple_adder(bit_counter, one)
    clear = b.or_(start, stop)
    transferring = b.or_(state[1], state[2])
    for k in range(3):
        nxt = b.mux(b.and_(scl, transferring), bit_counter[k], incremented[k])
        b.output(b.and_(nxt, b.not_(clear)), f"bitcnt_next[{k}]")

    # Shift register shifts SDA in during reads.
    reading = b.and_(state[2], command[1])
    for k in range(8):
        source = sda if k == 0 else shift[k - 1]
        b.output(b.mux(reading, shift[k], source), f"shift_next[{k}]")

    # Next state: a small one-hot controller.
    bit7 = b.and_(bit_counter[0], b.and_(bit_counter[1], bit_counter[2]))
    done = b.and_(bit7, scl)
    b.output(b.or_(b.and_(state[0], b.not_(start)), b.and_(state[3], stop)), "state_next[0]")
    b.output(b.or_(b.and_(state[0], start), b.and_(state[1], b.not_(done))), "state_next[1]")
    b.output(b.or_(b.and_(state[1], done), b.and_(state[2], b.not_(done))), "state_next[2]")
    b.output(b.or_(b.and_(state[2], done), b.and_(state[3], b.not_(stop))), "state_next[3]")

    # Status flags.
    b.output(b.and_(state[3], b.xor(shift[7], command[0])), "ack_error")
    b.output(parity_tree(b, list(shift)), "shift_parity")
    b.output(b.and_(command[3], b.or_(start, b.and_(scl, sda))), "bus_busy")
    return b.finish()


def int_to_float(int_bits: int = 11, name: Optional[str] = None) -> LogicNetwork:
    """Integer-to-float converter (the EPFL ``int2float`` class).

    Converts an ``int_bits``-bit unsigned integer to a small float with a
    3-bit exponent and 3-bit mantissa (7 output bits like the original).
    """
    b = NetworkBuilder(name or "int2float")
    value = b.word_inputs("x", int_bits)

    # Priority encode the leading one -> exponent.
    exp_bits = 3
    seen = b.const(0)
    exponent = [b.const(0)] * exp_bits
    for position in range(int_bits - 1, -1, -1):
        is_leading = b.and_(value[position], b.not_(seen))
        for k in range(exp_bits):
            if (position >> k) & 1:
                exponent[k] = b.or_(exponent[k], is_leading)
        seen = b.or_(seen, value[position])

    # Mantissa: the three bits below the leading one (approximate shifter).
    mantissa = [b.const(0)] * 3
    for position in range(int_bits - 1, 2, -1):
        is_leading = b.and_(value[position], b.not_(b.or_(*[value[j] for j in range(position + 1, int_bits)]) if position + 1 < int_bits else b.const(0)))
        for k in range(3):
            mantissa[k] = b.or_(mantissa[k], b.and_(is_leading, value[position - 3 + k]))
    for k in range(3):
        b.output(mantissa[k], f"man[{k}]")
    for k in range(exp_bits):
        b.output(exponent[k], f"exp[{k}]")
    b.output(seen, "nonzero")
    return b.finish()


def memory_controller(num_banks: int = 4, address_bits: int = 8, name: Optional[str] = None) -> LogicNetwork:
    """Reduced-scale memory controller core (the EPFL ``mem_ctrl`` class).

    Request/address/refresh inputs per bank, grant/command outputs per bank.
    The original benchmark is far larger (1200+ IO); this generator keeps
    the same structure — per-bank address decode, request arbitration,
    refresh override, command encoding — at a configurable scale.
    """
    b = NetworkBuilder(name or f"mem_ctrl{num_banks}")
    requests = b.word_inputs("req", num_banks)
    writes = b.word_inputs("we", num_banks)
    refresh = b.input("refresh")
    address = b.word_inputs("addr", address_bits)
    open_row = [b.word_inputs(f"row{bank}", address_bits // 2) for bank in range(num_banks)]

    # Bank select from high address bits.
    bank_bits = max(1, (num_banks - 1).bit_length())
    bank_sel: List[str] = []
    for bank in range(num_banks):
        literals = [
            address[address_bits - bank_bits + k] if (bank >> k) & 1 else b.not_(address[address_bits - bank_bits + k])
            for k in range(bank_bits)
        ]
        bank_sel.append(b.and_(*literals) if len(literals) > 1 else literals[0])

    # Row hit detection per bank.
    row = address[: address_bits // 2]
    hits: List[str] = []
    for bank in range(num_banks):
        eq_bits = [b.xnor(x, y) for x, y in zip(row, open_row[bank])]
        hits.append(b.and_(*eq_bits))

    # Arbitration: fixed priority among requesting banks, refresh overrides.
    blocked = b.const(0)
    for bank in range(num_banks):
        want = b.and_(requests[bank], bank_sel[bank])
        grant = b.and_(want, b.not_(blocked))
        blocked = b.or_(blocked, want)
        grant = b.and_(grant, b.not_(refresh))
        b.output(grant, f"grant[{bank}]")
        b.output(b.and_(grant, hits[bank]), f"row_hit[{bank}]")
        b.output(b.and_(grant, b.not_(hits[bank])), f"activate[{bank}]")
        b.output(b.and_(grant, writes[bank]), f"write_cmd[{bank}]")
    b.output(refresh, "refresh_cmd")
    b.output(blocked, "any_request")
    return b.finish()


def priority_encoder(width: int = 128, name: Optional[str] = None) -> LogicNetwork:
    """Priority encoder (the EPFL ``priority`` class): first set bit's index."""
    b = NetworkBuilder(name or f"priority{width}")
    lines = b.word_inputs("r", width)
    index_bits = max(1, (width - 1).bit_length())
    seen = b.const(0)
    index = [b.const(0)] * index_bits
    for position, line in enumerate(lines):
        is_first = b.and_(line, b.not_(seen))
        for k in range(index_bits):
            if (position >> k) & 1:
                index[k] = b.or_(index[k], is_first)
        seen = b.or_(seen, line)
    for k in range(index_bits):
        b.output(index[k], f"idx[{k}]")
    b.output(seen, "valid")
    return b.finish()


def packet_router(num_ports: int = 4, address_bits: int = 12, name: Optional[str] = None) -> LogicNetwork:
    """Destination-range lookup router (the EPFL ``router`` class)."""
    b = NetworkBuilder(name or "router")
    destination = b.word_inputs("dst", address_bits)
    valid = b.input("valid")
    bounds = [b.word_inputs(f"bound{port}", address_bits) for port in range(num_ports)]

    below_prev = b.const(1)
    for port in range(num_ports):
        gt, eq, lt = magnitude_comparator(b, destination, bounds[port])
        below = b.or_(lt, eq)
        in_range = b.and_(below, below_prev)
        b.output(b.and_(b.and_(in_range, valid), b.const(1)), f"port[{port}]")
        below_prev = b.and_(below_prev, b.not_(below))
    b.output(b.and_(below_prev, valid), "default_port")
    b.output(parity_tree(b, destination), "dst_parity")
    return b.finish()


def majority_voter(num_inputs: int = 101, name: Optional[str] = None) -> LogicNetwork:
    """Majority voter (the EPFL ``voter`` class).

    Counts the ones in the input vector with a carry-save adder tree and
    compares the count against half the width.  The final comparator needs
    both polarities of its operand bits, which is exactly why the paper
    measures a high duplication penalty for the original implementation of
    this circuit.
    """
    if num_inputs % 2 == 0:
        raise ValueError("majority_voter needs an odd number of inputs")
    b = NetworkBuilder(name or f"voter{num_inputs}")
    votes = b.word_inputs("v", num_inputs)
    count_bits = num_inputs.bit_length()

    # Sum all votes: represent each vote as a count_bits-wide operand.
    operands = [[vote] + [b.const(0)] * (count_bits - 1) for vote in votes]
    sum_word, carry_word = carry_save_sum(b, operands)
    total, _ = b.ripple_adder(sum_word, carry_word)

    threshold = num_inputs // 2  # majority when total > threshold
    threshold_bits = [b.const((threshold >> k) & 1) for k in range(len(total))]
    gt, _, _ = magnitude_comparator(b, total, threshold_bits)
    b.output(gt, "majority")
    return b.finish()


def sine_approximation(width: int = 10, name: Optional[str] = None) -> LogicNetwork:
    """Fixed-point sine approximation (the EPFL ``sin`` class).

    Evaluates a quadratic minimax-style approximation
    ``sin(pi/2 * x) ~ c1*x - c3*x*x*x`` using array multipliers over a
    ``width``-bit unsigned fixed-point input.  The multiplier-dominated
    structure mirrors the original arithmetic benchmark; the default width
    keeps the node count tractable for a pure-Python flow.
    """
    b = NetworkBuilder(name or f"sin{width}")
    x = b.word_inputs("x", width)

    def multiply(u: Sequence[str], v: Sequence[str]) -> List[str]:
        columns: List[List[str]] = [[] for _ in range(len(u) + len(v))]
        for j, vb in enumerate(v):
            for i, ub in enumerate(u):
                columns[i + j].append(b.and_(ub, vb))
        while any(len(col) > 2 for col in columns):
            new_columns: List[List[str]] = [[] for _ in range(len(columns))]
            for weight, col in enumerate(columns):
                idx = 0
                while len(col) - idx >= 3:
                    s, c = b.full_adder(col[idx], col[idx + 1], col[idx + 2])
                    new_columns[weight].append(s)
                    if weight + 1 < len(columns):
                        new_columns[weight + 1].append(c)
                    idx += 3
                if len(col) - idx == 2:
                    s, c = b.half_adder(col[idx], col[idx + 1])
                    new_columns[weight].append(s)
                    if weight + 1 < len(columns):
                        new_columns[weight + 1].append(c)
                    idx += 2
                new_columns[weight].extend(col[idx:])
            columns = new_columns
        left = [col[0] if col else b.const(0) for col in columns]
        right = [col[1] if len(col) > 1 else b.const(0) for col in columns]
        result, _ = b.ripple_adder(left, right)
        return result

    x_squared = multiply(x, x)[width:]          # keep the top bits (fixed point)
    x_cubed = multiply(x_squared[:width], x)[width:]
    # sin(pi/2 x) ~ 1.5708*x - 0.6460*x^3 in Q(width) fixed point; realise the
    # constant multiplications as shift-and-add over the available bits.
    term1 = list(x) + [b.const(0)]
    half_x = [b.const(0)] + list(x)
    term1_sum, _ = b.ripple_adder(term1, half_x[: len(term1)])
    cube = x_cubed[:width] + [b.const(0)]
    half_cube = [b.const(0)] + x_cubed[:width]
    term3, _ = b.ripple_adder(cube, half_cube[: len(cube)])
    inverted_term3 = [b.not_(bit) for bit in term3]
    one = [b.const(1)] + [b.const(0)] * (len(term3) - 1)
    neg_term3, _ = b.ripple_adder(inverted_term3, one)
    result, _ = b.ripple_adder(term1_sum, neg_term3)
    b.word_outputs(result, "sin")
    return b.finish()
