"""Benchmark circuit catalogue.

Maps the benchmark names used in the paper's evaluation (ISCAS85, EPFL
control, ISCAS89) to the generators of this package.  Because the original
netlists cannot be redistributed, every entry records which generator and
parameters stand in for the named circuit (see DESIGN.md's substitution
note).  Two parameter sets are provided per circuit:

* ``paper`` — dimensions close to the original benchmark's interface;
* ``quick`` — a reduced-scale variant used by the fast test-suite and the
  default benchmark runs, so the pure-Python flow stays responsive.

Use :func:`build` to obtain a :class:`LogicNetwork` for any catalogued name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..netlist.network import LogicNetwork
from . import arith, ecc, epfl, sequential

GeneratorFn = Callable[..., LogicNetwork]


@dataclass(frozen=True)
class CircuitInfo:
    """Catalogue entry for one benchmark circuit.

    Attributes:
        name: Benchmark name as used in the paper (e.g. ``"c880"``).
        suite: ``"iscas85"``, ``"epfl"`` or ``"iscas89"``.
        kind: ``"combinational"`` or ``"sequential"``.
        generator: Function building the stand-in circuit.
        paper_params: Parameters approximating the original's interface.
        quick_params: Reduced-scale parameters for fast runs.
        description: What the original circuit is / what the stand-in builds.
    """

    name: str
    suite: str
    kind: str
    generator: GeneratorFn
    paper_params: Dict[str, object]
    quick_params: Dict[str, object]
    description: str = ""

    def build(self, scale: str = "quick") -> LogicNetwork:
        """Instantiate the circuit at ``"paper"`` or ``"quick"`` scale."""
        params = self.paper_params if scale == "paper" else self.quick_params
        network = self.generator(**params)
        network.name = self.name
        return network


CATALOG: Dict[str, CircuitInfo] = {}


def _register(info: CircuitInfo) -> None:
    CATALOG[info.name] = info


# ---------------------------------------------------------------------------
# ISCAS85 (combinational)
# ---------------------------------------------------------------------------

_register(CircuitInfo(
    "c432", "iscas85", "combinational", arith.priority_interrupt_controller,
    {"channels": 27}, {"channels": 9},
    "27-channel priority interrupt controller",
))
_register(CircuitInfo(
    "c499", "iscas85", "combinational", ecc.hamming_corrector,
    {"data_bits": 32}, {"data_bits": 16},
    "32-bit single-error-correcting circuit",
))
_register(CircuitInfo(
    "c880", "iscas85", "combinational", arith.alu,
    {"width": 8}, {"width": 4},
    "8-bit ALU",
))
_register(CircuitInfo(
    "c1355", "iscas85", "combinational", ecc.hamming_corrector,
    {"data_bits": 32}, {"data_bits": 16},
    "32-bit single-error-correcting circuit (expanded XOR form)",
))
_register(CircuitInfo(
    "c1908", "iscas85", "combinational", ecc.sec_ded_checker,
    {"data_bits": 16}, {"data_bits": 8},
    "16-bit SEC/DED error checker",
))
_register(CircuitInfo(
    "c2670", "iscas85", "combinational", arith.adder_comparator,
    {"width": 12}, {"width": 6},
    "12-bit ALU and controller",
))
_register(CircuitInfo(
    "c3540", "iscas85", "combinational", arith.alu,
    {"width": 12}, {"width": 5},
    "8-bit ALU with BCD arithmetic (modelled as a wider binary ALU)",
))
_register(CircuitInfo(
    "c5315", "iscas85", "combinational", arith.alu,
    {"width": 16}, {"width": 6},
    "9-bit ALU with parity computing (modelled as a wider binary ALU)",
))
_register(CircuitInfo(
    "c6288", "iscas85", "combinational", arith.array_multiplier,
    {"width": 16}, {"width": 6},
    "16x16 array multiplier",
))
_register(CircuitInfo(
    "c7552", "iscas85", "combinational", arith.adder_comparator,
    {"width": 32}, {"width": 8},
    "32-bit adder/comparator",
))

# ---------------------------------------------------------------------------
# EPFL control circuits (+ sin)
# ---------------------------------------------------------------------------

_register(CircuitInfo(
    "arbiter", "epfl", "combinational", epfl.round_robin_arbiter,
    {"num_requests": 32}, {"num_requests": 8},
    "round-robin bus arbiter",
))
_register(CircuitInfo(
    "cavlc", "epfl", "combinational", epfl.cavlc_decoder,
    {}, {},
    "CAVLC variable-length-code decoder slice",
))
_register(CircuitInfo(
    "ctrl", "epfl", "combinational", epfl.simple_controller,
    {"opcode_bits": 7, "control_lines": 26}, {"opcode_bits": 5, "control_lines": 10},
    "instruction decoder / controller",
))
_register(CircuitInfo(
    "dec", "epfl", "combinational", epfl.binary_decoder,
    {"address_bits": 8}, {"address_bits": 5},
    "8-to-256 binary decoder",
))
_register(CircuitInfo(
    "i2c", "epfl", "combinational", epfl.i2c_control_slice,
    {}, {},
    "I2C controller combinational core",
))
_register(CircuitInfo(
    "int2float", "epfl", "combinational", epfl.int_to_float,
    {"int_bits": 11}, {"int_bits": 7},
    "integer to floating-point converter",
))
_register(CircuitInfo(
    "mem_ctrl", "epfl", "combinational", epfl.memory_controller,
    {"num_banks": 8, "address_bits": 12}, {"num_banks": 2, "address_bits": 6},
    "DRAM memory controller core (reduced scale)",
))
_register(CircuitInfo(
    "priority", "epfl", "combinational", epfl.priority_encoder,
    {"width": 128}, {"width": 32},
    "128-bit priority encoder",
))
_register(CircuitInfo(
    "router", "epfl", "combinational", epfl.packet_router,
    {"num_ports": 6, "address_bits": 16}, {"num_ports": 3, "address_bits": 8},
    "destination-range lookup router",
))
_register(CircuitInfo(
    "voter", "epfl", "combinational", epfl.majority_voter,
    {"num_inputs": 101}, {"num_inputs": 25},
    "majority voter (adder tree + comparator)",
))
_register(CircuitInfo(
    "sin", "epfl", "combinational", epfl.sine_approximation,
    {"width": 12}, {"width": 6},
    "fixed-point sine approximation (multiplier-based)",
))

# ---------------------------------------------------------------------------
# ISCAS89 (sequential)
# ---------------------------------------------------------------------------

_register(CircuitInfo(
    "s27", "iscas89", "sequential", sequential.s27_like,
    {}, {},
    "3-flip-flop control circuit",
))
_register(CircuitInfo(
    "s298", "iscas89", "sequential", sequential.sequence_detector,
    {"num_ff": 14, "num_inputs": 3, "num_outputs": 6},
    {"num_ff": 8, "num_inputs": 3, "num_outputs": 4},
    "traffic-light-style sequence controller",
))
_register(CircuitInfo(
    "s344", "iscas89", "sequential", sequential.multiplier_control_unit,
    {"width": 4, "num_outputs": 11}, {"width": 3, "num_outputs": 7},
    "4-bit shift-add multiplier control unit",
))
_register(CircuitInfo(
    "s349", "iscas89", "sequential", sequential.multiplier_control_unit,
    {"width": 4, "num_outputs": 11}, {"width": 3, "num_outputs": 7},
    "4-bit multiplier control unit (variant)",
))
_register(CircuitInfo(
    "s382", "iscas89", "sequential", sequential.traffic_light_controller,
    {"num_ff": 21}, {"num_ff": 9},
    "traffic light controller",
))
_register(CircuitInfo(
    "s386", "iscas89", "sequential", sequential.pld_state_machine,
    {"num_ff": 6, "num_inputs": 7, "num_outputs": 7},
    {"num_ff": 4, "num_inputs": 5, "num_outputs": 5},
    "PLD-style finite state machine",
))
_register(CircuitInfo(
    "s400", "iscas89", "sequential", sequential.traffic_light_controller,
    {"num_ff": 21}, {"num_ff": 9},
    "traffic light controller (variant)",
))
_register(CircuitInfo(
    "s420.1", "iscas89", "sequential", sequential.fractional_counter,
    {"num_ff": 16, "num_inputs": 18}, {"num_ff": 8, "num_inputs": 10},
    "fractional counter",
))
_register(CircuitInfo(
    "s444", "iscas89", "sequential", sequential.traffic_light_controller,
    {"num_ff": 21}, {"num_ff": 9},
    "traffic light controller (variant)",
))
_register(CircuitInfo(
    "s510", "iscas89", "sequential", sequential.pld_state_machine,
    {"num_ff": 6, "num_inputs": 19, "num_outputs": 7},
    {"num_ff": 4, "num_inputs": 9, "num_outputs": 5},
    "control-dominated finite state machine",
))
_register(CircuitInfo(
    "s526", "iscas89", "sequential", sequential.traffic_light_controller,
    {"num_ff": 21}, {"num_ff": 9},
    "traffic light controller (variant)",
))
_register(CircuitInfo(
    "s641", "iscas89", "sequential", sequential.datapath_controller,
    {"num_ff": 19, "num_inputs": 35, "num_outputs": 24},
    {"num_ff": 9, "num_inputs": 15, "num_outputs": 10},
    "bus interface datapath controller",
))
_register(CircuitInfo(
    "s713", "iscas89", "sequential", sequential.datapath_controller,
    {"num_ff": 19, "num_inputs": 35, "num_outputs": 23},
    {"num_ff": 9, "num_inputs": 15, "num_outputs": 10},
    "bus interface datapath controller (with redundancy)",
))
_register(CircuitInfo(
    "s820", "iscas89", "sequential", sequential.pld_state_machine,
    {"num_ff": 5, "num_inputs": 18, "num_outputs": 19},
    {"num_ff": 4, "num_inputs": 9, "num_outputs": 9},
    "PLD-style state machine with wide IO",
))
_register(CircuitInfo(
    "s832", "iscas89", "sequential", sequential.pld_state_machine,
    {"num_ff": 5, "num_inputs": 18, "num_outputs": 19},
    {"num_ff": 4, "num_inputs": 9, "num_outputs": 9},
    "PLD-style state machine with wide IO (variant)",
))
_register(CircuitInfo(
    "s838.1", "iscas89", "sequential", sequential.fractional_counter,
    {"num_ff": 32, "num_inputs": 34}, {"num_ff": 12, "num_inputs": 14},
    "32-bit fractional counter",
))


def names(suite: Optional[str] = None, kind: Optional[str] = None) -> List[str]:
    """Catalogued circuit names, optionally filtered by suite or kind."""
    return [
        name
        for name, info in CATALOG.items()
        if (suite is None or info.suite == suite) and (kind is None or info.kind == kind)
    ]


def info(name: str) -> CircuitInfo:
    """Catalogue entry for ``name`` (raises ``KeyError`` for unknown names).

    Names using the generated-circuit grammar (``gen:<family>:...:s<seed>``,
    see :mod:`repro.gen.spec`) are self-describing: when absent from the
    catalogue they resolve to a synthetic entry on the fly, so any process
    — including ``multiprocessing`` workers replaying a fuzz campaign —
    can build them from the name alone, without shared registry state.
    """
    entry = CATALOG.get(name)
    if entry is not None:
        return entry
    if name.startswith("gen:"):
        from ..gen.spec import resolve  # late import: gen depends on this module

        return resolve(name)
    raise KeyError(name)


def build(name: str, scale: str = "quick") -> LogicNetwork:
    """Build the stand-in circuit for a catalogued benchmark name."""
    return info(name).build(scale)
