"""Sequential benchmark generators (the ISCAS89 class).

The ISCAS89 circuits used in the paper's Table 6 are small-to-medium FSMs
and counters (traffic-light controllers, fractional counters, PLD-style
state machines, multiplier control units...).  The original netlists cannot
be shipped, so the generators below build sequential circuits of the same
families with matching primary-input / primary-output / flip-flop counts
(see :data:`repro.circuits.registry.ISCAS89_INFO` for the per-circuit
interface data); gate counts are comparable but not identical.

All circuits are deterministic, synthesisable through the whole flow and
cycle-accurate simulable with :meth:`LogicNetwork.simulate_sequence`, which
the tests use to verify the sequential xSFQ methodology.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..netlist.network import LogicNetwork, NetworkBuilder
from .arith import parity_tree


def _register_word(b: NetworkBuilder, prefix: str, width: int, init: int = 0) -> List[str]:
    """Declare ``width`` flip-flops whose next-state is assigned later."""
    return [b.dff(b.const(0), name=f"{prefix}{i}", init=(init >> i) & 1) for i in range(width)]


def _assign_next(b: NetworkBuilder, registers: Sequence[str], next_values: Sequence[str]) -> None:
    """Point each declared flip-flop at its actual next-state signal."""
    for reg, nxt in zip(registers, next_values):
        b.network.gates[reg].fanins = [nxt]


def s27_like(name: str = "s27") -> LogicNetwork:
    """A 4-input, 1-output, 3-flip-flop control circuit (the s27 class).

    Matches the published s27 interface (4 PI / 1 PO / 3 FF, ~10 gates): a
    tiny reactive controller whose state feeds back through OR/NOR logic.
    """
    b = NetworkBuilder(name)
    g0, g1, g2, g3 = (b.input(n) for n in ("G0", "G1", "G2", "G3"))
    q = _register_word(b, "Q", 3)

    n1 = b.not_(g0)
    n2 = b.not_(q[2])
    a1 = b.and_(g1, n2)
    o1 = b.or_(a1, g3)
    o2 = b.or_(o1, q[0])
    a2 = b.and_(o2, n1)
    o3 = b.or_(g2, a2)
    no1 = b.nor(o3, q[1])
    o4 = b.or_(a2, no1)
    output = b.not_(o4)

    _assign_next(b, q, [b.and_(output, g1), no1, o3])
    b.output(output, "out")
    return b.finish()


def sequence_detector(
    num_ff: int = 14,
    num_inputs: int = 3,
    num_outputs: int = 6,
    name: Optional[str] = None,
) -> LogicNetwork:
    """Shift-register based sequence detector (the s298/s344 class).

    The circuit shifts its inputs through a register chain and raises
    pattern-match outputs over windows of the chain, plus a small saturating
    counter — a structure typical of the smaller ISCAS89 controllers.
    """
    b = NetworkBuilder(name or f"seqdet{num_ff}")
    inputs = [b.input(f"in{i}") for i in range(num_inputs)]
    chain_len = max(1, num_ff - 3)
    chain = _register_word(b, "sr", chain_len)
    counter = _register_word(b, "cnt", min(3, num_ff - chain_len) or 1)

    mixed = parity_tree(b, inputs)
    next_chain = [mixed] + list(chain[:-1])
    _assign_next(b, chain, next_chain)

    # Pattern matches over sliding windows.
    outputs: List[str] = []
    for out in range(num_outputs):
        window = [chain[(out * 2 + k) % chain_len] for k in range(3)]
        literals = [window[0], b.not_(window[1]), window[2]]
        outputs.append(b.and_(*literals))

    # Saturating counter of matches.
    any_match = b.or_(*outputs)
    carry = any_match
    next_counter: List[str] = []
    for bit in counter:
        next_counter.append(b.xor(bit, carry))
        carry = b.and_(bit, carry)
    _assign_next(b, counter, next_counter)

    for i, signal in enumerate(outputs[: num_outputs - 1]):
        b.output(signal, f"match{i}")
    b.output(b.or_(*counter), "saturated")
    return b.finish()


def traffic_light_controller(
    num_ff: int = 21,
    name: Optional[str] = None,
) -> LogicNetwork:
    """Traffic-light controller with timers (the s382/s400/s444/s526 class).

    3 inputs (car sensor, walk request, reset), 6 one-hot light outputs and
    a configurable amount of timer state.
    """
    b = NetworkBuilder(name or f"tlc{num_ff}")
    car = b.input("car")
    walk = b.input("walk")
    reset = b.input("reset")

    state_bits = 3
    timer_bits = max(1, num_ff - state_bits)
    state = _register_word(b, "st", state_bits, init=1)
    timer = _register_word(b, "tm", timer_bits)

    timer_done = b.and_(*timer[-2:]) if timer_bits >= 2 else timer[0]
    advance = b.or_(timer_done, b.and_(car, walk))

    # One-hot-ish state counter: increment modulo 6 when advancing.
    one = [b.const(1)] + [b.const(0)] * (state_bits - 1)
    incremented, _ = b.ripple_adder(state, one)
    is_five = b.and_(state[0], b.and_(state[2], b.not_(state[1])))
    wrapped = [b.and_(bit, b.not_(is_five)) for bit in incremented]
    next_state = [b.mux(advance, s, w) for s, w in zip(state, wrapped)]
    next_state = [b.and_(bit, b.not_(reset)) for bit in next_state]
    _assign_next(b, state, next_state)

    # Timer increments each cycle, clears when the state advances.
    timer_one = [b.const(1)] + [b.const(0)] * (timer_bits - 1)
    timer_inc, _ = b.ripple_adder(timer, timer_one)
    next_timer = [b.and_(b.mux(advance, t, b.const(0)), b.not_(reset)) for t in timer_inc]
    _assign_next(b, timer, next_timer)

    # Light decode: 6 outputs from the 3-bit state.
    inv = [b.not_(s) for s in state]
    for value in range(6):
        literals = [state[k] if (value >> k) & 1 else inv[k] for k in range(state_bits)]
        b.output(b.and_(*literals), f"light[{value}]")
    return b.finish()


def pld_state_machine(
    num_ff: int = 5,
    num_inputs: int = 18,
    num_outputs: int = 19,
    name: Optional[str] = None,
) -> LogicNetwork:
    """PLD-style Mealy machine with wide IO (the s386/s510/s820/s832 class).

    The next-state and output logic are two-level AND-OR planes over the
    inputs and the state register, built from a deterministic pattern.
    """
    b = NetworkBuilder(name or f"pldfsm{num_ff}")
    inputs = [b.input(f"in{i}") for i in range(num_inputs)]
    state = _register_word(b, "st", num_ff)
    literals = list(inputs) + list(state)
    inverted = [b.not_(sig) for sig in literals]

    def product(seed: int, arity: int) -> str:
        # Deterministic pseudo-random product term over distinct literals so
        # terms never contain a variable together with its complement.
        rng = random.Random(seed * 2654435761 % (2**32))
        indices = rng.sample(range(len(literals)), min(arity, len(literals)))
        chosen = [
            literals[index] if rng.random() < 0.5 else inverted[index] for index in indices
        ]
        return b.and_(*chosen) if len(chosen) > 1 else chosen[0]

    next_state: List[str] = []
    for bit in range(num_ff):
        terms = [product(bit * 5 + t, 3 + (t % 2)) for t in range(3)]
        next_state.append(b.or_(*terms))
    _assign_next(b, state, next_state)

    for out in range(num_outputs):
        terms = [product(100 + out * 3 + t, 2 + (t % 3)) for t in range(2)]
        b.output(b.or_(*terms), f"out{out}")
    return b.finish()


def fractional_counter(
    num_ff: int = 16,
    num_inputs: int = 18,
    name: Optional[str] = None,
) -> LogicNetwork:
    """Fractional / gated counter chain (the s420.1 / s838.1 class).

    A long ripple-enable counter whose stages can be held or cleared by
    external control inputs; single overflow output, matching the original
    circuits' 1-output interface.
    """
    b = NetworkBuilder(name or f"fraccnt{num_ff}")
    enable = b.input("enable")
    clear = b.input("clear")
    holds = [b.input(f"hold{i}") for i in range(max(0, num_inputs - 2))]
    counter = _register_word(b, "c", num_ff)

    carry = enable
    next_bits: List[str] = []
    for index, bit in enumerate(counter):
        hold = holds[index % len(holds)] if holds else b.const(0)
        toggled = b.xor(bit, carry)
        kept = b.mux(hold, toggled, bit)
        next_bits.append(b.and_(kept, b.not_(clear)))
        carry = b.and_(bit, carry)
    _assign_next(b, counter, next_bits)
    b.output(carry, "overflow")
    return b.finish()


def multiplier_control_unit(
    width: int = 4,
    num_outputs: int = 11,
    name: Optional[str] = None,
) -> LogicNetwork:
    """Shift-add multiplier controller + datapath slice (the s344/s349 class)."""
    b = NetworkBuilder(name or f"mulctl{width}")
    start = b.input("start")
    multiplier_in = [b.input(f"m{i}") for i in range(width)]
    multiplicand_in = [b.input(f"n{i}") for i in range(width)]

    accumulator = _register_word(b, "acc", width * 2)
    multiplier = _register_word(b, "mr", width)
    count = _register_word(b, "ct", max(2, width.bit_length()))

    # Datapath: add multiplicand into the accumulator's top half when the
    # multiplier LSB is set, then shift right.
    addend = [b.and_(m, multiplier[0]) for m in multiplicand_in] + [b.const(0)] * width
    summed, carry = b.ripple_adder(accumulator, addend)
    shifted = summed[1:] + [carry]
    next_acc = [b.mux(start, s, a) for s, a in zip(shifted, [b.const(0)] * (2 * width))]
    _assign_next(b, accumulator, next_acc)

    next_mult = [b.mux(start, m, mi) for m, mi in zip(multiplier[1:] + [summed[0]], multiplier_in)]
    _assign_next(b, multiplier, next_mult)

    one = [b.const(1)] + [b.const(0)] * (len(count) - 1)
    count_inc, _ = b.ripple_adder(count, one)
    next_count = [b.mux(start, c, b.const(0)) for c in count_inc]
    _assign_next(b, count, next_count)

    done = b.and_(*count)
    outputs = list(accumulator[: num_outputs - 1]) + [done]
    for i, signal in enumerate(outputs[:num_outputs]):
        b.output(signal, f"out{i}")
    return b.finish()


def datapath_controller(
    num_ff: int = 19,
    num_inputs: int = 35,
    num_outputs: int = 24,
    name: Optional[str] = None,
) -> LogicNetwork:
    """Bus-oriented datapath controller (the s641/s713 class).

    Wide input bus, registered address/status word, and outputs formed by
    masking the bus with decoded state — mirroring the ISCAS89 circuits
    derived from a bus interface chip.
    """
    b = NetworkBuilder(name or f"buscon{num_ff}")
    bus = [b.input(f"bus{i}") for i in range(num_inputs - 3)]
    load = b.input("load")
    select = b.input("select")
    ready = b.input("ready")
    state = _register_word(b, "r", num_ff)

    # Registered word loads from the bus (lower bits) when load is asserted.
    next_state: List[str] = []
    for index, bit in enumerate(state):
        source = bus[index % len(bus)]
        next_state.append(b.mux(load, bit, source))
    # A couple of status bits mix in handshake signals.
    next_state[-1] = b.xor(next_state[-1], ready)
    next_state[-2] = b.or_(next_state[-2], b.and_(select, ready))
    _assign_next(b, state, next_state)

    for out in range(num_outputs):
        data_bit = bus[(out * 2) % len(bus)]
        state_bit = state[out % num_ff]
        gated = b.and_(data_bit, b.mux(select, state_bit, b.not_(state_bit)))
        b.output(b.or_(gated, b.and_(state[(out + 3) % num_ff], load)), f"out{out}")
    return b.finish()
