"""The paper's primary contribution: clock-free xSFQ synthesis.

Public API highlights:

* :class:`repro.core.flowgraph.Flow` — the composable staged pipeline
  (registered stages, observers, stage-level caching) behind the
  backwards-compatible :func:`repro.core.flow.synthesize_xsfq` shim
  (network/AIG in, mapped xSFQ netlist + component breakdown out);
* :class:`repro.core.cells.XsfqLibrary` — the standard-cell library of
  Table 2 (with/without PTL interfaces);
* :mod:`repro.core.polarity` — rail-requirement analysis and the output
  phase-assignment heuristic;
* :mod:`repro.core.dual_rail` — the LA/FA/splitter mapping;
* :mod:`repro.core.sequential` / :mod:`repro.core.pipeline` — DROC storage
  insertion, initialisation and pipelining;
* :mod:`repro.core.liberty` — Liberty-style library export.
"""

from .cells import (
    DROC_PRELOAD_OVERHEAD_JJ,
    CellKind,
    CellSpec,
    XsfqLibrary,
    default_library,
    table2_rows,
)
from .encoding import (
    PhaseSlot,
    alternating_property_holds,
    decode_slot,
    decode_stream,
    encode_bit,
    encode_stream,
    format_waveform,
    rail_pulse_trains,
)
from .polarity import (
    Rail,
    RailAnalysis,
    analyze_rails,
    assign_output_polarities,
    direct_mapping_analysis,
    positive_polarities,
    sinks_of,
)
from .dual_rail import (
    MappingError,
    OutputPort,
    XsfqCell,
    XsfqNetlist,
    equation1_splitters,
    insert_splitters,
    map_combinational,
)
from .sequential import (
    SequentialMappingInfo,
    clock_frequency_ghz,
    legacy_dro_flipflop_cost,
    map_sequential,
)
from .pipeline import PipelineResult, pipeline_clock_frequencies, pipeline_combinational
from .flow import FlowOptions, XsfqSynthesisResult, synthesize_xsfq
from .flowgraph import (
    DEFAULT_STAGE_ORDER,
    FLOW_VARIANTS,
    Flow,
    FlowError,
    FlowState,
    Stage,
    STAGES,
    StageCache,
    StageEvent,
    TimingObserver,
    design_fingerprint,
    flow_variant,
    flow_variant_names,
    get_stage_cache,
    register_flow_variant,
    register_stage,
    render_stage_table,
    set_stage_cache,
)
from .liberty import LibertyCell, parse_liberty, read_liberty, save_liberty, write_liberty
from .report import (
    CircuitReport,
    arithmetic_mean,
    combinational_table,
    duplication_table,
    format_percentage,
    format_savings,
    format_table,
    geometric_mean,
    pipelining_table,
    sequential_table,
)

__all__ = [
    "CellKind",
    "CellSpec",
    "XsfqLibrary",
    "default_library",
    "table2_rows",
    "DROC_PRELOAD_OVERHEAD_JJ",
    "PhaseSlot",
    "encode_bit",
    "decode_slot",
    "encode_stream",
    "decode_stream",
    "rail_pulse_trains",
    "format_waveform",
    "alternating_property_holds",
    "Rail",
    "RailAnalysis",
    "analyze_rails",
    "assign_output_polarities",
    "direct_mapping_analysis",
    "positive_polarities",
    "sinks_of",
    "XsfqNetlist",
    "XsfqCell",
    "OutputPort",
    "MappingError",
    "map_combinational",
    "insert_splitters",
    "equation1_splitters",
    "SequentialMappingInfo",
    "map_sequential",
    "clock_frequency_ghz",
    "legacy_dro_flipflop_cost",
    "PipelineResult",
    "pipeline_combinational",
    "pipeline_clock_frequencies",
    "FlowOptions",
    "XsfqSynthesisResult",
    "synthesize_xsfq",
    "Flow",
    "FlowError",
    "FlowState",
    "Stage",
    "STAGES",
    "DEFAULT_STAGE_ORDER",
    "FLOW_VARIANTS",
    "flow_variant",
    "flow_variant_names",
    "register_flow_variant",
    "StageCache",
    "StageEvent",
    "TimingObserver",
    "register_stage",
    "render_stage_table",
    "design_fingerprint",
    "get_stage_cache",
    "set_stage_cache",
    "write_liberty",
    "save_liberty",
    "parse_liberty",
    "read_liberty",
    "LibertyCell",
    "CircuitReport",
    "format_table",
    "format_percentage",
    "format_savings",
    "combinational_table",
    "sequential_table",
    "pipelining_table",
    "duplication_table",
    "geometric_mean",
    "arithmetic_mean",
]
