"""The xSFQ standard-cell library (paper Section 2, Table 2).

The library contains the clock-free logic cells (LA — Last Arrival, the
Muller C-element used as AND; FA — First Arrival, its inverse used as OR),
the fanout splitter, the JTL repeater, the merger, the DC-to-SFQ converter
used for DROC preloading, and the two DROC storage cells (with and without
preloading hardware).

Each cell carries its Josephson-junction count and propagation /
clock-to-Q delay for the two interconnect assumptions evaluated in the
paper: direct (abutted) connections and passive-transmission-line (PTL)
interfaces.  The numbers are those of Table 2, characterised by the
authors with HSPICE on the MIT-LL SFQ5ee process; the reduced analog model
in :mod:`repro.sim.analog` demonstrates how such numbers are extracted.

Splitters are assumed to be abutted to their driving cell's output even in
the PTL cost model (the paper's footnote 1), so their JJ cost does not
change between the two modes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


class CellKind(enum.Enum):
    """Cell types of the xSFQ library."""

    LA = "LA"                    # Last Arrival (C element) — dual-rail AND rail
    FA = "FA"                    # First Arrival (inverse C element) — dual-rail OR rail
    SPLITTER = "SPLITTER"        # 1-to-2 fanout splitter
    JTL = "JTL"                  # Josephson transmission line segment
    MERGER = "MERGER"            # confluence buffer (2-to-1 merger)
    DCSFQ = "DCSFQ"              # DC-to-SFQ converter (preload generator)
    DROC = "DROC"                # DRO with complementary outputs, no preloading
    DROC_PRELOAD = "DROC_PRELOAD"  # DROC with DC-to-SFQ preloading hardware
    DRO = "DRO"                  # plain destructive read-out cell (legacy FF style)


@dataclass(frozen=True)
class CellSpec:
    """Static data for one library cell.

    Attributes:
        kind: Cell type.
        jj_count: Josephson junction count.
        delay_ps: Propagation delay (logic cells) or clock-to-Q delay
            (storage cells) in picoseconds.
        clocked: Whether the cell requires a clock connection.
        inputs: Number of signal inputs (excluding clock).
        outputs: Number of signal outputs.
        description: Short human-readable description.
    """

    kind: CellKind
    jj_count: int
    delay_ps: float
    clocked: bool
    inputs: int
    outputs: int
    description: str = ""


#: Paper Table 2, "without PTLs" column (plus cells described in the text:
#: merger = 5 JJ (Section 3.2), DC-to-SFQ = 4 JJ (Section 2.2), DRO = 6 JJ
#: typical RSFQ value used when modelling the legacy 4-DRO flip-flop).
_NO_PTL_SPECS: Dict[CellKind, CellSpec] = {
    CellKind.JTL: CellSpec(CellKind.JTL, 2, 4.6, False, 1, 1, "transmission line segment"),
    CellKind.LA: CellSpec(CellKind.LA, 4, 7.2, False, 2, 1, "Last Arrival (C element)"),
    CellKind.FA: CellSpec(CellKind.FA, 4, 9.5, False, 2, 1, "First Arrival (inverse C element)"),
    CellKind.SPLITTER: CellSpec(CellKind.SPLITTER, 3, 5.1, False, 1, 2, "1:2 fanout splitter"),
    CellKind.MERGER: CellSpec(CellKind.MERGER, 5, 5.0, False, 2, 1, "confluence buffer"),
    CellKind.DCSFQ: CellSpec(CellKind.DCSFQ, 4, 10.0, False, 1, 1, "DC-to-SFQ converter"),
    CellKind.DROC: CellSpec(CellKind.DROC, 13, 9.5, True, 1, 2, "DRO with complementary outputs"),
    CellKind.DROC_PRELOAD: CellSpec(
        CellKind.DROC_PRELOAD, 22, 9.5, True, 1, 2, "DROC with DC-to-SFQ preloading"
    ),
    CellKind.DRO: CellSpec(CellKind.DRO, 6, 9.5, True, 1, 1, "destructive read-out cell"),
}

#: Paper Table 2, "with PTLs" column.  Splitters keep their 3-JJ cost
#: because they are abutted to the driving cell (footnote 1); their delay,
#: however, reflects the PTL environment of the surrounding cells.
_PTL_SPECS: Dict[CellKind, CellSpec] = {
    CellKind.JTL: CellSpec(CellKind.JTL, 7, 17.0, False, 1, 1, "transmission line segment"),
    CellKind.LA: CellSpec(CellKind.LA, 12, 19.9, False, 2, 1, "Last Arrival (C element)"),
    CellKind.FA: CellSpec(CellKind.FA, 12, 24.7, False, 2, 1, "First Arrival (inverse C element)"),
    CellKind.SPLITTER: CellSpec(CellKind.SPLITTER, 3, 19.7, False, 1, 2, "1:2 fanout splitter"),
    CellKind.MERGER: CellSpec(CellKind.MERGER, 5, 5.0, False, 2, 1, "confluence buffer"),
    CellKind.DCSFQ: CellSpec(CellKind.DCSFQ, 4, 10.0, False, 1, 1, "DC-to-SFQ converter"),
    CellKind.DROC: CellSpec(CellKind.DROC, 27, 21.5, True, 1, 2, "DRO with complementary outputs"),
    CellKind.DROC_PRELOAD: CellSpec(
        CellKind.DROC_PRELOAD, 36, 21.5, True, 1, 2, "DROC with DC-to-SFQ preloading"
    ),
    CellKind.DRO: CellSpec(CellKind.DRO, 6, 9.5, True, 1, 1, "destructive read-out cell"),
}

#: DROC clock-to-Q delays differ per output polarity (Table 2); the spec above
#: carries the worst case (Q_n); these constants expose both.
DROC_CLK_TO_QP_PS = {"no_ptl": 6.7, "ptl": 18.0}
DROC_CLK_TO_QN_PS = {"no_ptl": 9.5, "ptl": 21.5}

#: JJ cost of the preloading hardware alone (DC-to-SFQ converter + merge),
#: i.e. the difference between the two DROC flavours (Table 2 caption).
DROC_PRELOAD_OVERHEAD_JJ = 9


class XsfqLibrary:
    """The xSFQ standard-cell library with a selectable interconnect model.

    Args:
        use_ptl: When True, cell JJ counts and delays include PTL driver /
            receiver interfaces (Table 2, right columns).
    """

    def __init__(self, use_ptl: bool = False) -> None:
        self.use_ptl = use_ptl
        self._specs = dict(_PTL_SPECS if use_ptl else _NO_PTL_SPECS)

    def spec(self, kind: CellKind) -> CellSpec:
        """Return the :class:`CellSpec` for a cell kind."""
        return self._specs[kind]

    def jj_count(self, kind: CellKind) -> int:
        """Josephson-junction count of a cell."""
        return self._specs[kind].jj_count

    def delay(self, kind: CellKind) -> float:
        """Propagation (or clock-to-Q) delay of a cell in picoseconds."""
        return self._specs[kind].delay_ps

    def cells(self) -> List[CellSpec]:
        """All cell specs, in a stable order."""
        return [self._specs[k] for k in CellKind]

    def total_jj(self, counts: Mapping[CellKind, int]) -> int:
        """Total JJ count of a design given per-cell-kind instance counts."""
        return sum(self.jj_count(kind) * count for kind, count in counts.items())

    def describe(self) -> str:
        """Human-readable library summary (mirrors the layout of Table 2)."""
        mode = "with PTLs" if self.use_ptl else "without PTLs"
        lines = [f"xSFQ cell library ({mode})", f"{'Cell':<14}{'Delay (ps)':>12}{'# JJs':>8}"]
        for spec in self.cells():
            lines.append(f"{spec.kind.value:<14}{spec.delay_ps:>12.1f}{spec.jj_count:>8}")
        return "\n".join(lines)


def default_library(use_ptl: bool = False) -> XsfqLibrary:
    """Construct the paper's library in the requested interconnect mode."""
    return XsfqLibrary(use_ptl=use_ptl)


def table2_rows() -> List[Dict[str, object]]:
    """The contents of the paper's Table 2 as structured rows.

    Each row reports a cell with delay and JJ count in both interconnect
    modes, in the order the paper lists them.
    """
    order = [
        CellKind.JTL,
        CellKind.LA,
        CellKind.FA,
        CellKind.DROC,
        CellKind.SPLITTER,
    ]
    rows: List[Dict[str, object]] = []
    for kind in order:
        no_ptl = _NO_PTL_SPECS[kind]
        ptl = _PTL_SPECS[kind]
        if kind is CellKind.DROC:
            rows.append(
                {
                    "cell": "DROC (Qp)",
                    "delay_no_ptl": DROC_CLK_TO_QP_PS["no_ptl"],
                    "jj_no_ptl": f"{no_ptl.jj_count}/{_NO_PTL_SPECS[CellKind.DROC_PRELOAD].jj_count}",
                    "delay_ptl": DROC_CLK_TO_QP_PS["ptl"],
                    "jj_ptl": f"{ptl.jj_count}/{_PTL_SPECS[CellKind.DROC_PRELOAD].jj_count}",
                }
            )
            rows.append(
                {
                    "cell": "DROC (Qn)",
                    "delay_no_ptl": DROC_CLK_TO_QN_PS["no_ptl"],
                    "jj_no_ptl": f"{no_ptl.jj_count}/{_NO_PTL_SPECS[CellKind.DROC_PRELOAD].jj_count}",
                    "delay_ptl": DROC_CLK_TO_QN_PS["ptl"],
                    "jj_ptl": f"{ptl.jj_count}/{_PTL_SPECS[CellKind.DROC_PRELOAD].jj_count}",
                }
            )
            continue
        rows.append(
            {
                "cell": kind.value,
                "delay_no_ptl": no_ptl.delay_ps,
                "jj_no_ptl": str(no_ptl.jj_count),
                "delay_ptl": ptl.delay_ps,
                "jj_ptl": str(ptl.jj_count),
            }
        )
    return rows
