"""Dual-rail xSFQ netlists and the AIG-to-xSFQ mapping (paper Section 3.1).

An :class:`XsfqNetlist` is a flat cell-level netlist of library cells
(:mod:`repro.core.cells`) connected by named nets.  The mapping rules are
the paper's:

* an AIG node whose **positive** rail is required becomes an **LA** cell
  operating on the corresponding rails of its fanins (complemented edges are
  realised by "twisting" the rails — no cell cost);
* an AIG node whose **negative** rail is required becomes an **FA** cell
  operating on the opposite rails of its fanins;
* every net driving more than one consumer receives a tree of 1:2
  splitter cells;
* primary inputs are dual-rail ports; which rails the circuit actually uses
  is decided by the rail-requirement analysis of :mod:`repro.core.polarity`.

The splitter count follows the paper's Equation 1 whenever every available
input rail is used; :func:`equation1_splitters` exposes the closed-form
count for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..aig.graph import Aig, lit_is_complemented, lit_node
from .cells import CellKind, XsfqLibrary, default_library
from .polarity import Rail, RailAnalysis, analyze_rails


class MappingError(Exception):
    """Raised for invalid xSFQ mapping requests."""


@dataclass
class XsfqCell:
    """One instantiated library cell.

    Attributes:
        name: Unique instance name.
        kind: Library cell kind.
        inputs: Input net names, in port order.
        outputs: Output net names, in port order.
        preload: For DROC cells, whether the preloading hardware is present.
    """

    name: str
    kind: CellKind
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    preload: bool = False


@dataclass
class OutputPort:
    """A circuit output: the external name and the net that drives it."""

    name: str
    net: str
    rail: Rail


class XsfqNetlist:
    """A flat netlist of xSFQ cells.

    The netlist is technology-mapped but library-mode agnostic: JJ counts
    and delays are computed against an :class:`XsfqLibrary` passed to the
    reporting methods, so the same netlist can be costed with and without
    PTL interfaces (as the paper's Table 2 distinguishes).
    """

    def __init__(self, name: str = "xsfq") -> None:
        self.name = name
        self.cells: List[XsfqCell] = []
        self.input_ports: List[str] = []
        self.output_ports: List[OutputPort] = []
        self.clock_nets: List[str] = []
        self.trigger_nets: List[str] = []
        #: How many phases *before* the synchronous convention the primary
        #: input waves must be driven.  Retimed sequential mappings register
        #: every cut-crossing signal in a mid-rank DROC; input waves then
        #: need one extra phase to traverse that rank, so they enter one
        #: phase early — aligned with the start-up trigger.
        self.input_phase_lead: int = 0
        self._cell_counter = 0
        # Populated by map_combinational so downstream passes (sequential
        # DROC insertion, pipelining) can relate cells/nets back to AIG nodes.
        self.node_rail_nets: Dict[Tuple[int, Rail], str] = {}
        self.cell_aig_nodes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cell(
        self,
        kind: CellKind,
        inputs: Sequence[str],
        outputs: Sequence[str],
        name: Optional[str] = None,
        preload: bool = False,
    ) -> XsfqCell:
        """Instantiate a cell and return it."""
        self._cell_counter += 1
        cell = XsfqCell(
            name=name or f"{kind.value.lower()}_{self._cell_counter}",
            kind=kind,
            inputs=list(inputs),
            outputs=list(outputs),
            preload=preload,
        )
        self.cells.append(cell)
        return cell

    def add_input_port(self, net: str) -> None:
        self.input_ports.append(net)

    def add_output_port(self, name: str, net: str, rail: Rail) -> None:
        self.output_ports.append(OutputPort(name, net, rail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counts_by_kind(self) -> Dict[CellKind, int]:
        """Number of instances of every cell kind (preloaded DROCs counted separately)."""
        counts: Dict[CellKind, int] = {}
        for cell in self.cells:
            kind = cell.kind
            if kind is CellKind.DROC and cell.preload:
                kind = CellKind.DROC_PRELOAD
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def num_cells(self, kind: CellKind) -> int:
        return self.counts_by_kind().get(kind, 0)

    @property
    def num_logic_cells(self) -> int:
        """LA + FA cell count (the paper's "#LA/FA" column)."""
        counts = self.counts_by_kind()
        return counts.get(CellKind.LA, 0) + counts.get(CellKind.FA, 0)

    @property
    def num_splitters(self) -> int:
        return self.counts_by_kind().get(CellKind.SPLITTER, 0)

    @property
    def num_drocs(self) -> Tuple[int, int]:
        """(non-preloaded, preloaded) DROC counts."""
        counts = self.counts_by_kind()
        return counts.get(CellKind.DROC, 0), counts.get(CellKind.DROC_PRELOAD, 0)

    def jj_count(self, library: Optional[XsfqLibrary] = None) -> int:
        """Total Josephson-junction count under a library cost model."""
        library = library or default_library()
        return library.total_jj(self.counts_by_kind())

    def net_drivers(self) -> Dict[str, str]:
        """Map net name to the name of the cell driving it."""
        drivers: Dict[str, str] = {}
        for cell in self.cells:
            for net in cell.outputs:
                if net in drivers:
                    raise MappingError(f"net {net!r} has multiple drivers")
                drivers[net] = cell.name
        return drivers

    def net_consumers(self) -> Dict[str, List[str]]:
        """Map net name to the list of consuming cell names / output ports."""
        consumers: Dict[str, List[str]] = {}
        for cell in self.cells:
            for net in cell.inputs:
                consumers.setdefault(net, []).append(cell.name)
        for port in self.output_ports:
            consumers.setdefault(port.net, []).append(f"@{port.name}")
        return consumers

    def validate(self) -> None:
        """Structural checks: single driver per net, fanout of at most 1 after splitting.

        Splitter insertion is expected to have run, so every net must drive
        at most one consumer (splitter and merger ports included) and every
        consumed net must have a driver or be an input port.
        """
        drivers = self.net_drivers()
        consumers = self.net_consumers()
        inputs = set(self.input_ports) | set(self.clock_nets) | set(self.trigger_nets)
        for net, users in consumers.items():
            if len(users) > 1:
                raise MappingError(f"net {net!r} drives {len(users)} consumers (missing splitter)")
            if net not in drivers and net not in inputs and not net.startswith("const"):
                raise MappingError(f"net {net!r} has no driver")

    # ------------------------------------------------------------------
    # Timing / depth
    # ------------------------------------------------------------------
    def logic_depth(self, include_splitters: bool = False) -> int:
        """Maximum number of cells on any combinational path.

        Storage cells (DROC/DRO) cut paths.  When ``include_splitters`` is
        False, splitter, JTL and merger cells are transparent (counted as
        zero depth); otherwise each counts as one level, matching the
        paper's "logical depth without/with splitters" reporting.
        """
        drivers = {net: cell for cell in self.cells for net in cell.outputs}
        depth: Dict[str, int] = {}

        def net_depth(net: str) -> int:
            if net in depth:
                return depth[net]
            cell = drivers.get(net)
            if cell is None or cell.kind in (CellKind.DROC, CellKind.DROC_PRELOAD, CellKind.DRO):
                depth[net] = 0
                return 0
            stack = [net]
            while stack:
                current = stack[-1]
                if current in depth:
                    stack.pop()
                    continue
                driver = drivers.get(current)
                if driver is None or driver.kind in (
                    CellKind.DROC,
                    CellKind.DROC_PRELOAD,
                    CellKind.DRO,
                ):
                    depth[current] = 0
                    stack.pop()
                    continue
                missing = [n for n in driver.inputs if n not in depth]
                if missing:
                    stack.extend(missing)
                    continue
                fanin_depth = max((depth[n] for n in driver.inputs), default=0)
                if driver.kind in (CellKind.LA, CellKind.FA):
                    cost = 1
                elif include_splitters and driver.kind in (CellKind.SPLITTER, CellKind.JTL, CellKind.MERGER):
                    cost = 1
                else:
                    cost = 0
                depth[current] = fanin_depth + cost
                stack.pop()
            return depth[net]

        sinks = [port.net for port in self.output_ports]
        for cell in self.cells:
            if cell.kind in (CellKind.DROC, CellKind.DROC_PRELOAD, CellKind.DRO):
                sinks.extend(cell.inputs)
        return max((net_depth(net) for net in sinks), default=0)

    def critical_path_delay(self, library: Optional[XsfqLibrary] = None) -> float:
        """Longest combinational path delay in picoseconds under a library."""
        library = library or default_library()
        drivers = {net: cell for cell in self.cells for net in cell.outputs}
        arrival: Dict[str, float] = {}

        def net_arrival(net: str) -> float:
            if net in arrival:
                return arrival[net]
            stack = [net]
            while stack:
                current = stack[-1]
                if current in arrival:
                    stack.pop()
                    continue
                driver = drivers.get(current)
                if driver is None:
                    arrival[current] = 0.0
                    stack.pop()
                    continue
                if driver.kind in (CellKind.DROC, CellKind.DROC_PRELOAD, CellKind.DRO):
                    arrival[current] = library.delay(driver.kind)
                    stack.pop()
                    continue
                missing = [n for n in driver.inputs if n not in arrival]
                if missing:
                    stack.extend(missing)
                    continue
                fanin_arrival = max((arrival[n] for n in driver.inputs), default=0.0)
                arrival[current] = fanin_arrival + library.delay(driver.kind)
                stack.pop()
            return arrival[net]

        sinks = [port.net for port in self.output_ports]
        for cell in self.cells:
            if cell.kind in (CellKind.DROC, CellKind.DROC_PRELOAD, CellKind.DRO):
                sinks.extend(cell.inputs)
        return max((net_arrival(net) for net in sinks), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts_by_kind()
        summary = ", ".join(f"{k.value}:{v}" for k, v in sorted(counts.items(), key=lambda x: x[0].value))
        return f"<XsfqNetlist {self.name!r}: {summary}>"


# ---------------------------------------------------------------------------
# Splitter accounting
# ---------------------------------------------------------------------------


def equation1_splitters(num_gates: int, num_outputs: int, num_inputs: int) -> int:
    """Paper Equation 1: ``N_splt = N_gate + N_out - N_inp``.

    ``num_gates`` is the LA/FA cell count, ``num_outputs`` the number of
    output rails produced and ``num_inputs`` the number of input rails
    available.  The formula assumes every available signal is consumed.
    """
    return num_gates + num_outputs - num_inputs


def insert_splitters(netlist: XsfqNetlist, style: str = "balanced") -> int:
    """Insert 1:2 splitter trees so that every net drives a single consumer.

    Args:
        netlist: Netlist to modify in place.
        style: ``"balanced"`` builds minimum-depth splitter trees,
            ``"chain"`` builds linear chains (worst-case depth, matching a
            pessimistic physical design).

    Returns:
        The number of splitter cells inserted.
    """
    if style not in {"balanced", "chain"}:
        raise MappingError(f"unknown splitter style {style!r}")
    consumers: Dict[str, List[Tuple[XsfqCell, int]]] = {}
    for cell in netlist.cells:
        if cell.kind is CellKind.SPLITTER:
            continue
        for index, net in enumerate(cell.inputs):
            consumers.setdefault(net, []).append((cell, index))
    port_consumers: Dict[str, List[OutputPort]] = {}
    for port in netlist.output_ports:
        port_consumers.setdefault(port.net, []).append(port)

    inserted = 0
    for net in sorted(set(consumers) | set(port_consumers)):
        cell_users = consumers.get(net, [])
        port_users = port_consumers.get(net, [])
        total = len(cell_users) + len(port_users)
        if total <= 1:
            continue
        # Build the list of branch nets needed, then rewire consumers.
        branches: List[str] = []
        frontier: List[str] = [net]
        while len(frontier) + len(branches) < total:
            source = frontier.pop(0) if style == "balanced" else frontier.pop()
            out_a = f"{source}$s{inserted}a"
            out_b = f"{source}$s{inserted}b"
            netlist.add_cell(CellKind.SPLITTER, [source], [out_a, out_b])
            inserted += 1
            frontier.extend([out_a, out_b])
        branches = frontier
        assert len(branches) == total
        for (cell, index), branch in zip(cell_users, branches[: len(cell_users)]):
            cell.inputs[index] = branch
        for port, branch in zip(port_users, branches[len(cell_users):]):
            port.net = branch
    return inserted


# ---------------------------------------------------------------------------
# AIG -> xSFQ mapping
# ---------------------------------------------------------------------------


def rail_net(node: int, rail: Rail, aig: Aig) -> str:
    """Canonical net name for a node's rail."""
    if node == 0:
        return f"const0_{rail.value}"
    if aig.is_pi(node):
        name = aig.pi_names[aig.pi_nodes.index(node)]
        return f"{name}_{rail.value}"
    if aig.is_latch(node):
        return f"{aig.latch_of(node).name}_{rail.value}"
    return f"n{node}_{rail.value}"


def fanin_rail(lit: int, rail: Rail) -> Rail:
    """Rail of a fanin that feeds the given rail of its consumer.

    For the positive rail (LA cell) a complemented edge twists to the
    fanin's negative rail; for the negative rail (FA cell) the twist is the
    opposite — this is exactly the "inversion by wire twisting" of the paper.
    """
    return rail.flipped() if lit_is_complemented(lit) else rail


def map_combinational(
    aig: Aig,
    analysis: Optional[RailAnalysis] = None,
    name: Optional[str] = None,
    splitter_style: str = "balanced",
    insert_fanout_splitters: bool = True,
) -> XsfqNetlist:
    """Map the combinational part of an AIG to an xSFQ cell netlist.

    Args:
        aig: Optimised AIG (latches, if any, are treated as dual-rail
            pseudo-inputs; storage cells are added by
            :mod:`repro.core.sequential`).
        analysis: Rail-requirement analysis to honour; defaults to the
            all-positive-output analysis.
        name: Netlist name.
        splitter_style: Passed to :func:`insert_splitters`.
        insert_fanout_splitters: When False the netlist is left with
            multi-fanout nets (useful for unit tests of the raw mapping).

    Returns:
        The mapped :class:`XsfqNetlist` (LA/FA cells, splitters and ports;
        no storage cells).
    """
    if analysis is None:
        analysis = analyze_rails(aig)
    netlist = XsfqNetlist(name or aig.name)

    # Input ports: one per used rail of every PI / latch output.
    for node, rails in sorted(analysis.leaf_rails.items()):
        if node == 0:
            continue  # constants are handled as implicit nets
        for rail in sorted(rails, key=lambda r: r.value):
            netlist.add_input_port(rail_net(node, rail, aig))

    # Record which nets carry every leaf rail so storage-cell insertion can
    # reconnect them later.
    for node, rails in analysis.leaf_rails.items():
        for rail in rails:
            netlist.node_rail_nets[(node, rail)] = rail_net(node, rail, aig)

    # LA / FA cells in topological order.
    for node in aig.and_nodes():
        rails = analysis.required.get(node, set())
        f0, f1 = aig.fanins(node)
        for rail in sorted(rails, key=lambda r: r.value):
            in0 = rail_net(lit_node(f0), fanin_rail(f0, rail), aig)
            in1 = rail_net(lit_node(f1), fanin_rail(f1, rail), aig)
            kind = CellKind.LA if rail is Rail.POS else CellKind.FA
            out_net = rail_net(node, rail, aig)
            cell = netlist.add_cell(kind, [in0, in1], [out_net])
            netlist.node_rail_nets[(node, rail)] = out_net
            netlist.cell_aig_nodes[cell.name] = node

    # Output ports (one rail per sink, per the polarity assignment).
    for po_name, lit in zip(aig.po_names, aig.po_lits):
        polarity = analysis.polarities.get(po_name, Rail.POS)
        rail = fanin_rail(lit, polarity)
        netlist.add_output_port(po_name, rail_net(lit_node(lit), rail, aig), polarity)

    if insert_fanout_splitters:
        insert_splitters(netlist, splitter_style)
    return netlist
