"""Dual-rail alternating encoding (paper Figure 1 and Table 1).

In xSFQ every logical value is carried on two rails (positive and negative
polarity) and every *logical cycle* spans two synchronous phases: the
**excite** phase carries the pulse-coded value and the **relax** phase its
complement.  Exactly one of the four (rail, phase) slots carries a pulse for
a logical 1 and exactly one for a logical 0, which is what lets LA/FA cells
return to their initial state without a clock.

This module provides the encoding/decoding helpers used by the pulse-level
simulator drivers/monitors, the examples and the Figure-1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class PhaseSlot:
    """Pulse occupancy of one logical value during one logical cycle.

    Attributes:
        excite_p: Pulse on the positive rail during the excite phase.
        excite_n: Pulse on the negative rail during the excite phase.
        relax_p: Pulse on the positive rail during the relax phase.
        relax_n: Pulse on the negative rail during the relax phase.
    """

    excite_p: bool
    excite_n: bool
    relax_p: bool
    relax_n: bool

    def pulses(self) -> Tuple[bool, bool, bool, bool]:
        return (self.excite_p, self.excite_n, self.relax_p, self.relax_n)


def encode_bit(value: int) -> PhaseSlot:
    """Encode one logical bit into its alternating dual-rail phase slots.

    A logical 1 produces a pulse on the positive rail during excite and on
    the negative rail during relax; a logical 0 produces the mirror pattern.
    Either way each rail carries exactly one pulse per logical cycle, which
    is the property that re-initialises every LA/FA cell (Table 1).
    """
    value = int(bool(value))
    if value:
        return PhaseSlot(excite_p=True, excite_n=False, relax_p=False, relax_n=True)
    return PhaseSlot(excite_p=False, excite_n=True, relax_p=True, relax_n=False)


def decode_slot(slot: PhaseSlot) -> int:
    """Recover the logical bit from a phase slot.

    Raises ``ValueError`` when the slot violates the alternating dual-rail
    protocol (no pulse or pulses on both rails in the same phase).
    """
    if slot.excite_p == slot.excite_n:
        raise ValueError(f"protocol violation in excite phase: {slot}")
    if slot.relax_p == slot.relax_n:
        raise ValueError(f"protocol violation in relax phase: {slot}")
    if slot.excite_p == slot.relax_p:
        raise ValueError(f"alternation violation across phases: {slot}")
    return 1 if slot.excite_p else 0


def encode_stream(bits: Sequence[int]) -> List[PhaseSlot]:
    """Encode a sequence of logical bits, one phase slot per logical cycle."""
    return [encode_bit(bit) for bit in bits]


def decode_stream(slots: Sequence[PhaseSlot]) -> List[int]:
    """Decode a sequence of phase slots back to logical bits."""
    return [decode_slot(slot) for slot in slots]


def rail_pulse_trains(bits: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Flatten a bit sequence into per-phase pulse trains for the two rails.

    Returns ``(positive_rail, negative_rail)`` where each list has two
    entries (excite, relax) per logical bit, with 1 marking a pulse.  This is
    the representation used to drive the pulse-level simulator and to render
    Figure-1-style waveforms.
    """
    positive: List[int] = []
    negative: List[int] = []
    for bit in bits:
        slot = encode_bit(bit)
        positive.extend([int(slot.excite_p), int(slot.relax_p)])
        negative.extend([int(slot.excite_n), int(slot.relax_n)])
    return positive, negative


def format_waveform(bits: Sequence[int]) -> str:
    """Render a textual Figure-1-style waveform for a bit sequence."""
    positive, negative = rail_pulse_trains(bits)
    phases = []
    for _ in bits:
        phases.extend(["e", "r"])
    def row(label: str, train: Sequence[int]) -> str:
        return label.ljust(10) + " ".join("|" if p else "." for p in train)

    header = "phase".ljust(10) + " ".join(phases)
    value_cells: List[str] = []
    for bit in bits:
        value_cells.extend([str(bit), " "])
    values = "value".ljust(10) + " ".join(value_cells)
    return "\n".join([values, header, row("rail +", positive), row("rail -", negative)])


def alternating_property_holds(slots: Iterable[PhaseSlot]) -> bool:
    """Check that every slot satisfies the alternating dual-rail protocol."""
    try:
        for slot in slots:
            decode_slot(slot)
    except ValueError:
        return False
    return True
