"""The end-to-end xSFQ synthesis flow (the paper's Yosys + ABC + mapping flow).

:func:`synthesize_xsfq` takes an arbitrary gate-level network (or an AIG)
and produces a technology-mapped xSFQ netlist plus the component breakdown
the paper reports.  Since the pass-manager redesign it is a thin
backwards-compatible shim: the actual pipeline is the staged
:class:`repro.core.flowgraph.Flow` built by ``Flow.from_options(options)``,
and the **stage registry** in :mod:`repro.core.flowgraph` (``STAGES``:
``frontend``, ``aig-opt``, ``pipeline``, ``polarity``, ``map``,
``sequential``, ``report``) is the source of truth for what the flow
executes and in which order.  This module keeps the two public data
records of the flow:

* :class:`FlowOptions` — the serialisable knob record users pass to
  ``synthesize_xsfq`` (and from which ``Flow.from_options`` derives the
  per-stage options);
* :class:`XsfqSynthesisResult` — the mapped netlist plus every
  paper-style metric (LA/FA, splitter and DROC counts, duplication
  penalty, logical depth, JJ totals under both interconnect cost models,
  clock frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple, Union

from ..aig import Aig
from ..netlist.network import LogicNetwork
from .cells import XsfqLibrary, default_library
from .dual_rail import XsfqNetlist
from .pipeline import PipelineResult, pipeline_clock_frequencies
from .polarity import RailAnalysis
from .sequential import SequentialMappingInfo, clock_frequency_ghz


@dataclass
class FlowOptions:
    """Knobs of the xSFQ synthesis flow.

    Attributes:
        effort: AIG optimisation effort ("none", "low", "medium", "high").
        optimize_polarity: Run the output phase assignment heuristic
            (Section 3.1.5); when False all sinks keep their positive rail.
        direct_mapping: Skip all rail optimisation and build a full LA-FA
            pair per node (the Section 3.1.1 baseline).
        retime: Balance sequential designs by pushing the second DROC of
            every pair into the logic (Section 3.2).
        pipeline_stages: Architectural pipeline stages to insert into
            combinational designs (Section 4.2.2); 0 keeps them clock-free.
        splitter_style: "balanced" or "chain" fanout splitter trees.
        polarity_sweeps: Improvement sweeps of the phase-assignment heuristic.
        verify: Verify AIG optimisation against the input with CEC.
    """

    effort: str = "medium"
    optimize_polarity: bool = True
    direct_mapping: bool = False
    retime: bool = True
    pipeline_stages: int = 0
    splitter_style: str = "balanced"
    polarity_sweeps: int = 4
    verify: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dictionary (JSON-safe, stable key order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FlowOptions":
        """Rebuild options from :meth:`to_dict` output.

        Unknown keys raise a :class:`ValueError` naming both the offending
        keys and the full set of valid field names, rather than leaking a
        dataclass ``TypeError`` about unexpected keyword arguments.
        """
        known = [f.name for f in fields(cls)]
        unknown = set(data) - set(known)
        if unknown:
            raise ValueError(
                f"unknown FlowOptions keys: {sorted(unknown)}; "
                f"valid keys are: {', '.join(known)}"
            )
        return cls(**dict(data))


@dataclass
class XsfqSynthesisResult:
    """Everything produced by one run of the flow."""

    name: str
    netlist: XsfqNetlist
    aig: Aig
    analysis: RailAnalysis
    #: The FlowOptions the producing flow was derived from; None when the
    #: flow was hand-composed and has no FlowOptions equivalent.
    options: Optional[FlowOptions] = None
    sequential_info: Optional[SequentialMappingInfo] = None
    pipeline_result: Optional[PipelineResult] = None
    source_stats: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Paper-style metrics
    # ------------------------------------------------------------------
    @property
    def num_la_fa(self) -> int:
        """LA + FA cell count (Table 4/6 "#LA/FA")."""
        return self.netlist.num_logic_cells

    @property
    def num_splitters(self) -> int:
        return self.netlist.num_splitters

    @property
    def duplication_penalty(self) -> float:
        """Fraction of AIG nodes that needed both rails (Tables 3/4/5/6 "Dupl.")."""
        return self.analysis.duplication_penalty

    @property
    def droc_counts(self) -> Tuple[int, int]:
        """(non-preloaded, preloaded) DROC cell counts."""
        return self.netlist.num_drocs

    def jj_count(self, use_ptl: bool = False) -> int:
        """Total JJ count under the selected interconnect cost model."""
        return self.netlist.jj_count(default_library(use_ptl))

    def logic_depth(self, include_splitters: bool = False) -> int:
        """Logical depth in LA/FA cells (optionally counting splitters)."""
        return self.netlist.logic_depth(include_splitters)

    def clock_frequencies_ghz(self, use_ptl: bool = False) -> Tuple[float, float]:
        """(circuit, architectural) clock frequency for synchronous designs.

        For clock-free combinational designs the "circuit clock" is the
        inverse of the full critical-path delay — the rate at which new
        excite/relax phases can be fed from the environment.
        """
        library = default_library(use_ptl)
        if self.pipeline_result is not None:
            return pipeline_clock_frequencies(self.pipeline_result, library)
        return clock_frequency_ghz(self.netlist, library)

    def metrics(self) -> Dict[str, object]:
        """Every paper-style metric as one flat JSON-serialisable dictionary.

        This is the unit stored by the experiment engine's result cache
        (:mod:`repro.eval.engine`): anything a table or figure assembler
        needs must be derivable from this dictionary alone, so cached
        synthesis runs never have to be repeated to re-render a report.
        """
        plain, preloaded = self.droc_counts
        circuit_ghz, arch_ghz = self.clock_frequencies_ghz()
        return {
            "circuit": self.name,
            "la_fa": self.num_la_fa,
            "splitters": self.num_splitters,
            "duplication": self.duplication_penalty,
            "droc_plain": plain,
            "droc_preloaded": preloaded,
            "jj": self.jj_count(False),
            "jj_ptl": self.jj_count(True),
            "depth": self.logic_depth(False),
            "depth_with_splitters": self.logic_depth(True),
            "clock_circuit_ghz": circuit_ghz,
            "clock_arch_ghz": arch_ghz,
            "aig_ands": self.aig.num_ands,
            "source_stats": dict(self.source_stats),
            "options": self.options.to_dict() if self.options is not None else None,
        }

    def component_breakdown(self, use_ptl: bool = False) -> Dict[str, object]:
        """The paper's per-circuit component breakdown as a dictionary."""
        plain, preloaded = self.droc_counts
        return {
            "circuit": self.name,
            "la_fa": self.num_la_fa,
            "splitters": self.num_splitters,
            "duplication": self.duplication_penalty,
            "droc_plain": plain,
            "droc_preloaded": preloaded,
            "jj": self.jj_count(use_ptl),
            "depth": self.logic_depth(False),
            "depth_with_splitters": self.logic_depth(True),
        }


def synthesize_xsfq(
    design: Union[LogicNetwork, Aig],
    options: Optional[FlowOptions] = None,
    name: Optional[str] = None,
) -> XsfqSynthesisResult:
    """Run the full xSFQ synthesis flow on a design.

    Backwards-compatible shim over the staged pass manager: builds the
    equivalent :class:`repro.core.flowgraph.Flow` with
    ``Flow.from_options(options)`` and runs it.  New code that wants to
    customise, observe or resume the pipeline should use :class:`Flow`
    directly.  Like every flow run, this consults the process-wide
    bounded stage cache (repeat synthesis of the same design reuses the
    optimised AIG); use ``Flow.run(design, use_stage_cache=False)`` or
    :func:`repro.core.flowgraph.set_stage_cache` to opt out or resize.

    Args:
        design: A gate-level :class:`LogicNetwork` or an :class:`Aig`
            (combinational or sequential).
        options: Flow options; defaults to :class:`FlowOptions()`.
        name: Optional name for the result (defaults to the design's).

    Returns:
        An :class:`XsfqSynthesisResult`.
    """
    from .flowgraph import Flow

    return Flow.from_options(options or FlowOptions()).run(design, name=name)
