"""The end-to-end xSFQ synthesis flow (the paper's Yosys + ABC + mapping flow).

:func:`synthesize_xsfq` takes an arbitrary gate-level network (or an AIG)
and produces a technology-mapped xSFQ netlist plus the component breakdown
the paper reports:

1. convert the network into a structurally hashed AIG;
2. optimise it with the off-the-shelf AIG passes of :mod:`repro.aig`
   (the paper's headline point is that *no* customisation is needed);
3. choose output/sink polarities with the domino-style phase-assignment
   heuristic and propagate rail requirements backwards (Section 3.1.4-3.1.5);
4. map every required rail to an LA or FA cell, insert fanout splitters,
   and — for sequential or pipelined designs — insert DROC storage ranks
   with the preloading/trigger initialisation strategy (Section 3.2);
5. report LA/FA, splitter and DROC counts, duplication penalty, logical
   depth, JJ totals (with and without PTL interfaces) and clock frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple, Union

from ..aig import Aig, network_to_aig, optimize
from ..netlist.network import LogicNetwork
from .cells import XsfqLibrary, default_library
from .dual_rail import XsfqNetlist, map_combinational
from .pipeline import PipelineResult, pipeline_clock_frequencies, pipeline_combinational
from .polarity import (
    RailAnalysis,
    analyze_rails,
    assign_output_polarities,
    direct_mapping_analysis,
)
from .sequential import SequentialMappingInfo, clock_frequency_ghz, map_sequential


@dataclass
class FlowOptions:
    """Knobs of the xSFQ synthesis flow.

    Attributes:
        effort: AIG optimisation effort ("none", "low", "medium", "high").
        optimize_polarity: Run the output phase assignment heuristic
            (Section 3.1.5); when False all sinks keep their positive rail.
        direct_mapping: Skip all rail optimisation and build a full LA-FA
            pair per node (the Section 3.1.1 baseline).
        retime: Balance sequential designs by pushing the second DROC of
            every pair into the logic (Section 3.2).
        pipeline_stages: Architectural pipeline stages to insert into
            combinational designs (Section 4.2.2); 0 keeps them clock-free.
        splitter_style: "balanced" or "chain" fanout splitter trees.
        polarity_sweeps: Improvement sweeps of the phase-assignment heuristic.
        verify: Verify AIG optimisation against the input with CEC.
    """

    effort: str = "medium"
    optimize_polarity: bool = True
    direct_mapping: bool = False
    retime: bool = True
    pipeline_stages: int = 0
    splitter_style: str = "balanced"
    polarity_sweeps: int = 4
    verify: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dictionary (JSON-safe, stable key order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FlowOptions":
        """Rebuild options from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FlowOptions keys: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass
class XsfqSynthesisResult:
    """Everything produced by one run of the flow."""

    name: str
    netlist: XsfqNetlist
    aig: Aig
    analysis: RailAnalysis
    options: FlowOptions
    sequential_info: Optional[SequentialMappingInfo] = None
    pipeline_result: Optional[PipelineResult] = None
    source_stats: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Paper-style metrics
    # ------------------------------------------------------------------
    @property
    def num_la_fa(self) -> int:
        """LA + FA cell count (Table 4/6 "#LA/FA")."""
        return self.netlist.num_logic_cells

    @property
    def num_splitters(self) -> int:
        return self.netlist.num_splitters

    @property
    def duplication_penalty(self) -> float:
        """Fraction of AIG nodes that needed both rails (Tables 3/4/5/6 "Dupl.")."""
        return self.analysis.duplication_penalty

    @property
    def droc_counts(self) -> Tuple[int, int]:
        """(non-preloaded, preloaded) DROC cell counts."""
        return self.netlist.num_drocs

    def jj_count(self, use_ptl: bool = False) -> int:
        """Total JJ count under the selected interconnect cost model."""
        return self.netlist.jj_count(default_library(use_ptl))

    def logic_depth(self, include_splitters: bool = False) -> int:
        """Logical depth in LA/FA cells (optionally counting splitters)."""
        return self.netlist.logic_depth(include_splitters)

    def clock_frequencies_ghz(self, use_ptl: bool = False) -> Tuple[float, float]:
        """(circuit, architectural) clock frequency for synchronous designs.

        For clock-free combinational designs the "circuit clock" is the
        inverse of the full critical-path delay — the rate at which new
        excite/relax phases can be fed from the environment.
        """
        library = default_library(use_ptl)
        if self.pipeline_result is not None:
            return pipeline_clock_frequencies(self.pipeline_result, library)
        return clock_frequency_ghz(self.netlist, library)

    def metrics(self) -> Dict[str, object]:
        """Every paper-style metric as one flat JSON-serialisable dictionary.

        This is the unit stored by the experiment engine's result cache
        (:mod:`repro.eval.engine`): anything a table or figure assembler
        needs must be derivable from this dictionary alone, so cached
        synthesis runs never have to be repeated to re-render a report.
        """
        plain, preloaded = self.droc_counts
        circuit_ghz, arch_ghz = self.clock_frequencies_ghz()
        return {
            "circuit": self.name,
            "la_fa": self.num_la_fa,
            "splitters": self.num_splitters,
            "duplication": self.duplication_penalty,
            "droc_plain": plain,
            "droc_preloaded": preloaded,
            "jj": self.jj_count(False),
            "jj_ptl": self.jj_count(True),
            "depth": self.logic_depth(False),
            "depth_with_splitters": self.logic_depth(True),
            "clock_circuit_ghz": circuit_ghz,
            "clock_arch_ghz": arch_ghz,
            "aig_ands": self.aig.num_ands,
            "source_stats": dict(self.source_stats),
            "options": self.options.to_dict(),
        }

    def component_breakdown(self, use_ptl: bool = False) -> Dict[str, object]:
        """The paper's per-circuit component breakdown as a dictionary."""
        plain, preloaded = self.droc_counts
        return {
            "circuit": self.name,
            "la_fa": self.num_la_fa,
            "splitters": self.num_splitters,
            "duplication": self.duplication_penalty,
            "droc_plain": plain,
            "droc_preloaded": preloaded,
            "jj": self.jj_count(use_ptl),
            "depth": self.logic_depth(False),
            "depth_with_splitters": self.logic_depth(True),
        }


def _to_aig(design: Union[LogicNetwork, Aig], name: Optional[str]) -> Aig:
    if isinstance(design, Aig):
        aig = design
    else:
        aig = network_to_aig(design)
    if name:
        aig.name = name
    return aig


def synthesize_xsfq(
    design: Union[LogicNetwork, Aig],
    options: Optional[FlowOptions] = None,
    name: Optional[str] = None,
) -> XsfqSynthesisResult:
    """Run the full xSFQ synthesis flow on a design.

    Args:
        design: A gate-level :class:`LogicNetwork` or an :class:`Aig`
            (combinational or sequential).
        options: Flow options; defaults to :class:`FlowOptions()`.
        name: Optional name for the result (defaults to the design's).

    Returns:
        An :class:`XsfqSynthesisResult`.
    """
    options = options or FlowOptions()
    aig = _to_aig(design, name)
    source_stats = aig.stats()

    if options.effort != "none":
        aig = optimize(aig, effort=options.effort, verify=options.verify)
    else:
        aig = aig.cleanup()

    result_name = name or aig.name

    # Pipelined combinational designs.
    if aig.is_combinational() and options.pipeline_stages > 0:
        pipe = pipeline_combinational(
            aig,
            options.pipeline_stages,
            optimize_polarity=options.optimize_polarity and not options.direct_mapping,
            splitter_style=options.splitter_style,
            name=result_name,
        )
        analysis = pipe.analysis if pipe.analysis is not None else analyze_rails(pipe.aig)
        return XsfqSynthesisResult(
            name=result_name,
            netlist=pipe.netlist,
            aig=pipe.aig,
            analysis=analysis,
            options=options,
            pipeline_result=pipe,
            source_stats=source_stats,
        )

    # Rail analysis / polarity assignment.
    if options.direct_mapping:
        analysis = direct_mapping_analysis(aig)
    elif options.optimize_polarity:
        _, analysis = assign_output_polarities(aig, max_sweeps=options.polarity_sweeps)
    else:
        analysis = analyze_rails(aig)

    if aig.is_combinational():
        netlist = map_combinational(
            aig, analysis, name=result_name, splitter_style=options.splitter_style
        )
        return XsfqSynthesisResult(
            name=result_name,
            netlist=netlist,
            aig=aig,
            analysis=analysis,
            options=options,
            source_stats=source_stats,
        )

    netlist, info = map_sequential(
        aig,
        analysis,
        name=result_name,
        retime=options.retime,
        splitter_style=options.splitter_style,
    )
    return XsfqSynthesisResult(
        name=result_name,
        netlist=netlist,
        aig=aig,
        analysis=analysis,
        options=options,
        sequential_info=info,
        source_stats=source_stats,
    )
