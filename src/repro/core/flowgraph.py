"""Composable pass-manager for the xSFQ synthesis flow.

This module decomposes the end-to-end flow (historically the monolithic
``synthesize_xsfq`` funnel) into first-class, composable **stages** — the
same way :mod:`repro.aig.scripts` treats AIG passes as named ``PassFn``s.
The building blocks:

* :class:`FlowState` — the value threaded through the pipeline.  It
  carries every intermediate artifact (``LogicNetwork``, ``Aig``,
  ``RailAnalysis``, ``XsfqNetlist``, per-stage metrics), so callers and
  tests can inspect, snapshot and resume a synthesis mid-flow.
* :class:`Stage` — a named, pure ``(FlowState, options) -> FlowState``
  callable plus its default options, registered in the global
  :data:`STAGES` registry via :func:`register_stage`.  Every named AIG
  pass from :data:`repro.aig.scripts.PASSES` is bridged into the same
  registry, so ``Flow.from_script(["frontend", "balance", "rewrite",
  ...])`` mixes flow stages and raw AIG passes freely.
* :class:`Flow` — an ordered list of ``(stage name, option overrides)``
  pairs with constructors replacing the old boolean soup:
  :meth:`Flow.default`, :meth:`Flow.direct_mapping`,
  :meth:`Flow.from_options` and :meth:`Flow.from_script`.  A flow's
  :meth:`~Flow.signature` — the ordered stage names with their fully
  merged options — is the canonical cache identity used by
  :mod:`repro.eval.engine`.
* **Observers** — stages emit structured :class:`StageEvent`s
  (timing, node counts, cell/JJ counts) to registered observers;
  :class:`TimingObserver` collects them into the per-stage table the
  CLI renders under ``repro run --stage-timing``.
* :class:`StageCache` — stage-level memoisation.  States at cacheable
  stage boundaries (``frontend``, ``aig-opt``) are keyed on the input
  fingerprint plus the signature *prefix*, so a cached post-``aig-opt``
  AIG is reused across polarity/mapping variants — the bulk of the
  ablation and table-sweep wall clock.

The default stage order is ``frontend -> aig-opt -> pipeline ->
polarity -> map -> sequential -> report``.  ``pipeline`` runs before
``polarity`` because architectural pipelining re-runs the polarity
assignment per pipeline region; when it maps the design, the later
``polarity``/``map``/``sequential`` stages see a finished netlist and
pass the state through untouched.  Stages that do not apply (``map`` on
a sequential AIG, ``sequential`` on a combinational one) are no-ops, so
one default flow serves every design kind.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..aig import Aig, network_to_aig, optimize
from ..aig.scripts import PASSES
from ..netlist.network import LogicNetwork
from .dual_rail import map_combinational
from .flow import FlowOptions, XsfqSynthesisResult
from .pipeline import PipelineResult, pipeline_combinational
from .polarity import (
    RailAnalysis,
    analyze_rails,
    assign_output_polarities,
    direct_mapping_analysis,
)
from .sequential import SequentialMappingInfo, map_sequential

__all__ = [
    "DEFAULT_STAGE_ORDER",
    "FLOW_VARIANTS",
    "Flow",
    "FlowError",
    "FlowState",
    "Stage",
    "STAGES",
    "flow_variant",
    "flow_variant_names",
    "register_flow_variant",
    "register_stage",
    "resolve_stage",
    "render_stage_table",
    "StageCache",
    "StageEvent",
    "TimingObserver",
    "design_fingerprint",
    "get_stage_cache",
    "set_stage_cache",
]


class FlowError(Exception):
    """A flow was mis-composed or executed on an incompatible design."""


# ---------------------------------------------------------------------------
# FlowState: the value threaded through the stages
# ---------------------------------------------------------------------------


@dataclass
class FlowState:
    """Everything a synthesis-in-progress has produced so far.

    Stages treat the state as immutable: they :meth:`copy` it, update the
    copy and return it.  That makes stage functions pure, lets the stage
    cache hand out snapshots safely, and lets callers keep a reference to
    any intermediate state (e.g. the post-``aig-opt`` AIG) for inspection
    or for resuming with :meth:`Flow.resume`.
    """

    name: str = ""
    network: Optional[LogicNetwork] = None
    aig: Optional[Aig] = None
    analysis: Optional[RailAnalysis] = None
    netlist: Optional["XsfqNetlist"] = None  # noqa: F821 - forward ref for docs
    sequential_info: Optional[SequentialMappingInfo] = None
    pipeline_result: Optional[PipelineResult] = None
    source_stats: Dict[str, int] = field(default_factory=dict)
    #: Free-form per-stage metrics (node counts, cell counts, ...).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Extension point for user stages and non-xSFQ flows (e.g. the
    #: clocked-RSFQ baselines store their mapping result here).
    artifacts: Dict[str, object] = field(default_factory=dict)
    result: Optional[XsfqSynthesisResult] = None
    #: How many stages of the producing flow have already executed;
    #: lets :meth:`Flow.resume` continue a partial run where it stopped.
    stage_index: int = 0

    @classmethod
    def initial(
        cls, design: Union[LogicNetwork, Aig], name: Optional[str] = None
    ) -> "FlowState":
        """Wrap an input design into the state the first stage consumes."""
        if isinstance(design, Aig):
            return cls(name=name or design.name, aig=design)
        return cls(name=name or design.name, network=design)

    def copy(self) -> "FlowState":
        """Shallow per-field copy (artifact objects themselves are shared)."""
        return replace(
            self,
            source_stats=dict(self.source_stats),
            metrics=dict(self.metrics),
            artifacts=dict(self.artifacts),
        )

    def snapshot(self) -> "FlowState":
        """Isolated copy for the stage cache.

        Deep-copies the AIG so cache entries never alias an AIG handed to
        (or mutated by) a caller, and drops the source-network reference —
        cached prefixes end at AIG-producing stages, so downstream stages
        never need it and large input netlists are not pinned in memory.
        """
        state = self.copy()
        state.network = None
        if state.aig is not None:
            state.aig = state.aig.copy()
        return state

    def require_aig(self, stage: str) -> Aig:
        if self.aig is None:
            raise FlowError(
                f"stage {stage!r} needs an AIG; run the 'frontend' stage first"
            )
        return self.aig

    def summary(self) -> Dict[str, object]:
        """Small structured snapshot used by stage events and observers."""
        info: Dict[str, object] = {}
        if self.aig is not None:
            info["aig_ands"] = self.aig.num_ands
            info["aig_depth"] = self.aig.depth()
        if self.analysis is not None:
            info["rails"] = self.analysis.num_cells
        if self.netlist is not None:
            info["cells"] = self.netlist.num_logic_cells
            info["splitters"] = self.netlist.num_splitters
            info["jj"] = self.netlist.jj_count()
        return info


# ---------------------------------------------------------------------------
# Stage registry
# ---------------------------------------------------------------------------

StageFn = Callable[[FlowState, Mapping[str, object]], FlowState]


@dataclass(frozen=True)
class Stage:
    """A named, pure flow stage with default options.

    Attributes:
        name: Registry key; also the name used in flow signatures.
        fn: ``(state, options) -> state`` implementation.
        defaults: Full option namespace of the stage; overrides passed to
            a :class:`Flow` are merged over these, and the merged mapping
            is what enters the flow signature.
        cacheable: Whether the state *after* this stage may be memoised
            in a :class:`StageCache` (reserve for expensive, reusable
            boundaries such as ``aig-opt``).
        description: One-line human description (``repro list`` and docs).
    """

    name: str
    fn: StageFn
    defaults: Tuple[Tuple[str, object], ...] = ()
    cacheable: bool = False
    description: str = ""

    def run(self, state: FlowState, options: Mapping[str, object]) -> FlowState:
        return self.fn(state, options)


#: Global registry of named stages (the flow-level analogue of
#: :data:`repro.aig.scripts.PASSES`, which is bridged in below).
STAGES: Dict[str, Stage] = {}


def register_stage(
    name: str,
    defaults: Optional[Mapping[str, object]] = None,
    cacheable: bool = False,
    description: str = "",
) -> Callable[[StageFn], StageFn]:
    """Decorator: register a ``(state, options) -> state`` callable.

    Re-registering a name replaces the previous stage, so tests and user
    code can shadow built-ins (see ``examples/custom_flow.py``).
    """

    def decorator(fn: StageFn) -> StageFn:
        doc = (fn.__doc__ or "").strip()
        STAGES[name] = Stage(
            name=name,
            fn=fn,
            defaults=tuple(sorted((defaults or {}).items())),
            cacheable=cacheable,
            description=description or (doc.splitlines()[0] if doc else ""),
        )
        return fn

    return decorator


def _aig_pass_stage(pass_name: str) -> Stage:
    """Bridge a named AIG pass from :data:`repro.aig.scripts.PASSES`."""

    def run_pass(state: FlowState, options: Mapping[str, object]) -> FlowState:
        aig = state.require_aig(pass_name)
        state = state.copy()
        state.aig = PASSES[pass_name](aig)
        return state

    return Stage(
        name=pass_name,
        fn=run_pass,
        description=f"AIG pass {pass_name!r} from repro.aig.scripts.PASSES",
    )


def resolve_stage(name: str) -> Stage:
    """Look up a stage by name, falling back to the AIG pass registry.

    The fallback keeps the two registries unified even for passes added
    to ``PASSES`` *after* this module was imported.
    """
    stage = STAGES.get(name)
    if stage is not None:
        return stage
    if name in PASSES:
        return _aig_pass_stage(name)
    known = sorted(set(STAGES) | set(PASSES))
    raise FlowError(f"unknown stage {name!r}; known stages: {', '.join(known)}")


# ---------------------------------------------------------------------------
# Built-in stages (the decomposed synthesize_xsfq)
# ---------------------------------------------------------------------------


@register_stage(
    "frontend",
    cacheable=True,
    description="Convert the input design into a structurally hashed AIG",
)
def _stage_frontend(state: FlowState, options: Mapping[str, object]) -> FlowState:
    state = state.copy()
    if state.aig is None:
        if state.network is None:
            raise FlowError("frontend stage needs a LogicNetwork or Aig input")
        state.aig = network_to_aig(state.network)
    if state.name:
        state.aig.name = state.name
    else:
        state.name = state.aig.name
    state.source_stats = state.aig.stats()
    return state


@register_stage(
    "aig-opt",
    defaults={"effort": "medium", "verify": False},
    cacheable=True,
    description="Optimise the AIG with the off-the-shelf scripts (ABC analogue)",
)
def _stage_aig_opt(state: FlowState, options: Mapping[str, object]) -> FlowState:
    aig = state.require_aig("aig-opt")
    state = state.copy()
    effort = str(options["effort"])
    if effort != "none":
        state.aig = optimize(aig, effort=effort, verify=bool(options["verify"]))
    else:
        state.aig = aig.cleanup()
    state.metrics["aig_ands_after_opt"] = state.aig.num_ands
    return state


@register_stage(
    "pipeline",
    defaults={"stages": 0, "optimize_polarity": True, "splitter_style": "balanced"},
    description="Insert architectural pipeline DROC ranks into combinational AIGs",
)
def _stage_pipeline(state: FlowState, options: Mapping[str, object]) -> FlowState:
    stages = int(options["stages"])
    aig = state.require_aig("pipeline")
    if stages <= 0 or not aig.is_combinational():
        return state
    state = state.copy()
    pipe = pipeline_combinational(
        aig,
        stages,
        optimize_polarity=bool(options["optimize_polarity"]),
        splitter_style=str(options["splitter_style"]),
        name=state.name,
    )
    state.pipeline_result = pipe
    state.aig = pipe.aig
    state.netlist = pipe.netlist
    state.analysis = pipe.analysis if pipe.analysis is not None else analyze_rails(pipe.aig)
    return state


@register_stage(
    "polarity",
    defaults={"mode": "optimize", "sweeps": 4},
    description="Rail-requirement analysis / output phase assignment (Sec. 3.1.4-3.1.5)",
)
def _stage_polarity(state: FlowState, options: Mapping[str, object]) -> FlowState:
    if state.netlist is not None:  # pipelined upstream: already analysed + mapped
        return state
    aig = state.require_aig("polarity")
    mode = str(options["mode"])
    state = state.copy()
    if mode == "direct":
        state.analysis = direct_mapping_analysis(aig)
    elif mode == "optimize":
        _, state.analysis = assign_output_polarities(aig, max_sweeps=int(options["sweeps"]))
    elif mode == "positive":
        state.analysis = analyze_rails(aig)
    else:
        raise FlowError(
            f"polarity mode must be 'direct', 'positive' or 'optimize', not {mode!r}"
        )
    state.metrics["duplication"] = state.analysis.duplication_penalty
    return state


@register_stage(
    "map",
    defaults={"splitter_style": "balanced"},
    description="Dual-rail LA/FA mapping + splitter insertion (combinational designs)",
)
def _stage_map(state: FlowState, options: Mapping[str, object]) -> FlowState:
    aig = state.require_aig("map")
    if state.netlist is not None or not aig.is_combinational():
        return state
    if state.analysis is None:
        raise FlowError("'map' needs a rail analysis; run the 'polarity' stage first")
    state = state.copy()
    state.netlist = map_combinational(
        aig, state.analysis, name=state.name, splitter_style=str(options["splitter_style"])
    )
    return state


@register_stage(
    "sequential",
    defaults={"retime": True, "splitter_style": "balanced"},
    description="DROC storage-rank insertion + initialisation (sequential designs)",
)
def _stage_sequential(state: FlowState, options: Mapping[str, object]) -> FlowState:
    aig = state.require_aig("sequential")
    if state.netlist is not None or aig.is_combinational():
        return state
    if state.analysis is None:
        raise FlowError(
            "'sequential' needs a rail analysis; run the 'polarity' stage first"
        )
    state = state.copy()
    state.netlist, state.sequential_info = map_sequential(
        aig,
        state.analysis,
        name=state.name,
        retime=bool(options["retime"]),
        splitter_style=str(options["splitter_style"]),
    )
    return state


@register_stage(
    "report",
    description="Assemble the XsfqSynthesisResult with every paper-style metric",
)
def _stage_report(state: FlowState, options: Mapping[str, object]) -> FlowState:
    if state.netlist is None:
        raise FlowError(
            "'report' found no mapped netlist; the flow needs a 'map', "
            "'sequential' or 'pipeline' stage before it"
        )
    analysis = state.analysis
    if analysis is None:
        analysis = analyze_rails(state.require_aig("report"))
    state = state.copy()
    state.analysis = analysis
    state.result = XsfqSynthesisResult(
        name=state.name,
        netlist=state.netlist,
        aig=state.require_aig("report"),
        analysis=analysis,
        sequential_info=state.sequential_info,
        pipeline_result=state.pipeline_result,
        source_stats=dict(state.source_stats),
    )
    return state


# Bridge every already-registered AIG pass into the stage registry so
# `Flow.from_script` and `repro list`-style tooling see one namespace.
for _pass_name in PASSES:
    STAGES.setdefault(_pass_name, _aig_pass_stage(_pass_name))


# ---------------------------------------------------------------------------
# Observers
# ---------------------------------------------------------------------------


@dataclass
class StageEvent:
    """Structured before/after record emitted around every stage execution."""

    flow: str
    stage: str
    index: int
    seconds: float
    before: Dict[str, object] = field(default_factory=dict)
    after: Dict[str, object] = field(default_factory=dict)
    #: True when the stage was skipped because a cached prefix covered it.
    from_cache: bool = False


Observer = Union[Callable[[StageEvent], None], object]


def _notify_start(observers: Sequence[Observer], stage: str, index: int, state: FlowState) -> None:
    for obs in observers:
        hook = getattr(obs, "on_stage_start", None)
        if hook is not None:
            hook(stage, index, state)


def _notify_end(observers: Sequence[Observer], event: StageEvent) -> None:
    for obs in observers:
        hook = getattr(obs, "on_stage_end", None)
        if hook is not None:
            hook(event)
        elif callable(obs):
            obs(event)


class TimingObserver:
    """Collects stage events into the per-stage progress/timing table."""

    def __init__(self) -> None:
        self.events: List[StageEvent] = []

    def on_stage_end(self, event: StageEvent) -> None:
        self.events.append(event)

    def rows(self) -> List[Dict[str, object]]:
        """JSON-friendly per-stage rows (stored in cached records)."""
        return [
            {
                "stage": e.stage,
                "seconds": e.seconds,
                "cached": e.from_cache,
                "aig_ands": e.after.get("aig_ands"),
                "cells": e.after.get("cells"),
                "jj": e.after.get("jj"),
            }
            for e in self.events
        ]

    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events)

    def table(self) -> str:
        """Render the collected events as a text table."""
        return render_stage_table(self.rows())


def render_stage_table(rows: Iterable[Mapping[str, object]]) -> str:
    """Format per-stage timing rows (``TimingObserver.rows`` layout)."""
    from .report import format_table

    def cell(value: object) -> object:
        return "-" if value is None else value

    body = [
        [
            row["stage"],
            f"{float(row.get('seconds', 0.0)):.4f}",
            "cached" if row.get("cached") else "run",
            cell(row.get("aig_ands")),
            cell(row.get("cells")),
            cell(row.get("jj")),
        ]
        for row in rows
    ]
    return format_table(["Stage", "Seconds", "Source", "AIG ANDs", "Cells", "#JJ"], body)


# ---------------------------------------------------------------------------
# Stage-level cache
# ---------------------------------------------------------------------------


def design_fingerprint(design: Union[LogicNetwork, Aig]) -> str:
    """Stable structural hash of an input design (stage-cache identity).

    Covers the full structure — node types, fanins, PI/PO names, latch
    initial values — but *not* the design name, so renamed copies of the
    same circuit share cached prefixes.
    """
    hasher = hashlib.sha256()
    if isinstance(design, Aig):
        hasher.update(b"aig\0")
        for node in design.nodes():
            hasher.update(
                f"{design.node_type(node).name}:{design.fanin0(node)}:{design.fanin1(node)};".encode()
            )
        for latch in design.latches:
            hasher.update(f"L{latch.node}:{latch.next_lit}:{latch.init};".encode())
        hasher.update(("|".join(design.pi_names) + "\0").encode())
        hasher.update(("|".join(design.po_names) + "\0").encode())
        hasher.update(":".join(str(lit) for lit in design.po_lits).encode())
    else:
        hasher.update(b"network\0")
        for gate_name in sorted(design.gates):
            gate = design.gates[gate_name]
            hasher.update(
                f"{gate_name}:{gate.gate_type.value}:{','.join(gate.fanins)}:{gate.init};".encode()
            )
        hasher.update(("|".join(design.inputs) + "\0").encode())
        hasher.update(("|".join(design.outputs) + "\0").encode())
    return hasher.hexdigest()


class StageCache:
    """In-process LRU memo of :class:`FlowState` snapshots at stage boundaries.

    Keys combine the input design's :func:`design_fingerprint` with the
    flow-signature *prefix* up to (and including) a cacheable stage.  Two
    flows that share a prefix — e.g. a polarity sweep over the same
    ``frontend``/``aig-opt`` options — resume from the cached state
    instead of re-optimising the AIG.
    """

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = max(1, int(maxsize))
        self._states: "OrderedDict[str, FlowState]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def prefix_key(fingerprint: str, signature_prefix: Sequence[object]) -> str:
        from ..schema import content_key

        return content_key({"input": fingerprint, "stages": tuple(signature_prefix)})

    def get(self, key: str) -> Optional[FlowState]:
        state = self._states.get(key)
        if state is None:
            self.misses += 1
            return None
        self._states.move_to_end(key)
        self.hits += 1
        return state.snapshot()

    def contains(self, key: str) -> bool:
        return key in self._states

    def put(self, key: str, state: FlowState) -> None:
        self._states[key] = state.snapshot()
        self._states.move_to_end(key)
        while len(self._states) > self.maxsize:
            self._states.popitem(last=False)

    def clear(self) -> None:
        self._states.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._states)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._states)}


_STAGE_CACHE = StageCache()


def get_stage_cache() -> StageCache:
    """The process-wide stage cache (used by the eval engine)."""
    return _STAGE_CACHE


def set_stage_cache(cache: Optional[StageCache]) -> StageCache:
    """Install (or, with ``None``, reset) the process-wide stage cache."""
    global _STAGE_CACHE
    previous = _STAGE_CACHE
    _STAGE_CACHE = cache if cache is not None else StageCache()
    return previous


# ---------------------------------------------------------------------------
# Flow
# ---------------------------------------------------------------------------

#: One flow entry in canonical signature form: (stage name, merged options).
SignatureEntry = Tuple[str, Tuple[Tuple[str, object], ...]]

#: The stages Flow.default() composes, in execution order.
DEFAULT_STAGE_ORDER: Tuple[str, ...] = (
    "frontend",
    "aig-opt",
    "pipeline",
    "polarity",
    "map",
    "sequential",
    "report",
)


class Flow:
    """An ordered, named composition of synthesis stages.

    A ``Flow`` is cheap, immutable-by-convention data: a list of
    ``(stage name, option overrides)`` pairs.  Stage implementations are
    resolved from the registry at run time, so re-registering a stage
    (or adding an AIG pass) immediately affects existing flows.

    Attributes:
        stages: The ordered ``(name, overrides)`` pairs.
        options: The equivalent :class:`FlowOptions` when the flow was
            built from one (kept for the backwards-compatible result
            metadata); ``None`` for hand-composed flows.
    """

    def __init__(
        self,
        stages: Sequence[Tuple[str, Mapping[str, object]]],
        options: Optional[FlowOptions] = None,
    ) -> None:
        self.stages: List[Tuple[str, Dict[str, object]]] = [
            (name, dict(overrides)) for name, overrides in stages
        ]
        self.options = options
        for name, overrides in self.stages:
            stage = resolve_stage(name)  # raises on unknown stages early
            valid = {key for key, _ in stage.defaults}
            unknown = set(overrides) - valid
            if unknown:
                raise FlowError(
                    f"stage {name!r} has no option(s) {sorted(unknown)}; "
                    f"valid options: {sorted(valid) or '(none)'}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "Flow":
        """The paper's full flow with default options."""
        return cls.from_options(FlowOptions())

    @classmethod
    def direct_mapping(cls, effort: str = "none", **overrides: object) -> "Flow":
        """The Section 3.1.1 baseline: a full LA-FA pair per AIG node."""
        return cls.from_options(
            FlowOptions(effort=effort, direct_mapping=True, **overrides)  # type: ignore[arg-type]
        )

    @classmethod
    def from_options(cls, options: Union[FlowOptions, Mapping[str, object], None] = None) -> "Flow":
        """Build the staged equivalent of ``synthesize_xsfq(design, options)``."""
        if options is None:
            options = FlowOptions()
        elif not isinstance(options, FlowOptions):
            options = FlowOptions.from_dict(dict(options))
        if options.direct_mapping:
            polarity_mode = "direct"
        elif options.optimize_polarity:
            polarity_mode = "optimize"
        else:
            polarity_mode = "positive"
        stages: List[Tuple[str, Dict[str, object]]] = [
            ("frontend", {}),
            ("aig-opt", {"effort": options.effort, "verify": options.verify}),
            (
                "pipeline",
                {
                    "stages": options.pipeline_stages,
                    "optimize_polarity": options.optimize_polarity
                    and not options.direct_mapping,
                    "splitter_style": options.splitter_style,
                },
            ),
            ("polarity", {"mode": polarity_mode, "sweeps": options.polarity_sweeps}),
            ("map", {"splitter_style": options.splitter_style}),
            (
                "sequential",
                {"retime": options.retime, "splitter_style": options.splitter_style},
            ),
            ("report", {}),
        ]
        return cls(stages, options=options)

    @classmethod
    def from_script(
        cls, script: Sequence[Union[str, Tuple[str, Mapping[str, object]]]]
    ) -> "Flow":
        """Build a flow from stage names and/or AIG pass names.

        Entries are either a bare name (``"aig-opt"``, ``"balance"``) or a
        ``(name, options)`` pair::

            Flow.from_script([
                "frontend", "balance", "rewrite",
                ("polarity", {"mode": "positive"}),
                "map", "sequential", "report",
            ])
        """
        stages: List[Tuple[str, Mapping[str, object]]] = []
        for entry in script:
            if isinstance(entry, str):
                stages.append((entry, {}))
            else:
                name, overrides = entry
                stages.append((name, dict(overrides)))
        return cls(stages)

    @classmethod
    def from_signature(cls, signature: Sequence[SignatureEntry]) -> "Flow":
        """Rebuild a flow from :meth:`signature` output (cache keys, jobs)."""
        return cls([(name, dict(options)) for name, options in signature])

    # ------------------------------------------------------------------
    # Composition helpers
    # ------------------------------------------------------------------
    def stage_names(self) -> List[str]:
        return [name for name, _ in self.stages]

    def stage_options(self, name: str) -> Dict[str, object]:
        """Fully merged options of the first stage called ``name``."""
        for entry_name, overrides in self.stages:
            if entry_name == name:
                stage = resolve_stage(entry_name)
                merged = dict(stage.defaults)
                merged.update(overrides)
                return merged
        raise FlowError(f"flow has no stage {name!r} (stages: {self.stage_names()})")

    def with_options(self, name: str, **overrides: object) -> "Flow":
        """A new flow with extra option overrides on stage ``name``."""
        if name not in self.stage_names():
            raise FlowError(f"flow has no stage {name!r} (stages: {self.stage_names()})")
        stages = [
            (entry, {**opts, **overrides} if entry == name else dict(opts))
            for entry, opts in self.stages
        ]
        return Flow(stages)

    def with_stage(
        self,
        name: str,
        options: Optional[Mapping[str, object]] = None,
        before: Optional[str] = None,
    ) -> "Flow":
        """A new flow with stage ``name`` appended (or inserted ``before``)."""
        stages = [(entry, dict(opts)) for entry, opts in self.stages]
        entry = (name, dict(options or {}))
        if before is None:
            stages.append(entry)
        else:
            names = [n for n, _ in stages]
            if before not in names:
                raise FlowError(f"flow has no stage {before!r} (stages: {names})")
            stages.insert(names.index(before), entry)
        return Flow(stages)

    def without_stage(self, name: str) -> "Flow":
        """A new flow with every stage called ``name`` removed."""
        return Flow([(n, dict(o)) for n, o in self.stages if n != name])

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def signature(self) -> Tuple[SignatureEntry, ...]:
        """Canonical identity: ordered stage names + fully merged options.

        This — not a pickled :class:`FlowOptions` — is what the result
        cache in :mod:`repro.eval.engine` keys records on, and its
        prefixes are the stage-cache keys.
        """
        entries: List[SignatureEntry] = []
        for name, overrides in self.stages:
            stage = resolve_stage(name)
            merged = dict(stage.defaults)
            merged.update(overrides)
            entries.append((name, tuple(sorted(merged.items()))))
        return tuple(entries)

    def signature_prefix(self, until: str) -> Tuple[SignatureEntry, ...]:
        """The signature up to and including the first stage named ``until``."""
        entries = []
        for entry in self.signature():
            entries.append(entry)
            if entry[0] == until:
                return tuple(entries)
        raise FlowError(f"flow has no stage {until!r} (stages: {self.stage_names()})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {' -> '.join(self.stage_names())}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Flow) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_state(
        self,
        design: Union[LogicNetwork, Aig, FlowState],
        name: Optional[str] = None,
        observers: Sequence[Observer] = (),
        stage_cache: Optional[StageCache] = None,
        use_stage_cache: bool = True,
        until: Optional[str] = None,
    ) -> FlowState:
        """Execute the flow and return the final :class:`FlowState`.

        Args:
            design: Input network/AIG, or an existing :class:`FlowState`
                (e.g. one returned with ``until=...``) to resume from —
                its ``stage_index`` records how far it already ran.
            name: Optional result name override.
            observers: Objects receiving stage events (``on_stage_start``
                / ``on_stage_end`` methods, or a plain callable).
            stage_cache: Stage memo to consult/populate; defaults to the
                process-wide cache from :func:`get_stage_cache`.
            use_stage_cache: Disable memoisation entirely when False.
            until: Stop after the first stage with this name (inclusive),
                returning the mid-flow state for inspection.
        """
        state = self._coerce_state(design, name)
        signature = self.signature()
        stop_index = self._stop_index(until)
        cache = stage_cache if stage_cache is not None else get_stage_cache()
        start_index = min(state.stage_index, stop_index)
        fingerprint = self._fingerprint_for(state, use_stage_cache and start_index == 0)
        if fingerprint is not None:
            state, start_index = self._restore_cached_prefix(
                state, signature, stop_index, cache, fingerprint, name, observers
            )

        for index in range(start_index, stop_index):
            state = self._run_stage(state, index, observers)
            stage = resolve_stage(self.stages[index][0])
            if fingerprint is not None and stage.cacheable:
                key = StageCache.prefix_key(fingerprint, signature[: index + 1])
                if not cache.contains(key):
                    cache.put(key, state)
        if (
            state.result is not None
            and state.result.options is None
            and self.options is not None
        ):
            state.result.options = self.options
        return state

    @staticmethod
    def _coerce_state(
        design: Union[LogicNetwork, Aig, FlowState], name: Optional[str]
    ) -> FlowState:
        if isinstance(design, FlowState):
            state = design.copy()
            if name:
                state.name = name
            return state
        return FlowState.initial(design, name)

    def _stop_index(self, until: Optional[str]) -> int:
        if until is None:
            return len(self.stages)
        names = self.stage_names()
        if until not in names:
            raise FlowError(f"flow has no stage {until!r} (stages: {names})")
        return names.index(until) + 1

    def _fingerprint_for(self, state: FlowState, enabled: bool) -> Optional[str]:
        if not enabled:
            return None
        # Hashing the design only pays off when some stage can be memoised
        # (the baseline flows, for instance, have no cacheable stage).
        if not any(resolve_stage(name).cacheable for name, _ in self.stages):
            return None
        source = state.aig if state.aig is not None else state.network
        return design_fingerprint(source) if source is not None else None

    def _restore_cached_prefix(
        self,
        state: FlowState,
        signature: Tuple[SignatureEntry, ...],
        stop_index: int,
        cache: StageCache,
        fingerprint: str,
        name: Optional[str],
        observers: Sequence[Observer],
    ) -> Tuple[FlowState, int]:
        """Resume from the longest cached prefix ending at a cacheable stage."""
        start_index = 0
        # Structurally identical designs share cached prefixes regardless of
        # their name, so re-apply the current design's name on restore.
        desired_name = name or state.name
        for index in range(stop_index, 0, -1):
            if not resolve_stage(self.stages[index - 1][0]).cacheable:
                continue
            cached = cache.get(StageCache.prefix_key(fingerprint, signature[:index]))
            if cached is not None:
                if desired_name:
                    cached.name = desired_name
                    if cached.aig is not None:
                        cached.aig.name = desired_name
                state = cached
                start_index = index
                break
        for index in range(start_index if observers else 0):
            _notify_end(
                observers,
                StageEvent(
                    flow=state.name,
                    stage=self.stages[index][0],
                    index=index,
                    seconds=0.0,
                    before={},
                    after=state.summary() if index == start_index - 1 else {},
                    from_cache=True,
                ),
            )
        return state, start_index

    def _run_stage(
        self, state: FlowState, index: int, observers: Sequence[Observer]
    ) -> FlowState:
        """Execute one stage with its merged options, emitting events."""
        stage_name, overrides = self.stages[index]
        stage = resolve_stage(stage_name)
        merged = dict(stage.defaults)
        merged.update(overrides)
        if not observers:
            # No consumers: skip event assembly (state.summary() walks the
            # full AIG/netlist, a real cost on every unobserved synthesis).
            state = stage.run(state, merged)
            state.stage_index = index + 1
            return state
        _notify_start(observers, stage_name, index, state)
        before = state.summary()
        started = time.perf_counter()
        state = stage.run(state, merged)
        seconds = time.perf_counter() - started
        state.stage_index = index + 1
        _notify_end(
            observers,
            StageEvent(
                flow=state.name,
                stage=stage_name,
                index=index,
                seconds=seconds,
                before=before,
                after=state.summary(),
            ),
        )
        return state

    def run(
        self,
        design: Union[LogicNetwork, Aig, FlowState],
        name: Optional[str] = None,
        observers: Sequence[Observer] = (),
        stage_cache: Optional[StageCache] = None,
        use_stage_cache: bool = True,
    ) -> XsfqSynthesisResult:
        """Execute the flow end to end and return the synthesis result."""
        state = self.run_state(
            design,
            name=name,
            observers=observers,
            stage_cache=stage_cache,
            use_stage_cache=use_stage_cache,
        )
        if state.result is None:
            raise FlowError(
                "flow produced no XsfqSynthesisResult; append a 'report' stage "
                f"(stages ran: {self.stage_names()})"
            )
        return state.result

    def resume(
        self,
        state: FlowState,
        observers: Sequence[Observer] = (),
        stage_cache: Optional[StageCache] = None,
    ) -> FlowState:
        """Run the remaining stages on a mid-flow state from ``until=...``.

        The state's ``stage_index`` records where the partial run stopped,
        so already-executed stages are skipped, not re-run.
        """
        return self.run_state(state, observers=observers, stage_cache=stage_cache)


# ---------------------------------------------------------------------------
# Named flow variants
# ---------------------------------------------------------------------------

#: Named flow factories: ``{name: (factory, description)}``.  Variants are
#: factories (not Flow instances) so each caller gets a fresh composition
#: and late-registered stages/passes are picked up at build time.
FLOW_VARIANTS: Dict[str, Tuple[Callable[[], "Flow"], str]] = {}


def register_flow_variant(
    name: str, factory: Callable[[], "Flow"], description: str = ""
) -> None:
    """Register (or replace) a named flow variant.

    Variants are the enumerable flow compositions that campaign tooling
    — ``repro fuzz`` differential runs, ablation sweeps — iterates over.
    """
    FLOW_VARIANTS[name] = (factory, description)


def flow_variant(name: str) -> "Flow":
    """Build a fresh flow for a registered variant name."""
    try:
        factory, _ = FLOW_VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(FLOW_VARIANTS))
        raise FlowError(f"unknown flow variant {name!r}; known: {known}") from None
    return factory()


def flow_variant_names() -> List[str]:
    """Registered variant names, sorted."""
    return sorted(FLOW_VARIANTS)


register_flow_variant(
    "default", Flow.default,
    "the paper's full flow (medium effort, polarity optimisation, retiming)",
)
register_flow_variant(
    "direct", Flow.direct_mapping,
    "Section 3.1.1 direct mapping: a full LA-FA pair per AIG node",
)
register_flow_variant(
    "positive",
    lambda: Flow.from_options(FlowOptions(optimize_polarity=False)),
    "positive-polarity mapping (no output phase assignment)",
)
register_flow_variant(
    "no-retime",
    lambda: Flow.from_options(FlowOptions(retime=False)),
    "sequential mapping without DROC retiming (paired storage ranks)",
)
register_flow_variant(
    "unopt",
    lambda: Flow.from_options(FlowOptions(effort="none")),
    "no AIG optimisation: maps the structurally hashed frontend AIG",
)
