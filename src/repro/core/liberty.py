"""Liberty-style timing library export / import (paper Section 2.3).

The paper formats the characterised cell timing into a Liberty file with
1x1 look-up tables (PTL routing makes timing arcs load-independent, so a
single value per arc suffices).  This module writes such a file for the
xSFQ library and parses it back, so downstream tools (or the test-suite)
can round-trip the characterisation data.

Only the small subset of the Liberty grammar actually needed is supported:
``library``, ``cell``, ``pin``, ``timing`` groups with ``cell_rise`` /
``cell_fall`` 1x1 tables, and an ``area`` attribute that carries the JJ
count (a common convention in superconducting PDKs where "area" is
repurposed as the JJ budget).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .cells import CellKind, CellSpec, XsfqLibrary, default_library


@dataclass
class LibertyCell:
    """Parsed view of one Liberty cell."""

    name: str
    area: float
    delays_ps: Dict[str, float] = field(default_factory=dict)
    clocked: bool = False


def write_liberty(library: Optional[XsfqLibrary] = None, name: str = "xsfq") -> str:
    """Serialise the xSFQ library as Liberty text with 1x1 delay tables."""
    library = library or default_library()
    mode = "ptl" if library.use_ptl else "no_ptl"
    lines: List[str] = [
        f"library ({name}_{mode}) {{",
        "  delay_model : table_lookup;",
        "  time_unit : \"1ps\";",
        "  lu_table_template (single_value) {",
        "    variable_1 : input_net_transition;",
        "    index_1 (\"1\");",
        "  }",
    ]
    for spec in library.cells():
        lines.extend(_cell_block(spec))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _cell_block(spec: CellSpec) -> List[str]:
    lines = [
        f"  cell ({spec.kind.value}) {{",
        f"    area : {spec.jj_count};",
        f"    /* {spec.description} */",
    ]
    if spec.clocked:
        lines.append("    pin (clk) { direction : input; clock : true; }")
    for index in range(spec.inputs):
        lines.append(f"    pin (a{index}) {{ direction : input; }}")
    for index in range(spec.outputs):
        related = "clk" if spec.clocked else " ".join(f"a{i}" for i in range(spec.inputs))
        lines.extend(
            [
                f"    pin (q{index}) {{",
                "      direction : output;",
                f"      timing () {{",
                f"        related_pin : \"{related}\";",
                "        cell_rise (single_value) { values (\"%.3f\"); }" % spec.delay_ps,
                "        cell_fall (single_value) { values (\"%.3f\"); }" % spec.delay_ps,
                "      }",
                "    }",
            ]
        )
    lines.append("  }")
    return lines


def save_liberty(path: Union[str, Path], library: Optional[XsfqLibrary] = None, name: str = "xsfq") -> None:
    """Write the Liberty text to a file."""
    Path(path).write_text(write_liberty(library, name))


_CELL_RE = re.compile(r"cell\s*\(\s*([\w$]+)\s*\)\s*\{")
_AREA_RE = re.compile(r"area\s*:\s*([\d.]+)\s*;")
_PIN_RE = re.compile(r"pin\s*\(\s*([\w$]+)\s*\)\s*\{")
_VALUES_RE = re.compile(r"values\s*\(\s*\"([\d.eE+-]+)\"\s*\)")
_CLOCK_RE = re.compile(r"clock\s*:\s*true")


def parse_liberty(text: str) -> Dict[str, LibertyCell]:
    """Parse Liberty text produced by :func:`write_liberty`.

    Returns a dictionary keyed by cell name.  The parser is intentionally
    small: it tracks cell and pin scopes by brace counting and records the
    first 1x1 delay value per output pin.
    """
    cells: Dict[str, LibertyCell] = {}
    current_cell: Optional[LibertyCell] = None
    current_pin: Optional[str] = None
    cell_depth = 0
    depth = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        cell_match = _CELL_RE.search(line)
        if cell_match and depth == 1:
            current_cell = LibertyCell(cell_match.group(1), area=0.0)
            cells[current_cell.name] = current_cell
            cell_depth = depth + 1
        if current_cell is not None:
            area_match = _AREA_RE.search(line)
            if area_match:
                current_cell.area = float(area_match.group(1))
            if _CLOCK_RE.search(line):
                current_cell.clocked = True
            pin_match = _PIN_RE.search(line)
            if pin_match:
                current_pin = pin_match.group(1)
            values_match = _VALUES_RE.search(line)
            if values_match and current_pin is not None:
                current_cell.delays_ps.setdefault(current_pin, float(values_match.group(1)))
        depth += line.count("{") - line.count("}")
        if current_cell is not None and depth < cell_depth:
            current_cell = None
            current_pin = None
    return cells


def read_liberty(path: Union[str, Path]) -> Dict[str, LibertyCell]:
    """Read and parse a Liberty file."""
    return parse_liberty(Path(path).read_text())
