"""Pipelining of combinational xSFQ circuits (paper Section 4.2.2 / Table 5).

A purely combinational xSFQ circuit needs no synchronous cells at all, but
its throughput is then limited by the full logical depth.  Inserting DROC
ranks raises the clock frequency; because of the alternating encoding every
*architectural* pipeline stage requires **two** ranks of DROCs (one for the
excite phase and one for the relax phase), and the architectural clock
frequency is half the circuit clock frequency.

This module implements that transformation on top of the generic AIG
pipelining of :mod:`repro.aig.retime`: ``2 * stages`` register ranks are
inserted at depth-balanced level cuts, every rank is mapped to DROC cells
(one DROC per registered AIG node — the complementary outputs provide both
rails), and the first rank of each excite/relax pair carries preloading
hardware so the alternating property is established at start-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aig.graph import Aig, lit_node
from ..aig.retime import insert_pipeline_registers, pipeline_register_ranks
from .cells import CellKind, XsfqLibrary, default_library
from .dual_rail import MappingError, XsfqNetlist, fanin_rail, insert_splitters, map_combinational, rail_net
from .polarity import Rail, RailAnalysis, analyze_rails, assign_output_polarities
from .sequential import CLOCK_NET, TRIGGER_NET, _attach_clock_infrastructure

_PIPE_PREFIX = "pipe"


@dataclass
class PipelineResult:
    """Outcome of pipelining a combinational design.

    Attributes:
        netlist: The mapped xSFQ netlist including DROC ranks.
        aig: The pipelined AIG (with latch ranks inserted).
        stages: Number of architectural pipeline stages requested.
        ranks: Number of DROC ranks inserted (``2 * stages``).
        drocs_per_rank: DROC count of every rank, from inputs to outputs.
        preloaded: Total preloaded DROC count.
        plain: Total non-preloaded DROC count.
    """

    netlist: XsfqNetlist
    aig: Aig
    stages: int
    ranks: int
    drocs_per_rank: List[int] = field(default_factory=list)
    preloaded: int = 0
    plain: int = 0
    analysis: Optional[RailAnalysis] = None

    @property
    def droc_counts(self) -> Tuple[int, int]:
        """(non-preloaded, preloaded) DROC counts — the paper's Table 5 pair."""
        return self.plain, self.preloaded


def pipeline_combinational(
    aig: Aig,
    stages: int,
    analysis: Optional[RailAnalysis] = None,
    optimize_polarity: bool = True,
    splitter_style: str = "balanced",
    name: Optional[str] = None,
) -> PipelineResult:
    """Insert ``stages`` architectural pipeline stages into a combinational AIG.

    Args:
        aig: Combinational AIG (typically already optimised).
        stages: Number of architectural pipeline stages; 0 returns the
            unpipelined mapping.
        analysis: Optional pre-computed rail analysis of the *pipelined* AIG;
            normally left None so the polarity assignment is recomputed.
        optimize_polarity: Run the output phase assignment heuristic.
        splitter_style: Fanout splitter tree style.
        name: Netlist name.

    Returns:
        A :class:`PipelineResult`.
    """
    if aig.latches:
        raise MappingError("pipeline_combinational expects a combinational AIG")
    if stages < 0:
        raise MappingError("stages must be non-negative")

    ranks = 2 * stages
    pipelined = insert_pipeline_registers(aig, ranks, name_prefix=_PIPE_PREFIX) if ranks else aig.cleanup()
    if name:
        pipelined.name = name

    if analysis is None:
        if optimize_polarity:
            _, analysis = assign_output_polarities(pipelined)
        else:
            analysis = analyze_rails(pipelined)

    netlist = map_combinational(
        pipelined, analysis, name=name or pipelined.name, insert_fanout_splitters=False
    )

    rank_of = pipeline_register_ranks(pipelined, _PIPE_PREFIX)
    drocs_per_rank = [0] * (ranks + 1)
    preloaded_total = 0
    plain_total = 0
    latch_output_nets = set()
    for latch in pipelined.latches:
        rank = rank_of.get(latch.name, 1)
        # The first rank of every excite/relax pair is preloaded so that the
        # alternating property is established by the start-up trigger.
        preload = (rank % 2) == 1
        sink_name = f"{latch.name}$next"
        polarity = analysis.polarities.get(sink_name, Rail.POS)
        rail = fanin_rail(latch.next_lit, polarity)
        data_net = rail_net(lit_node(latch.next_lit), rail, pipelined)
        q_pos = rail_net(latch.node, Rail.POS, pipelined)
        q_neg = rail_net(latch.node, Rail.NEG, pipelined)
        netlist.add_cell(
            CellKind.DROC,
            [data_net],
            [q_pos, q_neg],
            name=f"droc_{latch.name}",
            preload=preload,
        )
        latch_output_nets.update({q_pos, q_neg})
        if rank < len(drocs_per_rank):
            drocs_per_rank[rank] += 1
        if preload:
            preloaded_total += 1
        else:
            plain_total += 1

    netlist.input_ports = [p for p in netlist.input_ports if p not in latch_output_nets]
    if pipelined.latches:
        _attach_clock_infrastructure(netlist, has_preloaded=preloaded_total > 0)
    insert_splitters(netlist, splitter_style)

    return PipelineResult(
        netlist=netlist,
        aig=pipelined,
        stages=stages,
        ranks=ranks,
        drocs_per_rank=drocs_per_rank[1:],
        preloaded=preloaded_total,
        plain=plain_total,
        analysis=analysis,
    )


def pipeline_clock_frequencies(
    result: PipelineResult, library: Optional[XsfqLibrary] = None
) -> Tuple[float, float]:
    """Circuit and architectural clock frequency (GHz) of a pipelined design.

    The circuit clock period is the worst stage delay (DROC-to-DROC or
    IO-to-DROC combinational path); the architectural frequency halves it
    because each logical cycle needs an excite and a relax phase.
    """
    library = library or default_library()
    period_ps = result.netlist.critical_path_delay(library)
    if period_ps <= 0:
        return float("inf"), float("inf")
    circuit = 1000.0 / period_ps
    return circuit, circuit / 2.0
