"""Rail-requirement analysis and output phase assignment (paper Sections 3.1.4-3.1.5).

Dual-rail xSFQ logic only *has* to produce both polarities of a signal where
both are actually consumed.  Because primary outputs feed DROC cells (which
regenerate both polarities) or dual-rail-to-single-rail converters, each
output needs only one polarity — and which one is a free choice.  Choosing
output polarities well and propagating the requirements backwards through
the AIG ("backward bubble pushing") removes most of the dual-rail
duplication penalty.

This module computes, for a given polarity choice at every sink (primary
output or latch next-state input), the set of rails required at every AIG
node; the LA/FA cell count and duplication penalty that follow; and a
greedy output-phase-assignment heuristic in the spirit of the domino-logic
literature the paper cites (Puri et al.), which flips sink polarities while
doing so reduces the total cell count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..aig.graph import Aig, lit_is_complemented, lit_node


class Rail(enum.Enum):
    """Polarity rail of a dual-rail signal."""

    POS = "p"
    NEG = "n"

    def flipped(self) -> "Rail":
        return Rail.NEG if self is Rail.POS else Rail.POS


@dataclass(frozen=True)
class Sink:
    """A combinational sink of the AIG whose polarity can be chosen freely.

    Attributes:
        name: Output or latch name.
        lit: Literal driving the sink.
        is_latch_input: True for latch next-state inputs, False for POs.
    """

    name: str
    lit: int
    is_latch_input: bool


@dataclass
class RailAnalysis:
    """Result of a rail-requirement analysis.

    Attributes:
        required: Set of required rails per AND node id.
        leaf_rails: Rails of PI / latch-output / constant nodes actually used.
        polarities: The sink polarity assignment the analysis was run with.
        num_la: Number of LA cells (positive rails of AND nodes).
        num_fa: Number of FA cells (negative rails of AND nodes).
    """

    required: Dict[int, Set[Rail]]
    leaf_rails: Dict[int, Set[Rail]]
    polarities: Dict[str, Rail]
    num_la: int = 0
    num_fa: int = 0

    @property
    def num_cells(self) -> int:
        """Total LA + FA cell count."""
        return self.num_la + self.num_fa

    @property
    def num_active_nodes(self) -> int:
        """AND nodes needing at least one rail."""
        return sum(1 for rails in self.required.values() if rails)

    @property
    def duplication_penalty(self) -> float:
        """Fraction of extra cells relative to one cell per active AIG node.

        Direct dual-rail mapping (both rails everywhere) yields 1.0 (100%);
        a fully single-rail mapping yields 0.0.
        """
        active = self.num_active_nodes
        if active == 0:
            return 0.0
        return (self.num_cells - active) / active


def sinks_of(aig: Aig) -> List[Sink]:
    """The polarity-assignable sinks of an AIG: POs and latch next-states."""
    sinks: List[Sink] = []
    for name, lit in zip(aig.po_names, aig.po_lits):
        sinks.append(Sink(name, lit, False))
    for latch in aig.latches:
        if latch.next_lit is None:
            raise ValueError(f"latch {latch.name!r} has no next-state literal")
        sinks.append(Sink(f"{latch.name}$next", latch.next_lit, True))
    return sinks


def positive_polarities(aig: Aig) -> Dict[str, Rail]:
    """The default polarity assignment: every sink keeps its positive rail."""
    return {sink.name: Rail.POS for sink in sinks_of(aig)}


def dual_rail_polarities(aig: Aig) -> Dict[str, Rail]:
    """Marker assignment used for the *unoptimised* direct mapping.

    Returned for symmetry; :func:`analyze_rails` has a ``force_dual_rail``
    flag that reproduces the Section 3.1.1 behaviour (both rails of every
    node are built regardless of what the sinks need).
    """
    return positive_polarities(aig)


def analyze_rails(
    aig: Aig,
    polarities: Optional[Mapping[str, Rail]] = None,
    force_dual_rail: bool = False,
) -> RailAnalysis:
    """Compute the rails required at every node for a polarity assignment.

    Args:
        aig: The optimised AIG (combinational part is analysed; latch
            outputs behave like PIs because DROC cells provide both rails).
        polarities: Rail kept at every sink (default: all positive).
        force_dual_rail: Build both rails of every reachable node — the
            behaviour of the direct mapping of Section 3.1.1, used as the
            baseline when reporting the duplication penalty.

    Returns:
        A :class:`RailAnalysis`.
    """
    if polarities is None:
        polarities = positive_polarities(aig)
    sinks = sinks_of(aig)
    required: Dict[int, Set[Rail]] = {node: set() for node in aig.and_nodes()}
    leaf_rails: Dict[int, Set[Rail]] = {}

    def require(node: int, rail: Rail, pending: List[Tuple[int, Rail]]) -> None:
        if aig.is_and(node):
            if rail not in required[node]:
                required[node].add(rail)
                pending.append((node, rail))
        else:
            leaf_rails.setdefault(node, set()).add(rail)

    pending: List[Tuple[int, Rail]] = []
    for sink in sinks:
        polarity = polarities.get(sink.name, Rail.POS)
        rail = polarity
        if lit_is_complemented(sink.lit):
            rail = rail.flipped()
        require(lit_node(sink.lit), rail, pending)
        if force_dual_rail:
            require(lit_node(sink.lit), rail.flipped(), pending)

    while pending:
        node, rail = pending.pop()
        f0, f1 = aig.fanins(node)
        for lit in (f0, f1):
            fanin_rail = rail
            if lit_is_complemented(lit):
                fanin_rail = fanin_rail.flipped()
            require(lit_node(lit), fanin_rail, pending)
            if force_dual_rail:
                require(lit_node(lit), fanin_rail.flipped(), pending)

    analysis = RailAnalysis(
        required=required,
        leaf_rails=leaf_rails,
        polarities=dict(polarities),
    )
    analysis.num_la = sum(1 for rails in required.values() if Rail.POS in rails)
    analysis.num_fa = sum(1 for rails in required.values() if Rail.NEG in rails)
    return analysis


def assign_output_polarities(
    aig: Aig,
    max_sweeps: int = 4,
    initial: Optional[Mapping[str, Rail]] = None,
) -> Tuple[Dict[str, Rail], RailAnalysis]:
    """Greedy output phase assignment minimising the LA/FA cell count.

    Starting from the all-positive assignment (or ``initial``), the
    heuristic sweeps over the sinks and keeps any single-polarity flip that
    strictly reduces the total number of LA/FA cells, repeating until a
    sweep makes no change or ``max_sweeps`` is reached.  This mirrors the
    output phase assignment heuristic from the domino-logic literature the
    paper applies (Section 3.1.5).

    Returns the chosen assignment together with its :class:`RailAnalysis`.
    """
    polarities: Dict[str, Rail] = dict(initial) if initial else positive_polarities(aig)
    best = analyze_rails(aig, polarities)
    sink_names = [sink.name for sink in sinks_of(aig)]
    for _ in range(max_sweeps):
        improved = False
        for name in sink_names:
            trial = dict(polarities)
            trial[name] = polarities[name].flipped()
            candidate = analyze_rails(aig, trial)
            if candidate.num_cells < best.num_cells:
                polarities = trial
                best = candidate
                improved = True
        if not improved:
            break
    return polarities, best


def direct_mapping_analysis(aig: Aig) -> RailAnalysis:
    """Rail analysis of the unoptimised direct mapping (Section 3.1.1).

    Every reachable AIG node is implemented as a full LA-FA pair, i.e. the
    duplication penalty is 100% by construction.
    """
    return analyze_rails(aig, force_dual_rail=True)
