"""Reporting helpers: paper-style component breakdowns and text tables.

The evaluation harness (:mod:`repro.eval`) and the benchmark scripts use
these helpers to print rows shaped like the paper's Tables 3-6: circuit
name, LA/FA count, duplication penalty, DROC counts, JJ totals and savings
over the RSFQ baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(_cell, col)) for col in zip(headers, *rows)] if rows else [[_cell(h)] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(map(_cell, headers), widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(_cell(value).ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_percentage(value: float) -> str:
    """Render a fraction as the paper renders duplication penalties (e.g. ``22%``)."""
    return f"{round(value * 100)}%"


def format_savings(savings_without: float, savings_with: float) -> str:
    """Render the paper's double savings column (``4.4/5.7×``)."""
    return f"{savings_without:.1f}/{savings_with:.1f}x"


@dataclass
class CircuitReport:
    """Component breakdown of one synthesised circuit (one table row).

    Attributes:
        circuit: Circuit name.
        la_fa: LA + FA cell count.
        duplication: Duplication penalty (fraction, 0..1).
        droc_plain: Non-preloaded DROC count.
        droc_preloaded: Preloaded DROC count.
        splitters: Splitter cell count.
        jj: JJ count of the xSFQ design (no-PTL cost model).
        jj_ptl: JJ count with PTL interfaces.
        baseline_name: Name of the RSFQ baseline being compared against.
        baseline_jj: JJ count of the baseline (no clock-splitting overhead).
        baseline_jj_clocked: Baseline JJ count including clock splitting.
        depth: Logical depth without splitters.
        depth_with_splitters: Logical depth including splitters.
        clock_circuit_ghz: Circuit clock frequency.
        clock_arch_ghz: Architectural clock frequency.
    """

    circuit: str
    la_fa: int = 0
    duplication: float = 0.0
    droc_plain: int = 0
    droc_preloaded: int = 0
    splitters: int = 0
    jj: int = 0
    jj_ptl: int = 0
    baseline_name: str = ""
    baseline_jj: Optional[int] = None
    baseline_jj_clocked: Optional[int] = None
    depth: int = 0
    depth_with_splitters: int = 0
    clock_circuit_ghz: float = 0.0
    clock_arch_ghz: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def jj_savings(self) -> Optional[float]:
        """JJ savings over the baseline without clock-splitting overhead."""
        if not self.baseline_jj or not self.jj:
            return None
        return self.baseline_jj / self.jj

    @property
    def jj_savings_clocked(self) -> Optional[float]:
        """JJ savings including the baseline's 30% clock-splitting overhead."""
        if not self.jj:
            return None
        baseline = self.baseline_jj_clocked
        if baseline is None and self.baseline_jj is not None:
            baseline = round(self.baseline_jj * 1.3)
        if baseline is None:
            return None
        return baseline / self.jj

    def droc_pair(self) -> str:
        """Format the DROC column the way the paper does (``without/with`` preloading)."""
        return f"{self.droc_plain}/{self.droc_preloaded}"

    def savings_pair(self) -> str:
        """Format the JJ-savings column (``x.x/y.yx``)."""
        without = self.jj_savings
        with_clock = self.jj_savings_clocked
        if without is None or with_clock is None:
            return "-"
        return format_savings(without, with_clock)


def combinational_table(reports: Sequence[CircuitReport], baseline_label: str = "Baseline") -> str:
    """Render a Table-4-style comparison for combinational circuits."""
    headers = ["Circuit", f"{baseline_label} #JJ", "#LA/FA", "Dupl.", "#DROC", "#JJ", "JJ Savings"]
    rows = [
        [
            r.circuit,
            r.baseline_jj if r.baseline_jj is not None else "-",
            r.la_fa,
            format_percentage(r.duplication),
            r.droc_plain + r.droc_preloaded,
            r.jj,
            r.savings_pair(),
        ]
        for r in reports
    ]
    return format_table(headers, rows)


def sequential_table(reports: Sequence[CircuitReport], baseline_label: str = "qSeq") -> str:
    """Render a Table-6-style comparison for sequential circuits."""
    headers = ["Circuit", f"{baseline_label} #JJ", "#LA/FA", "Dupl.", "#DROCs", "#JJ", "JJ Savings"]
    rows = [
        [
            r.circuit,
            r.baseline_jj if r.baseline_jj is not None else "-",
            r.la_fa,
            format_percentage(r.duplication),
            r.droc_pair(),
            r.jj,
            r.savings_pair(),
        ]
        for r in reports
    ]
    return format_table(headers, rows)


def pipelining_table(reports: Sequence[CircuitReport]) -> str:
    """Render a Table-5-style pipelining study."""
    headers = [
        "# Pipeline stages",
        "#JJ",
        "#LA/FA",
        "Dupl.",
        "#DROC",
        "Logical depth",
        "Clock freq. (GHz)",
    ]
    rows = []
    for r in reports:
        stages = r.extras.get("stages", "?")
        ranks = r.extras.get("ranks", "?")
        rows.append(
            [
                f"{stages}/{ranks}",
                r.jj,
                r.la_fa,
                format_percentage(r.duplication),
                r.droc_pair(),
                f"{r.depth}/{r.depth_with_splitters}",
                f"{r.clock_circuit_ghz:.1f}/{r.clock_arch_ghz:.1f}",
            ]
        )
    return format_table(headers, rows)


def duplication_table(penalties: Mapping[str, float]) -> str:
    """Render a Table-3-style duplication-penalty summary."""
    headers = ["Circuit", "Dupl."]
    rows = [[name, format_percentage(value)] for name, value in penalties.items()]
    return format_table(headers, rows)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of a sequence of positive numbers (0.0 when empty)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 when empty)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
