"""Sequential xSFQ synthesis: DROC flip-flops, preloading and pipeline balancing.

Paper Section 3.2.  Every logical flip-flop of a sequential design becomes a
pair of DROC cells so the dual-rail *alternating* property is preserved
across clock cycles: the excite phase of a logical cycle is processed in one
synchronous phase and the relax phase in the next.  Of each pair, exactly
one DROC carries preloading hardware (a DC-to-SFQ converter hanging off a
global voltage line) so it can emit a logical 1 during the very first cycle;
together with a one-shot *trigger* signal this guarantees correct
excite/relax patterning even in circuits with feedback (the initialisation
strategy of Figure 6).

Placing both DROCs of a pair back to back wastes half of the pipeline, so —
as the paper does with ABC retiming — the non-preloaded DROC of every pair
is pushed forward into the combinational logic, landing on a depth-balanced
level cut.  The resulting two synchronous ranks have roughly equal depth,
which is what determines the circuit clock frequency reported in the
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..aig.graph import Aig, lit_node
from ..aig.retime import cut_signals, level_cut
from .cells import CellKind, XsfqLibrary, default_library
from .dual_rail import (
    MappingError,
    OutputPort,
    XsfqNetlist,
    fanin_rail,
    insert_splitters,
    map_combinational,
    rail_net,
)
from .polarity import Rail, RailAnalysis, analyze_rails

#: Net names used for the global synchronisation signals.
CLOCK_NET = "clk"
TRIGGER_NET = "trg"


@dataclass
class SequentialMappingInfo:
    """Bookkeeping produced by :func:`map_sequential`.

    Attributes:
        preloaded_drocs: Names of DROC cells with preloading hardware.
        plain_drocs: Names of DROC cells without preloading hardware.
        latch_drocs: Map from logical flip-flop (latch) name to its boundary
            DROC cell name.
        midpoint_nodes: AIG nodes on which the retimed (second) DROC rank
            was placed.
        cut_level: Level threshold used for the retimed rank (None when
            retiming was disabled).
        stage_depths: Logic depth (LA/FA cells) of each synchronous stage.
        start_state: Architectural state (0/1 per latch) established by
            the preload/trigger start-up — the reference state a golden
            simulation must start from (see :mod:`repro.verify`).
    """

    preloaded_drocs: List[str] = field(default_factory=list)
    plain_drocs: List[str] = field(default_factory=list)
    latch_drocs: Dict[str, str] = field(default_factory=dict)
    midpoint_nodes: List[int] = field(default_factory=list)
    cut_level: Optional[int] = None
    stage_depths: List[int] = field(default_factory=list)
    #: Architectural state established by the preload/trigger start-up.
    #: A boundary DROC that captures the *positive* rail of its next-state
    #: function starts its latch at 1; one capturing the negative rail
    #: starts it at 0 (the preloaded pulse then travels the inverted rail).
    start_state: Dict[str, int] = field(default_factory=dict)

    @property
    def droc_counts(self) -> Tuple[int, int]:
        """(non-preloaded, preloaded) DROC cell counts."""
        return len(self.plain_drocs), len(self.preloaded_drocs)


def _attach_clock_infrastructure(netlist: XsfqNetlist, has_preloaded: bool) -> None:
    """Declare the clock / trigger nets and the trigger merger cell.

    Per the paper, the only clock-tree additions specific to xSFQ are a
    merger cell (5 JJ) that injects the one-shot trigger pulse into the
    clock line of the preloaded DROC rank, plus the external trigger itself.
    """
    netlist.clock_nets.append(CLOCK_NET)
    if has_preloaded:
        netlist.trigger_nets.append(TRIGGER_NET)
        netlist.add_cell(
            CellKind.MERGER,
            [CLOCK_NET, TRIGGER_NET],
            [f"{CLOCK_NET}_preload"],
            name="trigger_merger",
        )


def map_sequential(
    aig: Aig,
    analysis: Optional[RailAnalysis] = None,
    name: Optional[str] = None,
    retime: bool = True,
    splitter_style: str = "balanced",
) -> Tuple[XsfqNetlist, SequentialMappingInfo]:
    """Map a sequential AIG to an xSFQ netlist with DROC-pair flip-flops.

    Args:
        aig: Sequential AIG (latches represent logical flip-flops).
        analysis: Rail-requirement analysis (defaults to all-positive sinks).
        name: Netlist name.
        retime: Push the non-preloaded DROC of every pair into the
            combinational logic at a depth-balanced cut (paper Section 3.2).
            When False the two DROCs of a pair sit back to back.
        splitter_style: Fanout splitter tree style.

    Returns:
        ``(netlist, info)`` — the mapped netlist (including clock/trigger
        infrastructure) and a :class:`SequentialMappingInfo`.
    """
    if not aig.latches:
        raise MappingError("map_sequential requires a sequential AIG; use map_combinational")
    if analysis is None:
        analysis = analyze_rails(aig)
    netlist = map_combinational(
        aig, analysis, name=name, insert_fanout_splitters=False
    )
    info = SequentialMappingInfo()

    levels = aig.levels()
    depth = aig.depth()
    threshold: Optional[int] = None
    mid_nodes: List[int] = []
    if retime and depth >= 2:
        threshold = level_cut(aig, 0.5)
        # Register *every* signal that crosses the cut — AND nodes, primary
        # inputs, latch outputs and constants alike.  Leaving leaf rails
        # unregistered would desynchronise the two regions: logic above the
        # cut runs one phase behind the primary-input waves, so a direct
        # PI connection would pair pulses from different phases.
        mid_nodes = list(cut_signals(aig, threshold))
    info.cut_level = threshold
    info.midpoint_nodes = list(mid_nodes)

    # ------------------------------------------------------------------
    # Mid-rank (non-preloaded) DROCs at the balanced cut.  Each DROC
    # captures one available rail and reconstructs both complementary
    # rails one phase later; the output order encodes which rail was
    # captured (a pulse on the negative rail means "value 0", so a DROC
    # fed from it must emit its stored pulse on the negative output).
    # ------------------------------------------------------------------
    renamed: Dict[str, str] = {}
    for node in mid_nodes:
        pos_net = netlist.node_rail_nets.get((node, Rail.POS))
        neg_net = netlist.node_rail_nets.get((node, Rail.NEG))
        if pos_net is None and neg_net is None and node == 0:
            # Constant rails are implicit nets (no mapped cell drives them).
            pos_net = rail_net(0, Rail.POS, aig)
            neg_net = rail_net(0, Rail.NEG, aig)
        source = pos_net or neg_net
        if source is None:
            continue
        q_pos = f"n{node}_p$q"
        q_neg = f"n{node}_n$q"
        outputs = [q_pos, q_neg] if pos_net is not None else [q_neg, q_pos]
        cell = netlist.add_cell(
            CellKind.DROC, [source], outputs, name=f"droc_mid_n{node}"
        )
        info.plain_drocs.append(cell.name)
        if pos_net is not None:
            renamed[pos_net] = q_pos
        if neg_net is not None:
            renamed[neg_net] = q_neg

    # Rewire consumers that live above the cut to the registered nets.
    if renamed and threshold is not None:
        for cell in netlist.cells:
            node = netlist.cell_aig_nodes.get(cell.name)
            if node is None or levels[node] <= threshold:
                continue
            cell.inputs = [renamed.get(net, net) for net in cell.inputs]
        # Primary outputs always read from above the cut: a root whose
        # driver sits below the threshold crosses the cut by definition
        # (see cut_signals) and must observe the registered value.
        for port in netlist.output_ports:
            port.net = renamed.get(port.net, port.net)
        # Input waves need one extra phase to traverse the mid rank, so
        # the simulator drives them one phase early (with the trigger).
        netlist.input_phase_lead = 1

    # ------------------------------------------------------------------
    # Boundary (preloaded) DROCs: one per logical flip-flop.  Every logical
    # flip-flop must consist of a DROC *pair* so that the two synchronous
    # phases of a logical cycle are separated; the second (non-preloaded)
    # DROC of the pair is either the mid-rank cell the feedback path already
    # crosses (when retiming is enabled) or an explicit back-to-back partner.
    # ------------------------------------------------------------------
    sink_polarity = analysis.polarities
    mid_node_set = set(mid_nodes)
    latch_output_nets: Set[str] = set()
    for latch in aig.latches:
        sink_name = f"{latch.name}$next"
        polarity = sink_polarity.get(sink_name, Rail.POS)
        rail = fanin_rail(latch.next_lit, polarity)
        data_net = rail_net(lit_node(latch.next_lit), rail, aig)
        # If the next-state driver sits below the cut it received a mid-rank
        # DROC itself (next-state sinks are combinational roots and are
        # therefore part of the cut), so take the registered net.
        data_net = renamed.get(data_net, data_net)
        q_pos = rail_net(latch.node, Rail.POS, aig)
        q_neg = rail_net(latch.node, Rail.NEG, aig)
        # A DROC captures pulses from exactly one rail of its next-state
        # *value*: with sink polarity POS a stored pulse means "value 1",
        # with polarity NEG it means "value 0" (``rail`` is merely the
        # physical driver-node net after literal complementation).  A
        # NEG-polarity DROC must therefore emit its stored pulse on the
        # negative latch rail — and its preloaded start-up pulse then makes
        # the latch start at 0 rather than 1 (recorded in ``start_state``).
        q_outputs = [q_pos, q_neg] if polarity is Rail.POS else [q_neg, q_pos]
        info.start_state[latch.name] = 1 if polarity is Rail.POS else 0
        driver_node = lit_node(latch.next_lit)
        feedback_crosses_cut = threshold is not None and (
            driver_node in mid_node_set or levels[driver_node] > threshold
        )
        if feedback_crosses_cut:
            cell = netlist.add_cell(
                CellKind.DROC,
                [data_net],
                q_outputs,
                name=f"droc_{latch.name}",
                preload=True,
            )
        else:
            mid_pos = f"{latch.name}_pair_p"
            mid_neg = f"{latch.name}_pair_n"
            cell = netlist.add_cell(
                CellKind.DROC,
                [data_net],
                [mid_pos, mid_neg],
                name=f"droc_{latch.name}",
                preload=True,
            )
            partner = netlist.add_cell(
                CellKind.DROC,
                [mid_pos],
                q_outputs,
                name=f"droc_{latch.name}_b",
            )
            info.plain_drocs.append(partner.name)
        info.preloaded_drocs.append(cell.name)
        info.latch_drocs[latch.name] = cell.name
        latch_output_nets.update({q_pos, q_neg})

    # Latch-output rails are now driven by DROCs, not by input ports.
    netlist.input_ports = [p for p in netlist.input_ports if p not in latch_output_nets]

    _attach_clock_infrastructure(netlist, has_preloaded=bool(info.preloaded_drocs))
    insert_splitters(netlist, splitter_style)

    # Stage depths: with the mid rank in place the longest LA/FA path in the
    # netlist is per-stage by construction (storage cells cut paths).
    if threshold is not None:
        info.stage_depths = [threshold, max(depth - threshold, 0)]
    else:
        info.stage_depths = [depth]
    return netlist, info


def clock_frequency_ghz(
    netlist: XsfqNetlist,
    library: Optional[XsfqLibrary] = None,
) -> Tuple[float, float]:
    """Circuit and architectural clock frequencies of a mapped design.

    The circuit clock period is the worst combinational path delay between
    synchronisation boundaries (DROC clock-to-Q plus LA/FA/splitter path);
    the architectural frequency is half the circuit frequency because every
    logical cycle consumes an excite *and* a relax phase (paper Table 5).
    Returns ``(circuit_ghz, architectural_ghz)``.
    """
    library = library or default_library()
    period_ps = netlist.critical_path_delay(library)
    if period_ps <= 0:
        return float("inf"), float("inf")
    circuit = 1000.0 / period_ps
    return circuit, circuit / 2.0


def legacy_dro_flipflop_cost(num_flipflops: int, library: Optional[XsfqLibrary] = None) -> int:
    """JJ cost of the *legacy* four-DRO logical flip-flop (Figure 6i).

    Used by the ablation benchmarks to quantify what the DROC-pair design
    saves: the original xSFQ paper used two DRO cells per rail (four per
    logical flip-flop), two of which must be preloaded through merged SFQ
    inputs (approximated here with a merger per preloaded DRO).
    """
    library = library or default_library()
    dro = library.jj_count(CellKind.DRO)
    merger = library.jj_count(CellKind.MERGER)
    return num_flipflops * (4 * dro + 2 * merger)
