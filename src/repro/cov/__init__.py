"""Structural coverage for fuzzing campaigns (`repro.cov`).

Pure-random fuzzing re-explores the same shallow DAG shapes while whole
regions of the flow go untested.  This package turns the fuzzer into a
search: every generated circuit and every ``(circuit, flow)`` verdict is
bucketed into deterministic structural *features*, accumulated in a
:class:`CoverageMap`, and fed back into generation so the campaign
biases itself toward uncovered buckets.

* :mod:`repro.cov.map` — :class:`CoverageMap`: feature id -> set of
  contributing unit digests.  ``add`` is monotone and ``merge`` is an
  exact set union (associative, commutative, idempotent), so per-worker
  and per-shard maps combine into precisely the map a single worker
  would have produced;
* :mod:`repro.cov.features` — deterministic feature extraction:
  gate-alphabet histogram x depth buckets, latch count/topology
  classes, family parameter-region quartiles, shrink-corpus
  neighborhoods, and flow-variant x mapped-cell-family hits;
* :mod:`repro.cov.steer` — coverage-steered spec generation
  (:func:`steered_specs`): a drop-in for
  :func:`repro.gen.spec.generate_specs` that replaces
  coverage-redundant uniform draws with draws biased toward uncovered
  parameter regions — a pure function of ``(budget, seed, families)``
  whose generation coverage is guaranteed a superset of the
  pure-random campaign's;
* :mod:`repro.cov.soak` — resumable soak campaigns: batches are
  checkpointed to schema-versioned JSON (corpus + coverage + cursor)
  after every batch, shards partition one deterministic unit stream,
  and shard checkpoints merge into the single-shard result exactly;
* :mod:`repro.cov.report` — the hit/miss matrix and new-feature-rate
  rendering behind ``repro fuzz --coverage-report``.

CLI: ``repro fuzz --soak --checkpoint DIR [--shards N]`` and
``repro fuzz --coverage-report``; see ``docs/fuzzing.md``.
"""

from .map import COV_SCHEMA, CoverageMap
from .features import (
    corpus_features,
    feature_universe,
    generation_features,
    load_corpus_specs,
    region_features,
    structural_features,
    unit_digest,
    unit_features,
)
from .steer import steered_specs
from .soak import (
    SOAK_SCHEMA,
    SoakCampaign,
    SoakState,
    checkpoint_path,
    load_state,
    merge_states,
    run_soak,
)
from .report import render_coverage_report, render_new_feature_rate

__all__ = [
    "COV_SCHEMA",
    "CoverageMap",
    "SOAK_SCHEMA",
    "SoakCampaign",
    "SoakState",
    "checkpoint_path",
    "corpus_features",
    "feature_universe",
    "generation_features",
    "load_corpus_specs",
    "load_state",
    "merge_states",
    "region_features",
    "render_coverage_report",
    "render_new_feature_rate",
    "run_soak",
    "steered_specs",
    "structural_features",
    "unit_digest",
    "unit_features",
]
