"""Deterministic structural features of generated circuits and fuzz units.

A *feature* is a short, human-readable bucket id — ``alpha:xor:n3-4:d5-8``,
``latch:n2:self+cross``, ``region:dag:gates=q3``, ``cell:no-retime:DROC`` —
computed from nothing but the circuit structure, the generation spec and
the (deterministic) verification record.  The same unit produces the
same feature list in every process on every platform: bucketing is pure
integer arithmetic, iteration orders are fixed, and digests use SHA-256
rather than Python's per-process string hash.

Feature groups:

``alpha``
    Gate-alphabet histogram x depth: one bucket per gate type present,
    crossed with the gate-count bucket of that type and the circuit's
    logic-depth bucket.
``depth`` / ``latch``
    Circuit depth buckets; latch-count buckets crossed with a latch
    topology class (``indep``/``self``/``cross`` combinations — whether
    next-state cones reach no latch, the latch itself, or other latches).
``region``
    The generation-side parameter region: each family parameter's
    quartile within its registered fuzz range.  These are the buckets
    the steered generator (:mod:`repro.cov.steer`) samples toward.
``corpus``
    Shrink-corpus neighborhood: whether the spec lands near a pinned
    regression-corpus entry (same family, every parameter within a
    quarter fuzz-range of the entry's value).
``cell`` / ``verdict``
    Run-side features: flow variant x mapped cell family (from the
    verification record's ``cell_counts``) and flow variant x verdict
    status.
``fault``
    Robustness-campaign features: flow variant x injected fault kind x
    campaign status (``tolerated``/``miscompare``/...), folded from
    :class:`repro.faults.FaultReport` records so fault campaigns land
    in the same coverage algebra as fuzzing.
"""

from __future__ import annotations

import hashlib
import json
from itertools import combinations
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..gen.families import FAMILIES, family_info
from ..gen.spec import GenSpec
from ..netlist.network import COMBINATIONAL_TYPES, GateType, LogicNetwork

__all__ = [
    "FAULT_STATUSES",
    "corpus_features",
    "count_bucket",
    "fault_features",
    "feature_universe",
    "generation_features",
    "load_corpus_specs",
    "region_features",
    "run_side_features",
    "structural_features",
    "unit_digest",
    "unit_features",
]

#: Logarithmic bucket labels shared by gate counts and logic depth.
BUCKET_LABELS: Tuple[str, ...] = ("0", "1", "2", "3-4", "5-8", "9-16", "17-32", ">32")


def count_bucket(value: int) -> str:
    """Logarithmic bucket label for a non-negative count."""
    value = int(value)
    if value <= 0:
        return "0"
    if value <= 2:
        return str(value)
    for upper, label in ((4, "3-4"), (8, "5-8"), (16, "9-16"), (32, "17-32")):
        if value <= upper:
            return label
    return ">32"


def unit_digest(circuit: str, flow_name: str = "") -> str:
    """Stable short digest identifying one ``(circuit, flow)`` unit."""
    token = f"{circuit}|{flow_name}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Structural features (network-side)
# ---------------------------------------------------------------------------


def _latches_feeding(network: LogicNetwork, signal: str) -> set:
    """Latch outputs in the combinational cone feeding ``signal``."""
    seen: set = set()
    found: set = set()
    stack = [signal]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        gate = network.gates.get(name)
        if gate is None:
            continue
        if gate.is_latch():
            found.add(name)
            continue
        stack.extend(gate.fanins)
    return found


def _latch_topology_class(network: LogicNetwork) -> str:
    """Classify latch-to-latch connectivity: ``indep``/``self``/``cross``.

    Per latch: the next-state cone reaches no latch (``indep``), the
    latch itself (``self``) and/or other latches (``cross``); the class
    is the sorted ``+``-joined set of flags present anywhere in the
    network.
    """
    flags: set = set()
    for latch in network.latches:
        sources = _latches_feeding(network, latch.fanins[0])
        if not sources:
            flags.add("indep")
        if latch.name in sources:
            flags.add("self")
        if sources - {latch.name}:
            flags.add("cross")
    return "+".join(sorted(flags)) if flags else "none"


def structural_features(network: LogicNetwork) -> List[str]:
    """Alphabet-histogram x depth and latch features of one netlist."""
    depth_label = count_bucket(network.depth())
    features = [f"depth:d{depth_label}"]
    histogram: Dict[str, int] = {}
    for gate in network.gates.values():
        if gate.is_combinational():
            histogram[gate.gate_type.value] = histogram.get(gate.gate_type.value, 0) + 1
    for gate_type in sorted(histogram):
        features.append(
            f"alpha:{gate_type}:n{count_bucket(histogram[gate_type])}:d{depth_label}"
        )
    num_latches = len(network.latches)
    if num_latches:
        features.append(
            f"latch:n{count_bucket(num_latches)}:{_latch_topology_class(network)}"
        )
    else:
        features.append("latch:n0:none")
    return features


# ---------------------------------------------------------------------------
# Region features (spec-side)
# ---------------------------------------------------------------------------

#: Quartile sub-buckets per integer fuzz-range parameter.
REGION_BUCKETS = 4


def region_quartile(lo: int, hi: int, value: int) -> int:
    """Quartile index (0..3) of ``value`` within the inclusive range."""
    span = max(1, hi - lo + 1)
    return min(REGION_BUCKETS - 1, max(0, (int(value) - lo) * REGION_BUCKETS // span))


def region_features(spec: GenSpec) -> List[str]:
    """One feature per family parameter: its quartile (or boolean value)."""
    info = spec.info()
    defaults = dict(info.defaults)
    params = dict(spec.params)
    features: List[str] = []
    for key, (lo, hi) in info.fuzz_ranges:
        value = params.get(key, defaults.get(key, lo))
        if isinstance(defaults.get(key), bool):
            features.append(f"region:{spec.family}:{key}={int(bool(value))}")
        else:
            features.append(
                f"region:{spec.family}:{key}=q{region_quartile(lo, hi, int(value))}"
            )
    return features


# ---------------------------------------------------------------------------
# Shrink-corpus neighborhood
# ---------------------------------------------------------------------------

#: Neighborhood half-width as a fraction of the parameter's fuzz range.
CORPUS_NEIGHBORHOOD = 0.25

_CORPUS_CACHE: Dict[str, List[Tuple[str, GenSpec]]] = {}


def default_corpus_dir() -> Optional[Path]:
    """The pinned regression corpus (``tests/gen/corpus``), when present."""
    candidate = Path(__file__).resolve().parents[3] / "tests" / "gen" / "corpus"
    return candidate if candidate.is_dir() else None


def load_corpus_specs(
    directory: Optional[Path] = None,
) -> List[Tuple[str, GenSpec]]:
    """``(entry name, spec)`` pairs of the pinned shrink corpus, sorted.

    Entries that no longer parse (removed family, renamed parameter) or
    fail ``repro-corpus/1`` schema validation are skipped rather than
    fatal: coverage must keep working while the corpus evolves.  Results
    are cached per directory.
    """
    from ..schema import load_document

    directory = directory if directory is not None else default_corpus_dir()
    if directory is None:
        return []
    key = str(Path(directory).resolve())
    cached = _CORPUS_CACHE.get(key)
    if cached is not None:
        return cached
    entries: List[Tuple[str, GenSpec]] = []
    for path in sorted(Path(directory).glob("*.json")):
        try:
            data = load_document(
                json.loads(path.read_text(encoding="utf-8")),
                "corpus",
                source=str(path),
            )
            spec = GenSpec.create(
                str(data["family"]),
                seed=int(data.get("seed", 0)),
                **dict(data.get("params") or {}),
            )
        except (OSError, ValueError, KeyError, TypeError):
            continue
        entries.append((path.stem, spec))
    _CORPUS_CACHE[key] = entries
    return entries


def _near(spec: GenSpec, entry: GenSpec) -> bool:
    if spec.family != entry.family:
        return False
    ranges = dict(spec.info().fuzz_ranges)
    defaults = dict(spec.info().defaults)
    entry_params = dict(entry.params)
    for key, value in spec.params:
        other = entry_params.get(key, value)
        if isinstance(defaults.get(key), bool):
            if bool(value) != bool(other):
                return False
            continue
        lo, hi = ranges.get(key, (int(other), int(other)))
        radius = max(1, int(round((hi - lo) * CORPUS_NEIGHBORHOOD)))
        if abs(int(value) - int(other)) > radius:
            return False
    return True


def corpus_features(
    spec: GenSpec, corpus: Optional[Sequence[Tuple[str, GenSpec]]] = None
) -> List[str]:
    """``corpus:near:<entry>`` for each pinned entry the spec lands near."""
    corpus = corpus if corpus is not None else load_corpus_specs()
    return [f"corpus:near:{name}" for name, entry in corpus if _near(spec, entry)]


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def generation_features(
    spec: GenSpec,
    network: Optional[LogicNetwork] = None,
    corpus: Optional[Sequence[Tuple[str, GenSpec]]] = None,
) -> List[str]:
    """Every feature computable *before* running a flow on the circuit.

    This is the feature set the steered generator feeds on: structural
    (alphabet x depth, latches), parameter region, and shrink-corpus
    neighborhood.  ``network`` avoids a rebuild when the caller already
    has the instantiated circuit.
    """
    network = network if network is not None else spec.build()
    return (
        structural_features(network)
        + region_features(spec)
        + corpus_features(spec, corpus)
    )


def run_side_features(flow_name: str, record: Mapping[str, object]) -> List[str]:
    """Features only a completed flow run can produce.

    Flow-variant x mapped-cell-family hits (presence and count-bucketed,
    from the verification record's ``cell_counts``) plus the flow x
    verdict-status bucket.
    """
    features: List[str] = []
    cell_counts = record.get("cell_counts") or {}
    for kind in sorted(cell_counts):
        count = int(cell_counts[kind])
        if count <= 0:
            continue
        features.append(f"cell:{flow_name}:{kind}")
        features.append(f"cell:{flow_name}:{kind}:n{count_bucket(count)}")
    status = str(record.get("status") or "unknown")
    features.append(f"verdict:{flow_name}:{status}")
    return features


#: Statuses a fault-campaign record can carry (the ``fault`` group axis).
FAULT_STATUSES: Tuple[str, ...] = (
    "tolerated",
    "miscompare",
    "nominal-miscompare",
    "skipped",
)


def fault_features(flow_name: str, record: Mapping[str, object]) -> List[str]:
    """The fault-campaign bucket of one record: flow x kind x status."""
    kind = str(record.get("fault_kind") or "unknown")
    status = str(record.get("status") or "unknown")
    return [f"fault:{flow_name}:{kind}:{status}"]


def unit_features(
    spec: GenSpec,
    flow_name: str,
    record: Mapping[str, object],
    network: Optional[LogicNetwork] = None,
    corpus: Optional[Sequence[Tuple[str, GenSpec]]] = None,
) -> List[str]:
    """Every feature of one completed ``(circuit, flow)`` fuzz unit."""
    return generation_features(
        spec, network=network, corpus=corpus
    ) + run_side_features(flow_name, record)


# ---------------------------------------------------------------------------
# The known universe (hit/miss denominators)
# ---------------------------------------------------------------------------


def _latch_classes() -> List[str]:
    flags = ("cross", "indep", "self")
    classes = ["none"]
    for size in range(1, len(flags) + 1):
        classes.extend("+".join(combo) for combo in combinations(flags, size))
    return classes


def feature_universe(
    flows: Sequence[str],
    families: Optional[Sequence[str]] = None,
    corpus: Optional[Sequence[Tuple[str, GenSpec]]] = None,
) -> Dict[str, List[str]]:
    """Enumerable feature buckets per group, for hit/miss reporting.

    The universe is intentionally the *reachable-in-principle* set (every
    gate type x every bucket, every flow x every cell kind, ...); a
    campaign is not expected to exhaust it — the point is a stable
    denominator so coverage percentages compare across campaigns.
    """
    from ..core.cells import CellKind

    selected = sorted(families) if families else sorted(FAMILIES)
    nonzero = [label for label in BUCKET_LABELS if label != "0"]
    universe: Dict[str, List[str]] = {}
    universe["depth"] = [f"depth:d{label}" for label in BUCKET_LABELS]
    universe["alpha"] = [
        f"alpha:{gate_type.value}:n{n}:d{d}"
        for gate_type in sorted(COMBINATIONAL_TYPES, key=lambda t: t.value)
        for n in nonzero
        for d in nonzero
    ]
    universe["latch"] = [
        f"latch:n{label}:{cls}" for label in BUCKET_LABELS for cls in _latch_classes()
    ]
    region: List[str] = []
    for family in selected:
        info = family_info(family)
        defaults = dict(info.defaults)
        for key, (lo, hi) in info.fuzz_ranges:
            if isinstance(defaults.get(key), bool):
                region.extend(f"region:{family}:{key}={v}" for v in (0, 1))
            else:
                region.extend(
                    f"region:{family}:{key}=q{q}" for q in range(REGION_BUCKETS)
                )
    universe["region"] = region
    corpus = corpus if corpus is not None else load_corpus_specs()
    universe["corpus"] = [f"corpus:near:{name}" for name, _ in corpus]
    universe["cell"] = [
        f"cell:{flow}:{kind.value}" for flow in flows for kind in CellKind
    ]
    universe["verdict"] = [
        f"verdict:{flow}:{status}"
        for flow in flows
        for status in ("equivalent", "counterexample", "skipped")
    ]
    # Lazy import: repro.faults imports repro.verify, which must stay
    # importable before repro.cov during package init.
    from ..faults.scenario import fault_kind_names

    universe["fault"] = [
        f"fault:{flow}:{kind}:{status}"
        for flow in flows
        for kind in fault_kind_names()
        for status in FAULT_STATUSES
    ]
    return universe


#: GateType is re-exported for callers building synthetic feature ids.
GATE_TYPES: Tuple[GateType, ...] = tuple(
    sorted(COMBINATIONAL_TYPES, key=lambda t: t.value)
)
