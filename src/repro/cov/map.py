"""The coverage accumulator: feature buckets -> contributing units.

A :class:`CoverageMap` records which structural feature buckets a
campaign has hit and *which units hit them*: every feature id maps to
the set of unit digests (see :func:`repro.cov.features.unit_digest`)
that produced it.  Storing the contributing sets — rather than bare
counters — is what makes the map algebraically exact:

* ``add`` is **monotone**: features and digests are only ever inserted,
  never removed, so coverage can only grow;
* ``merge`` is a per-feature **set union**: associative, commutative
  and idempotent, so per-worker or per-shard maps combine in any order,
  any number of times, into exactly the map one worker scanning all
  units would have produced (counts included — a unit seen by two
  shards is one unit, not two).

Serialisation is canonical (sorted features, sorted digest lists, no
floats, no timestamps): equal maps produce byte-identical JSON, which
is the property the soak checkpoint/resume machinery and its tests are
built on.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Set

from ..schema import canonical_json, load_document, pack, schema_tag

__all__ = ["COV_SCHEMA", "CoverageMap"]

#: Schema tag of the serialised coverage layout (the ``cov`` kind of the
#: ``repro.schema`` registry).
COV_SCHEMA = schema_tag("cov")


class CoverageMap:
    """Monotone, exactly-mergeable structural coverage accumulator."""

    def __init__(self) -> None:
        self._features: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add(self, features: Iterable[str], unit: str) -> List[str]:
        """Record that ``unit`` hit every bucket in ``features``.

        Returns the features that were new to this map (in input order),
        so callers can track the campaign's new-feature rate for free.
        """
        unit = str(unit)
        fresh: List[str] = []
        for feature in features:
            bucket = self._features.get(feature)
            if bucket is None:
                bucket = self._features[feature] = set()
                fresh.append(feature)
            bucket.add(unit)
        return fresh

    def new_features(self, features: Iterable[str]) -> List[str]:
        """The subset of ``features`` not yet covered (without recording)."""
        return [f for f in dict.fromkeys(features) if f not in self._features]

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """Pure union with ``other`` (neither operand is modified).

        Associative, commutative and idempotent: shard maps combine in
        any order into the exact single-worker map.
        """
        merged = CoverageMap()
        for source in (self, other):
            for feature, units in source._features.items():
                merged._features.setdefault(feature, set()).update(units)
        return merged

    @classmethod
    def merge_all(cls, maps: Iterable["CoverageMap"]) -> "CoverageMap":
        merged = cls()
        for other in maps:
            merged = merged.merge(other)
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, feature: str) -> bool:
        return feature in self._features

    def __len__(self) -> int:
        return len(self._features)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self._features == other._features

    def features(self) -> List[str]:
        """Every covered feature id, sorted."""
        return sorted(self._features)

    def units(self, feature: str) -> List[str]:
        """Sorted digests of the units that hit ``feature``."""
        return sorted(self._features.get(feature, ()))

    def count(self, feature: str) -> int:
        """Distinct units that hit ``feature`` (0 when uncovered)."""
        return len(self._features.get(feature, ()))

    def counts(self) -> Dict[str, int]:
        return {feature: len(units) for feature, units in self._features.items()}

    def total_hits(self) -> int:
        """Sum of per-feature distinct-unit counts."""
        return sum(len(units) for units in self._features.values())

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The tagged ``repro-cov/1`` document (validated by ``pack``)."""
        return pack(
            "cov",
            {
                "features": {
                    feature: sorted(units)
                    for feature, units in sorted(self._features.items())
                },
            },
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CoverageMap":
        payload = load_document(data, "cov", source="coverage map")
        cov = cls()
        for feature, units in (payload.get("features") or {}).items():
            cov._features[str(feature)] = {str(u) for u in units}
        return cov

    def canonical_json(self) -> str:
        """Canonical serialisation: equal maps -> byte-identical text."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CoverageMap":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CoverageMap {len(self)} features, {self.total_hits()} hits>"
