"""Rendering for ``repro fuzz --coverage-report``.

Three views over a :class:`~repro.cov.map.CoverageMap`:

* a per-group hit/known summary against the enumerable feature universe
  (:func:`repro.cov.features.feature_universe`);
* the flow-variant x mapped-cell-family hit/miss matrix — the
  at-a-glance answer to "has every mapping strategy exercised every
  library cell?";
* the per-batch new-feature rate of a soak run (how fast the campaign
  is still learning; a flat-lined rate means the current generator
  settings are mined out).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.report import format_table
from .features import feature_universe
from .map import CoverageMap

__all__ = [
    "coverage_summary",
    "render_cell_matrix",
    "render_coverage_report",
    "render_new_feature_rate",
]


def coverage_summary(
    coverage: CoverageMap,
    flows: Sequence[str],
    families: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-group ``{"hit", "known", "extra"}`` counts.

    ``hit`` counts universe buckets the map covers; ``extra`` counts
    covered features outside the enumerated universe (finer-grained ids
    such as count-bucketed cell features).
    """
    universe = feature_universe(flows, families=families)
    covered = set(coverage.features())
    summary: Dict[str, Dict[str, int]] = {}
    claimed: set = set()
    for group, buckets in universe.items():
        bucket_set = set(buckets)
        prefix = f"{group}:"
        in_group = {f for f in covered if f.startswith(prefix)}
        claimed |= in_group
        summary[group] = {
            "hit": len(bucket_set & covered),
            "known": len(bucket_set),
            "extra": len(in_group - bucket_set),
        }
    leftover = covered - claimed
    if leftover:
        summary["other"] = {"hit": 0, "known": 0, "extra": len(leftover)}
    return summary


def render_summary_table(
    coverage: CoverageMap,
    flows: Sequence[str],
    families: Optional[Sequence[str]] = None,
) -> str:
    rows = []
    for group, entry in sorted(coverage_summary(coverage, flows, families).items()):
        known = entry["known"]
        pct = f"{entry['hit'] / known * 100.0:5.1f}%" if known else "-"
        rows.append([group, entry["hit"], known, pct, entry["extra"]])
    return format_table(["Group", "Hit", "Known", "Cover", "Extra"], rows)


def render_cell_matrix(coverage: CoverageMap, flows: Sequence[str]) -> str:
    """Flow-variant x cell-family hit/miss matrix (``X`` hit, ``.`` miss)."""
    from ..core.cells import CellKind

    kinds = [kind.value for kind in CellKind]
    rows = []
    for flow in flows:
        rows.append(
            [flow]
            + [
                "X" if f"cell:{flow}:{kind}" in coverage else "."
                for kind in kinds
            ]
        )
    return format_table(["Flow \\ Cell"] + kinds, rows)


def render_new_feature_rate(batches: Sequence[Mapping[str, int]]) -> str:
    """Per-batch new-feature table with the cumulative feature count."""
    rows = []
    cumulative = 0
    for index, batch in enumerate(batches, 1):
        units = int(batch.get("units", 0))
        fresh = int(batch.get("new_features", 0))
        cumulative += fresh
        rate = f"{fresh / units:.2f}" if units else "-"
        rows.append([index, units, fresh, rate, cumulative])
    return format_table(
        ["Batch", "Units", "New features", "New/unit", "Cumulative"], rows
    )


def render_coverage_report(
    coverage: CoverageMap,
    flows: Sequence[str],
    families: Optional[Sequence[str]] = None,
    batches: Optional[Sequence[Mapping[str, int]]] = None,
) -> str:
    """The full ``--coverage-report`` text block."""
    parts: List[str] = [
        f"coverage: {len(coverage)} feature buckets, "
        f"{coverage.total_hits()} (feature, unit) hits",
        render_summary_table(coverage, flows, families),
        "",
        "flow x cell-family hits:",
        render_cell_matrix(coverage, flows),
    ]
    if batches:
        parts.extend(["", "new-feature rate:", render_new_feature_rate(batches)])
    return "\n".join(parts)
