"""Resumable, shardable soak campaigns over the fuzz stack.

A soak run is an ordinary differential fuzzing campaign executed in
*batches* with a durable cursor: after every batch the accumulated
corpus (verdict records), the coverage map and the campaign cursor are
written to a schema-versioned JSON checkpoint, so a run killed at any
point resumes from its checkpoint and finishes **byte-identical** to
the uninterrupted run.

The determinism contract, and how each piece honours it:

* the unit stream is a pure function of the campaign identity
  (steered or not — see :mod:`repro.cov.steer`), recomputed on resume
  rather than persisted;
* shard ``i`` of ``N`` takes units ``i, i+N, i+2N, ...`` of that one
  shared stream, so shards need no coordination and the union of all
  shard corpora *is* the single-shard corpus; :func:`merge_states`
  re-sorts records by their global unit index and set-unions the
  coverage maps, reconstructing the 1-shard result exactly;
* records are stripped of wall-clock fields before persisting
  (:data:`VOLATILE_RECORD_FIELDS`) — everything a checkpoint holds is
  reproducible, so checkpoint files compare with ``cmp``;
* checkpoints are written atomically (temp file + rename): a kill
  mid-write leaves the previous batch's checkpoint intact.

Scheduling rides on :meth:`repro.eval.runner.Runner.fuzz`, so cached
verdicts replay for free and worker pools apply per batch.  The CLI
surface is ``repro fuzz --soak --checkpoint DIR [--shards N
[--shard-index I]] [--merge]``; see ``docs/fuzzing.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exec import ExecEvent
from ..gen.fuzz import FuzzCampaign, FuzzUnit
from ..schema import atomic_write_json, canonical_json, load_document, pack, schema_tag
from .features import generation_features, load_corpus_specs, run_side_features, unit_digest
from .map import CoverageMap

__all__ = [
    "SOAK_SCHEMA",
    "SoakCampaign",
    "SoakState",
    "VOLATILE_RECORD_FIELDS",
    "checkpoint_path",
    "load_state",
    "merge_states",
    "merged_path",
    "run_soak",
    "shard_paths",
    "write_state",
]

#: Schema tag of the checkpoint layout (the ``soak`` kind of the
#: ``repro.schema`` registry).
SOAK_SCHEMA = schema_tag("soak")

#: Wall-clock record fields stripped before persisting: checkpoints hold
#: only reproducible data, so resumed and uninterrupted runs emit
#: byte-identical files.
VOLATILE_RECORD_FIELDS: Tuple[str, ...] = ("seconds", "synth_seconds")


@dataclass(frozen=True)
class SoakCampaign:
    """Identity of one (shard of a) soak run.

    Attributes:
        fuzz: The underlying campaign (budget, seed, families, flows,
            stimulus identity, steering).
        batch_size: Units verified between checkpoints.
        shards: Total shard count the unit stream is partitioned into.
        shard_index: This run's shard (``0 <= shard_index < shards``).
    """

    fuzz: FuzzCampaign
    batch_size: int = 30
    shards: int = 1
    shard_index: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not 0 <= self.shard_index < self.shards:
            raise ValueError(
                f"shard index {self.shard_index} outside 0..{self.shards - 1}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {self.batch_size}")

    def identity(self) -> Dict[str, object]:
        """The checkpoint-compatibility key: everything that shapes the stream."""
        return {
            "campaign": self.fuzz.to_dict(),
            "batch_size": self.batch_size,
            "shards": self.shards,
            "shard_index": self.shard_index,
        }

    def base_identity(self) -> Dict[str, object]:
        """Identity shared by every shard of the same campaign."""
        base = self.identity()
        base.pop("shard_index")
        return base

    def shard_units(self) -> List[Tuple[int, FuzzUnit]]:
        """This shard's ``(global unit index, unit)`` slice, in order."""
        return list(enumerate(self.fuzz.units()))[self.shard_index :: self.shards]


@dataclass
class SoakState:
    """Everything one shard has durably accumulated.

    Attributes:
        campaign: The producing :meth:`SoakCampaign.identity` dict.
        units_total: Units in this shard's slice of the stream.
        units_done: Cursor — units verified and persisted so far.
        batches: Per-batch progress rows
            (``{"units": n, "new_features": n}``), in batch order.
        records: Stripped verdict records, each carrying its global
            ``unit_index``; together with the spec names inside, this is
            the campaign's corpus.
        coverage: The shard's coverage map.
    """

    campaign: Dict[str, object]
    units_total: int = 0
    units_done: int = 0
    batches: List[Dict[str, int]] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)

    @property
    def complete(self) -> bool:
        return self.units_done >= self.units_total

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "counterexample"]

    def new_features_total(self) -> int:
        return sum(int(b.get("new_features", 0)) for b in self.batches)

    def to_dict(self) -> Dict[str, object]:
        """The tagged ``repro-soak/1`` document (validated by ``pack``)."""
        return pack(
            "soak",
            {
                "campaign": dict(self.campaign),
                "units_total": self.units_total,
                "units_done": self.units_done,
                "batches": [dict(b) for b in self.batches],
                "records": [dict(r) for r in self.records],
                "coverage": self.coverage.to_dict(),
            },
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SoakState":
        payload = load_document(data, "soak", source="soak checkpoint")
        return cls(
            campaign=dict(payload.get("campaign") or {}),
            units_total=int(payload.get("units_total", 0)),
            units_done=int(payload.get("units_done", 0)),
            batches=[dict(b) for b in payload.get("batches") or []],
            records=[dict(r) for r in payload.get("records") or []],
            coverage=CoverageMap.from_dict(payload.get("coverage") or {}),
        )

    def corpus_json(self) -> str:
        """Canonical corpus serialisation (byte-identical when equal)."""
        return canonical_json(self.records)


# ---------------------------------------------------------------------------
# Checkpoint IO
# ---------------------------------------------------------------------------


def checkpoint_path(directory: Path, shards: int = 1, shard_index: int = 0) -> Path:
    """The canonical checkpoint file of one shard."""
    return Path(directory) / f"soak-shard{int(shard_index)}of{int(shards)}.json"


def merged_path(directory: Path) -> Path:
    """Where :func:`merge_states` results are conventionally written."""
    return Path(directory) / "soak-merged.json"


def shard_paths(directory: Path) -> List[Path]:
    """Every shard checkpoint present in ``directory``, sorted."""
    return sorted(Path(directory).glob("soak-shard*of*.json"))


def write_state(state: SoakState, path: Path) -> Path:
    """Atomically persist a checkpoint (shared schema-layer writer)."""
    return atomic_write_json(Path(path), state.to_dict())


def load_state(path: Path) -> SoakState:
    with open(path, "r", encoding="utf-8") as handle:
        return SoakState.from_dict(json.load(handle))


def merge_states(states: Sequence[SoakState]) -> SoakState:
    """Combine shard states into the single-shard equivalent.

    Records are re-interleaved by global unit index and coverage maps
    set-union, so merging the complete shards of one campaign yields
    exactly the corpus and coverage a 1-shard run produces.  Per-batch
    progress rows are shard-local wall history, not campaign state, and
    are dropped.
    """
    if not states:
        raise ValueError("nothing to merge: no shard states")
    shards = int(states[0].campaign.get("shards", 1) or 1)
    base = {k: v for k, v in states[0].campaign.items() if k != "shard_index"}
    seen_indices = set()
    for state in states:
        other = {k: v for k, v in state.campaign.items() if k != "shard_index"}
        if other != base:
            raise ValueError(
                "shard checkpoints disagree on campaign identity; "
                "refusing to merge unrelated soak runs"
            )
        seen_indices.add(int(state.campaign.get("shard_index", 0)))
    missing = set(range(shards)) - seen_indices
    if missing:
        raise ValueError(
            f"incomplete shard set: missing shard index(es) {sorted(missing)}"
        )
    merged_campaign = dict(base)
    merged_campaign["shards"] = 1
    merged_campaign["shard_index"] = 0
    merged = SoakState(
        campaign=merged_campaign,
        units_total=sum(s.units_total for s in states),
        units_done=sum(s.units_done for s in states),
        records=sorted(
            (dict(r) for s in states for r in s.records),
            key=lambda r: int(r.get("unit_index", 0)),
        ),
        coverage=CoverageMap.merge_all(s.coverage for s in states),
    )
    return merged


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _stripped(record: Mapping[str, object], unit_index: int) -> Dict[str, object]:
    clean = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_RECORD_FIELDS
    }
    clean["unit_index"] = int(unit_index)
    return clean


def run_soak(
    campaign: SoakCampaign,
    runner,
    checkpoint_dir: Path,
    max_batches: Optional[int] = None,
) -> SoakState:
    """Run (or resume) one shard of a soak campaign.

    Args:
        campaign: The shard's identity.
        runner: A :class:`repro.eval.runner.Runner` — scheduling, result
            caching and worker pools are its concern; soak adds batching,
            coverage folding and the durable cursor.
        checkpoint_dir: Directory holding the shard checkpoints.
        max_batches: Stop after this many batches *this call* (the
            checkpoint keeps the campaign resumable); ``None`` runs to
            completion.

    Returns:
        The final (possibly still incomplete) :class:`SoakState`.
    """
    units = campaign.shard_units()
    path = checkpoint_path(checkpoint_dir, campaign.shards, campaign.shard_index)
    if path.exists():
        state = load_state(path)
        if state.campaign != campaign.identity():
            raise ValueError(
                f"checkpoint {path} belongs to a different campaign; "
                "pick a fresh --checkpoint directory or matching flags"
            )
        runner.emit(ExecEvent(
            kind="note",
            description=(
                f"[soak] resuming shard "
                f"{campaign.shard_index + 1}/{campaign.shards} "
                f"from {path.name}: {state.units_done}/{len(units)} units done"
            ),
        ))
    else:
        state = SoakState(campaign=campaign.identity(), units_total=len(units))

    corpus = load_corpus_specs()
    spec_features: Dict[str, List[str]] = {}
    batches_this_call = 0
    while state.units_done < len(units):
        if max_batches is not None and batches_this_call >= max_batches:
            break
        chunk = units[state.units_done : state.units_done + campaign.batch_size]
        report = runner.fuzz(
            campaign.fuzz, units=[unit for _, unit in chunk], shrink=False
        )
        new_count = 0
        for (global_index, unit), record in zip(chunk, report.records):
            name = unit.spec.circuit
            base = spec_features.get(name)
            if base is None:
                base = spec_features[name] = generation_features(
                    unit.gen, corpus=corpus
                )
            features = base + run_side_features(unit.flow_name, record)
            fresh = state.coverage.add(
                features, unit_digest(name, unit.flow_name)
            )
            new_count += len(fresh)
            state.records.append(_stripped(record, global_index))
        state.batches.append({"units": len(chunk), "new_features": new_count})
        state.units_done += len(chunk)
        write_state(state, path)
        batches_this_call += 1
        runner.emit(ExecEvent(
            kind="note",
            description=(
                f"[soak] batch {len(state.batches)}: {len(chunk)} units, "
                f"{new_count} new features "
                f"({state.units_done}/{len(units)} units, "
                f"{len(state.coverage)} features total) -> {path.name}"
            ),
        ))
    return state
