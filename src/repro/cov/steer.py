"""Coverage-steered spec generation.

:func:`steered_specs` is a drop-in replacement for
:func:`repro.gen.spec.generate_specs` that *searches* instead of
sampling blindly.  It walks the exact uniform stream the pure-random
generator would produce and keeps every draw that contributes at least
one new generation-side feature (structure, parameter region, corpus
neighborhood — see :func:`repro.cov.features.generation_features`).
Only a *redundant* draw — one whose every feature the campaign has
already covered — is replaced, by a draw biased toward parameter-region
quartiles that have not produced a feature yet.

That replacement rule gives a structural guarantee: a discarded uniform
draw's features were, by definition, already in the running coverage
map, so the steered campaign's final generation coverage is always a
**superset** of the pure-random campaign's at the same ``(budget, seed,
families)`` — steering can only add exploration, never lose a bucket.

Determinism is non-negotiable — the fuzz cache, the soak checkpoints
and the ``gen:`` replay grammar all key on it — so the stream is a pure
function of ``(budget, seed, families)``:

* the uniform draws come from ``random.Random(seed)`` advanced exactly
  as :func:`generate_specs` advances it (same primitive, same stream
  positions), so keep/replace decisions never desynchronise the two;
* biased replacements come from a second, independently seeded stream
  (:func:`_explore_stream`), so consuming extra randomness for a
  replacement cannot shift later uniform draws;
* family order stays round-robin (identical workload mix, only the
  parameter sampling inside each family is biased);
* the coverage feedback itself is computed from deterministically built
  networks, so every decision replays identically.

Replays still travel through the existing name grammar: a steered spec
is an ordinary :class:`~repro.gen.spec.GenSpec` whose
``gen:<family>:<params>:s<seed>`` name rebuilds it anywhere.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..gen.families import FamilyInfo, family_info
from ..gen.spec import GenSpec, draw_spec, resolve_families
from .features import (
    REGION_BUCKETS,
    generation_features,
    load_corpus_specs,
    unit_digest,
)
from .map import CoverageMap

__all__ = ["UNCOVERED_WEIGHT", "steered_specs"]

#: How strongly an uncovered quartile region attracts the replacement
#: sampler relative to a covered one.  High enough to chase rare buckets
#: hard, low enough that covered regions keep getting re-sampled (their
#: seeds still produce fresh *structural* buckets).
UNCOVERED_WEIGHT = 6.0


def _explore_stream(seed: int) -> random.Random:
    """The replacement-draw stream, independent of the uniform stream.

    Seeded from a string token, which Python hashes with a
    platform-stable algorithm (not the per-process ``hash``), so the
    stream replays identically everywhere.
    """
    return random.Random(f"repro-cov-steer:{int(seed)}")


def _weighted_index(master: random.Random, weights: Sequence[float]) -> int:
    """Deterministic roulette-wheel draw over ``weights``."""
    total = float(sum(weights))
    roll = master.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if roll < acc:
            return index
    return len(weights) - 1


def _quartile_bounds(lo: int, hi: int, quartile: int) -> Tuple[int, int]:
    """Inclusive value bounds of one quartile of an inclusive range."""
    span = hi - lo + 1
    q_lo = lo + (span * quartile) // REGION_BUCKETS
    q_hi = lo + (span * (quartile + 1)) // REGION_BUCKETS - 1
    return q_lo, max(q_lo, q_hi)


def _draw_biased(
    master: random.Random, info: FamilyInfo, covered: CoverageMap
) -> GenSpec:
    """Draw one spec with parameters biased toward uncovered regions."""
    defaults = dict(info.defaults)
    params: Dict[str, object] = {}
    for key, (lo, hi) in info.fuzz_ranges:
        if isinstance(defaults[key], bool):
            weights = [
                1.0
                if f"region:{info.name}:{key}={value}" in covered
                else UNCOVERED_WEIGHT
                for value in (0, 1)
            ]
            params[key] = bool(_weighted_index(master, weights))
            continue
        weights = [
            1.0
            if f"region:{info.name}:{key}=q{quartile}" in covered
            else UNCOVERED_WEIGHT
            for quartile in range(REGION_BUCKETS)
        ]
        q_lo, q_hi = _quartile_bounds(lo, hi, _weighted_index(master, weights))
        params[key] = master.randint(q_lo, q_hi)
    return GenSpec.create(info.name, seed=master.getrandbits(32), **params)


def steered_specs(
    budget: int,
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    coverage: Optional[CoverageMap] = None,
) -> List[GenSpec]:
    """Derive ``budget`` specs, replacing redundant draws with exploration.

    A pure function of ``(budget, seed, families)`` (see the module
    docstring), so the same call reproduces the same spec list in any
    process — which is how sharded soak runs partition one shared
    stream without coordinating.

    Args:
        budget: Circuits to derive.
        seed: Master seed (same stream discipline as ``generate_specs``).
        families: Family subset cycled round-robin (default: all).
        coverage: Optional accumulator that receives every emitted
            spec's generation-side features (callers who want the final
            generation coverage pass a fresh map and read it back).
    """
    selected = resolve_families(families)
    master = random.Random(seed)
    explore = _explore_stream(seed)
    covered = coverage if coverage is not None else CoverageMap()
    corpus = load_corpus_specs()
    specs: List[GenSpec] = []
    for index in range(max(0, int(budget))):
        info = family_info(selected[index % len(selected)])
        uniform = draw_spec(master, info)
        features = generation_features(uniform, corpus=corpus)
        if covered.new_features(features):
            covered.add(features, unit_digest(uniform.name()))
            specs.append(uniform)
            continue
        # Every feature of the uniform draw is already covered, so
        # dropping it cannot lose a bucket: spend the slot exploring.
        biased = _draw_biased(explore, info, covered)
        covered.add(
            generation_features(biased, corpus=corpus),
            unit_digest(biased.name()),
        )
        specs.append(biased)
    return specs
