"""Experiment harness reproducing every table and figure of the paper.

Two layers:

* :mod:`repro.eval.experiments` — the assemblers (``run_table4`` & co.),
  each of which enumerates declarative synthesis jobs and renders the
  paper-style table;
* :mod:`repro.eval.engine` / :mod:`repro.eval.runner` — the execution
  engine: content-addressed result cache, multiprocessing worker pool,
  the :data:`~repro.eval.runner.EXPERIMENTS` spec registry, and JSON/CSV
  emission behind the ``repro`` CLI (:mod:`repro.eval.cli`).
"""

from . import paper_data
from .engine import (
    ResultCache,
    SynthesisEngine,
    SynthesisJob,
    get_default_engine,
    set_default_engine,
    synthesis_record,
    use_engine,
)
from .experiments import (
    ExperimentResult,
    TABLE3_CIRCUITS,
    TABLE4_CIRCUITS,
    counter_network,
    full_adder_network,
    run_ablation,
    run_figure1,
    run_figure2_3,
    run_figure4_5,
    run_figure7,
    run_headline,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from .runner import (
    EXPERIMENTS,
    ExperimentSpec,
    Runner,
    RunReport,
    render_stage_timings,
    run_experiment,
    write_csv,
    write_json,
)

__all__ = [
    "paper_data",
    "ExperimentResult",
    "TABLE3_CIRCUITS",
    "TABLE4_CIRCUITS",
    "full_adder_network",
    "counter_network",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_figure1",
    "run_figure2_3",
    "run_figure4_5",
    "run_figure7",
    "run_ablation",
    "run_headline",
    "ResultCache",
    "SynthesisEngine",
    "SynthesisJob",
    "synthesis_record",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
    "EXPERIMENTS",
    "ExperimentSpec",
    "Runner",
    "RunReport",
    "render_stage_timings",
    "run_experiment",
    "write_json",
    "write_csv",
]
