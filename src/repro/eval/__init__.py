"""Experiment harness reproducing every table and figure of the paper."""

from . import paper_data
from .experiments import (
    ExperimentResult,
    TABLE3_CIRCUITS,
    TABLE4_CIRCUITS,
    counter_network,
    full_adder_network,
    run_figure1,
    run_figure4_5,
    run_figure7,
    run_headline,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

__all__ = [
    "paper_data",
    "ExperimentResult",
    "TABLE3_CIRCUITS",
    "TABLE4_CIRCUITS",
    "full_adder_network",
    "counter_network",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_figure1",
    "run_figure4_5",
    "run_figure7",
    "run_headline",
]
