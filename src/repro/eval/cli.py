"""``repro`` — the operator CLI for reproducing the paper's evaluation.

Seven subcommands::

    repro list                 # what can be reproduced, and with what
    repro run table4 --jobs 4  # reproduce artefacts on a worker pool
    repro verify --catalog     # pulse-level equivalence campaign
    repro fuzz --budget 200    # differential fuzzing on generated circuits
    repro faults --catalog     # fault injection + robustness margins
    repro bench --suite smoke  # performance benchmarks + regression gate
    repro report results/      # re-render previously saved run reports

``repro run`` accepts one or more experiment names (or ``all``), executes
their synthesis jobs through the parallel runner with the shared
content-addressed result cache (``--cache-dir`` / ``REPRO_CACHE_DIR``,
``--no-cache`` to disable), prints the paper-style tables, with
``--stage-timing`` also the per-stage (frontend / aig-opt / polarity /
map / ...) observer timing table, and with ``--save DIR`` emits
machine-readable JSON + CSV per experiment.  ``repro list`` additionally
shows which experiments share a cached ``aig-opt`` stage prefix (the
stage cache reuses the optimised AIG across them).

``repro verify`` synthesises catalogued circuits and batch-simulates
hundreds of stimulus patterns per circuit at the pulse level against
word-parallel golden AIG simulation, caching verdicts in the same
content-addressed store; see ``docs/verification.md`` and ``docs/cli.md``.

``repro fuzz`` manufactures seeded random circuits (``repro.gen``) and
differentially verifies each one under several flow variants, shrinking
any failure to a minimal reproducer.  ``--steer`` biases generation
toward uncovered structural-feature buckets (``repro.cov``),
``--coverage-report`` prints the hit/miss matrix, and ``--soak
--checkpoint DIR [--shards N]`` runs a resumable, shardable campaign
whose corpus + coverage + cursor checkpoint after every batch
(``--merge`` combines shard checkpoints); see ``docs/fuzzing.md``.

``repro faults`` injects seeded pulse-level faults (``repro.faults``) —
pulse drop, pulse duplication, delay jitter, phase skew — into the
simulated netlists of catalogued circuits and verifies each against
fault-free golden AIG simulation; ``--margin-search`` bisects the
largest tolerated magnitude per circuit x fault kind, and ``--report``
saves a schema-versioned, byte-reproducible ``repro-faults/1`` JSON
document; see ``docs/faults.md``.

``repro bench`` runs the declarative benchmark suites of ``repro.perf``
(campaign and kernel workloads with warmup/repeat control), emits
schema-versioned ``BENCH_<suite>.json``, and with ``--compare`` diffs
against a stored baseline, failing the run when ``--fail-on-regress``
is exceeded; see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..exec import EXECUTOR_NAMES
from .engine import ResultCache
from .runner import (
    EXPERIMENTS,
    Runner,
    RunReport,
    load_report,
    render_report,
    render_stage_timings,
    write_csv,
    write_json,
)

SCALES = ("quick", "paper")
EFFORTS = ("none", "low", "medium", "high")


def _positive_jobs(value: str) -> int:
    """argparse type for ``--jobs``: reject 0/negative with a clear message."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _add_executor_args(cmd: argparse.ArgumentParser) -> None:
    """The execution-backend flags shared by every campaign subcommand."""
    cmd.add_argument("--executor", choices=EXECUTOR_NAMES, default="pool",
                     help="execution backend: 'serial' stays in-process, "
                          "'pool' is a throwaway multiprocessing pool "
                          "(default), 'workers' supervises long-lived worker "
                          "processes with crash isolation and retries")
    cmd.add_argument("--unit-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-unit wall-clock budget enforced by the "
                          "'workers' backend; an overrunning unit is killed "
                          "and recorded with status=error")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the xSFQ paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list reproducible experiments")
    list_cmd.add_argument(
        "--circuits", action="store_true",
        help="also list the catalogued benchmark circuits",
    )

    run_cmd = sub.add_parser("run", help="reproduce one or more experiments")
    run_cmd.add_argument(
        "experiments", nargs="+", metavar="EXPERIMENT",
        help=f"experiment name(s) or 'all'; one of: {', '.join(sorted(EXPERIMENTS))}",
    )
    run_cmd.add_argument("--scale", choices=SCALES, default="quick",
                         help="benchmark circuit scale (default: quick)")
    run_cmd.add_argument("--effort", choices=EFFORTS, default=None,
                         help="AIG optimisation effort (default: per experiment)")
    run_cmd.add_argument("-j", "--jobs", type=_positive_jobs, default=1,
                         metavar="N",
                         help="worker processes for synthesis jobs (default: 1)")
    _add_executor_args(run_cmd)
    run_cmd.add_argument("--circuits", nargs="+", metavar="NAME", default=None,
                         help="restrict table4/table6 to these circuits")
    run_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro-xsfq)")
    run_cmd.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk result cache")
    run_cmd.add_argument("--save", default=None, metavar="DIR",
                         help="also write <experiment>-<scale>.json/.csv into DIR")
    run_cmd.add_argument("--stage-timing", action="store_true",
                         help="print the per-stage observer timing table "
                              "(frontend, aig-opt, polarity, map, ...)")
    run_cmd.add_argument("-q", "--quiet", action="store_true",
                         help="suppress per-job progress lines")

    verify_cmd = sub.add_parser(
        "verify", help="pulse-level equivalence campaign over the circuit catalog",
    )
    scope = verify_cmd.add_mutually_exclusive_group()
    scope.add_argument("--catalog", action="store_true",
                       help="verify every circuit in the registry (default)")
    scope.add_argument("--circuit", action="append", metavar="NAME", default=None,
                       help="verify one circuit (repeatable)")
    verify_cmd.add_argument("--patterns", type=int, default=256, metavar="N",
                            help="stimulus patterns per circuit (default: 256; "
                                 "small input spaces are checked exhaustively)")
    verify_cmd.add_argument("--seed", type=int, default=0, metavar="S",
                            help="stimulus seed (part of the cache identity)")
    verify_cmd.add_argument("--sequence-length", type=int, default=8, metavar="L",
                            help="cycles per trajectory for sequential circuits "
                                 "(default: 8)")
    verify_cmd.add_argument("--scale", choices=SCALES, default="quick",
                            help="benchmark circuit scale (default: quick)")
    verify_cmd.add_argument("--effort", choices=EFFORTS, default="medium",
                            help="AIG optimisation effort of the verified flow")
    verify_cmd.add_argument("-j", "--jobs", type=_positive_jobs, default=1,
                            metavar="N",
                            help="worker processes (default: 1)")
    _add_executor_args(verify_cmd)
    verify_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="result cache directory (default: REPRO_CACHE_DIR "
                                 "or ~/.cache/repro-xsfq)")
    verify_cmd.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk verdict cache")
    verify_cmd.add_argument("--save", default=None, metavar="DIR",
                            help="also write verify-<scale>.json into DIR")
    verify_cmd.add_argument("-q", "--quiet", action="store_true",
                            help="suppress per-circuit progress lines")

    from ..core import flow_variant_names
    from ..gen import DEFAULT_FLOWS, FAMILIES

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated circuits x flow variants",
    )
    fuzz_cmd.add_argument("--budget", type=int, default=100, metavar="N",
                          help="random circuits to generate (default: 100)")
    fuzz_cmd.add_argument("--seed", type=int, default=0, metavar="S",
                          help="master seed deriving every circuit's "
                               "(family, params, seed) (default: 0)")
    fuzz_cmd.add_argument("--family", action="append", metavar="F", default=None,
                          choices=sorted(FAMILIES),
                          help=f"restrict to a circuit family (repeatable); "
                               f"one of: {', '.join(sorted(FAMILIES))}")
    fuzz_cmd.add_argument("--flows", nargs="+", metavar="NAME",
                          default=list(DEFAULT_FLOWS),
                          choices=flow_variant_names(),
                          help=f"flow variants to cross every circuit with "
                               f"(default: {' '.join(DEFAULT_FLOWS)}; known: "
                               f"{', '.join(flow_variant_names())})")
    fuzz_cmd.add_argument("--replay", metavar="NAME", default=None,
                          help="re-verify one generated circuit from its "
                               "printed gen:<family>:<params>:s<seed> name "
                               "instead of generating a batch")
    fuzz_cmd.add_argument("--patterns", type=int, default=64, metavar="N",
                          help="stimulus patterns per verification (default: 64)")
    fuzz_cmd.add_argument("--stimulus-seed", type=int, default=0, metavar="S",
                          help="stimulus suite seed (default: 0)")
    fuzz_cmd.add_argument("--sequence-length", type=int, default=8, metavar="L",
                          help="cycles per trajectory for sequential circuits "
                               "(default: 8)")
    fuzz_cmd.add_argument("--no-shrink", action="store_true",
                          help="skip counterexample shrinking on failures")
    cov_group = fuzz_cmd.add_argument_group(
        "coverage & soak (see docs/fuzzing.md)"
    )
    cov_group.add_argument("--steer", action="store_true",
                           help="coverage-steered generation: bias parameter "
                                "sampling toward uncovered feature buckets "
                                "(deterministic per --budget/--seed)")
    cov_group.add_argument("--coverage-report", action="store_true",
                           help="print the structural-coverage hit/miss "
                                "matrix and (for soak runs) the per-batch "
                                "new-feature rate")
    cov_group.add_argument("--soak", action="store_true",
                           help="resumable soak run: checkpoint corpus + "
                                "coverage + cursor after every batch "
                                "(requires --checkpoint)")
    cov_group.add_argument("--checkpoint", metavar="DIR", default=None,
                           help="checkpoint directory for --soak / --merge")
    cov_group.add_argument("--batch-size", type=int, default=30, metavar="N",
                           help="soak units verified between checkpoints "
                                "(default: 30)")
    cov_group.add_argument("--shards", type=int, default=1, metavar="N",
                           help="partition the soak unit stream into N "
                                "independent shards (default: 1)")
    cov_group.add_argument("--shard-index", type=int, default=None, metavar="I",
                           help="run only shard I (0-based); default runs "
                                "every shard sequentially")
    cov_group.add_argument("--max-batches", type=int, default=None, metavar="N",
                           help="stop (resumably) after N batches per shard "
                                "this invocation")
    cov_group.add_argument("--merge", action="store_true",
                           help="merge the shard checkpoints in --checkpoint "
                                "into soak-merged.json instead of running")
    fuzz_cmd.add_argument("-j", "--jobs", type=_positive_jobs, default=1,
                          metavar="N",
                          help="worker processes (default: 1)")
    _add_executor_args(fuzz_cmd)
    fuzz_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="result cache directory (default: REPRO_CACHE_DIR "
                               "or ~/.cache/repro-xsfq)")
    fuzz_cmd.add_argument("--no-cache", action="store_true",
                          help="disable the on-disk verdict cache")
    fuzz_cmd.add_argument("--save", default=None, metavar="DIR",
                          help="also write fuzz-<seed>.json (records, shrunk "
                               "reproducers) into DIR")
    fuzz_cmd.add_argument("-q", "--quiet", action="store_true",
                          help="suppress per-unit progress lines")

    from ..faults import DEFAULT_FAULT_KINDS, fault_kind_names

    faults_cmd = sub.add_parser(
        "faults",
        help="fault injection + robustness margins over the circuit catalog",
    )
    fscope = faults_cmd.add_mutually_exclusive_group()
    fscope.add_argument("--catalog", action="store_true",
                        help="probe every circuit in the registry (default)")
    fscope.add_argument("--circuit", action="append", metavar="NAME", default=None,
                        help="probe one circuit (repeatable)")
    faults_cmd.add_argument("--kinds", metavar="K1,K2", default=",".join(DEFAULT_FAULT_KINDS),
                            help="comma-separated fault kinds to inject "
                                 f"(default: {','.join(DEFAULT_FAULT_KINDS)}; known: "
                                 f"{', '.join(fault_kind_names())})")
    faults_cmd.add_argument("--flows", nargs="+", metavar="NAME",
                            default=["default"],
                            choices=flow_variant_names(),
                            help="flow variants to cross every circuit with "
                                 "(default: default; known: "
                                 f"{', '.join(flow_variant_names())})")
    faults_cmd.add_argument("--seed", type=int, default=0, metavar="S",
                            help="fault-injection seed deriving every per-net "
                                 "stream (default: 0)")
    faults_cmd.add_argument("--magnitude", action="append", metavar="KIND=VALUE",
                            default=None,
                            help="override a kind's injected rate/magnitude, "
                                 "e.g. jitter=10 or drop=0.05 (repeatable)")
    faults_cmd.add_argument("--margin-search", action="store_true",
                            help="bisect the largest tolerated magnitude per "
                                 "circuit x kind instead of injecting the "
                                 "fixed default magnitude")
    faults_cmd.add_argument("--patterns", type=int, default=64, metavar="N",
                            help="stimulus patterns per verification "
                                 "(default: 64)")
    faults_cmd.add_argument("--stimulus-seed", type=int, default=0, metavar="S",
                            help="stimulus suite seed (default: 0)")
    faults_cmd.add_argument("--sequence-length", type=int, default=8, metavar="L",
                            help="cycles per trajectory for sequential "
                                 "circuits (default: 8)")
    faults_cmd.add_argument("--scale", choices=SCALES, default="quick",
                            help="benchmark circuit scale (default: quick)")
    faults_cmd.add_argument("-j", "--jobs", type=_positive_jobs, default=1,
                            metavar="N",
                            help="worker processes (default: 1)")
    _add_executor_args(faults_cmd)
    faults_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="result cache directory (default: "
                                 "REPRO_CACHE_DIR or ~/.cache/repro-xsfq)")
    faults_cmd.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk record cache")
    faults_cmd.add_argument("--report", nargs="?", metavar="PATH",
                            const="repro-faults.json", default=None,
                            help="write the repro-faults/1 JSON report "
                                 "(default path: repro-faults.json)")
    faults_cmd.add_argument("-q", "--quiet", action="store_true",
                            help="suppress per-unit progress lines")

    from ..perf import suite_names

    bench_cmd = sub.add_parser(
        "bench", help="performance benchmark suites with a regression gate",
    )
    bench_cmd.add_argument("--suite", default="smoke", choices=suite_names(),
                           help="benchmark suite to run (default: smoke; "
                                f"known: {', '.join(suite_names())})")
    bench_cmd.add_argument("--out", default=".", metavar="DIR",
                           help="directory receiving BENCH_<suite>.json "
                                "(default: current directory)")
    bench_cmd.add_argument("--repeat", type=int, default=None, metavar="N",
                           help="override measured repetitions per benchmark")
    bench_cmd.add_argument("--warmup", type=int, default=None, metavar="N",
                           help="override unmeasured warmup runs per benchmark")
    bench_cmd.add_argument("--compare", default=None, metavar="BASELINE.json",
                           help="diff best wall times against a stored "
                                "BENCH_*.json baseline")
    bench_cmd.add_argument("--fail-on-regress", type=float, default=None,
                           metavar="PCT",
                           help="with --compare: exit non-zero when any "
                                "benchmark slowed down by more than PCT%%")
    bench_cmd.add_argument("-q", "--quiet", action="store_true",
                           help="suppress per-repeat progress lines")

    report_cmd = sub.add_parser(
        "report", help="re-render saved JSON run reports",
    )
    report_cmd.add_argument(
        "directory", nargs="?", default="results", metavar="DIR",
        help="directory holding repro-run JSON files (default: results)",
    )
    return parser


def parse_args(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    return build_parser().parse_args(argv)


def _shared_prefix_groups() -> List[tuple]:
    """Group experiments by shared cached ``aig-opt`` prefixes.

    Two experiments share a prefix when they enumerate jobs with the same
    circuit, scale and ``frontend``/``aig-opt`` options: the second one
    resumes from the first one's stage-cached optimised AIG instead of
    re-optimising.  Returns ``[(experiment-name tuple, shared count)]``.
    """
    prefix_owners: dict = {}
    for name in sorted(EXPERIMENTS):
        for job in EXPERIMENTS[name].enumerate_jobs():
            try:
                prefix = job.signature_prefix("aig-opt")
            except ValueError:
                continue
            prefix_owners.setdefault(prefix, set()).add(name)
    groups: dict = {}
    for owners in prefix_owners.values():
        if len(owners) > 1:
            key = tuple(sorted(owners))
            groups[key] = groups.get(key, 0) + 1
    return sorted(groups.items())


def _cmd_list(args: argparse.Namespace, out) -> int:
    out.write("Experiments (repro run <name>):\n")
    for name in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[name]
        num_jobs = len(spec.enumerate_jobs())
        jobs_note = f"{num_jobs} synthesis jobs" if num_jobs else "no synthesis"
        out.write(f"  {name:<10} {spec.title}  [{jobs_note}]\n")
    out.write("  all        every experiment above, in order\n")
    groups = _shared_prefix_groups()
    if groups:
        out.write(
            "\nShared aig-opt prefixes (stage cache reuses the optimised AIG"
            " across these):\n"
        )
        for names, count in groups:
            plural = "es" if count > 1 else ""
            out.write(f"  {' + '.join(names)}: {count} shared prefix{plural}\n")
    if args.circuits:
        from ..circuits import CATALOG

        out.write("\nBenchmark circuits (paper name -> stand-in generator):\n")
        for name, info in CATALOG.items():
            out.write(f"  {name:<8} {info.suite:<8} {info.kind:<13} {info.description}\n")
    return 0


def _resolve_experiments(requested: Sequence[str]) -> List[str]:
    if any(name == "all" for name in requested):
        return sorted(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(EXPERIMENTS))
        raise SystemExit(
            f"repro: unknown experiment(s): {', '.join(unknown)} (known: {known})"
        )
    return list(requested)


def _validate_circuits(circuits: Optional[Sequence[str]]) -> None:
    if not circuits:
        return
    from ..circuits import CATALOG

    unknown = [name for name in circuits if name not in CATALOG]
    if unknown:
        raise SystemExit(
            f"repro: unknown circuit(s): {', '.join(unknown)} "
            "(see: repro list --circuits)"
        )


def _cmd_run(args: argparse.Namespace, out) -> int:
    names = _resolve_experiments(args.experiments)
    _validate_circuits(args.circuits)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(line: str) -> None:
        if not args.quiet:
            out.write(line + "\n")

    runner = Runner(jobs=args.jobs, cache=cache, progress=progress,
                    executor=args.executor, unit_timeout=args.unit_timeout)

    failures: List[str] = []
    for name in names:
        spec = EXPERIMENTS[name]
        out.write(f"\n=== {name}: {spec.title} ===\n")
        report = runner.run(
            name, scale=args.scale, effort=args.effort, circuits=args.circuits
        )
        out.write(report.result.text + "\n")
        _write_summary(report, out)
        if args.stage_timing:
            if report.stage_timings:
                out.write("stage timing:\n")
                out.write(render_stage_timings(report.stage_timings) + "\n")
            else:
                out.write("stage timing: (no synthesis stages ran)\n")
        if args.save:
            base = Path(args.save) / f"{name}-{report.scale}"
            json_path = write_json(report, base.with_suffix(".json"))
            csv_path = write_csv(report, base.with_suffix(".csv"))
            out.write(f"saved {json_path} and {csv_path}\n")
        if not all(
            value for value in report.result.summary.values() if isinstance(value, bool)
        ):
            failures.append(name)
    if cache is not None:
        stats = cache.stats()
        out.write(
            f"\ncache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{len(cache)} records in {cache.directory}\n"
        )
    if failures:
        out.write(f"FAILED shape checks: {', '.join(failures)}\n")
        return 1
    return 0


def _write_summary(report: RunReport, out) -> None:
    summary = report.result.summary
    if summary:
        out.write("summary:\n")
        for key in sorted(summary):
            value = summary[key]
            rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
            out.write(f"  {key}: {rendered}\n")
    out.write(
        f"timing: {report.elapsed_s:.2f}s wall "
        f"({report.cached_jobs}/{report.total_jobs} jobs cached, "
        f"{report.computed_jobs} synthesised, {report.jobs} workers)\n"
    )


def _print_summary_dict(summary, out) -> None:
    out.write("summary:\n")
    for key in sorted(summary):
        out.write(f"  {key}: {summary[key]}\n")


def _save_report_json(data, path: Path, out) -> None:
    from ..schema import atomic_write_json

    atomic_write_json(path, data)
    out.write(f"saved {path}\n")


def _cmd_verify(args: argparse.Namespace, out) -> int:
    from ..core import Flow, FlowOptions
    from ..verify import catalog_specs, render_verification_table

    _validate_circuits(args.circuit)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(line: str) -> None:
        if not args.quiet:
            out.write(line + "\n")

    flow = Flow.from_options(FlowOptions(effort=args.effort))
    specs = catalog_specs(
        circuits=args.circuit,
        scale=args.scale,
        flow=flow,
        patterns=args.patterns,
        seed=args.seed,
        sequence_length=args.sequence_length,
    )
    scope = "catalog" if not args.circuit else ", ".join(args.circuit)
    out.write(
        f"=== verify: {scope} ({len(specs)} circuits, "
        f"{args.patterns} patterns, seed {args.seed}) ===\n"
    )
    runner = Runner(jobs=args.jobs, cache=cache, progress=progress,
                    executor=args.executor, unit_timeout=args.unit_timeout)
    report = runner.verify(specs)
    out.write(render_verification_table(report.records) + "\n")
    _print_summary_dict(report.to_dict()["summary"], out)
    out.write(
        f"timing: {report.elapsed_s:.2f}s wall "
        f"({report.cached}/{len(specs)} verdicts cached, "
        f"{report.computed} verified, {report.jobs} workers)\n"
    )
    if args.save:
        _save_report_json(
            report.to_dict(), Path(args.save) / f"verify-{args.scale}.json", out
        )
    if not report.all_equivalent:
        failed = ", ".join(str(r.get("circuit")) for r in report.failures)
        out.write(f"FAILED equivalence: {failed}\n")
        return 1
    return 0


def _report_coverage(units, records):
    """Fold a finished campaign's units x records into a CoverageMap."""
    from ..cov import CoverageMap
    from ..cov.features import (
        generation_features,
        load_corpus_specs,
        run_side_features,
        unit_digest,
    )

    coverage = CoverageMap()
    corpus = load_corpus_specs()
    cache: dict = {}
    for unit, record in zip(units, records):
        name = unit.spec.circuit
        base = cache.get(name)
        if base is None:
            base = cache[name] = generation_features(unit.gen, corpus=corpus)
        coverage.add(
            base + run_side_features(unit.flow_name, record),
            unit_digest(name, unit.flow_name),
        )
    return coverage


def _cmd_fuzz_soak(args: argparse.Namespace, out) -> int:
    """``repro fuzz --soak`` / ``--merge``: checkpointed, shardable runs."""
    from ..cov import render_coverage_report
    from ..cov.soak import (
        SoakCampaign,
        load_state,
        merge_states,
        merged_path,
        shard_paths,
        write_state,
    )
    from ..gen import replay_line

    directory = Path(args.checkpoint)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(line: str) -> None:
        if not args.quiet:
            out.write(line + "\n")

    campaign = _fuzz_campaign(args)
    states = []
    if args.merge:
        paths = shard_paths(directory)
        if not paths:
            raise SystemExit(
                f"repro: no shard checkpoints (soak-shard*of*.json) in {directory}"
            )
        out.write(f"=== soak merge: {len(paths)} checkpoint(s) in {directory} ===\n")
        try:
            states = [load_state(path) for path in paths]
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"repro: cannot load shard checkpoint: {exc}")
    else:
        runner = Runner(jobs=args.jobs, cache=cache, progress=progress,
                    executor=args.executor, unit_timeout=args.unit_timeout)
        indices = (
            [args.shard_index]
            if args.shard_index is not None
            else list(range(args.shards))
        )
        for index in indices:
            try:
                soak = SoakCampaign(
                    fuzz=campaign,
                    batch_size=args.batch_size,
                    shards=args.shards,
                    shard_index=index,
                )
            except ValueError as exc:
                raise SystemExit(f"repro: {exc}")
            out.write(
                f"=== soak: shard {index + 1}/{args.shards}, "
                f"budget {campaign.budget}, seed {campaign.seed}, "
                f"batch {args.batch_size}, checkpoints in {directory} ===\n"
            )
            try:
                states.append(
                    runner.soak(soak, directory, max_batches=args.max_batches)
                )
            except ValueError as exc:
                raise SystemExit(f"repro: {exc}")

    complete = all(state.complete for state in states)
    try:
        view = states[0] if len(states) == 1 else merge_states(states)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    if len(states) > 1 and complete:
        path = write_state(view, merged_path(directory))
        out.write(f"merged {len(states)} shard(s) -> {path}\n")

    fresh = sum(state.new_features_total() for state in states)
    out.write(
        f"soak: {view.units_done}/{view.units_total} units done, "
        f"{len(view.coverage)} feature buckets "
        f"({fresh} new this campaign), {len(view.failures)} failures\n"
    )
    if not complete:
        out.write("note: shard(s) incomplete; resume with the same flags\n")

    if args.coverage_report:
        camp_dict = view.campaign.get("campaign") or {}
        flows = list(camp_dict.get("flows") or campaign.flows)
        families = list(camp_dict.get("families") or []) or None
        batches = states[0].batches if len(states) == 1 else None
        text = render_coverage_report(
            view.coverage, flows, families=families, batches=batches
        )
        out.write(text + "\n")
        report_path = directory / "coverage-report.txt"
        report_path.write_text(text + "\n", encoding="utf-8")
        out.write(f"saved {report_path}\n")

    if view.failures:
        out.write("FAILED equivalence on:\n")
        for record in view.failures:
            out.write(f"  {replay_line(record)}\n")
        return 1
    return 0


def _fuzz_campaign(args: argparse.Namespace):
    from ..gen import FuzzCampaign

    return FuzzCampaign(
        budget=args.budget,
        seed=args.seed,
        families=tuple(args.family or ()),
        flows=tuple(args.flows),
        patterns=args.patterns,
        sequence_length=args.sequence_length,
        stimulus_seed=args.stimulus_seed,
        steer=args.steer,
    )


def _cmd_fuzz(args: argparse.Namespace, out) -> int:
    from ..gen import parse_name, replay_line
    from ..gen.fuzz import units_for_replay

    if args.soak or args.merge:
        if args.replay is not None:
            raise SystemExit("repro: --replay cannot combine with --soak/--merge")
        if args.checkpoint is None:
            raise SystemExit("repro: --soak/--merge require --checkpoint DIR")
        return _cmd_fuzz_soak(args, out)
    if args.shard_index is not None or args.shards != 1:
        raise SystemExit("repro: --shards/--shard-index require --soak")

    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(line: str) -> None:
        if not args.quiet:
            out.write(line + "\n")

    campaign = _fuzz_campaign(args)
    units = None
    if args.replay is not None:
        try:
            parse_name(args.replay)
        except (ValueError, KeyError) as exc:
            raise SystemExit(f"repro: bad --replay name: {exc}")
        units = units_for_replay(
            args.replay,
            campaign.flows,
            patterns=campaign.patterns,
            stimulus_seed=campaign.stimulus_seed,
            sequence_length=campaign.sequence_length,
        )
        out.write(
            f"=== fuzz replay: {args.replay} ({len(units)} flow variants) ===\n"
        )
    else:
        steered = " (steered)" if campaign.steer else ""
        out.write(
            f"=== fuzz{steered}: budget {campaign.budget}, seed {campaign.seed}, "
            f"flows {', '.join(campaign.flows)} ===\n"
        )

    runner = Runner(jobs=args.jobs, cache=cache, progress=progress,
                    executor=args.executor, unit_timeout=args.unit_timeout)
    report = runner.fuzz(campaign, units=units, shrink=not args.no_shrink)
    out.write(report.table() + "\n")
    _print_summary_dict(report.summary(), out)
    if args.coverage_report:
        from ..cov import render_coverage_report

        coverage = _report_coverage(
            units if units is not None else campaign.units(), report.records
        )
        out.write(
            render_coverage_report(
                coverage,
                list(campaign.flows),
                families=list(campaign.families) or None,
            )
            + "\n"
        )
    out.write(
        f"timing: {report.elapsed_s:.2f}s wall "
        f"({report.cached} verdicts cached, {report.computed} verified, "
        f"{report.jobs} workers)\n"
    )
    if args.save:
        _save_report_json(report.to_dict(), Path(args.save) / f"fuzz-{args.seed}.json", out)
    if not report.all_equivalent:
        out.write("FAILED equivalence on:\n")
        for record in report.failures:
            out.write(f"  {replay_line(record)}\n")
            key = f"{record.get('circuit')}|{record.get('flow_variant')}"
            shrunk = report.shrunk.get(key)
            if shrunk:
                out.write(
                    f"    shrunk {shrunk['initial_gates']} -> "
                    f"{shrunk['final_gates']} gates; minimal reproducer:\n"
                )
                for line in str(shrunk["bench"]).rstrip().splitlines():
                    out.write(f"      {line}\n")
        return 1
    return 0


def _parse_fault_kinds(raw: str):
    from ..faults import fault_kind_names

    kinds = tuple(token.strip() for token in raw.split(",") if token.strip())
    if not kinds:
        raise SystemExit("repro: --kinds needs at least one fault kind")
    unknown = [kind for kind in kinds if kind not in fault_kind_names()]
    if unknown:
        raise SystemExit(
            f"repro: unknown fault kind(s): {', '.join(unknown)} "
            f"(known: {', '.join(fault_kind_names())})"
        )
    return kinds


def _parse_fault_magnitudes(pairs):
    from ..faults import fault_kind_names

    overrides = []
    for pair in pairs or ():
        kind, sep, value = pair.partition("=")
        kind = kind.strip()
        if not sep or kind not in fault_kind_names():
            raise SystemExit(
                f"repro: bad --magnitude {pair!r}; expected KIND=VALUE with "
                f"KIND one of: {', '.join(fault_kind_names())}"
            )
        try:
            overrides.append((kind, float(value)))
        except ValueError:
            raise SystemExit(f"repro: bad --magnitude value in {pair!r}")
    return tuple(overrides)


def _cmd_faults(args: argparse.Namespace, out) -> int:
    from ..faults import FaultCampaign, render_fault_table

    _validate_circuits(args.circuit)
    kinds = _parse_fault_kinds(args.kinds)
    magnitudes = _parse_fault_magnitudes(args.magnitude)
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(line: str) -> None:
        if not args.quiet:
            out.write(line + "\n")

    campaign = FaultCampaign(
        circuits=tuple(args.circuit or ()),
        kinds=kinds,
        flows=tuple(args.flows),
        seed=args.seed,
        scale=args.scale,
        patterns=args.patterns,
        stimulus_seed=args.stimulus_seed,
        sequence_length=args.sequence_length,
        margin=args.margin_search,
        magnitudes=magnitudes,
    )
    try:
        units = campaign.units()
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    scope = "catalog" if not args.circuit else ", ".join(args.circuit)
    mode = "margin search" if args.margin_search else "fixed magnitude"
    out.write(
        f"=== faults: {scope} ({len(units)} units, kinds {', '.join(kinds)}, "
        f"{mode}, seed {args.seed}) ===\n"
    )
    runner = Runner(jobs=args.jobs, cache=cache, progress=progress,
                    executor=args.executor, unit_timeout=args.unit_timeout)
    report = runner.faults(campaign, units=units)
    out.write(render_fault_table(report.records) + "\n")
    _print_summary_dict(report.summary(), out)
    out.write(
        f"timing: {report.elapsed_s:.2f}s wall "
        f"({report.cached}/{len(units)} records cached, "
        f"{report.computed} probed, {report.jobs} workers)\n"
    )
    if args.report:
        _save_report_json(report.to_dict(), Path(args.report), out)
    if report.failures:
        failed = ", ".join(
            f"{r.get('circuit')} flow={r.get('flow_variant')}"
            for r in report.failures
        )
        out.write(f"FAILED nominal equivalence: {failed}\n")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    from ..perf import (
        compare_reports,
        load_bench,
        render_comparison,
        render_results_table,
        run_suite,
        suite_specs,
    )

    if args.fail_on_regress is not None and args.compare is None:
        raise SystemExit("repro: --fail-on-regress requires --compare")

    # Load the baseline before running (and before writing the fresh
    # report): --compare may point at the very file --out will overwrite.
    baseline = None
    if args.compare is not None:
        try:
            baseline = load_bench(Path(args.compare))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"repro: cannot load baseline {args.compare}: {exc}")

    specs = suite_specs(args.suite)

    def progress(line: str) -> None:
        if not args.quiet:
            out.write(line + "\n")

    out.write(f"=== bench: suite {args.suite} ({len(specs)} benchmarks) ===\n")
    report = run_suite(
        args.suite, specs, repeat=args.repeat, warmup=args.warmup, progress=progress
    )
    out.write(render_results_table(report) + "\n")
    path = report.write(Path(args.out))
    out.write(f"saved {path}\n")
    out.write(f"timing: {report.elapsed_s:.2f}s wall\n")

    if baseline is None:
        return 0
    comparison = compare_reports(
        report, baseline, fail_on_regress=args.fail_on_regress
    )
    out.write(f"\nbaseline: {args.compare} (suite {baseline.suite})\n")
    out.write(render_comparison(comparison) + "\n")
    if comparison.missing:
        out.write(
            "note: baseline entries not exercised this run: "
            + ", ".join(comparison.missing)
            + "\n"
        )
    failed = False
    if comparison.regressions:
        names = ", ".join(delta.name for delta in comparison.regressions)
        out.write(
            f"FAILED regression gate (> {args.fail_on_regress:.0f}%): {names}\n"
        )
        failed = True
    if comparison.missing and args.fail_on_regress is not None:
        # A gate that skips a baselined workload must not read as green:
        # a deleted or renamed benchmark needs a deliberate baseline
        # refresh, not a silent pass.
        out.write(
            "FAILED regression gate: baseline entries missing from this run\n"
        )
        failed = True
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace, out) -> int:
    directory = Path(args.directory)
    paths = sorted(directory.glob("*.json"))
    if not paths:
        out.write(
            f"repro: no saved reports in {directory}/ "
            "(generate some with: repro run <experiment> --save "
            f"{directory})\n"
        )
        return 1
    for path in paths:
        try:
            data = load_report(path)
        except ValueError:
            out.write(f"repro: skipping unreadable report {path}\n")
            continue
        out.write(f"\n--- {path.name} ---\n")
        out.write(render_report(data) + "\n")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = parse_args(argv)
    out = sys.stdout
    if args.command == "list":
        return _cmd_list(args, out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "verify":
        return _cmd_verify(args, out)
    if args.command == "fuzz":
        return _cmd_fuzz(args, out)
    if args.command == "faults":
        return _cmd_faults(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
