"""Synthesis engine: cacheable, schedulable units of experiment work.

Every table and figure of the paper's evaluation decomposes into
per-circuit synthesis runs.  This module turns one such run into a
declarative, picklable :class:`SynthesisJob` (circuit name + scale + a
:class:`~repro.core.flowgraph.Flow` *signature*), computes it into a
flat JSON-serialisable *record* of metrics, and memoises records in a
content-addressed on-disk :class:`ResultCache` keyed on the flow
signature (ordered stage names + per-stage options) plus the package
version.  Because the key is the staged signature rather than a pickled
``FlowOptions``, any flow — including hand-composed ones with custom
stages — caches uniformly, and the in-process *stage cache*
(:class:`repro.core.flowgraph.StageCache`) additionally memoises the
expensive shared prefixes: a cached post-``aig-opt`` AIG is reused
across polarity/mapping variants of the same circuit, which is the bulk
of the ablation and table-sweep wall clock.

The :class:`SynthesisEngine` is the seam between the experiment
assemblers in :mod:`repro.eval.experiments` and the scheduler in
:mod:`repro.eval.runner`: assemblers ask the engine for records, and the
runner pre-populates the engine's cache from a multiprocessing pool so
the assembly step never synthesises anything itself.  A module-level
default engine lets long-running hosts (the benchmark harness, the CLI)
install a shared cache once and have every experiment pick it up.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterator, List, Mapping, Optional, Tuple

from ..baselines import pbmap_like, qseq_like
from ..circuits import build as build_circuit
from ..circuits import info as circuit_info
from ..core import Flow, FlowOptions, TimingObserver, get_stage_cache
from ..schema import (
    atomic_write_json,
    content_key,
    load_document,
    pack,
    quarantine,
    schema_tag,
)

logger = logging.getLogger(__name__)

#: Current version of the ``repro-record/<N>`` message type; part of every
#: cache key.  2: records key on the flow signature and carry per-stage
#: timings.  3: records are stamped with the ``repro.schema`` envelope on
#: disk (untagged v2 documents still load, via migration).
RECORD_SCHEMA = 3


def _package_version() -> str:
    from .. import __version__

    return __version__


#: A flow signature entry as stored on a job: (stage name, merged options).
StageSignature = Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]


@dataclass(frozen=True)
class SynthesisJob:
    """One unit of schedulable work: synthesise a catalogued circuit.

    Attributes:
        circuit: Name from :mod:`repro.circuits.registry`.
        scale: ``"quick"`` or ``"paper"`` circuit dimensions.
        options: Flow options as a sorted ``(key, value)`` tuple, kept for
            backwards compatibility and for jobs whose flow was derived
            from a :class:`FlowOptions`; empty for hand-composed flows.
        stages: The flow's canonical signature (ordered stage names +
            fully merged per-stage options) — the cache identity.  Both
            fields are plain tuples so the job stays hashable and
            picklable across worker processes.
    """

    #: Message kind this job's records are stored under (see ``repro.schema``).
    schema_kind: ClassVar[str] = "record"

    circuit: str
    scale: str = "quick"
    options: Tuple[Tuple[str, object], ...] = ()
    stages: StageSignature = ()

    @classmethod
    def create(
        cls,
        circuit: str,
        scale: str = "quick",
        options: Optional[Mapping[str, object]] = None,
    ) -> "SynthesisJob":
        """Build a job from a plain options mapping (or ``FlowOptions``).

        Options are canonicalised through :class:`FlowOptions` so a partial
        mapping (``{"effort": "low"}``) and the equivalent full option set
        address the same cache record.
        """
        if not isinstance(options, FlowOptions):
            options = FlowOptions.from_dict(dict(options or {}))
        items = tuple(sorted(options.to_dict().items()))
        signature = Flow.from_options(options).signature()
        return cls(circuit=circuit, scale=scale, options=items, stages=signature)

    @classmethod
    def from_flow(
        cls, circuit: str, scale: str = "quick", flow: Optional[Flow] = None
    ) -> "SynthesisJob":
        """Build a job from an arbitrary :class:`~repro.core.flowgraph.Flow`.

        Flows derived from a :class:`FlowOptions` (``Flow.from_options``,
        ``Flow.default``, ``Flow.direct_mapping``) also carry the options
        tuple, so job labels and records stay as informative as before;
        hand-composed flows are identified by their signature alone.
        """
        flow = flow if flow is not None else Flow.default()
        items: Tuple[Tuple[str, object], ...] = ()
        if flow.options is not None:
            items = tuple(sorted(flow.options.to_dict().items()))
        return cls(circuit=circuit, scale=scale, options=items, stages=flow.signature())

    def flow(self) -> Flow:
        """Reconstruct the runnable flow this job describes."""
        if self.stages:
            flow = Flow.from_signature(self.stages)
            if self.options:
                flow.options = FlowOptions.from_dict(dict(self.options))
            return flow
        return Flow.from_options(self.flow_options())

    def flow_options(self) -> FlowOptions:
        """The equivalent ``FlowOptions`` (raises for hand-composed flows)."""
        if not self.options:
            if self.stages:
                raise ValueError(
                    "job was built from a hand-composed Flow with no "
                    "FlowOptions equivalent; use job.flow() instead"
                )
            return FlowOptions()
        return FlowOptions.from_dict(dict(self.options))

    def signature(self) -> StageSignature:
        """The flow signature (computed from options for legacy jobs)."""
        if self.stages:
            return self.stages
        return Flow.from_options(dict(self.options)).signature()

    def signature_prefix(self, until: str = "aig-opt") -> Tuple[object, ...]:
        """Hashable identity of this job's work up to stage ``until``.

        Two jobs with equal prefixes share the stage cache up to that
        stage (``repro list`` uses this to show which experiments reuse
        each other's cached ``aig-opt`` results).  Returns a tuple of
        (circuit, scale, signature-prefix); raises ``ValueError`` when
        the flow has no stage named ``until``.
        """
        entries = []
        for entry in self.signature():
            entries.append(entry)
            if entry[0] == until:
                return (self.circuit, self.scale, tuple(entries))
        raise ValueError(f"job flow has no stage {until!r}")

    def pipeline_stages(self) -> int:
        """Architectural pipeline stages the job's flow inserts (0 if none)."""
        for name, options in self.signature():
            if name == "pipeline":
                return int(dict(options).get("stages", 0))
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "scale": self.scale,
            "options": dict(self.options) if self.options else None,
            "flow": [[name, dict(options)] for name, options in self.signature()],
        }

    def key(self) -> str:
        """Content-addressed cache key: flow signature + package version.

        Canonicalised through :func:`repro.schema.content_key`: a flow
        signature carrying a non-JSON-native option value raises
        :class:`repro.schema.WireFormatError` instead of being silently
        stringified into a collision-prone key.
        """
        payload = {
            "schema": schema_tag(self.schema_kind),
            "version": _package_version(),
            "circuit": self.circuit,
            "scale": self.scale,
            "flow": self.signature(),
        }
        return content_key(payload)


def synthesis_record(job: SynthesisJob) -> Dict[str, object]:
    """Compute the full metric record for one job (worker-process entry).

    Runs the xSFQ flow on the catalogued circuit and, depending on the
    circuit kind, the matching clocked-RSFQ baseline (PBMap-like for
    combinational circuits, qSeq-like for sequential ones), so a single
    cached record can serve every table that mentions the circuit.
    Pipelined jobs skip the baseline: no table compares pipelined xSFQ
    against a clocked flow.
    """
    info = circuit_info(job.circuit)
    network = build_circuit(job.circuit, job.scale)
    timing = TimingObserver()
    result = job.flow().run(
        network, observers=(timing,), stage_cache=get_stage_cache()
    )
    record = result.metrics()
    record.update(job.to_dict())
    record["kind"] = info.kind
    record["suite"] = info.suite
    record["num_flipflops"] = len(network.latches)
    record["stages"] = timing.rows()
    record["baseline_name"] = ""
    record["baseline_jj"] = None
    record["baseline_jj_clocked"] = None
    if job.pipeline_stages() == 0:
        if info.kind == "sequential":
            baseline = qseq_like(network)
            record["baseline_name"] = "qSeq-like"
        else:
            baseline = pbmap_like(network)
            record["baseline_name"] = "PBMap-like"
        record["baseline_jj"] = baseline.jj_count(include_clock_tree=False)
        record["baseline_jj_clocked"] = baseline.jj_count_with_clock_overhead()
    return record


def timed_synthesis_record(
    job: SynthesisJob,
) -> Tuple[SynthesisJob, Dict[str, object], float]:
    """Record plus the seconds it took to compute.

    Compatibility shim: the runner now schedules bare
    :func:`synthesis_record` through :mod:`repro.exec`, which times
    every unit itself; this wrapper remains for external callers that
    used it as a pool worker function.
    """
    start = time.perf_counter()
    record = synthesis_record(job)
    return job, record, time.perf_counter() - start


class ResultCache:
    """Content-addressed on-disk store of synthesis records.

    One JSON file per record, named by the job's sha256 key, written
    atomically so concurrent workers and processes can share a directory.
    Hit/miss/put counters let the runner report how much re-synthesis a
    run actually performed.

    The cache is shared by every spec family that exposes ``key()`` /
    ``schema_kind`` (:class:`SynthesisJob`,
    :class:`~repro.verify.campaign.VerificationSpec`,
    :class:`~repro.faults.campaign.FaultSpec`); records are stamped with
    the ``repro.schema`` envelope on ``put`` and validated/migrated on
    ``get``.  A record that fails to parse or validate — truncated by a
    crash, hand-edited, foreign — is **not** an error: it counts as a
    miss (so the unit recomputes), is quarantined as ``*.corrupt`` for
    inspection, and logs a warning.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-xsfq"
            )
        self.directory = Path(directory).expanduser()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def contains(self, job: SynthesisJob) -> bool:
        return self._path(job.key()).exists()

    @staticmethod
    def _kind(job: SynthesisJob) -> str:
        return getattr(job, "schema_kind", "record")

    def get(self, job: SynthesisJob) -> Optional[Dict[str, object]]:
        path = self._path(job.key())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            record = load_document(document, self._kind(job), source=str(path))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as error:
            moved = quarantine(path)
            suffix = f"; quarantined as {moved.name}" if moved else ""
            logger.warning(
                "corrupt cache record %s treated as a miss (%s)%s",
                path.name,
                error,
                suffix,
            )
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, job: SynthesisJob, record: Mapping[str, object]) -> None:
        if record.get("status") == "error":
            # Error placeholders describe a *failed execution*, not the
            # unit's true result; caching one would make the failure
            # sticky across reruns.  The execution lifecycle never puts
            # them — this guard is defense-in-depth for direct callers.
            raise ValueError(
                "refusing to cache a status='error' record; rerun the "
                "unit to compute a real result"
            )
        document = pack(self._kind(job), dict(record))
        atomic_write_json(self._path(job.key()), document, compact=True)
        self.puts += 1

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}


@dataclass
class SynthesisEngine:
    """Serves synthesis records, optionally memoised in a :class:`ResultCache`.

    ``record()`` is the only entry point the experiment assemblers use;
    with no cache attached it degrades to direct serial computation,
    which keeps the refactored experiments behaviourally identical to
    the original inline-synthesis code path.
    """

    cache: Optional[ResultCache] = None
    #: Jobs computed by this engine (not served from cache), with timings.
    computed: List[Tuple[SynthesisJob, float]] = field(default_factory=list)
    #: When False, repeated requests re-synthesise (for timing studies).
    memoize: bool = True
    #: In-process memo so one engine never synthesises the same job twice,
    #: even with no disk cache attached.
    memory: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def record(
        self,
        circuit: str,
        scale: str = "quick",
        options: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        return self.record_for(SynthesisJob.create(circuit, scale, options))

    def record_for(self, job: SynthesisJob) -> Dict[str, object]:
        key = job.key()
        if self.memoize and key in self.memory:
            return self.memory[key]
        if self.cache is not None:
            cached = self.cache.get(job)
            if cached is not None:
                self.memory[key] = cached
                return cached
        start = time.perf_counter()
        record = synthesis_record(job)
        self.computed.append((job, time.perf_counter() - start))
        self.memory[key] = record
        if self.cache is not None:
            self.cache.put(job, record)
        return record

    def prime(
        self,
        job: SynthesisJob,
        record: Mapping[str, object],
        persist: bool = True,
    ) -> None:
        """Store an externally computed record (used by the parallel runner)."""
        self.memory[job.key()] = dict(record)
        if persist and self.cache is not None:
            self.cache.put(job, record)


_DEFAULT_ENGINE = SynthesisEngine()


def get_default_engine() -> SynthesisEngine:
    """The engine experiments use when none is passed explicitly."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[SynthesisEngine]) -> SynthesisEngine:
    """Install (or, with ``None``, reset) the process-wide default engine."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine if engine is not None else SynthesisEngine()
    return previous


@contextlib.contextmanager
def use_engine(engine: SynthesisEngine) -> Iterator[SynthesisEngine]:
    """Temporarily install ``engine`` as the process-wide default."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
