"""Experiment runners: one per table / figure of the paper's evaluation.

Every runner assembles the same columns the paper reports and returns an
:class:`ExperimentResult` whose ``text`` attribute is a ready-to-print
table.  The ``scale`` argument selects between the reduced "quick" circuit
dimensions (default — suitable for CI and the shipped benchmark harness)
and the "paper"-scale dimensions.

Per-circuit synthesis is *not* performed inline: each runner enumerates
declarative :class:`~repro.eval.engine.SynthesisJob` units (see the
``*_jobs`` helpers) and asks a :class:`~repro.eval.engine.SynthesisEngine`
for the corresponding metric records.  The default engine computes
serially with no disk cache (though it memoises repeated jobs
in-process; pass ``SynthesisEngine(memoize=False)`` to time every
synthesis from scratch), while the parallel runner (:mod:`repro.eval.runner`)
pre-populates a shared content-addressed cache from a worker pool so the
assembly step here never synthesises anything itself.

The measured numbers are not expected to match the paper's absolute values
(different benchmark instantiations, different optimiser); the *shape* —
which flow wins, by roughly what factor, where the duplication penalty is
high or low — is what EXPERIMENTS.md tracks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..aig import network_to_aig, optimize
from ..circuits import names as circuit_names
from ..core import (
    CircuitReport,
    Flow,
    FlowOptions,
    arithmetic_mean,
    combinational_table,
    default_library,
    format_table,
    pipelining_table,
    sequential_table,
    synthesize_xsfq,
    table2_rows,
)
from ..core.encoding import format_waveform
from ..netlist.network import NetworkBuilder
from ..sim.pulse import simulate_sequential
from ..sim.pulse.elements import FaCell, LaCell
from . import paper_data
from .engine import SynthesisEngine, SynthesisJob, get_default_engine


@dataclass
class ExperimentResult:
    """Outcome of one experiment runner.

    Attributes:
        experiment: Identifier ("table4", "figure7", ...).
        rows: Structured per-row results.
        text: Formatted text table / report.
        summary: Aggregate metrics (averages, checks).
        scale: Circuit scale used ("quick" or "paper").
    """

    experiment: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    text: str = ""
    summary: Dict[str, object] = field(default_factory=dict)
    scale: str = "quick"


def _engine(engine: Optional[SynthesisEngine]) -> SynthesisEngine:
    return engine if engine is not None else get_default_engine()


def _report_from_record(record: Mapping[str, object]) -> CircuitReport:
    """Rebuild the paper-style :class:`CircuitReport` from a cached record."""
    return CircuitReport(
        circuit=record["circuit"],
        la_fa=record["la_fa"],
        duplication=record["duplication"],
        droc_plain=record["droc_plain"],
        droc_preloaded=record["droc_preloaded"],
        splitters=record["splitters"],
        jj=record["jj"],
        jj_ptl=record["jj_ptl"],
        baseline_name=record.get("baseline_name", ""),
        baseline_jj=record.get("baseline_jj"),
        baseline_jj_clocked=record.get("baseline_jj_clocked"),
        depth=record["depth"],
        depth_with_splitters=record["depth_with_splitters"],
        clock_circuit_ghz=record.get("clock_circuit_ghz", 0.0),
        clock_arch_ghz=record.get("clock_arch_ghz", 0.0),
    )


# ---------------------------------------------------------------------------
# Table 1 / Figure 1: cell protocol and encoding
# ---------------------------------------------------------------------------


def run_table1() -> ExperimentResult:
    """Reproduce Table 1: LA/FA responses to alternating input sequences."""
    rows: List[Dict[str, object]] = []
    # Enumerate the excite-phase input combinations; the relax phase then
    # presents their complements, exactly as Table 1 lays out.
    for a, b in itertools.product((0, 1), repeat=2):
        la = LaCell("la", ["a", "b"], ["q"], delay=0.0)
        fa = FaCell("fa", ["a", "b"], ["q"], delay=0.0)

        def apply(cell, value_a: int, value_b: int, time: float) -> int:
            pulses = 0
            if value_a:
                pulses += len(cell.on_pulse(0, time))
            if value_b:
                pulses += len(cell.on_pulse(1, time + 0.1))
            return 1 if pulses else 0

        la_excite = apply(la, a, b, 0.0)
        fa_excite = apply(fa, a, b, 0.0)
        la_relax = apply(la, 1 - a, 1 - b, 10.0)
        fa_relax = apply(fa, 1 - a, 1 - b, 10.0)
        rows.append(
            {
                "a": a,
                "b": b,
                "LA_excite": la_excite,
                "FA_excite": fa_excite,
                "LA_relax": la_relax,
                "FA_relax": fa_relax,
                "la_reinitialised": la.is_initial_state(),
                "fa_reinitialised": fa.is_initial_state(),
            }
        )
    text = format_table(
        ["a", "b", "LAab (excite)", "FAab (excite)", "LAab (relax)", "FAab (relax)", "re-init"],
        [
            [r["a"], r["b"], r["LA_excite"], r["FA_excite"], r["LA_relax"], r["FA_relax"],
             "yes" if r["la_reinitialised"] and r["fa_reinitialised"] else "NO"]
            for r in rows
        ],
    )
    summary = {
        "la_matches_and": all(r["LA_excite"] == (r["a"] & r["b"]) for r in rows),
        "fa_matches_or": all(r["FA_excite"] == (r["a"] | r["b"]) for r in rows),
        "all_reinitialised": all(r["la_reinitialised"] and r["fa_reinitialised"] for r in rows),
    }
    return ExperimentResult("table1", rows, text, summary)


def run_figure1(bits: Sequence[int] = (1, 0, 1, 1, 0)) -> ExperimentResult:
    """Reproduce Figure 1: the alternating dual-rail encoding of a bit stream."""
    text = format_waveform(list(bits))
    from ..core.encoding import encode_stream, decode_stream

    slots = encode_stream(list(bits))
    decoded = decode_stream(slots)
    summary = {"roundtrip_ok": decoded == [int(b) for b in bits]}
    rows = [{"bit": b, "slot": s.pulses()} for b, s in zip(bits, slots)]
    return ExperimentResult("figure1", rows, text, summary)


def run_table2() -> ExperimentResult:
    """Reproduce Table 2: the xSFQ cell library data (both interconnect modes)."""
    rows = table2_rows()
    text = format_table(
        ["Cell", "Delay (ps)", "# JJs", "Delay (ps, PTL)", "# JJs (PTL)"],
        [[r["cell"], r["delay_no_ptl"], r["jj_no_ptl"], r["delay_ptl"], r["jj_ptl"]] for r in rows],
    )
    summary = {"num_cells": len(rows)}
    return ExperimentResult("table2", [dict(r) for r in rows], text, summary)


# ---------------------------------------------------------------------------
# Figures 2 & 3: analog (RCSJ) cell characterisation
# ---------------------------------------------------------------------------


def run_figure2_3() -> ExperimentResult:
    """Reproduce Figures 2-3: RCSJ phase-model characterisation of the cells.

    Checks the qualitative behaviour the paper's HSPICE plots show: the
    JTL propagates single pulses, the LA cell is a C element (fires only
    after both inputs), the FA cell fires on the first arrival and the
    DROC read-out discriminates stored flux.
    """
    from ..sim.analog import (
        characterize_droc,
        characterize_fa,
        characterize_jtl,
        characterize_la,
    )

    jtl = characterize_jtl()
    la_single, la_both = characterize_la()
    fa_single, fa_both = characterize_fa()
    droc_empty, droc_loaded = characterize_droc()
    results = [
        ("jtl", jtl), ("la_single", la_single), ("la_both", la_both),
        ("fa_single", fa_single), ("fa_both", fa_both),
        ("droc_empty", droc_empty), ("droc_loaded", droc_loaded),
    ]
    rows = [
        {
            "scenario": label,
            "cell": r.cell,
            "stimulus": r.scenario,
            "output_pulses": r.output_pulses,
            "delay_ps": r.delay_ps,
        }
        for label, r in results
    ]
    text = format_table(
        ["Cell", "Stimulus", "Output pulses", "Delay (ps)"],
        [
            [r.cell, r.scenario, r.output_pulses,
             f"{r.delay_ps:.1f}" if r.delay_ps is not None else "-"]
            for _, r in results
        ],
    )
    summary = {
        "jtl_propagates": jtl.output_pulses == 1 and bool(jtl.delay_ps),
        "la_is_c_element": la_single.output_pulses == 0 and la_both.output_pulses >= 1,
        "fa_fires_first": fa_single.output_pulses >= 1,
        "droc_discriminates": droc_loaded.output_pulses > droc_empty.output_pulses,
    }
    return ExperimentResult("figure2_3", rows, text, summary)


# ---------------------------------------------------------------------------
# Figures 4 & 5: the full-adder walk-through
# ---------------------------------------------------------------------------


def full_adder_network():
    """The 1-bit full adder used throughout the paper's Section 3.1."""
    b = NetworkBuilder("full_adder")
    a, bb, cin = b.input("a"), b.input("b"), b.input("cin")
    s, cout = b.full_adder(a, bb, cin)
    b.output(s, "s")
    b.output(cout, "cout")
    return b.finish()


def run_figure4_5() -> ExperimentResult:
    """Reproduce the full-adder mapping walk-through (Figures 4 and 5).

    Reports, for each mapping step of Section 3.1, the LA/FA cell count,
    splitter count and JJ totals with and without PTL interfaces, next to
    the paper's numbers.
    """
    network = full_adder_network()
    lib = default_library(False)
    lib_ptl = default_library(True)
    aig = optimize(network_to_aig(network), effort="high")

    steps: List[Tuple[str, FlowOptions]] = [
        ("direct", FlowOptions(effort="none", direct_mapping=True)),
        ("aig", FlowOptions(effort="high", direct_mapping=True)),
        ("polarity", FlowOptions(effort="high", optimize_polarity=False)),
        ("domino", FlowOptions(effort="high", optimize_polarity=True)),
    ]
    rows: List[Dict[str, object]] = []
    for label, options in steps:
        result = synthesize_xsfq(network, options)
        paper_cells, paper_splitters, paper_jj, paper_jj_ptl = paper_data.FULL_ADDER_STEPS[label]
        rows.append(
            {
                "step": label,
                "cells": result.num_la_fa,
                "splitters": result.num_splitters,
                "jj": result.netlist.jj_count(lib),
                "jj_ptl": result.netlist.jj_count(lib_ptl),
                "paper_cells": paper_cells,
                "paper_splitters": paper_splitters,
                "paper_jj": paper_jj,
                "paper_jj_ptl": paper_jj_ptl,
            }
        )
    text = format_table(
        ["Step", "LA/FA", "Splitters", "#JJ", "#JJ (PTL)", "paper LA/FA", "paper #JJ", "paper #JJ (PTL)"],
        [
            [r["step"], r["cells"], r["splitters"], r["jj"], r["jj_ptl"], r["paper_cells"], r["paper_jj"], r["paper_jj_ptl"]]
            for r in rows
        ],
    )
    summary = {
        "min_aig_nodes": aig.num_ands,
        "paper_min_aig_nodes": paper_data.FULL_ADDER_MIN_AIG_NODES,
        "matches_paper": all(
            r["cells"] == r["paper_cells"] and r["jj"] == r["paper_jj"] for r in rows
        ),
    }
    return ExperimentResult("figure4_5", rows, text, summary)


# ---------------------------------------------------------------------------
# Table 3: duplication penalty on the EPFL control circuits
# ---------------------------------------------------------------------------

TABLE3_CIRCUITS = ["arbiter", "cavlc", "ctrl", "dec", "i2c", "int2float", "mem_ctrl", "priority", "router", "voter"]


def table3_jobs(scale: str = "quick", effort: str = "medium") -> List[SynthesisJob]:
    options = FlowOptions(effort=effort)
    return [SynthesisJob.create(name, scale, options) for name in TABLE3_CIRCUITS]


def run_table3(
    scale: str = "quick",
    effort: str = "medium",
    engine: Optional[SynthesisEngine] = None,
) -> ExperimentResult:
    """Reproduce Table 3: duplication penalty after the polarity optimisations."""
    eng = _engine(engine)
    rows: List[Dict[str, object]] = []
    penalties: Dict[str, float] = {}
    for job in table3_jobs(scale, effort):
        record = eng.record_for(job)
        penalties[job.circuit] = record["duplication"]
        rows.append(
            {
                "circuit": job.circuit,
                "duplication": record["duplication"],
                "paper_duplication": paper_data.TABLE3_DUPLICATION[job.circuit],
                "la_fa": record["la_fa"],
            }
        )
    text = format_table(
        ["Circuit", "Dupl. (measured)", "Dupl. (paper)"],
        [[r["circuit"], f"{r['duplication']*100:.0f}%", f"{r['paper_duplication']*100:.0f}%"] for r in rows],
    )
    summary = {
        "mean_duplication": arithmetic_mean(penalties.values()),
        "paper_mean_duplication": arithmetic_mean(paper_data.TABLE3_DUPLICATION.values()),
        "all_below_direct_mapping": all(p < 1.0 for p in penalties.values()),
    }
    return ExperimentResult("table3", rows, text, summary, scale)


# ---------------------------------------------------------------------------
# Table 4: combinational circuits vs the PBMap-style baseline
# ---------------------------------------------------------------------------

TABLE4_CIRCUITS = ["c880", "c1908", "c499", "c3540", "c5315", "c7552", "int2float", "dec", "priority", "sin", "cavlc"]


def table4_jobs(
    scale: str = "quick",
    effort: str = "medium",
    circuits: Optional[Sequence[str]] = None,
) -> List[SynthesisJob]:
    options = FlowOptions(effort=effort)
    chosen = list(circuits) if circuits else TABLE4_CIRCUITS
    return [SynthesisJob.create(name, scale, options) for name in chosen]


def run_table4(
    scale: str = "quick",
    effort: str = "medium",
    circuits: Optional[Sequence[str]] = None,
    engine: Optional[SynthesisEngine] = None,
) -> ExperimentResult:
    """Reproduce Table 4: JJ counts and savings for combinational circuits."""
    eng = _engine(engine)
    reports = [
        _report_from_record(eng.record_for(job))
        for job in table4_jobs(scale, effort, circuits)
    ]
    rows: List[Dict[str, object]] = []
    for report in reports:
        paper_row = paper_data.TABLE4_ROWS.get(report.circuit)
        rows.append(
            {
                "circuit": report.circuit,
                "baseline_jj": report.baseline_jj,
                "la_fa": report.la_fa,
                "duplication": report.duplication,
                "jj": report.jj,
                "savings": report.jj_savings,
                "savings_with_clock": report.jj_savings_clocked,
                "paper_savings": paper_row.savings if paper_row else None,
                "paper_savings_with_clock": paper_row.savings_with_clock if paper_row else None,
            }
        )
    text = combinational_table(reports, baseline_label="PBMap-like")
    savings = [r["savings"] for r in rows if r["savings"]]
    summary = {
        "mean_savings": arithmetic_mean(savings),
        "mean_savings_with_clock": arithmetic_mean(
            [r["savings_with_clock"] for r in rows if r["savings_with_clock"]]
        ),
        "paper_mean_savings": paper_data.TABLE4_AVERAGE_SAVINGS[0],
        "paper_mean_savings_with_clock": paper_data.TABLE4_AVERAGE_SAVINGS[1],
        "xsfq_always_wins": all(s and s > 1.0 for s in savings),
        "no_storage_cells": all(r.droc_plain + r.droc_preloaded == 0 for r in reports),
    }
    return ExperimentResult("table4", rows, text, summary, scale)


# ---------------------------------------------------------------------------
# Table 5: pipelining study on the multiplier (c6288 class)
# ---------------------------------------------------------------------------


def table5_jobs(
    scale: str = "quick",
    effort: str = "medium",
    stages: Sequence[int] = (0, 1, 2),
) -> List[SynthesisJob]:
    return [
        SynthesisJob.create(
            "c6288", scale, FlowOptions(effort=effort, pipeline_stages=num_stages)
        )
        for num_stages in stages
    ]


def run_table5(
    scale: str = "quick",
    effort: str = "medium",
    stages: Sequence[int] = (0, 1, 2),
    engine: Optional[SynthesisEngine] = None,
) -> ExperimentResult:
    """Reproduce Table 5: pipelined c6288 (JJ, DROC, depth, clock frequency)."""
    eng = _engine(engine)
    reports: List[CircuitReport] = []
    rows: List[Dict[str, object]] = []
    for num_stages, job in zip(stages, table5_jobs(scale, effort, stages)):
        record = eng.record_for(job)
        report = _report_from_record(record)
        report.circuit = f"c6288/{num_stages}"
        report.baseline_jj = None
        report.baseline_jj_clocked = None
        report.extras = {"stages": num_stages, "ranks": 2 * num_stages}
        reports.append(report)
        paper_row = paper_data.TABLE5_ROWS.get(num_stages)
        rows.append(
            {
                "stages": num_stages,
                "jj": report.jj,
                "la_fa": report.la_fa,
                "duplication": report.duplication,
                "droc_plain": report.droc_plain,
                "droc_preloaded": report.droc_preloaded,
                "depth": report.depth,
                "depth_with_splitters": report.depth_with_splitters,
                "clock_circuit_ghz": report.clock_circuit_ghz,
                "clock_arch_ghz": report.clock_arch_ghz,
                "paper_jj": paper_row.jj if paper_row else None,
                "paper_depth": paper_row.depth if paper_row else None,
            }
        )
    text = pipelining_table(reports)
    jj_values = [r["jj"] for r in rows]
    depth_values = [r["depth"] for r in rows]
    freq_values = [r["clock_circuit_ghz"] for r in rows]
    summary = {
        "jj_growth_monotonic": all(jj_values[i] <= jj_values[i + 1] for i in range(len(jj_values) - 1)),
        "depth_shrinks": all(depth_values[i] >= depth_values[i + 1] for i in range(len(depth_values) - 1)),
        "frequency_grows": all(freq_values[i] <= freq_values[i + 1] for i in range(len(freq_values) - 1)),
        "jj_growth_sublinear_vs_droc": _jj_growth_sublinear(rows),
    }
    return ExperimentResult("table5", rows, text, summary, scale)


def _jj_growth_sublinear(rows: Sequence[Mapping[str, object]]) -> bool:
    """Check the paper's observation that JJs grow sub-linearly with DROC count."""
    if len(rows) < 2:
        return True
    base = rows[0]
    last = rows[-1]
    droc_added = (last["droc_plain"] + last["droc_preloaded"]) - (
        base["droc_plain"] + base["droc_preloaded"]
    )
    if droc_added <= 0:
        return True
    jj_added = last["jj"] - base["jj"]
    # Sub-linear: the added JJs are less than the standalone cost of the
    # added DROC cells (13 JJ each) plus their clock tree would suggest.
    return jj_added < droc_added * 22


# ---------------------------------------------------------------------------
# Table 6: sequential circuits vs the qSeq-style baseline
# ---------------------------------------------------------------------------


def table6_jobs(
    scale: str = "quick",
    effort: str = "medium",
    circuits: Optional[Sequence[str]] = None,
) -> List[SynthesisJob]:
    options = FlowOptions(effort=effort)
    chosen = list(circuits) if circuits else circuit_names(suite="iscas89")
    return [SynthesisJob.create(name, scale, options) for name in chosen]


def run_table6(
    scale: str = "quick",
    effort: str = "medium",
    circuits: Optional[Sequence[str]] = None,
    engine: Optional[SynthesisEngine] = None,
) -> ExperimentResult:
    """Reproduce Table 6: sequential ISCAS89-class circuits vs qSeq."""
    eng = _engine(engine)
    reports: List[CircuitReport] = []
    rows: List[Dict[str, object]] = []
    for job in table6_jobs(scale, effort, circuits):
        record = eng.record_for(job)
        report = _report_from_record(record)
        reports.append(report)
        paper_row = paper_data.TABLE6_ROWS.get(job.circuit)
        rows.append(
            {
                "circuit": job.circuit,
                "baseline_jj": report.baseline_jj,
                "la_fa": report.la_fa,
                "duplication": report.duplication,
                "droc_plain": report.droc_plain,
                "droc_preloaded": report.droc_preloaded,
                "jj": report.jj,
                "savings": report.jj_savings,
                "savings_with_clock": report.jj_savings_clocked,
                "paper_savings": paper_row.savings if paper_row else None,
                "num_flipflops": record["num_flipflops"],
            }
        )
    text = sequential_table(reports, baseline_label="qSeq-like")
    savings = [r["savings"] for r in rows if r["savings"]]
    summary = {
        "mean_savings": arithmetic_mean(savings),
        "mean_savings_with_clock": arithmetic_mean(
            [r["savings_with_clock"] for r in rows if r["savings_with_clock"]]
        ),
        "paper_mean_savings": paper_data.TABLE6_AVERAGE_SAVINGS[0],
        "xsfq_always_wins": all(s and s > 1.0 for s in savings),
        "preloaded_matches_flipflops": all(
            r["droc_preloaded"] >= r["num_flipflops"] for r in rows
        ),
    }
    return ExperimentResult("table6", rows, text, summary, scale)


# ---------------------------------------------------------------------------
# Figure 7: pulse-level simulation of the 2-bit counter
# ---------------------------------------------------------------------------


def counter_network(bits: int = 2):
    """An enable-gated ``bits``-wide binary counter."""
    b = NetworkBuilder(f"counter{bits}")
    enable = b.input("en")
    state = [b.dff(b.const(0), name=f"q{i}") for i in range(bits)]
    carry = enable
    next_state = []
    for i in range(bits):
        next_state.append(b.xor(state[i], carry))
        carry = b.and_(state[i], carry)
    for i in range(bits):
        b.network.gates[f"q{i}"].fanins = [next_state[i]]
        b.output(state[i], f"out[{i}]")
    return b.finish()


def run_figure7(num_cycles: int = 6, effort: str = "medium") -> ExperimentResult:
    """Reproduce Figure 7: pulse-level simulation of a 2-bit xSFQ counter."""
    network = counter_network(2)
    result = synthesize_xsfq(network, FlowOptions(effort=effort, retime=False))
    vectors = [{"en": 1} for _ in range(num_cycles)]
    sim = simulate_sequential(result.netlist, vectors)
    counts = [out["out[1]"] * 2 + out["out[0]"] for out in sim.outputs]

    # Reference: the architectural start-up state is all-ones (see
    # repro.sim.pulse.xsfq_sim), so the expected count sequence starts at 3.
    expected = [(3 + k) % 4 for k in range(num_cycles)]
    rows = [
        {"cycle": k + 1, "count": counts[k], "expected": expected[k], "outputs": sim.outputs[k]}
        for k in range(num_cycles)
    ]
    text = format_table(
        ["Logical cycle", "Counter value", "Expected"],
        [[r["cycle"], format(r["count"], "02b"), format(r["expected"], "02b")] for r in rows],
    )
    summary = {
        "matches_expected": counts == expected,
        "wraps_around": 0 in counts and 3 in counts,
        "trigger_used": bool(result.netlist.trigger_nets),
        "num_drocs": sum(result.droc_counts),
    }
    return ExperimentResult("figure7", rows, text, summary)


# ---------------------------------------------------------------------------
# Ablations: how much each flow ingredient contributes
# ---------------------------------------------------------------------------

ABLATION_COMBINATIONAL = "c880"
ABLATION_PTL = "c1908"
ABLATION_SEQUENTIAL = "s298"

#: The Section 3.1 progression, expressed as staged Flow compositions.
#: Every variant after the first shares the same ``frontend``/``aig-opt``
#: prefix, so the stage cache optimises the c880 AIG exactly once.
_ABLATION_VARIANTS: List[Tuple[str, Callable[[str], Flow]]] = [
    ("direct (no AIG opt, dual rail)", lambda effort: Flow.direct_mapping(effort="none")),
    ("AIG opt only (dual rail)", lambda effort: Flow.direct_mapping(effort=effort)),
    (
        "+ positive-only outputs",
        lambda effort: Flow.from_options(FlowOptions(effort=effort, optimize_polarity=False)),
    ),
    (
        "+ output phase assignment",
        lambda effort: Flow.from_options(FlowOptions(effort=effort, optimize_polarity=True)),
    ),
]


def ablation_jobs(scale: str = "quick", effort: str = "medium") -> List[SynthesisJob]:
    jobs: List[SynthesisJob] = [
        SynthesisJob.from_flow(ABLATION_COMBINATIONAL, scale, make_flow(effort))
        for _, make_flow in _ABLATION_VARIANTS
    ]
    jobs.append(SynthesisJob.from_flow(ABLATION_PTL, scale, Flow.from_options(FlowOptions(effort=effort))))
    jobs.append(
        SynthesisJob.from_flow(
            ABLATION_SEQUENTIAL, scale, Flow.from_options(FlowOptions(effort=effort, retime=True))
        )
    )
    jobs.append(
        SynthesisJob.from_flow(
            ABLATION_SEQUENTIAL, scale, Flow.from_options(FlowOptions(effort=effort, retime=False))
        )
    )
    return jobs


def run_ablation(
    scale: str = "quick",
    effort: str = "medium",
    engine: Optional[SynthesisEngine] = None,
) -> ExperimentResult:
    """Quantify each flow ingredient (AIG opt, polarity, PTL, retiming).

    Mirrors the benchmark harness's ablation study: the Section 3.1
    optimisation progression on a c880-class ALU, the PTL interconnect
    cost model on c1908, and DROC retiming on the sequential s298.
    """
    eng = _engine(engine)
    jobs = ablation_jobs(scale, effort)
    combinational = jobs[: len(_ABLATION_VARIANTS)]
    ptl_job, retimed_job, paired_job = jobs[len(_ABLATION_VARIANTS):]

    rows: List[Dict[str, object]] = []
    jj_progression: List[int] = []
    for (label, _), job in zip(_ABLATION_VARIANTS, combinational):
        record = eng.record_for(job)
        jj_progression.append(record["jj"])
        rows.append(
            {
                "study": "polarity",
                "variant": label,
                "circuit": job.circuit,
                "la_fa": record["la_fa"],
                "jj": record["jj"],
                "duplication": record["duplication"],
            }
        )

    ptl_record = eng.record_for(ptl_job)
    rows.append(
        {
            "study": "interconnect",
            "variant": "PTL vs abutted",
            "circuit": ptl_job.circuit,
            "jj": ptl_record["jj"],
            "jj_ptl": ptl_record["jj_ptl"],
        }
    )

    retimed = eng.record_for(retimed_job)
    paired = eng.record_for(paired_job)
    for label, record in (("retimed DROC rank", retimed), ("paired DROC ranks", paired)):
        rows.append(
            {
                "study": "sequential",
                "variant": label,
                "circuit": ABLATION_SEQUENTIAL,
                "jj": record["jj"],
                "droc_plain": record["droc_plain"],
                "droc_preloaded": record["droc_preloaded"],
                "depth": record["depth"],
            }
        )

    text = format_table(
        ["Study", "Variant", "Circuit", "#JJ"],
        [[r["study"], r["variant"], r["circuit"], r["jj"]] for r in rows],
    )
    summary = {
        "progression_monotonic": all(
            jj_progression[i + 1] <= jj_progression[i] for i in range(len(jj_progression) - 1)
        ),
        "full_flow_beats_direct": jj_progression[-1] < jj_progression[0],
        "ptl_costs_more": ptl_record["jj_ptl"] > ptl_record["jj"],
        # Retiming trades a few extra DROCs for a balanced pipeline: the
        # depth behind the storage ranks shrinks (cf. benchmarks/test_ablations).
        "retiming_balances_depth": retimed["depth"] <= paired["depth"],
    }
    return ExperimentResult("ablation", rows, text, summary, scale)


# ---------------------------------------------------------------------------
# Aggregate: the abstract's headline claim
# ---------------------------------------------------------------------------


def headline_jobs(scale: str = "quick", effort: str = "low") -> List[SynthesisJob]:
    return table4_jobs(scale, effort) + table6_jobs(scale, effort)


def run_headline(
    scale: str = "quick",
    effort: str = "low",
    engine: Optional[SynthesisEngine] = None,
) -> ExperimentResult:
    """Check the abstract's headline: >80% average JJ reduction vs the baseline."""
    table4 = run_table4(scale=scale, effort=effort, engine=engine)
    table6 = run_table6(scale=scale, effort=effort, engine=engine)
    savings = [r["savings"] for r in table4.rows + table6.rows if r["savings"]]
    reductions = [1.0 - 1.0 / s for s in savings]
    summary = {
        "mean_reduction": arithmetic_mean(reductions),
        "mean_savings": arithmetic_mean(savings),
        "max_savings": max(savings) if savings else 0.0,
        "paper_mean_reduction": paper_data.ABSTRACT_AVERAGE_REDUCTION,
        "paper_mean_savings": paper_data.ABSTRACT_AVERAGE_SAVINGS,
    }
    text = format_table(
        ["Metric", "Measured", "Paper"],
        [
            ["average JJ reduction", f"{summary['mean_reduction']*100:.0f}%", ">80%"],
            ["average JJ savings", f"{summary['mean_savings']:.1f}x", f"{paper_data.ABSTRACT_AVERAGE_SAVINGS}x"],
            ["maximum JJ savings", f"{summary['max_savings']:.1f}x", f"~{paper_data.ABSTRACT_MAX_SAVINGS:.0f}x"],
        ],
    )
    return ExperimentResult("headline", table4.rows + table6.rows, text, summary, scale)
