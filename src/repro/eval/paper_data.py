"""Reference numbers from the paper's evaluation section.

These are the values printed in the paper's Tables 3-6, kept here so every
experiment runner can show "paper vs. measured" side by side (EXPERIMENTS.md
records the comparison for one full run).  The baseline columns (PBMap,
qSeq) are the published JJ counts the paper compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# Table 3: duplication penalty for the EPFL control circuits (fractions).
# ---------------------------------------------------------------------------

TABLE3_DUPLICATION: Dict[str, float] = {
    "arbiter": 0.00,
    "cavlc": 0.08,
    "ctrl": 0.09,
    "dec": 0.00,
    "i2c": 0.06,
    "int2float": 0.06,
    "mem_ctrl": 0.06,
    "priority": 0.22,
    "router": 0.44,
    "voter": 0.99,
}


# ---------------------------------------------------------------------------
# Table 4: ISCAS85 + EPFL combinational circuits vs PBMap.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    """One row of the paper's Table 4."""

    circuit: str
    pbmap_jj: int
    la_fa: int
    duplication: float
    droc: int
    jj: int
    savings: float
    savings_with_clock: float


TABLE4_ROWS: Dict[str, Table4Row] = {
    row.circuit: row
    for row in [
        Table4Row("c880", 12909, 452, 0.50, 0, 2942, 4.4, 5.7),
        Table4Row("c1908", 12013, 503, 0.71, 0, 3398, 3.6, 4.6),
        Table4Row("c499", 7758, 682, 0.75, 0, 4624, 1.7, 2.2),
        Table4Row("c3540", 28300, 1646, 0.93, 0, 11288, 2.5, 3.3),
        Table4Row("c5315", 52033, 1944, 0.42, 0, 13197, 4.0, 5.1),
        Table4Row("c7552", 48482, 2571, 0.76, 0, 17157, 2.8, 3.7),
        Table4Row("int2float", 6432, 225, 0.06, 0, 1530, 4.2, 5.5),
        Table4Row("dec", 5469, 304, 0.00, 0, 2848, 1.9, 2.5),
        Table4Row("priority", 102085, 892, 0.22, 0, 5503, 18.6, 24.1),
        Table4Row("sin", 215318, 9977, 0.99, 0, 69770, 3.1, 4.0),
        Table4Row("cavlc", 16339, 721, 0.08, 0, 5020, 3.3, 4.2),
    ]
}

#: Average JJ savings over PBMap reported in the text (without / with the 30%
#: clock-splitting overhead applied to the baseline).
TABLE4_AVERAGE_SAVINGS: Tuple[float, float] = (4.5, 5.9)


# ---------------------------------------------------------------------------
# Table 5: pipelined c6288 (16x16 multiplier).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table5Row:
    """One row of the paper's Table 5."""

    arch_stages: int
    circuit_stages: int
    jj: int
    la_fa: int
    duplication: float
    droc_plain: int
    droc_preloaded: int
    depth: int
    depth_with_splitters: int
    clock_circuit_ghz: float
    clock_arch_ghz: float


TABLE5_ROWS: Dict[int, Table5Row] = {
    row.arch_stages: row
    for row in [
        Table5Row(0, 0, 25853, 3707, 0.97, 0, 0, 90, 170, 0.9, 0.5),
        Table5Row(1, 2, 27312, 3669, 0.95, 91, 32, 46, 90, 1.6, 0.8),
        Table5Row(2, 4, 29399, 3572, 0.89, 171, 123, 24, 48, 3.0, 1.5),
    ]
}


# ---------------------------------------------------------------------------
# Table 6: ISCAS89 sequential circuits vs qSeq.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table6Row:
    """One row of the paper's Table 6."""

    circuit: str
    qseq_jj: int
    la_fa: int
    duplication: float
    droc_plain: int
    droc_preloaded: int
    jj: int
    savings: float
    savings_with_clock: float


TABLE6_ROWS: Dict[str, Table6Row] = {
    row.circuit: row
    for row in [
        Table6Row("s27", 527, 12, 0.71, 3, 3, 162, 3.3, 4.3),
        Table6Row("s298", 3698, 107, 0.24, 18, 14, 1228, 3.0, 3.9),
        Table6Row("s344", 5475, 117, 0.24, 19, 15, 1357, 4.0, 5.2),
        Table6Row("s349", 5475, 118, 0.26, 19, 15, 1364, 4.0, 5.2),
        Table6Row("s382", 4934, 135, 0.26, 29, 21, 1724, 2.9, 3.8),
        Table6Row("s386", 4580, 153, 0.61, 11, 6, 1295, 3.5, 4.6),
        Table6Row("s400", 5144, 133, 0.30, 25, 21, 1664, 3.1, 4.0),
        Table6Row("s420.1", 5661, 128, 0.20, 16, 16, 1354, 4.2, 5.5),
        Table6Row("s444", 5148, 133, 0.36, 28, 21, 1706, 3.0, 3.9),
        Table6Row("s510", 7085, 287, 0.31, 19, 6, 2265, 3.1, 4.0),
        Table6Row("s526", 6365, 159, 0.24, 25, 21, 1819, 3.5, 4.6),
        Table6Row("s641", 11462, 167, 0.34, 17, 17, 1653, 6.9, 9.0),
        Table6Row("s713", 11421, 167, 0.34, 17, 17, 1653, 6.9, 9.0),
        Table6Row("s820", 9797, 308, 0.34, 6, 5, 2284, 4.3, 5.6),
        Table6Row("s832", 9641, 298, 0.32, 5, 5, 2204, 4.4, 5.7),
        Table6Row("s838.1", 12710, 256, 0.17, 32, 32, 2714, 4.7, 6.1),
    ]
}

#: Average JJ savings over qSeq reported in the text.
TABLE6_AVERAGE_SAVINGS: Tuple[float, float] = (4.1, 5.3)

#: Headline result from the abstract: average JJ reduction across suites.
ABSTRACT_AVERAGE_REDUCTION = 0.80  # "over 80%"
ABSTRACT_AVERAGE_SAVINGS = 4.3     # "average reduction of 4.3x"
ABSTRACT_MAX_SAVINGS = 20.0        # "nearly 20x maximum reduction"

#: Full-adder walk-through from Sections 3.1.1-3.1.5 (cells, splitters,
#: JJ without PTLs, JJ with PTLs).
FULL_ADDER_STEPS: Dict[str, Tuple[int, int, int, int]] = {
    "direct": (18, 16, 120, 264),
    "aig": (14, 12, 92, 204),
    "polarity": (11, 7, 65, 153),
    "domino": (10, 6, 58, 138),
}

#: Figure 4: minimal AIG node count of a full adder.
FULL_ADDER_MIN_AIG_NODES = 7
