"""Parallel experiment orchestration: specs, worker pool, cache, reports.

This is the operator-facing engine behind the ``repro`` CLI.  Every table
and figure of the paper's evaluation is registered here as a declarative
:class:`ExperimentSpec`: a name, a human title, the assembler function
from :mod:`repro.eval.experiments`, and an enumerator of the
:class:`~repro.eval.engine.SynthesisJob` units the assembler will need.

The :class:`Runner` schedules those jobs across a ``multiprocessing``
worker pool, memoises every record in a content-addressed
:class:`~repro.eval.engine.ResultCache`, then hands the pre-populated
cache to the assembler — so a warm cache reproduces any table with zero
re-synthesis, and a cold run is limited by the slowest single circuit
rather than the sum of all of them.  :class:`RunReport` carries the
assembled :class:`~repro.eval.experiments.ExperimentResult` together
with per-job timings and cache statistics, and can be emitted as JSON or
CSV for downstream tooling.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import experiments
from ..exec import ExecEvent, render_event, run_units, spec_units
from ..gen.fuzz import FuzzCampaign, FuzzReport, FuzzUnit, shrink_unit
from ..schema import atomic_write_json, canonical_json
from ..verify.campaign import (
    VerificationReport,
    VerificationSpec,
    verification_record,
)
from .engine import (
    ResultCache,
    SynthesisEngine,
    SynthesisJob,
    synthesis_record,
)
from .experiments import ExperimentResult

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one schedulable experiment.

    Attributes:
        name: CLI identifier (``"table4"``, ``"figure7"``, ...).
        title: Human-readable description of what the paper artefact shows.
        run: Assembler ``(scale, effort, engine, circuits) -> ExperimentResult``.
        jobs: Enumerator of the synthesis jobs the assembler will request;
            ``None`` for experiments with no catalogued-circuit synthesis.
        default_effort: AIG effort used when the caller does not choose one.
        supports_circuits: Whether ``run``/``jobs`` accept a circuit subset.
    """

    name: str
    title: str
    run: Callable[..., ExperimentResult]
    jobs: Optional[Callable[..., List[SynthesisJob]]] = None
    default_effort: str = "medium"
    supports_circuits: bool = False

    def enumerate_jobs(
        self,
        scale: str = "quick",
        effort: Optional[str] = None,
        circuits: Optional[Sequence[str]] = None,
    ) -> List[SynthesisJob]:
        if self.jobs is None:
            return []
        effort = effort or self.default_effort
        if self.supports_circuits:
            return self.jobs(scale, effort, circuits)
        return self.jobs(scale, effort)

    def assemble(
        self,
        scale: str = "quick",
        effort: Optional[str] = None,
        engine: Optional[SynthesisEngine] = None,
        circuits: Optional[Sequence[str]] = None,
    ) -> ExperimentResult:
        effort = effort or self.default_effort
        if self.supports_circuits:
            return self.run(scale=scale, effort=effort, circuits=circuits, engine=engine)
        return self.run(scale=scale, effort=effort, engine=engine)


def _fixed(fn: Callable[[], ExperimentResult]) -> Callable[..., ExperimentResult]:
    """Adapt a no-argument experiment to the uniform assembler signature."""

    def run(scale: str = "quick", effort: str = "medium", engine=None, circuits=None):
        return fn()

    run.__doc__ = fn.__doc__
    return run


def _figure7(scale: str = "quick", effort: str = "medium", engine=None, circuits=None):
    return experiments.run_figure7(effort=effort)


EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    EXPERIMENTS[spec.name] = spec


_register(ExperimentSpec(
    "table1", "LA/FA cell responses to alternating input sequences",
    _fixed(experiments.run_table1),
))
_register(ExperimentSpec(
    "table2", "The xSFQ cell library (delays and JJ counts, both interconnects)",
    _fixed(experiments.run_table2),
))
_register(ExperimentSpec(
    "figure1", "Alternating dual-rail encoding of a bit stream",
    _fixed(experiments.run_figure1),
))
_register(ExperimentSpec(
    "figure2_3", "Analog (RCSJ) characterisation of JTL/LA/FA/DROC cells",
    _fixed(experiments.run_figure2_3),
))
_register(ExperimentSpec(
    "figure4_5", "Full-adder mapping walk-through (Section 3.1 progression)",
    _fixed(experiments.run_figure4_5),
))
_register(ExperimentSpec(
    "table3", "Duplication penalty on the EPFL control circuits",
    experiments.run_table3, experiments.table3_jobs,
))
_register(ExperimentSpec(
    "table4", "Combinational circuits vs the PBMap-like RSFQ baseline",
    experiments.run_table4, experiments.table4_jobs, supports_circuits=True,
))
_register(ExperimentSpec(
    "table5", "Pipelining study on the c6288-class multiplier",
    experiments.run_table5, experiments.table5_jobs,
))
_register(ExperimentSpec(
    "table6", "Sequential ISCAS89-class circuits vs the qSeq-like baseline",
    experiments.run_table6, experiments.table6_jobs, supports_circuits=True,
))
_register(ExperimentSpec(
    "figure7", "Pulse-level simulation of the 2-bit xSFQ counter",
    _figure7,
))
_register(ExperimentSpec(
    "ablation", "Contribution of each flow ingredient (opt, polarity, PTL, retime)",
    experiments.run_ablation, experiments.ablation_jobs,
))
_register(ExperimentSpec(
    "headline", "The abstract's claim: >80% average JJ reduction",
    experiments.run_headline, experiments.headline_jobs,
    default_effort="low",
))


@dataclass
class RunReport:
    """Everything one :meth:`Runner.run` invocation produced.

    Attributes:
        result: The assembled experiment result.
        scale: Circuit scale used.
        effort: AIG effort used.
        jobs: Worker-pool width.
        total_jobs: Synthesis jobs the experiment needed.
        computed_jobs: Jobs actually synthesised this run (cache misses).
        cached_jobs: Jobs served from the result cache.
        job_timings: Seconds per computed job, keyed by a job label.
        stage_timings: Per-stage aggregate over every record the run
            touched: ``{stage: {"runs", "cached", "total_s", "mean_s"}}``.
            ``runs``/``total_s`` cover only stages executed this run;
            stage-cache hits and records replayed from the result cache
            count under ``cached``.  Rendered by ``repro run --stage-timing``.
        elapsed_s: Wall-clock for the whole run (synthesis + assembly).
    """

    result: ExperimentResult
    scale: str = "quick"
    effort: str = "medium"
    jobs: int = 1
    total_jobs: int = 0
    computed_jobs: int = 0
    cached_jobs: int = 0
    job_timings: Dict[str, float] = field(default_factory=dict)
    stage_timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def experiment(self) -> str:
        return self.result.experiment

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.result.experiment,
            "scale": self.scale,
            "effort": self.effort,
            "jobs": self.jobs,
            "total_jobs": self.total_jobs,
            "computed_jobs": self.computed_jobs,
            "cached_jobs": self.cached_jobs,
            "job_timings": dict(self.job_timings),
            "stage_timings": {k: dict(v) for k, v in self.stage_timings.items()},
            "elapsed_s": self.elapsed_s,
            "rows": self.result.rows,
            "summary": self.result.summary,
            "text": self.result.text,
        }


def _aggregate_stage_timings(
    records_by_key: Mapping[str, Mapping[str, object]],
    computed_keys: Iterable[str],
) -> Dict[str, Dict[str, float]]:
    """Fold the per-record stage timing rows into one per-stage summary.

    Only records computed *this run* (``computed_keys``) count as executed
    stages; rows from records replayed out of the disk cache are folded
    into the ``cached`` column so the table matches the run's own
    "N synthesised" summary instead of echoing historical timings.
    """
    live = set(computed_keys)
    totals: Dict[str, Dict[str, float]] = {}
    for key, record in records_by_key.items():
        for row in record.get("stages") or []:
            entry = totals.setdefault(
                str(row.get("stage")),
                {"runs": 0, "cached": 0, "total_s": 0.0, "mean_s": 0.0},
            )
            if key in live and not row.get("cached"):
                entry["runs"] += 1
                entry["total_s"] += float(row.get("seconds") or 0.0)
            else:
                entry["cached"] += 1
    for entry in totals.values():
        executed = entry["runs"] or 1
        entry["mean_s"] = entry["total_s"] / executed
    return totals


def render_stage_timings(stage_timings: Mapping[str, Mapping[str, float]]) -> str:
    """Text table for ``repro run --stage-timing`` (and saved JSON reports)."""
    from ..core import format_table

    rows = [
        [
            stage,
            int(entry.get("runs", 0)),
            int(entry.get("cached", 0)),
            f"{entry.get('total_s', 0.0):.3f}",
            f"{entry.get('mean_s', 0.0):.4f}",
        ]
        for stage, entry in stage_timings.items()
    ]
    return format_table(["Stage", "Runs", "Cached", "Total (s)", "Mean (s)"], rows)


def _job_label(job: SynthesisJob) -> str:
    if job.options:
        tweaks = {
            key: value
            for key, value in job.options
            if value != getattr(experiments.FlowOptions(), key)
        }
        suffix = "".join(f" {k}={v}" for k, v in sorted(tweaks.items()))
    else:
        # Hand-composed flow: identify it by its stage sequence.
        suffix = " flow=" + ">".join(name for name, _ in job.signature())
    return f"{job.circuit}@{job.scale}{suffix}"


class Runner:
    """Schedules an experiment's synthesis jobs across an executor backend.

    All scheduling is delegated to :func:`repro.exec.run_units`; the
    runner only adapts campaign specs into work units, assembles the
    reports, and renders :class:`~repro.exec.ExecEvent`\\ s onto the
    ``progress`` callback.

    Args:
        jobs: Worker processes; 1 runs everything in-process (for the
            default ``pool`` backend).
        cache: Shared result cache (a fresh default-directory cache when
            omitted; pass ``cache=None`` explicitly via ``use_cache=False``
            on the CLI to disable persistence).
        progress: Callback receiving one line per scheduling event.
        executor: Backend name — ``"serial"``, ``"pool"`` (historical
            semantics, the default) or ``"workers"`` (supervised
            long-lived workers with crash isolation and timeouts).
        unit_timeout: Per-unit wall-clock budget in seconds, enforced by
            the ``workers`` backend (ignored by the others).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        executor: str = "pool",
        unit_timeout: Optional[float] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress or (lambda line: None)
        self.executor = executor
        self.unit_timeout = unit_timeout

    def emit(self, event: ExecEvent) -> None:
        """Render one structured execution event onto ``progress``."""
        line = render_event(event)
        if line is not None:
            self.progress(line)

    def run(
        self,
        experiment: str,
        scale: str = "quick",
        effort: Optional[str] = None,
        circuits: Optional[Sequence[str]] = None,
    ) -> RunReport:
        """Execute one registered experiment end to end."""
        spec = EXPERIMENTS.get(experiment)
        if spec is None:
            known = ", ".join(sorted(EXPERIMENTS))
            raise KeyError(f"unknown experiment {experiment!r}; known: {known}")
        effort = effort or spec.default_effort
        started = time.perf_counter()

        engine = SynthesisEngine(cache=self.cache)
        job_list = spec.enumerate_jobs(scale, effort, circuits)
        timings, computed_keys = self._prefetch(engine, job_list)

        result = spec.assemble(scale, effort, engine, circuits)
        # Jobs the assembler needed beyond the enumerated set (there should
        # be none — specs enumerate exactly what their assembler requests).
        for job, seconds in engine.computed:
            timings.setdefault(_job_label(job), seconds)
            computed_keys.add(job.key())

        elapsed = time.perf_counter() - started
        computed = len(timings)
        report = RunReport(
            result=result,
            scale=scale,
            effort=effort,
            jobs=self.jobs,
            total_jobs=len(job_list),
            computed_jobs=computed,
            cached_jobs=max(0, len(job_list) - computed),
            job_timings=timings,
            stage_timings=_aggregate_stage_timings(engine.memory, computed_keys),
            elapsed_s=elapsed,
        )
        self.progress(
            f"[{experiment}] done in {elapsed:.2f}s "
            f"({report.cached_jobs} cached, {report.computed_jobs} synthesised)"
        )
        return report

    def _run_verification_specs(
        self,
        specs: Sequence[VerificationSpec],
        describe: Callable[[VerificationSpec], str],
        verb: str = "verified",
        compute: Callable = verification_record,
    ) -> Tuple[Dict[str, Dict[str, object]], int, int]:
        """Shared campaign scheduler for ``verify``, ``fuzz`` and ``faults``.

        Thin adapter over :func:`repro.exec.run_units`: specs become
        :class:`~repro.exec.SpecUnit`\\ s around the module-level
        ``compute`` function, and the shared lifecycle handles dedupe,
        cache replay, executor fan-out and cache writes.  A unit whose
        worker raises (or crashes, on the ``workers`` backend) resolves
        to a ``status: "error"`` record instead of aborting the
        campaign; error records are never cached, so a rerun recomputes
        exactly the failed units.

        Returns ``(records by spec key, computed count, cached count)``.
        """
        outcome = run_units(
            spec_units(specs, compute, describe),
            cache=self.cache,
            executor=self.executor,
            jobs=self.jobs,
            emit=self.emit,
            verb=verb,
            noun="verification",
            unit_timeout=self.unit_timeout,
        )
        return outcome.records, outcome.computed, outcome.cached

    def verify(self, specs: Sequence[VerificationSpec]) -> VerificationReport:
        """Run a verification campaign over the worker pool.

        Mirrors :meth:`run` for :class:`~repro.verify.campaign.VerificationSpec`
        units: specs whose content-addressed key is already in the shared
        result cache are replayed for free, the rest are computed on the
        pool (synthesis + batched pulse verification per spec) and cached.
        Records come back in spec order.
        """
        started = time.perf_counter()
        records, computed, cached = self._run_verification_specs(
            specs, lambda spec: spec.label()
        )
        report = VerificationReport(
            records=[records[spec.key()] for spec in specs],
            scale=specs[0].scale if specs else "quick",
            patterns=specs[0].patterns if specs else 0,
            seed=specs[0].seed if specs else 0,
            jobs=self.jobs,
            computed=computed,
            cached=cached,
            elapsed_s=time.perf_counter() - started,
        )
        self.progress(
            f"[verify] done in {report.elapsed_s:.2f}s "
            f"({report.cached} cached, {report.computed} verified)"
        )
        return report

    def fuzz(
        self,
        campaign: FuzzCampaign,
        units: Optional[Sequence[FuzzUnit]] = None,
        shrink: bool = True,
    ) -> FuzzReport:
        """Run a differential fuzzing campaign over the worker pool.

        Every :class:`~repro.gen.fuzz.FuzzUnit` — one generated circuit
        under one flow variant — is a
        :class:`~repro.verify.campaign.VerificationSpec`, so scheduling,
        caching and worker-process execution are exactly the ``verify``
        path: cached verdicts replay for free, the rest fan out across
        the pool.  Generated circuits are rebuilt in workers from their
        self-describing names (no registry state is shipped).  Failing
        units are then shrunk **in-process** to 1-minimal reproducers
        (``shrink=False`` skips that, e.g. for pure triage runs).

        Args:
            campaign: The campaign identity (also determines the units
                when ``units`` is omitted).
            units: Pre-built unit list overriding ``campaign.units()``
                (used by ``repro fuzz --replay``).
            shrink: Minimise failing circuits after the campaign.
        """
        started = time.perf_counter()
        unit_list = list(units) if units is not None else campaign.units()
        by_key: Dict[str, FuzzUnit] = {}
        for unit in unit_list:
            by_key.setdefault(unit.spec.key(), unit)
        records, computed, cached = self._run_verification_specs(
            [unit.spec for unit in unit_list],
            lambda spec: f"{spec.label()} flow={by_key[spec.key()].flow_name}",
            verb="fuzzed",
        )
        report = FuzzReport(
            campaign=campaign,
            records=[
                unit.annotate(records[unit.spec.key()]) for unit in unit_list
            ],
            jobs=self.jobs,
            computed=computed,
            cached=cached,
        )
        if shrink:
            for record in report.failures:
                # Find the unit that produced this record (records keep
                # unit order, so match on circuit + flow variant).
                unit = next(
                    u
                    for u in unit_list
                    if u.spec.circuit == record.get("circuit")
                    and u.flow_name == record.get("flow_variant")
                )
                self.progress(
                    f"  shrinking {unit.spec.circuit} flow={unit.flow_name} ..."
                )
                result = shrink_unit(
                    unit.gen,
                    unit.flow_name,
                    patterns=unit.spec.patterns,
                    stimulus_seed=unit.spec.seed,
                    sequence_length=unit.spec.sequence_length,
                )
                if result is not None:
                    report.attach_shrink(record, result)
                    self.progress(f"    {result.summary()}")
        report.elapsed_s = time.perf_counter() - started
        self.progress(
            f"[fuzz] done in {report.elapsed_s:.2f}s "
            f"({report.cached} cached, {report.computed} verified, "
            f"{len(report.failures)} failures)"
        )
        return report

    def faults(self, campaign, units=None):
        """Run a fault-injection / robustness campaign over the worker pool.

        Every :class:`~repro.faults.FaultUnit` — one circuit under one
        flow variant with one fault scenario (optionally margin-swept) —
        rides the same scheduler as ``verify`` and ``fuzz``: records
        whose content-addressed key is already cached replay for free,
        the rest fan out across the pool via
        :func:`repro.faults.campaign.timed_fault_record` and are cached.

        Args:
            campaign: A :class:`repro.faults.FaultCampaign`.
            units: Pre-built unit list overriding ``campaign.units()``.

        Returns:
            A :class:`repro.faults.FaultReport`, records in unit order.
        """
        from ..faults.campaign import FaultReport, FaultUnit, fault_record

        started = time.perf_counter()
        unit_list = list(units) if units is not None else campaign.units()
        by_key: Dict[str, FaultUnit] = {}
        for unit in unit_list:
            by_key.setdefault(unit.spec.key(), unit)
        records, computed, cached = self._run_verification_specs(
            [unit.spec for unit in unit_list],
            lambda spec: f"{spec.label()} flow={by_key[spec.key()].flow_name}",
            verb="probed",
            compute=fault_record,
        )
        report = FaultReport(
            campaign=campaign,
            records=[unit.annotate(records[unit.spec.key()]) for unit in unit_list],
            jobs=self.jobs,
            computed=computed,
            cached=cached,
            elapsed_s=time.perf_counter() - started,
        )
        self.progress(
            f"[faults] done in {report.elapsed_s:.2f}s "
            f"({report.cached} cached, {report.computed} probed, "
            f"{len(report.miscompares)} miscompares, "
            f"{len(report.failures)} nominal failures)"
        )
        return report

    def soak(self, campaign, checkpoint_dir, max_batches: Optional[int] = None):
        """Run (or resume) one shard of a checkpointed soak campaign.

        Thin delegation to :func:`repro.cov.soak.run_soak` with this
        runner supplying scheduling, caching and progress; see
        :mod:`repro.cov.soak` for the determinism contract.

        Args:
            campaign: A :class:`repro.cov.soak.SoakCampaign`.
            checkpoint_dir: Directory the shard checkpoint lives in.
            max_batches: Stop (resumably) after this many batches.

        Returns:
            The shard's final :class:`repro.cov.soak.SoakState`.
        """
        from ..cov.soak import run_soak

        return run_soak(campaign, self, checkpoint_dir, max_batches=max_batches)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _prefetch(
        self, engine: SynthesisEngine, job_list: Sequence[SynthesisJob]
    ) -> Tuple[Dict[str, float], set]:
        """Compute every enumerated job missing from the cache.

        Returns per-job wall times and the cache keys of the jobs actually
        synthesised this run (vs replayed from the result cache).
        """
        timings: Dict[str, float] = {}
        computed_keys: set = set()
        if not job_list:
            return timings, computed_keys

        label_by_key: Dict[str, str] = {}
        job_by_key: Dict[str, SynthesisJob] = {}
        for job in job_list:
            key = job.key()
            if key not in job_by_key:
                job_by_key[key] = job
                label_by_key[key] = _job_label(job)
        units = spec_units(job_list, synthesis_record, _job_label)
        # The lifecycle replays cache hits and writes fresh records back
        # (so cache hit/miss/put statistics match the historical path);
        # priming below only fills the engine's in-process memory.
        outcome = run_units(
            units,
            cache=self.cache,
            executor=self.executor,
            jobs=self.jobs,
            emit=self.emit,
            verb="synthesised",
            noun="synthesis",
            unit_timeout=self.unit_timeout,
        )
        for key, record in outcome.records.items():
            if record.get("status") == "error":
                # Leave the engine cold for this job: the assembler will
                # recompute it serially and surface the real exception.
                continue
            engine.prime(job_by_key[key], record, persist=False)
        for key, seconds in outcome.seconds.items():
            timings[label_by_key[key]] = seconds
            computed_keys.add(key)
        return timings, computed_keys


def run_experiment(
    experiment: str,
    scale: str = "quick",
    effort: Optional[str] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    circuits: Optional[Sequence[str]] = None,
    progress: Optional[ProgressFn] = None,
    executor: str = "pool",
    unit_timeout: Optional[float] = None,
) -> RunReport:
    """One-call convenience wrapper around :class:`Runner`.

    ``repro.run_experiment("table4", jobs=4)`` reproduces Table 4 on a
    4-process pool, reusing (and growing) the on-disk result cache.
    """
    cache = ResultCache(cache_dir) if use_cache else None
    runner = Runner(
        jobs=jobs,
        cache=cache,
        progress=progress,
        executor=executor,
        unit_timeout=unit_timeout,
    )
    return runner.run(experiment, scale=scale, effort=effort, circuits=circuits)


# ---------------------------------------------------------------------------
# Structured emission
# ---------------------------------------------------------------------------


def write_json(report: RunReport, path: Path) -> Path:
    """Write the full run report (rows, summary, timings) as JSON.

    Atomic and strict: the shared schema-layer writer rejects
    non-wire-safe values instead of ``default=str``-stringifying them.
    """
    return atomic_write_json(Path(path), report.to_dict())


def _flatten(value: object) -> object:
    if isinstance(value, (dict, list, tuple)):
        return canonical_json(value)
    return value


def write_csv(report: RunReport, path: Path) -> Path:
    """Write the experiment's per-row results as CSV (one row per table row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = report.result.rows
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _flatten(value) for key, value in row.items()})
    return path


def load_report(path: Path) -> Dict[str, object]:
    """Load a JSON report previously written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def render_report(data: Mapping[str, object]) -> str:
    """Render a loaded JSON report back into the CLI's text format."""
    lines = [
        f"[{data.get('experiment', '?')}] scale={data.get('scale', '?')} "
        f"effort={data.get('effort', '?')} elapsed={data.get('elapsed_s', 0.0):.2f}s "
        f"({data.get('cached_jobs', 0)} cached, {data.get('computed_jobs', 0)} synthesised)",
        str(data.get("text", "")),
    ]
    summary = data.get("summary") or {}
    if summary:
        lines.append("summary:")
        for key in sorted(summary):
            lines.append(f"  {key}: {summary[key]}")
    return "\n".join(lines)
