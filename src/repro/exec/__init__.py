"""repro.exec — unified execution core for every campaign path.

One :class:`WorkUnit` lifecycle (dedupe → cache replay → execute →
schema-validate → cache put) over three pluggable executor backends
(serial, throwaway pool, supervised persistent workers), emitting
structured :class:`ExecEvent`\\ s instead of per-campaign progress
f-strings.  ``Runner.run`` / ``verify`` / ``fuzz`` / ``faults`` /
``soak`` and the perf harness are thin compositions over this package;
the future ``repro serve`` daemon plugs into the same substrate.
"""

from .events import EmitFn, ExecEvent, render_event
from .executors import (
    Executor,
    PersistentWorkerExecutor,
    PoolExecutor,
    SerialExecutor,
    UnitResult,
    execute_unit,
)
from .lifecycle import EXECUTOR_NAMES, ExecOutcome, resolve_executor, run_units
from .units import CallableUnit, ProbeUnit, SpecUnit, WorkUnit, spec_units

__all__ = [
    "ExecEvent",
    "EmitFn",
    "render_event",
    "WorkUnit",
    "SpecUnit",
    "CallableUnit",
    "ProbeUnit",
    "spec_units",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "PersistentWorkerExecutor",
    "UnitResult",
    "execute_unit",
    "ExecOutcome",
    "EXECUTOR_NAMES",
    "resolve_executor",
    "run_units",
]
