"""Structured execution events and their canonical text rendering.

Before ``repro.exec`` existed, every campaign path announced progress
with its own ad-hoc f-strings — synthesis, verification, fuzzing, fault
probing and soak batches each had a slightly different convention.  The
unified lifecycle instead emits one typed :class:`ExecEvent` per
scheduling decision; anything that wants text (the ``repro`` CLI, test
capture, a future service daemon's log stream) renders events through
:func:`render_event`, which deliberately reproduces the established CLI
line formats so operator-facing output stays familiar.

Event kinds:

``cached``
    A unit's record was replayed from the result cache.
``schedule``
    A batch of pending units is about to fan out across workers.
``computed``
    A unit finished successfully (``status``/``seconds`` filled in).
``error``
    A unit failed permanently; its campaign record has
    ``status: "error"`` and is never cached.
``timeout``
    A unit exceeded the executor's per-unit timeout and was killed.
``retry``
    A crashed unit is being retried on a respawned worker.
``respawn``
    A dead worker process was replaced.
``note``
    Free-form progress (soak batches, resume announcements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ExecEvent", "EmitFn", "render_event"]


@dataclass(frozen=True)
class ExecEvent:
    """One structured scheduling event of the execution lifecycle.

    Attributes:
        kind: Event discriminator (see the module docstring).
        description: Human-oriented unit description (``describe()``).
        unit_key: Content-addressed key of the unit involved ("" for
            batch-level events such as ``schedule``).
        index: 1-based completion index within the pending batch.
        total: Pending-batch size the index counts against.
        status: Record status for ``computed``/``error`` events.
        seconds: Wall-clock seconds the unit took (0.0 when unknown).
        attempt: Execution attempt number (> 1 after crash retries).
        verb: Campaign verb for ``computed`` lines ("verified",
            "synthesised", "fuzzed", "probed", ...).
        detail: Extra context (error message, worker id, ...).
    """

    kind: str
    description: str = ""
    unit_key: str = ""
    index: int = 0
    total: int = 0
    status: str = ""
    seconds: float = 0.0
    attempt: int = 1
    verb: str = ""
    detail: str = ""


EmitFn = Callable[[ExecEvent], None]


def render_event(event: ExecEvent) -> Optional[str]:
    """Render an event to the CLI's established progress-line format.

    Returns ``None`` for events that produce no line (unknown kinds are
    silently dropped rather than crashing a progress callback).
    """
    if event.kind == "cached":
        return f"  cached      {event.description}"
    if event.kind == "schedule":
        return (
            f"  scheduling {event.total} {event.description} jobs "
            f"on {event.detail} workers"
        )
    if event.kind == "computed":
        status = f" [{event.status}]" if event.status else ""
        return (
            f"  [{event.index}/{event.total}] {event.verb} "
            f"{event.description}{status} ({event.seconds:.2f}s)"
        )
    if event.kind == "error":
        return (
            f"  [{event.index}/{event.total}] ERROR {event.description}: "
            f"{event.detail}"
        )
    if event.kind == "timeout":
        return (
            f"  [{event.index}/{event.total}] TIMEOUT {event.description} "
            f"after {event.seconds:.1f}s"
        )
    if event.kind == "retry":
        return (
            f"  retrying    {event.description} "
            f"(attempt {event.attempt}: {event.detail})"
        )
    if event.kind == "respawn":
        return f"  respawned worker {event.detail}"
    if event.kind == "note":
        return event.description
    return None
