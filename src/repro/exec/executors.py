"""Executor backends: serial, throwaway pool, persistent workers.

All three backends share one contract — ``map(units)`` yields a
:class:`UnitResult` per unit **in submission order**, and ``close()``
(or leaving the ``with`` block, on *any* exit path including
``KeyboardInterrupt``) terminates and joins every worker process.
Failures never escape ``map`` as exceptions: a unit that raises, times
out, or takes its worker down with it resolves to a result whose
``error`` field is populated, so a campaign always runs to completion
and reports per-unit outcomes instead of aborting mid-flight.

Backends:

:class:`SerialExecutor`
    In-process loop.  The only backend that accepts unpicklable units
    (perf-harness closures); exceptions are still captured as error
    results for lifecycle uniformity.

:class:`PoolExecutor`
    ``multiprocessing.Pool`` + ``imap``, matching the historical
    campaign scheduling byte for byte — except that worker exceptions
    now come back as error results instead of propagating out of
    ``imap`` and discarding all in-flight progress.

:class:`PersistentWorkerExecutor`
    Long-lived worker processes with per-unit timeouts and crash
    isolation: a worker that dies mid-unit is respawned and the unit
    retried with bounded backoff; on exhaustion (or timeout, which is
    never retried — the same unit would just time out again) the unit
    resolves to an error result.  This is the supervised backend the
    future ``repro serve`` daemon builds on.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .events import EmitFn, ExecEvent
from .units import WorkUnit

__all__ = [
    "UnitResult",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "PersistentWorkerExecutor",
    "execute_unit",
]


@dataclass
class UnitResult:
    """Outcome of executing one work unit.

    Attributes:
        index: Submission position (results are yielded in this order).
        unit: The unit that ran.
        record: The computed record, or ``None`` on failure.
        seconds: Wall-clock seconds spent executing (includes the failed
            attempt for errors; excludes queueing/backoff).
        cpu_s: Process CPU seconds for the same span (serial backend
            only measures meaningfully; worker backends report the
            worker's own measurement).
        error: ``None`` on success, else ``{"type", "message",
            "traceback"}`` describing why the unit failed.
        attempts: Execution attempts consumed (> 1 after crash retries).
    """

    index: int
    unit: WorkUnit
    record: Optional[Dict[str, object]]
    seconds: float = 0.0
    cpu_s: float = 0.0
    error: Optional[Dict[str, str]] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def execute_unit(
    unit: WorkUnit,
) -> Tuple[Optional[Dict[str, object]], float, float, Optional[Dict[str, str]]]:
    """Run one unit, capturing any exception as structured error info.

    This is the single execution wrapper every backend funnels through
    (in-process for serial, inside the worker for pool/persistent), so
    timing and error capture are identical everywhere.
    """
    start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        record = unit.run()
        error = None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - captured, reported per unit
        record = None
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    return record, time.perf_counter() - start, time.process_time() - cpu_start, error


def _ignore_sigint() -> None:
    """Worker initializer: leave Ctrl-C handling to the parent process."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _pool_entry(
    task: Tuple[int, WorkUnit],
) -> Tuple[int, Optional[Dict[str, object]], float, float, Optional[Dict[str, str]]]:
    """Pool worker entry: execute and ship the outcome, never raise."""
    index, unit = task
    record, seconds, cpu_s, error = execute_unit(unit)
    return index, record, seconds, cpu_s, error


class Executor:
    """Backend interface: ``map`` + guaranteed-cleanup ``close``."""

    #: Optional structured-event sink (set by the lifecycle) for
    #: supervision events (retry/respawn/timeout) that happen *during*
    #: ``map`` rather than per finished unit.
    emit: Optional[EmitFn] = None

    def map(self, units: Sequence[WorkUnit]) -> Iterator[UnitResult]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - overridden where stateful
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _note(self, event: ExecEvent) -> None:
        if self.emit is not None:
            self.emit(event)


class SerialExecutor(Executor):
    """Run every unit in-process, in order."""

    def map(self, units: Sequence[WorkUnit]) -> Iterator[UnitResult]:
        for index, unit in enumerate(units):
            record, seconds, cpu_s, error = execute_unit(unit)
            yield UnitResult(
                index=index,
                unit=unit,
                record=record,
                seconds=seconds,
                cpu_s=cpu_s,
                error=error,
            )


class PoolExecutor(Executor):
    """Throwaway ``multiprocessing.Pool`` per ``map`` — today's semantics.

    The pool is created when ``map`` first needs it (sized
    ``min(jobs, len(units))``) and torn down by ``close``; workers
    ignore ``SIGINT`` so a Ctrl-C interrupts the parent's ``imap`` wait
    and cleanup runs deterministically from the ``with`` block.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, int(jobs))
        self._pool: Optional[multiprocessing.pool.Pool] = None

    def map(self, units: Sequence[WorkUnit]) -> Iterator[UnitResult]:
        if not units:
            return
        processes = min(self.jobs, len(units))
        self._pool = multiprocessing.Pool(
            processes=processes, initializer=_ignore_sigint
        )
        tasks = list(enumerate(units))
        for index, record, seconds, cpu_s, error in self._pool.imap(
            _pool_entry, tasks
        ):
            yield UnitResult(
                index=index,
                unit=units[index],
                record=record,
                seconds=seconds,
                cpu_s=cpu_s,
                error=error,
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def _worker_main(tasks: "multiprocessing.Queue", results: "multiprocessing.Queue") -> None:
    """Persistent worker loop: pull tasks until the ``None`` sentinel."""
    _ignore_sigint()
    while True:
        task = tasks.get()
        if task is None:
            return
        index, unit = task
        results.put((os.getpid(), _pool_entry((index, unit))))


@dataclass
class _Worker:
    """Parent-side handle for one persistent worker process."""

    process: multiprocessing.Process
    tasks: "multiprocessing.Queue"
    #: In-flight task, or None when idle: (index, unit, deadline, attempt).
    busy: Optional[Tuple[int, WorkUnit, Optional[float], int]] = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


@dataclass
class _Pending:
    """A unit awaiting dispatch (fresh, or re-enqueued after a crash)."""

    index: int
    unit: WorkUnit
    attempt: int = 1
    spent_s: float = 0.0


class PersistentWorkerExecutor(Executor):
    """Long-lived supervised workers: timeout, crash isolation, retry.

    Args:
        jobs: Worker-process count (capped at the unit count per map).
        timeout: Per-unit wall-clock budget in seconds; an overrunning
            unit's worker is killed and the unit resolves to a timeout
            error **without retry**.  ``None`` disables the deadline.
        retries: Crash retries per unit.  A unit whose worker dies gets
            re-enqueued (after ``backoff_s * attempt``) up to this many
            extra attempts before resolving to a crash error.
        backoff_s: Base backoff between crash retries.
    """

    #: How long the supervision loop blocks on the result queue per tick.
    _POLL_S = 0.05

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.05,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self._workers: List[_Worker] = []
        self._results: Optional[multiprocessing.Queue] = None

    # -- worker management -------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        tasks: multiprocessing.Queue = multiprocessing.Queue()
        process = multiprocessing.Process(
            target=_worker_main, args=(tasks, self._results), daemon=True
        )
        process.start()
        return _Worker(process=process, tasks=tasks)

    def _kill_worker(self, worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - hard hang
                worker.process.kill()
                worker.process.join(timeout=1.0)
        worker.tasks.cancel_join_thread()
        worker.tasks.close()

    def _replace(self, slot: int) -> _Worker:
        self._kill_worker(self._workers[slot])
        fresh = self._spawn_worker()
        self._workers[slot] = fresh
        self._note(ExecEvent(kind="respawn", detail=str(fresh.process.pid)))
        return fresh

    # -- supervision loop ---------------------------------------------------
    def map(self, units: Sequence[WorkUnit]) -> Iterator[UnitResult]:
        if not units:
            return
        self._results = multiprocessing.Queue()
        count = min(self.jobs, len(units))
        self._workers = [self._spawn_worker() for _ in range(count)]

        pending: List[_Pending] = [
            _Pending(index=i, unit=u) for i, u in enumerate(units)
        ]
        resolved: Dict[int, UnitResult] = {}
        done: set = set()
        next_yield = 0
        total = len(units)

        def dispatch() -> None:
            for slot, worker in enumerate(self._workers):
                if not pending:
                    return
                if worker.busy is not None:
                    continue
                if not worker.alive:
                    worker = self._replace(slot)
                task = pending.pop(0)
                deadline = (
                    time.monotonic() + self.timeout
                    if self.timeout is not None
                    else None
                )
                worker.busy = (task.index, task.unit, deadline, task.attempt)
                worker.tasks.put((task.index, task.unit))

        def resolve(result: UnitResult) -> None:
            if result.index in done:
                return
            done.add(result.index)
            resolved[result.index] = result

        def slot_of(index: int) -> Optional[int]:
            for slot, worker in enumerate(self._workers):
                if worker.busy is not None and worker.busy[0] == index:
                    return slot
            return None

        def drain(block: bool) -> bool:
            try:
                _pid, payload = self._results.get(
                    timeout=self._POLL_S if block else 0
                )
            except queue.Empty:
                return False
            index, record, seconds, cpu_s, error = payload
            slot = slot_of(index)
            attempt = 1
            if slot is not None:
                attempt = self._workers[slot].busy[3]
                self._workers[slot].busy = None
            resolve(
                UnitResult(
                    index=index,
                    unit=units[index],
                    record=record,
                    seconds=seconds,
                    cpu_s=cpu_s,
                    error=error,
                    attempts=attempt,
                )
            )
            return True

        def supervise() -> None:
            """Handle deadline overruns and crashed workers."""
            for slot, worker in enumerate(self._workers):
                if worker.busy is None:
                    continue
                index, unit, deadline, attempt = worker.busy
                if index in done:
                    # Result already arrived via the queue; free the slot.
                    worker.busy = None
                    continue
                now = time.monotonic()
                if deadline is not None and now > deadline:
                    self._note(
                        ExecEvent(
                            kind="timeout",
                            description=unit.describe(),
                            unit_key=unit.key(),
                            index=index + 1,
                            total=total,
                            seconds=float(self.timeout or 0.0),
                        )
                    )
                    self._replace(slot).busy = None
                    resolve(
                        UnitResult(
                            index=index,
                            unit=unit,
                            record=None,
                            seconds=float(self.timeout or 0.0),
                            error={
                                "type": "Timeout",
                                "message": (
                                    f"unit exceeded the {self.timeout}s "
                                    "per-unit timeout and was killed"
                                ),
                                "traceback": "",
                            },
                            attempts=attempt,
                        )
                    )
                    continue
                if not worker.alive:
                    exitcode = worker.process.exitcode
                    self._replace(slot).busy = None
                    if attempt <= self.retries:
                        self._note(
                            ExecEvent(
                                kind="retry",
                                description=unit.describe(),
                                unit_key=unit.key(),
                                attempt=attempt + 1,
                                detail=f"worker died with exit code {exitcode}",
                            )
                        )
                        time.sleep(self.backoff_s * attempt)
                        pending.insert(
                            0, _Pending(index=index, unit=unit, attempt=attempt + 1)
                        )
                    else:
                        resolve(
                            UnitResult(
                                index=index,
                                unit=unit,
                                record=None,
                                error={
                                    "type": "WorkerCrash",
                                    "message": (
                                        f"worker died with exit code {exitcode} "
                                        f"({attempt} attempts)"
                                    ),
                                    "traceback": "",
                                },
                                attempts=attempt,
                            )
                        )

        try:
            while len(done) < total:
                dispatch()
                progressed = drain(block=True)
                while drain(block=False):
                    progressed = True
                if not progressed:
                    supervise()
                while next_yield in resolved:
                    yield resolved.pop(next_yield)
                    next_yield += 1
            while next_yield in resolved:
                yield resolved.pop(next_yield)
                next_yield += 1
        finally:
            self.close()

    def close(self) -> None:
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.tasks.put_nowait(None)
                except (queue.Full, ValueError):  # pragma: no cover
                    pass
        for worker in self._workers:
            worker.process.join(timeout=0.5)
            self._kill_worker(worker)
        self._workers = []
        if self._results is not None:
            self._results.cancel_join_thread()
            self._results.close()
            self._results = None
