"""The one execution lifecycle every campaign path runs through.

:func:`run_units` is the shared pipeline that used to be re-implemented
(with small divergences) by ``Runner._prefetch``,
``Runner._run_verification_specs``, the soak batch loop and the perf
harness:

    dedupe by key → cache replay → execute → cache put

with one :class:`~repro.exec.events.ExecEvent` emitted per scheduling
decision.  Schema validation rides the cache boundary exactly as
before: :meth:`ResultCache.put` packs records through the
``repro.schema`` envelope (rejecting non-wire-safe values) and
:meth:`ResultCache.get` validates/migrates/quarantines on the way back
in.

Failure containment: a unit whose execution fails — worker exception,
crash, timeout — resolves to a ``status: "error"`` record that carries
the unit's own identity payload plus structured error info.  Error
records flow into the campaign report (so a run always completes and
accounts for every unit) but are **never** written to the result cache,
so a rerun recomputes exactly the failed units from scratch while
replaying every healthy record from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .events import EmitFn, ExecEvent
from .executors import (
    Executor,
    PersistentWorkerExecutor,
    PoolExecutor,
    SerialExecutor,
    UnitResult,
)
from .units import WorkUnit

__all__ = ["ExecOutcome", "EXECUTOR_NAMES", "resolve_executor", "run_units"]

#: Valid ``--executor`` choices, in CLI order.
EXECUTOR_NAMES = ("serial", "pool", "workers")


@dataclass
class ExecOutcome:
    """Everything one :func:`run_units` invocation resolved.

    Attributes:
        records: Final record per unit key — cache replays, fresh
            computations, and ``status: "error"`` placeholders alike.
        seconds: Wall-clock seconds per *computed* unit key (cache
            replays and error units are absent).
        computed: Units executed this run (cache misses, incl. errors).
        cached: Units replayed from the result cache.
        errors: The ``status: "error"`` records, in completion order.
    """

    records: Dict[str, Dict[str, object]] = field(default_factory=dict)
    seconds: Dict[str, float] = field(default_factory=dict)
    computed: int = 0
    cached: int = 0
    errors: List[Dict[str, object]] = field(default_factory=list)


def resolve_executor(
    executor: str,
    jobs: int,
    pending: int,
    unit_timeout: Optional[float] = None,
) -> Executor:
    """Pick the backend for a batch of ``pending`` units.

    ``"pool"`` preserves the historical shape exactly: a single job (or
    a single pending unit) runs in-process, anything else fans out on a
    throwaway pool.  ``"serial"`` always stays in-process.
    ``"workers"`` always supervises, even for one unit — that is the
    point of choosing it (timeouts and crash isolation apply).
    """
    if executor == "serial":
        return SerialExecutor()
    if executor == "pool":
        if jobs == 1 or pending <= 1:
            return SerialExecutor()
        return PoolExecutor(jobs)
    if executor == "workers":
        return PersistentWorkerExecutor(
            min(max(1, jobs), max(1, pending)), timeout=unit_timeout
        )
    raise ValueError(
        f"unknown executor {executor!r}; choose from {', '.join(EXECUTOR_NAMES)}"
    )


def _error_record(result: UnitResult) -> Dict[str, object]:
    """Build the ``status: "error"`` placeholder for a failed unit."""
    record: Dict[str, object] = {}
    spec = getattr(result.unit, "spec", None)
    if spec is not None and hasattr(spec, "to_dict"):
        record.update(spec.to_dict())
    record["status"] = "error"
    record["error"] = dict(result.error or {})
    record["attempts"] = result.attempts
    record["seconds"] = result.seconds
    return record


def run_units(
    units: Sequence[WorkUnit],
    cache=None,
    executor: Union[str, Executor] = "pool",
    jobs: int = 1,
    emit: Optional[EmitFn] = None,
    verb: str = "verified",
    noun: str = "verification",
    unit_timeout: Optional[float] = None,
) -> ExecOutcome:
    """Run a unit batch through the shared lifecycle.

    Args:
        units: Work units in campaign order (duplicates by key are
            executed once; every occurrence resolves to the one record).
        cache: Optional :class:`~repro.eval.engine.ResultCache`.
        executor: Backend name (``serial``/``pool``/``workers``) or a
            ready :class:`Executor` instance.  Named backends are
            created per call and closed on every exit path; an instance
            is used as-is and left open for its owner.
        jobs: Worker width for named parallel backends.
        emit: Structured-event sink (``None`` drops events).
        verb: Past-tense verb for per-unit ``computed`` events.
        noun: Job noun for the batch ``schedule`` event
            (``"verification"``, ``"synthesis"``).
        unit_timeout: Per-unit wall-clock budget (``workers`` only).

    Returns:
        An :class:`ExecOutcome`; ``records`` covers every distinct key.
    """
    note: EmitFn = emit if emit is not None else (lambda event: None)
    outcome = ExecOutcome()
    pending: List[WorkUnit] = []
    seen = set()
    for unit in units:
        key = unit.key()
        if key in seen:
            continue
        seen.add(key)
        cached = cache.get(unit) if cache is not None else None
        if cached is not None:
            outcome.records[key] = dict(cached)
            note(
                ExecEvent(
                    kind="cached", description=unit.describe(), unit_key=key
                )
            )
        else:
            pending.append(unit)

    outcome.computed = len(pending)
    outcome.cached = len(seen) - len(pending)
    if not pending:
        return outcome

    if isinstance(executor, Executor):
        backend, owned = executor, False
    else:
        backend = resolve_executor(executor, jobs, len(pending), unit_timeout)
        owned = True
    backend.emit = note
    if not isinstance(backend, SerialExecutor) and len(pending) > 1:
        note(
            ExecEvent(
                kind="schedule",
                description=noun,
                total=len(pending),
                detail=str(jobs),
            )
        )
    try:
        for result in backend.map(pending):
            unit = result.unit
            key = unit.key()
            index = result.index + 1
            if result.error is not None:
                record = _error_record(result)
                outcome.records[key] = record
                outcome.errors.append(record)
                note(
                    ExecEvent(
                        kind="error",
                        description=unit.describe(),
                        unit_key=key,
                        index=index,
                        total=len(pending),
                        status="error",
                        seconds=result.seconds,
                        attempt=result.attempts,
                        detail=(
                            f"{record['error'].get('type', 'Error')}: "
                            f"{record['error'].get('message', '')}"
                        ),
                    )
                )
                continue
            record = dict(result.record or {})
            outcome.records[key] = record
            outcome.seconds[key] = result.seconds
            if cache is not None:
                cache.put(unit, record)
            note(
                ExecEvent(
                    kind="computed",
                    description=unit.describe(),
                    unit_key=key,
                    index=index,
                    total=len(pending),
                    status=str(record.get("status") or ""),
                    seconds=result.seconds,
                    attempt=result.attempts,
                    verb=verb,
                )
            )
    finally:
        if owned:
            backend.close()
    return outcome
