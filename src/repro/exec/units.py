"""Work units: the one currency every executor backend trades in.

A *work unit* is the smallest schedulable piece of a campaign — one
synthesis job, one verification spec, one fault scenario.  The
:class:`WorkUnit` protocol pins down what the execution lifecycle needs
from it:

* ``key()`` — a content-addressed identity used for dedupe and result
  caching (the spec families already provide this, keyed on the schema
  tag + package version + payload).
* ``schema_kind`` — which ``repro.schema`` message type the unit's
  records are packed under ("record", "verify", "fault").
* ``describe()`` — the human-oriented label progress events carry.
* ``run()`` — compute the record.  Units must be **picklable** so the
  pool and persistent-worker backends can ship them to worker
  processes; :class:`SpecUnit` achieves this by holding a module-level
  compute function (pickled by qualified name) next to a frozen spec.

:class:`SpecUnit` adapts every existing spec family
(:class:`~repro.eval.engine.SynthesisJob`,
:class:`~repro.verify.campaign.VerificationSpec`,
:class:`~repro.faults.campaign.FaultSpec` — fuzz and soak units wrap
``VerificationSpec``) without those families learning anything about
execution.  :class:`CallableUnit` wraps an arbitrary in-process
closure for serial-only callers (the perf harness, whose workloads
close over live objects and cannot cross a process boundary).
:class:`ProbeUnit` is a deliberately trivial picklable unit used by the
executor tests and the ``exec-overhead-smoke`` benchmark to measure
pure scheduling cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Protocol, runtime_checkable

from ..schema import content_key

__all__ = ["WorkUnit", "SpecUnit", "CallableUnit", "ProbeUnit", "spec_units"]


@runtime_checkable
class WorkUnit(Protocol):
    """Protocol every executor-schedulable unit satisfies."""

    @property
    def schema_kind(self) -> str:
        """``repro.schema`` message kind the unit's records ride."""

    def key(self) -> str:
        """Content-addressed identity (dedupe + cache addressing)."""

    def describe(self) -> str:
        """Human-oriented label for progress events."""

    def run(self) -> Dict[str, object]:
        """Compute the unit's record (called inside a worker process)."""


@dataclass(frozen=True)
class SpecUnit:
    """Adapter lifting one campaign spec into the :class:`WorkUnit` shape.

    Attributes:
        spec: Any frozen spec exposing ``key()`` and ``schema_kind``
            (``SynthesisJob``, ``VerificationSpec``, ``FaultSpec``).
        compute: **Module-level** function ``spec -> record``; pickled by
            qualified name, so lambdas and closures are rejected by the
            pool/worker backends exactly as they would be today.
        description: Pre-rendered progress label (campaign paths decorate
            specs with flow-variant context the spec itself lacks).
    """

    spec: Any
    compute: Callable[[Any], Dict[str, object]]
    description: str = ""

    @property
    def schema_kind(self) -> str:
        return getattr(self.spec, "schema_kind", "record")

    def key(self) -> str:
        return self.spec.key()

    def describe(self) -> str:
        return self.description or str(self.spec)

    def run(self) -> Dict[str, object]:
        return self.compute(self.spec)


def spec_units(specs, compute, describe) -> list:
    """Wrap a spec sequence as :class:`SpecUnit`\\ s in one call.

    Args:
        specs: Iterable of campaign specs.
        compute: Module-level ``spec -> record`` function shared by all.
        describe: ``spec -> str`` labeller (may be a lambda; it runs in
            the parent process only, the description travels as a plain
            string).
    """
    return [SpecUnit(spec=s, compute=compute, description=describe(s)) for s in specs]


@dataclass(frozen=True)
class CallableUnit:
    """In-process unit around an arbitrary zero-argument callable.

    Only valid with :class:`~repro.exec.executors.SerialExecutor` — the
    callable is typically a closure over live objects (perf-harness
    workloads) and cannot be pickled to another process.
    """

    name: str
    fn: Callable[[], Any]
    kind: str = "record"

    @property
    def schema_kind(self) -> str:
        return self.kind

    def key(self) -> str:
        return content_key({"callable-unit": self.name})

    def describe(self) -> str:
        return self.name

    def run(self) -> Any:
        return self.fn()


def _probe_compute(payload: Dict[str, object]) -> Dict[str, object]:
    """Deterministic toy workload: fold the payload into a checksum.

    The record carries the fields the ``record`` message type requires
    (circuit/scale/flow), so probe results are cacheable like any real
    synthesis record.
    """
    total = 0
    for _ in range(int(payload.get("spin", 0))):
        total = (total * 31 + 7) % 1_000_003
    return {
        "status": "ok",
        "index": payload.get("index"),
        "checksum": total,
        "circuit": f"probe{payload.get('index')}",
        "scale": "quick",
        "flow": [],
    }


@dataclass(frozen=True)
class ProbeUnit:
    """Trivial picklable unit for overhead benchmarks and executor tests.

    ``spin`` busy-loops a deterministic counter so tests can give units
    nonzero (but tiny) cost; the record depends only on the payload, so
    every backend produces identical results.
    """

    index: int
    spin: int = 0
    payload: Dict[str, object] = field(default_factory=dict)

    @property
    def schema_kind(self) -> str:
        return "record"

    def key(self) -> str:
        return content_key(
            {"probe-unit": self.index, "spin": self.spin, "payload": self.payload}
        )

    def describe(self) -> str:
        return f"probe#{self.index}"

    def run(self) -> Dict[str, object]:
        return _probe_compute({"index": self.index, "spin": self.spin, **self.payload})
