"""Fault injection and robustness analysis for xSFQ pulse simulation.

The paper's synthesis flow is only as credible as its timing slack:
xSFQ logic encodes bits as *pulse presence within a synchronous phase
window*, so a dropped pulse, a spurious echo, late arrival jitter, or
skew between the excite and relax phases each translate directly into
decoded-value corruption.  This subpackage measures that robustness:

* :mod:`repro.faults.models` — :class:`FaultModel`, the seeded,
  PYTHONHASHSEED-stable perturbation hooked into the event loop of
  :class:`repro.sim.pulse.PulseSimulator` (drop / dup / jitter) and the
  stimulus builder of
  :class:`repro.sim.pulse.BatchedNetlistSimulator` (skew);
* :mod:`repro.faults.scenario` — :class:`FaultScenario`, the canonical
  ``fault:<kind>:<k=v,...>:s<seed>`` identity grammar (the ``gen:``
  analogue for faults);
* :mod:`repro.faults.margin` — deterministic bisection for the largest
  tolerated fault magnitude;
* :mod:`repro.faults.campaign` — :class:`FaultSpec` /
  :class:`FaultCampaign` / :class:`FaultReport`, scheduled by
  :meth:`repro.eval.runner.Runner.faults` and surfaced as the
  ``repro faults`` CLI subcommand with a ``repro-faults/1`` JSON
  report.

Everything is deterministic end to end: same campaign, same seeds —
byte-identical injections, margins, and report documents, across
processes and ``PYTHONHASHSEED`` values.
"""

from .campaign import (
    DEFAULT_FAULT_FLOWS,
    DEFAULT_FAULT_KINDS,
    FAULTS_SCHEMA,
    FaultCampaign,
    FaultReport,
    FaultSpec,
    FaultUnit,
    fault_record,
    load_fault_report,
    render_fault_table,
    timed_fault_record,
)
from .margin import MARGIN_ITERATIONS, MarginResult, search_margin
from .models import DUP_SPACING, FaultModel, stream_seed
from .scenario import (
    FAULT_KINDS,
    FAULT_PREFIX,
    FaultKind,
    FaultScenario,
    default_scenario,
    fault_kind,
    fault_kind_names,
    is_fault_name,
    parse_fault_name,
)

__all__ = [
    "DEFAULT_FAULT_FLOWS",
    "DEFAULT_FAULT_KINDS",
    "DUP_SPACING",
    "FAULTS_SCHEMA",
    "FAULT_KINDS",
    "FAULT_PREFIX",
    "FaultCampaign",
    "FaultKind",
    "FaultModel",
    "FaultReport",
    "FaultScenario",
    "FaultSpec",
    "FaultUnit",
    "MARGIN_ITERATIONS",
    "MarginResult",
    "default_scenario",
    "fault_kind",
    "fault_kind_names",
    "fault_record",
    "is_fault_name",
    "load_fault_report",
    "parse_fault_name",
    "render_fault_table",
    "search_margin",
    "stream_seed",
    "timed_fault_record",
]
