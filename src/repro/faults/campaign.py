"""Fault-injection campaigns on the eval execution engine.

A :class:`FaultSpec` is the fault analogue of
:class:`repro.verify.campaign.VerificationSpec`: a declarative,
picklable unit — circuit, scale, canonical flow signature, canonical
fault-scenario name, stimulus identity, and whether to sweep the margin
— whose content-addressed :meth:`~FaultSpec.key` lets verdict records
ride the shared :class:`repro.eval.engine.ResultCache` and the
``multiprocessing`` scheduler of
:meth:`repro.eval.runner.Runner.faults` unchanged.

:func:`fault_record` is the worker-process entry point.  Per unit it:

1. synthesises the circuit under the spec's flow (stage cache reused);
2. verifies the mapped netlist *nominally* — with a zero-magnitude
   fault model installed, so the injection code path itself is under
   test — against the source network; a circuit that is not EQUIVALENT
   nominally is reported as ``nominal-miscompare`` (a real synthesis
   bug) or ``skipped`` and never blamed on the injected fault;
3. either injects the scenario at its fixed magnitude (status
   ``tolerated`` / ``miscompare``, with injection counts, the
   counterexample and the first divergence net), or binary-searches the
   robustness margin (:mod:`repro.faults.margin`) — the largest
   magnitude before the first miscompare — capped at 1.0 for rate
   faults and half the synchronous phase period for timing faults.

Records carry **no wall-clock fields**: two runs of the same campaign
(same seeds, same circuits) emit byte-identical ``repro-faults/1``
reports, which is an acceptance criterion pinned by ``tests/faults``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..circuits import build as build_circuit
from ..circuits import info as circuit_info
from ..circuits import names as circuit_names
from ..core import Flow, get_stage_cache
from ..core.report import format_table
from ..core.flowgraph import flow_variant
from ..schema import content_key, load_document, pack, schema_tag
from ..sim.pulse import suggest_phase_period
from ..verify.campaign import StageSignature, _cell_counts
from ..verify.equivalence import verify_result
from .margin import MarginResult, search_margin
from .scenario import FaultScenario, default_scenario, fault_kind, parse_fault_name

__all__ = [
    "DEFAULT_FAULT_FLOWS",
    "DEFAULT_FAULT_KINDS",
    "FAULTS_SCHEMA",
    "FaultCampaign",
    "FaultReport",
    "FaultSpec",
    "FaultUnit",
    "fault_record",
    "load_fault_report",
    "render_fault_table",
    "timed_fault_record",
]

#: Schema tag of the ``repro faults --report`` JSON document (the
#: ``faults`` kind of the ``repro.schema`` registry).
FAULTS_SCHEMA = schema_tag("faults")

#: Current version of the ``repro-fault/<N>`` record message type.
#: 2: records are stamped with the ``repro.schema`` envelope on disk
#: (untagged v1 documents still load, via migration).
FAULT_RECORD_SCHEMA = 2

#: Kinds a campaign injects when the caller does not choose: the two
#: timing aspects, whose margins are the headline robustness numbers.
DEFAULT_FAULT_KINDS: Tuple[str, ...] = ("jitter", "skew")

#: Flow variants a campaign crosses circuits with by default.
DEFAULT_FAULT_FLOWS: Tuple[str, ...] = ("default",)


def _package_version() -> str:
    from .. import __version__

    return __version__


@dataclass(frozen=True)
class FaultSpec:
    """One schedulable, cacheable fault-injection unit.

    Attributes:
        circuit: Name from :mod:`repro.circuits.registry` (``gen:``
            names resolve through the registry fallback like everywhere
            else).
        scenario: Canonical ``fault:<kind>:<k=v,...>:s<seed>`` name.
        scale: ``"quick"`` or ``"paper"`` circuit dimensions.
        stages: Canonical flow signature of the synthesis under test.
        patterns: Stimulus pattern budget.
        stimulus_seed: Stimulus-suite seed (independent of the fault seed).
        sequence_length: Cycles per trajectory (sequential circuits).
        margin: Sweep the robustness margin instead of injecting the
            scenario's fixed magnitude.
    """

    #: Message kind this spec's records are stored under (see ``repro.schema``).
    schema_kind: ClassVar[str] = "fault"

    circuit: str
    scenario: str
    scale: str = "quick"
    stages: StageSignature = ()
    patterns: int = 64
    stimulus_seed: int = 0
    sequence_length: int = 8
    margin: bool = False

    @classmethod
    def create(
        cls,
        circuit: str,
        scenario: Union[FaultScenario, str],
        scale: str = "quick",
        flow: Optional[Flow] = None,
        patterns: int = 64,
        stimulus_seed: int = 0,
        sequence_length: int = 8,
        margin: bool = False,
    ) -> "FaultSpec":
        if isinstance(scenario, FaultScenario):
            name = scenario.name()
        else:
            name = parse_fault_name(str(scenario)).name()  # validate + canonicalise
        flow = flow if flow is not None else Flow.default()
        return cls(
            circuit=circuit,
            scenario=name,
            scale=scale,
            stages=flow.signature(),
            patterns=int(patterns),
            stimulus_seed=int(stimulus_seed),
            sequence_length=int(sequence_length),
            margin=bool(margin),
        )

    def flow(self) -> Flow:
        """Reconstruct the runnable flow this spec stresses."""
        return Flow.from_signature(self.stages) if self.stages else Flow.default()

    def scenario_spec(self) -> FaultScenario:
        return parse_fault_name(self.scenario)

    def key(self) -> str:
        """Content-addressed cache key: flow + scenario + stimulus identity.

        Canonicalised through :func:`repro.schema.content_key` — no
        ``default=str`` escape hatch, so a non-JSON-native value in the
        flow signature raises instead of destabilising the key.
        """
        payload = {
            "schema": schema_tag(self.schema_kind),
            "version": _package_version(),
            "circuit": self.circuit,
            "scale": self.scale,
            "flow": self.stages or Flow.default().signature(),
            "scenario": self.scenario,
            "patterns": self.patterns,
            "stimulus_seed": self.stimulus_seed,
            "sequence_length": self.sequence_length,
            "margin": self.margin,
        }
        return content_key(payload)

    def label(self) -> str:
        suffix = " margin" if self.margin else ""
        return f"{self.circuit}@{self.scale} {self.scenario}{suffix}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "scenario": self.scenario,
            "scale": self.scale,
            "flow": [[name, dict(options)] for name, options in self.stages],
            "patterns": self.patterns,
            "stimulus_seed": self.stimulus_seed,
            "sequence_length": self.sequence_length,
            "margin": self.margin,
        }


def fault_record(spec: FaultSpec) -> Dict[str, object]:
    """Worker-process entry: synthesise, inject, flatten to a JSON record."""
    info = circuit_info(spec.circuit)
    network = build_circuit(spec.circuit, spec.scale)
    result = spec.flow().run(network, stage_cache=get_stage_cache())
    scenario = spec.scenario_spec()
    record: Dict[str, object] = {
        "circuit": spec.circuit,
        "scale": spec.scale,
        "kind": info.kind,
        "suite": info.suite,
        "scenario": spec.scenario,
        "fault_kind": scenario.kind,
        "fault_seed": scenario.seed,
        "magnitude": scenario.magnitude,
        "requested_patterns": spec.patterns,
        "stimulus_seed": spec.stimulus_seed,
        "sequence_length": spec.sequence_length,
        "flow": [[name, dict(options)] for name, options in spec.stages],
        "margin_search": spec.margin,
        "cell_counts": _cell_counts(result),
        "margin": None,
        "counterexample": None,
        "first_divergence_net": None,
        "reason": "",
    }

    def check(magnitude: float):
        model = scenario.with_magnitude(magnitude).model()
        verdict = verify_result(
            result,
            golden=network,
            patterns=spec.patterns,
            seed=spec.stimulus_seed,
            sequence_length=spec.sequence_length,
            fault_model=model,
        )
        return verdict, model

    # Nominal gate: margins and miscompares only mean something on a
    # mapping that is equivalent fault-free.  The zero-magnitude model
    # keeps the injection hooks on this path too (no-op guarantee).
    nominal, _ = check(0.0)
    record["mode"] = nominal.mode
    record["patterns"] = nominal.patterns
    if nominal.status != "equivalent":
        if nominal.status == "counterexample":
            record["status"] = "nominal-miscompare"
            cex = nominal.counterexample
            record["counterexample"] = cex.to_dict() if cex else None
            record["first_divergence_net"] = nominal.first_divergence_net
        else:
            record["status"] = "skipped"
            record["reason"] = nominal.reason
        record["injections"] = {"drop": 0, "dup": 0, "jitter": 0}
        return record

    if spec.margin:
        injections = {"drop": 0, "dup": 0, "jitter": 0}
        cap = (
            1.0
            if scenario.info().rate_like
            else suggest_phase_period(result.netlist) / 2.0
        )

        def tolerated(magnitude: float) -> bool:
            verdict, model = check(magnitude)
            for aspect, count in model.totals.items():
                injections[aspect] += count
            return verdict.status == "equivalent"

        found: MarginResult = search_margin(tolerated, cap, kind=scenario.kind)
        record.update(found.to_dict())
        record["status"] = "tolerated"
        record["injections"] = injections
        return record

    verdict, model = check(scenario.magnitude)
    record["patterns"] = verdict.patterns
    record["injections"] = model.injection_counts()
    if verdict.status == "equivalent":
        record["status"] = "tolerated"
    elif verdict.status == "counterexample":
        record["status"] = "miscompare"
        cex = verdict.counterexample
        record["counterexample"] = cex.to_dict() if cex else None
        record["first_divergence_net"] = verdict.first_divergence_net
    else:
        record["status"] = "skipped"
        record["reason"] = verdict.reason
    return record


def timed_fault_record(
    spec: FaultSpec,
) -> Tuple[FaultSpec, Dict[str, object], float]:
    """Record plus the seconds it took to compute.

    Compatibility shim: the runner now schedules bare
    :func:`fault_record` through :mod:`repro.exec`, which times every
    unit itself; this wrapper remains for external callers that used it
    as a pool worker function.
    """
    started = time.perf_counter()
    record = fault_record(spec)
    return spec, record, time.perf_counter() - started


@dataclass(frozen=True)
class FaultUnit:
    """One schedulable ``(circuit, flow variant, scenario)`` triple."""

    flow_name: str
    spec: FaultSpec

    @classmethod
    def create(
        cls,
        circuit: str,
        flow_name: str,
        scenario: Union[FaultScenario, str],
        scale: str = "quick",
        patterns: int = 64,
        stimulus_seed: int = 0,
        sequence_length: int = 8,
        margin: bool = False,
    ) -> "FaultUnit":
        return cls(
            flow_name=flow_name,
            spec=FaultSpec.create(
                circuit,
                scenario,
                scale=scale,
                flow=flow_variant(flow_name),
                patterns=patterns,
                stimulus_seed=stimulus_seed,
                sequence_length=sequence_length,
                margin=margin,
            ),
        )

    def annotate(self, record: Mapping[str, object]) -> Dict[str, object]:
        """The fault record plus this unit's flow-variant name."""
        merged = dict(record)
        merged["flow_variant"] = self.flow_name
        return merged


@dataclass(frozen=True)
class FaultCampaign:
    """Declarative identity of one fault-injection run.

    Attributes:
        circuits: Circuit subset (empty = the whole registry catalog).
        kinds: Fault kinds to inject per circuit.
        flows: Flow-variant names to cross every circuit with.
        seed: Fault-injection seed shared by every scenario.
        scale: Circuit scale.
        patterns: Stimulus budget per verification.
        stimulus_seed: Stimulus-suite seed.
        sequence_length: Cycles per trajectory for sequential circuits.
        margin: Sweep robustness margins instead of fixed magnitudes.
        magnitudes: Per-kind ``(kind, value)`` overrides of the default
            injected rate/magnitude.
    """

    circuits: Tuple[str, ...] = ()
    kinds: Tuple[str, ...] = DEFAULT_FAULT_KINDS
    flows: Tuple[str, ...] = DEFAULT_FAULT_FLOWS
    seed: int = 0
    scale: str = "quick"
    patterns: int = 64
    stimulus_seed: int = 0
    sequence_length: int = 8
    margin: bool = False
    magnitudes: Tuple[Tuple[str, float], ...] = ()

    def scenarios(self) -> List[FaultScenario]:
        """One scenario per selected kind, at default or overridden magnitude."""
        overrides = dict(self.magnitudes)
        for kind in overrides:
            fault_kind(kind)  # raise early on unknown override keys
        return [
            default_scenario(kind, seed=self.seed, magnitude=overrides.get(kind))
            for kind in self.kinds
        ]

    def units(self) -> List[FaultUnit]:
        """Every ``(circuit, scenario, flow)`` triple, circuit-major order."""
        names = list(self.circuits) if self.circuits else circuit_names()
        return [
            FaultUnit.create(
                circuit,
                flow_name,
                scenario,
                scale=self.scale,
                patterns=self.patterns,
                stimulus_seed=self.stimulus_seed,
                sequence_length=self.sequence_length,
                margin=self.margin,
            )
            for circuit in names
            for scenario in self.scenarios()
            for flow_name in self.flows
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuits": list(self.circuits),
            "kinds": list(self.kinds),
            "flows": list(self.flows),
            "seed": self.seed,
            "scale": self.scale,
            "patterns": self.patterns,
            "stimulus_seed": self.stimulus_seed,
            "sequence_length": self.sequence_length,
            "margin": self.margin,
            "magnitudes": [list(pair) for pair in self.magnitudes],
        }


@dataclass
class FaultReport:
    """Everything one fault campaign produced.

    Attributes:
        campaign: The campaign identity that was run.
        records: One annotated record per unit, in unit order.
        jobs: Worker-pool width.
        computed: Units computed this run (cache misses).
        cached: Units replayed from the result cache.
        elapsed_s: Wall clock for the whole campaign.  Deliberately
            **not** part of :meth:`to_dict`: the emitted report must be
            byte-identical across reruns of the same campaign.
    """

    campaign: FaultCampaign
    records: List[Dict[str, object]] = field(default_factory=list)
    jobs: int = 1
    computed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0

    @property
    def failures(self) -> List[Dict[str, object]]:
        """Records whose *nominal* verification failed — real flow bugs.

        A ``miscompare`` under an injected fault is campaign data, not a
        failure: the whole point is measuring where circuits break.
        """
        return [r for r in self.records if r.get("status") == "nominal-miscompare"]

    @property
    def miscompares(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "miscompare"]

    def margins(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("margin") is not None]

    def table(self) -> str:
        return render_fault_table(self.records)

    def summary(self) -> Dict[str, object]:
        margins = self.margins()
        return {
            "units": len(self.records),
            "circuits": len({r.get("circuit") for r in self.records}),
            "tolerated": sum(1 for r in self.records if r.get("status") == "tolerated"),
            "miscompares": len(self.miscompares),
            "nominal_miscompares": len(self.failures),
            "skipped": sum(1 for r in self.records if r.get("status") == "skipped"),
            "margins_found": len(margins),
            "margins_saturated": sum(1 for r in margins if r.get("margin_saturated")),
            "margins_positive": sum(
                1 for r in margins if float(r.get("margin") or 0.0) > 0.0
            ),
            "total_injections": sum(
                int(count)
                for r in self.records
                for count in (r.get("injections") or {}).values()
            ),
            "all_nominal_equivalent": not self.failures,
        }

    def coverage(self):
        """Fold the campaign into a :class:`repro.cov.CoverageMap`.

        Hits the ``fault`` feature group (flow x fault-kind x verdict)
        so robustness campaigns land in the same coverage algebra as
        fuzzing; see :func:`repro.cov.features.fault_features`.
        """
        from ..cov import CoverageMap
        from ..cov.features import fault_features, unit_digest

        coverage = CoverageMap()
        for record in self.records:
            flow = str(record.get("flow_variant") or "default")
            token = f"{record.get('circuit')}|{record.get('scenario')}"
            coverage.add(fault_features(flow, record), unit_digest(token, flow))
        return coverage

    def to_dict(self) -> Dict[str, object]:
        """The schema-versioned ``repro-faults/1`` report document.

        Every field is a pure function of the campaign identity — no
        wall-clock, no worker counts, no cache statistics — so two runs
        of the same campaign serialise byte-identically.  The envelope
        tag is stamped (and the payload validated) by
        :func:`repro.schema.pack`.
        """
        return pack(
            "faults",
            {
                "campaign": self.campaign.to_dict(),
                "rows": self.records,
                "text": self.table(),
                "summary": self.summary(),
            },
        )


def load_fault_report(path: Path) -> Dict[str, object]:
    """Load (and schema-check) a saved ``repro faults --report`` document.

    Returns the validated payload — ``campaign``, ``rows``, ``text``,
    ``summary`` — with the envelope tag stripped.  Raises
    :class:`repro.schema.SchemaError` (a ``ValueError``) on a foreign or
    unmigratable document.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return load_document(document, "faults", source=str(path))


def _margin_cell(record: Mapping[str, object]) -> str:
    margin = record.get("margin")
    if margin is None:
        return "-"
    unit = "" if str(record.get("fault_kind")) in ("drop", "dup") else " ps"
    suffix = "+" if record.get("margin_saturated") else ""
    return f"{float(margin):.3f}{unit}{suffix}"


def _detail_cell(record: Mapping[str, object]) -> str:
    status = str(record.get("status") or "")
    if status in ("miscompare", "nominal-miscompare"):
        cex = record.get("counterexample") or {}
        net = record.get("first_divergence_net")
        where = f"pattern {cex.get('pattern')}" if cex else "unknown pattern"
        out = (
            f"{cex.get('output')}: expected {cex.get('expected')}, "
            f"got {cex.get('observed')}"
            if cex
            else ""
        )
        suffix = f"; first divergence at net {net!r}" if net else ""
        return f"{where}, {out}{suffix}"
    if status == "skipped":
        return str(record.get("reason") or "skipped")
    injections = record.get("injections") or {}
    total = sum(int(v) for v in injections.values())
    if record.get("margin") is not None:
        probes = len(record.get("margin_probes") or ())
        cap = float(record.get("margin_cap") or 0.0)
        return f"{probes} probes, cap {cap:.1f}, {total} injections"
    return f"{total} injections ({record.get('mode')})"


def render_fault_table(records: Sequence[Mapping[str, object]]) -> str:
    """The ``repro faults`` summary/margin table."""
    rows = [
        [
            record.get("circuit", "?"),
            record.get("kind", "?"),
            record.get("flow_variant", "default"),
            record.get("fault_kind", "?"),
            str(record.get("status", "?")).upper(),
            int(record.get("patterns") or 0),
            _margin_cell(record),
            _detail_cell(record),
        ]
        for record in records
    ]
    return format_table(
        ["Circuit", "Kind", "Flow", "Fault", "Status", "Patterns", "Margin", "Detail"],
        rows,
    )
