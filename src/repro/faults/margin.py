"""Robustness-margin search: the largest tolerated fault magnitude.

The *margin* of a circuit under a fault kind is the largest swept
parameter value (jitter/skew magnitude in picoseconds, drop/dup rate as
a probability) at which pulse-level simulation still decodes outputs
equivalent to golden AIG simulation.  Tolerance is monotone in practice
— a larger perturbation superset of a failing one keeps failing — so a
plain bisection over ``[0, cap]`` localises the threshold in a fixed,
deterministic number of probes.

The search is a pure function of its probe oracle: it never reads
clocks or global state, every probe magnitude is derived from ``cap``
by halving, and the probe sequence is recorded in the result — so two
runs of the same campaign produce byte-identical margin records.

The caller establishes the two anchors: magnitude ``0`` must already be
known tolerated (the campaign's nominal gate), and the first probe here
is ``cap`` itself — when even the cap is tolerated the margin saturates
and the bisection is skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["MARGIN_ITERATIONS", "MarginResult", "search_margin"]

#: Bisection steps after the cap probe: resolution = cap / 2**iterations.
MARGIN_ITERATIONS = 8


@dataclass(frozen=True)
class MarginResult:
    """Outcome of one margin search.

    Attributes:
        kind: Fault kind searched (carried through for reporting).
        margin: Largest probed magnitude that was tolerated.
        cap: Upper bound of the search interval.
        saturated: True when ``cap`` itself was tolerated — the real
            margin lies at or beyond the cap.
        probes: The exact ``(magnitude, tolerated)`` sequence, in probe
            order (replayable, and a determinism witness).
    """

    kind: str
    margin: float
    cap: float
    saturated: bool
    probes: Tuple[Tuple[float, bool], ...]

    def to_dict(self) -> Dict[str, object]:
        """Flat record fields, prefixed to merge into a campaign record."""
        return {
            "margin": self.margin,
            "margin_cap": self.cap,
            "margin_saturated": self.saturated,
            "margin_probes": [[magnitude, ok] for magnitude, ok in self.probes],
        }


def search_margin(
    tolerated: Callable[[float], bool],
    cap: float,
    iterations: int = MARGIN_ITERATIONS,
    kind: str = "",
) -> MarginResult:
    """Bisect the tolerance threshold of ``tolerated`` over ``[0, cap]``.

    Args:
        tolerated: Probe oracle — True when the circuit still verifies
            EQUIVALENT with the fault injected at the given magnitude.
            Magnitude ``0`` is assumed tolerated (the caller's nominal
            gate) and is never probed here.
        cap: Largest physically meaningful magnitude (1.0 for rates,
            half a phase period for timing faults).
        iterations: Bisection steps after the initial cap probe.
        kind: Fault kind, carried into the result for reporting.
    """
    if cap <= 0.0:
        raise ValueError(f"margin search needs a positive cap, got {cap!r}")
    probes = []

    def probe(magnitude: float) -> bool:
        ok = bool(tolerated(magnitude))
        probes.append((magnitude, ok))
        return ok

    if probe(cap):
        return MarginResult(kind, cap, cap, True, tuple(probes))
    lo, hi = 0.0, cap
    for _ in range(max(1, int(iterations))):
        mid = (lo + hi) / 2.0
        if probe(mid):
            lo = mid
        else:
            hi = mid
    return MarginResult(kind, lo, cap, False, tuple(probes))
