"""Deterministic, seeded pulse-level fault models.

A :class:`FaultModel` perturbs the emissions of the event-driven pulse
simulator (:class:`repro.sim.pulse.PulseSimulator`): each time a cell
emits an output pulse, the installed model decides — per output net —
whether the pulse is dropped, duplicated, and/or shifted by a bounded
uniform delay offset.  A fourth aspect, clock ``skew``, is not applied
here at all: it shifts the *stimulus* (relax-phase input waves and
relax-phase clock pulses) and is consumed by
:class:`repro.sim.pulse.BatchedNetlistSimulator` when it builds the
drive schedule.

Determinism contract (the whole point of the subsystem):

* every net owns an independent ``random.Random`` stream seeded from
  ``sha256(f"{seed}|{net_name}")`` — a pure function of the model seed
  and the net *name*, never of Python's per-process string hash, so two
  processes with different ``PYTHONHASHSEED`` values draw identical
  fault streams;
* streams advance one draw per *active* aspect per emission, in the
  fixed order drop → jitter → dup, so adding an aspect never reshuffles
  another aspect's draws;
* :meth:`reset_streams` rewinds every stream (the pulse simulator calls
  it from :meth:`~repro.sim.pulse.PulseSimulator.reset`), mirroring the
  simulator's own sequence-counter rewind: each sequential trajectory
  replays bit-identical injections;
* a zero-magnitude model draws nothing and returns each emission time
  unchanged, so traces are byte-identical to a fault-free run even
  though the injection code path executes (see ``tests/faults``).

Jittered times are clamped to the causing event's time: an effect
scheduled *behind* its cause would break the monotone-trace invariant
the simulator's sort-free traces and bisect decode windows rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DUP_SPACING", "FaultModel", "stream_seed"]

#: Delay (ps) between a pulse and its duplicated echo.  Short enough to
#: land in the same synchronous phase, long enough to be a distinct event.
DUP_SPACING = 2.0


def stream_seed(seed: int, net: str) -> int:
    """PYTHONHASHSEED-stable RNG seed for one net's fault stream."""
    token = f"{int(seed)}|{net}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


class FaultModel:
    """Seeded perturbation of cell emissions (drop / dup / jitter / skew).

    Attributes:
        drop_rate: Per-emission probability of swallowing the pulse.
        dup_rate: Per-emission probability of an extra echo pulse
            :data:`DUP_SPACING` later.
        jitter: Half-width (ps) of the uniform delay offset added to
            every emission (``0.0`` disables the draw entirely).
        skew: Shift (ps) applied to relax-phase stimulus and clock
            events by :class:`~repro.sim.pulse.BatchedNetlistSimulator`
            (inert inside :meth:`emissions`).
        seed: Master seed deriving every per-net stream.
        totals: Cumulative injection counts per aspect.  Survive
            :meth:`reset_streams`, so a multi-trajectory verification
            reports the whole run's injections.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        jitter: float = 0.0,
        skew: float = 0.0,
        seed: int = 0,
        record_log: bool = False,
    ) -> None:
        for name, value, upper in (
            ("drop_rate", drop_rate, 1.0),
            ("dup_rate", dup_rate, 1.0),
            ("jitter", jitter, None),
            ("skew", skew, None),
        ):
            if value < 0.0 or (upper is not None and value > upper):
                bound = f"[0, {upper}]" if upper is not None else ">= 0"
                raise ValueError(f"{name} must be {bound}, got {value!r}")
        self.drop_rate = float(drop_rate)
        self.dup_rate = float(dup_rate)
        self.jitter = float(jitter)
        self.skew = float(skew)
        self.seed = int(seed)
        self.totals: Dict[str, int] = {"drop": 0, "dup": 0, "jitter": 0}
        self._log: Optional[List[Tuple[str, str, float]]] = [] if record_log else None
        #: Live reference to the simulator's interned net-name list
        #: (grown by the simulator as nets appear); bound lazily.
        self._net_names: Sequence[str] = ()
        self._streams: List[Optional[random.Random]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, net_names: Sequence[str]) -> None:
        """Attach to a simulator's (live) net-id -> name table."""
        self._net_names = net_names
        self._streams = []

    def reset_streams(self) -> None:
        """Rewind every per-net stream (totals and the log persist).

        Called by :meth:`repro.sim.pulse.PulseSimulator.reset` so each
        trajectory of a batched sequential run replays the exact same
        injections — the analogue of the simulator rewinding its event
        sequence counter.
        """
        self._streams = []

    def is_noop(self) -> bool:
        """True when no aspect can perturb anything."""
        return not (self.drop_rate or self.dup_rate or self.jitter or self.skew)

    def clone(self) -> "FaultModel":
        """A fresh, unbound model with the same parameters.

        Divergence localisation re-simulates a whole failing batch on a
        clone so the replay draws the exact stream the original run drew.
        """
        return FaultModel(
            drop_rate=self.drop_rate,
            dup_rate=self.dup_rate,
            jitter=self.jitter,
            skew=self.skew,
            seed=self.seed,
            record_log=self._log is not None,
        )

    def params(self) -> Dict[str, float]:
        return {
            "drop_rate": self.drop_rate,
            "dup_rate": self.dup_rate,
            "jitter": self.jitter,
            "skew": self.skew,
        }

    # ------------------------------------------------------------------
    # Injection (simulator hot path)
    # ------------------------------------------------------------------
    def _stream(self, nid: int) -> random.Random:
        streams = self._streams
        if len(streams) <= nid:
            streams.extend([None] * (nid + 1 - len(streams)))
        rng = random.Random(stream_seed(self.seed, self._net_names[nid]))
        streams[nid] = rng
        return rng

    def emissions(self, nid: int, time: float, now: float) -> Tuple[float, ...]:
        """Perturbed delivery times for one cell emission.

        Args:
            nid: Interned id of the net the pulse is emitted onto.
            time: Nominal emission time.
            now: Time of the causing event; perturbed times are clamped
                to it so effects never precede their cause.

        Returns:
            Zero (dropped), one, or two (duplicated) delivery times.
        """
        streams = self._streams
        rng = streams[nid] if nid < len(streams) else None
        if rng is None:
            rng = self._stream(nid)
        if self.drop_rate and rng.random() < self.drop_rate:
            self.totals["drop"] += 1
            if self._log is not None:
                self._log.append(("drop", self._net_names[nid], time))
            return ()
        out = time
        if self.jitter:
            out = time + (2.0 * rng.random() - 1.0) * self.jitter
            if out < now:
                out = now
            self.totals["jitter"] += 1
            if self._log is not None:
                self._log.append(("jitter", self._net_names[nid], out))
        if self.dup_rate and rng.random() < self.dup_rate:
            self.totals["dup"] += 1
            echo = out + DUP_SPACING
            if self._log is not None:
                self._log.append(("dup", self._net_names[nid], echo))
            return (out, echo)
        return (out,)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def injection_counts(self) -> Dict[str, int]:
        """Copy of the cumulative per-aspect injection counters."""
        return dict(self.totals)

    def injection_log(self) -> List[Tuple[str, str, float]]:
        """Chronological ``(aspect, net, time)`` log (``record_log`` only)."""
        if self._log is None:
            raise ValueError("injection log disabled; build with record_log=True")
        return list(self._log)
