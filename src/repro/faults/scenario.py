"""Fault scenarios as first-class, self-describing names.

A :class:`FaultScenario` is the reproducible identity of one injected
fault configuration, mirroring :class:`repro.gen.spec.GenSpec` for
generated circuits.  Its canonical :meth:`~FaultScenario.name` encodes
the full identity in a single parseable token::

    fault:jitter:mag=2.0:s0
    fault:drop:rate=0.01:s7

so a scenario printed anywhere (a campaign table, a CI log) replays
anywhere: :func:`parse_fault_name` rebuilds the exact
:class:`~repro.faults.models.FaultModel`, and the name is part of the
content-addressed cache key of every
:class:`~repro.faults.campaign.FaultSpec`.

Each *kind* perturbs one aspect of the pulse protocol and owns exactly
one parameter — a probability (``rate``) for the discrete aspects, a
magnitude in picoseconds (``mag``) for the timing aspects — which is
what the margin search (:mod:`repro.faults.margin`) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .models import FaultModel

__all__ = [
    "FAULT_KINDS",
    "FAULT_PREFIX",
    "FaultKind",
    "FaultScenario",
    "default_scenario",
    "fault_kind",
    "fault_kind_names",
    "is_fault_name",
    "parse_fault_name",
]

#: Canonical name prefix of fault scenarios.
FAULT_PREFIX = "fault:"


@dataclass(frozen=True)
class FaultKind:
    """Registry row describing one injectable fault aspect.

    Attributes:
        name: The kind key (``drop`` / ``dup`` / ``jitter`` / ``skew``).
        param: The single swept parameter (``rate`` or ``mag``).
        default: Parameter value used when the caller does not choose.
        unit: Human unit of the parameter (``"ps"`` or ``""``).
        rate_like: True when the parameter is a probability in [0, 1]
            (its margin-search cap); timing magnitudes are capped at
            half the circuit's synchronous phase period instead.
        description: One-line human explanation.
    """

    name: str
    param: str
    default: float
    unit: str
    rate_like: bool
    description: str


FAULT_KINDS: Dict[str, FaultKind] = {
    "drop": FaultKind(
        "drop", "rate", 0.01, "", True,
        "swallow each cell emission with per-net probability <rate>",
    ),
    "dup": FaultKind(
        "dup", "rate", 0.01, "", True,
        "echo each cell emission 2 ps later with probability <rate>",
    ),
    "jitter": FaultKind(
        "jitter", "mag", 2.0, "ps", False,
        "uniform delay offset in [-mag, +mag] ps on every cell emission",
    ),
    "skew": FaultKind(
        "skew", "mag", 5.0, "ps", False,
        "shift every relax-phase stimulus/clock event by +mag ps",
    ),
}


def fault_kind_names() -> List[str]:
    return sorted(FAULT_KINDS)


def fault_kind(name: str) -> FaultKind:
    info = FAULT_KINDS.get(name)
    if info is None:
        raise ValueError(
            f"unknown fault kind {name!r}; known: {', '.join(fault_kind_names())}"
        )
    return info


@dataclass(frozen=True)
class FaultScenario:
    """The reproducible identity of one fault configuration.

    Attributes:
        kind: Key into :data:`FAULT_KINDS`.
        params: Sorted ``(key, value)`` pairs — always the kind's full
            (single-entry) parameter namespace, values stored as floats
            so equal scenarios are equal dataclasses.
        seed: Seed of every per-net injection stream.
    """

    kind: str
    params: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0

    @classmethod
    def create(cls, kind: str, seed: int = 0, **params: float) -> "FaultScenario":
        """Build a scenario, validating parameters against the kind."""
        info = fault_kind(kind)
        values: Dict[str, float] = {info.param: float(info.default)}
        unknown = set(params) - set(values)
        if unknown:
            raise ValueError(
                f"fault kind {kind!r} has no parameter(s) {sorted(unknown)}; "
                f"valid: {sorted(values)}"
            )
        for key, value in params.items():
            values[key] = float(value)
        magnitude = values[info.param]
        if magnitude < 0.0 or (info.rate_like and magnitude > 1.0):
            bound = "[0, 1]" if info.rate_like else ">= 0"
            raise ValueError(
                f"fault {kind!r} parameter {info.param!r} must be {bound}, "
                f"got {magnitude!r}"
            )
        return cls(kind=kind, params=tuple(sorted(values.items())), seed=int(seed))

    def info(self) -> FaultKind:
        return fault_kind(self.kind)

    @property
    def magnitude(self) -> float:
        """The swept parameter's value (rate or picosecond magnitude)."""
        return dict(self.params)[self.info().param]

    def with_magnitude(self, magnitude: float) -> "FaultScenario":
        """The same scenario at a different rate/magnitude (margin probes)."""
        return FaultScenario.create(
            self.kind, seed=self.seed, **{self.info().param: float(magnitude)}
        )

    def name(self) -> str:
        """Canonical self-describing scenario name (see module docstring).

        Floats render via ``repr`` — the shortest round-tripping form —
        so the name is byte-stable across platforms and processes.
        """
        rendered = ",".join(f"{key}={value!r}" for key, value in self.params)
        return f"{FAULT_PREFIX}{self.kind}:{rendered}:s{self.seed}"

    def model(self, record_log: bool = False) -> FaultModel:
        """Instantiate the :class:`FaultModel` this scenario describes."""
        magnitude = self.magnitude
        kwargs: Dict[str, float] = {
            "drop": {"drop_rate": magnitude},
            "dup": {"dup_rate": magnitude},
            "jitter": {"jitter": magnitude},
            "skew": {"skew": magnitude},
        }[self.kind]
        return FaultModel(seed=self.seed, record_log=record_log, **kwargs)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params), "seed": self.seed}


def default_scenario(
    kind: str, seed: int = 0, magnitude: Optional[float] = None
) -> FaultScenario:
    """The kind's scenario at its default (or an overridden) magnitude."""
    info = fault_kind(kind)
    value = info.default if magnitude is None else float(magnitude)
    return FaultScenario.create(kind, seed=seed, **{info.param: value})


def is_fault_name(name: str) -> bool:
    """True when ``name`` uses the fault-scenario grammar."""
    return name.startswith(FAULT_PREFIX)


def parse_fault_name(name: str) -> FaultScenario:
    """Parse a canonical ``fault:<kind>:<k=v,...>:s<seed>`` name back."""
    if not is_fault_name(name):
        raise ValueError(f"{name!r} is not a fault-scenario name ({FAULT_PREFIX}...)")
    parts = name.split(":")
    if len(parts) != 4 or not parts[3].startswith("s"):
        raise ValueError(
            f"malformed fault-scenario name {name!r}; "
            "expected fault:<kind>:<k=v,...>:s<seed>"
        )
    _, kind, rendered, seed_token = parts
    params: Dict[str, float] = {}
    for pair in filter(None, rendered.split(",")):
        key, _, value = pair.partition("=")
        if not key or not value:
            raise ValueError(f"malformed parameter {pair!r} in {name!r}")
        try:
            params[key] = float(value)
        except ValueError:
            raise ValueError(f"malformed parameter {pair!r} in {name!r}") from None
    try:
        seed = int(seed_token[1:])
    except ValueError:
        raise ValueError(f"malformed seed token {seed_token!r} in {name!r}") from None
    return FaultScenario.create(kind, seed=seed, **params)
