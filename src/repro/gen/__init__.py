"""Random-circuit generation and differential fuzzing.

The catalogue in :mod:`repro.circuits` exercises the flow on 37 fixed
benchmarks; this package manufactures **unlimited** new workloads and
turns every flow variant into a property under test:

* :mod:`repro.gen.families` — seeded, parameterised random-circuit
  families (combinational DAGs, arithmetic mutants, Mealy/Moore
  machines), bit-identical across processes from ``(family, params,
  seed)``;
* :mod:`repro.gen.spec` — :class:`GenSpec` triples with a canonical,
  parseable name grammar (``gen:<family>:<k=v,...>:s<seed>``) that the
  circuit registry resolves on the fly, so generated circuits flow
  through the whole eval/verify machinery like catalogued ones;
* :mod:`repro.gen.fuzz` — differential campaigns crossing generated
  circuits with the named flow variants of
  :data:`repro.core.flowgraph.FLOW_VARIANTS`, judged by the
  pulse-accurate equivalence oracle of :mod:`repro.verify`;
* :mod:`repro.gen.shrink` — greedy counterexample shrinking to
  1-minimal failing netlists.

Scheduling: :meth:`repro.eval.runner.Runner.fuzz`.  CLI: ``repro fuzz``.
Documentation: ``docs/fuzzing.md``.
"""

from .families import (
    FAMILIES,
    FamilyInfo,
    arith_mutant,
    family_info,
    random_dag,
    random_fsm,
    register_family,
)
from .spec import (
    GenSpec,
    build_named,
    generate_specs,
    is_gen_name,
    parse_name,
    register_spec,
    resolve,
)
from .shrink import ShrinkResult, shrink_network
from .fuzz import (
    DEFAULT_FLOWS,
    FuzzCampaign,
    FuzzReport,
    FuzzUnit,
    replay_line,
    shrink_unit,
)

__all__ = [
    "FAMILIES",
    "FamilyInfo",
    "arith_mutant",
    "family_info",
    "random_dag",
    "random_fsm",
    "register_family",
    "GenSpec",
    "build_named",
    "generate_specs",
    "is_gen_name",
    "parse_name",
    "register_spec",
    "resolve",
    "ShrinkResult",
    "shrink_network",
    "DEFAULT_FLOWS",
    "FuzzCampaign",
    "FuzzReport",
    "FuzzUnit",
    "replay_line",
    "shrink_unit",
]
