"""Seeded random-circuit families.

Every family is a pure function ``(params..., seed) -> LogicNetwork``
whose output is **bit-identical across processes and platforms** for the
same arguments: the only randomness source is a ``random.Random(seed)``
instance, iteration orders are fixed, and signal names are generated
deterministically.  That property is what lets the fuzzing campaign key
its content-addressed verdict cache on ``(family, params, seed)`` and
replay any failure from the one line the CLI prints.

Three families, mirroring the three circuit kinds the synthesis flow has
to handle:

* :func:`random_dag` — random combinational DAGs over the
  :class:`~repro.netlist.network.LogicNetwork` gate alphabet (AND, NAND,
  OR, NOR, XOR, XNOR, NOT, MUX);
* :func:`arith_mutant` — a ripple-carry adder/comparator slice with a
  configurable number of random *mutations* (gate-type swaps, fanin
  swaps, inverter insertions), probing the arithmetic structures the
  optimiser rewrites most aggressively;
* :func:`random_fsm` — random Mealy/Moore machines with configurable
  state/input/output widths, whose next-state and output logic is a
  random combinational cloud over inputs and present state.

Families are registered in :data:`FAMILIES`; :mod:`repro.gen.spec` turns
``(family, params, seed)`` triples into catalogued circuits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ..netlist.network import GateType, LogicNetwork, NetworkBuilder

__all__ = [
    "FAMILIES",
    "FamilyInfo",
    "arith_mutant",
    "family_info",
    "random_dag",
    "random_fsm",
    "register_family",
]

#: Two-input gate alphabet used by the random cloud builders.
_BINARY_OPS: Tuple[GateType, ...] = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def _random_cloud(
    b: NetworkBuilder,
    rng: random.Random,
    sources: List[str],
    gates: int,
) -> List[str]:
    """Grow ``gates`` random combinational gates over ``sources``.

    Returns the pool of every signal created (sources included), in
    creation order.  Later gates may consume earlier gates, so the cloud
    is a DAG with growing depth; a mild bias towards recent signals keeps
    the logic from degenerating into parallel two-level trees.
    """
    pool = list(sources)

    def pick(exclude: str = "") -> str:
        # Bias towards the most recent quarter of the pool.
        if len(pool) > 4 and rng.random() < 0.5:
            candidates = pool[-max(4, len(pool) // 4):]
        else:
            candidates = pool
        name = rng.choice(candidates)
        if name == exclude and len(pool) > 1:
            others = [p for p in candidates if p != exclude] or [p for p in pool if p != exclude]
            name = rng.choice(others)
        return name

    for _ in range(gates):
        roll = rng.random()
        if roll < 0.10:
            pool.append(b.not_(pick()))
        elif roll < 0.18:
            sel, d0 = pick(), pick()
            d1 = pick(exclude=d0)
            pool.append(b.mux(sel, d0, d1))
        else:
            op = rng.choice(_BINARY_OPS)
            a = pick()
            pool.append(b._gate(op, [a, pick(exclude=a)], None))
    return pool


def _pick_outputs(
    b: NetworkBuilder,
    rng: random.Random,
    pool: List[str],
    num_sources: int,
    outputs: int,
) -> None:
    """Expose ``outputs`` signals as primary outputs named ``o<k>``.

    Prefers the deepest (most recently created) signals so outputs
    exercise real logic cones; falls back to shallow signals only when
    the cloud is smaller than the requested output count.
    """
    created = pool[num_sources:]
    candidates = list(reversed(created)) + list(pool[:num_sources])
    seen = set()
    chosen: List[str] = []
    for name in candidates:
        if name in seen:
            continue
        seen.add(name)
        chosen.append(name)
        if len(chosen) == outputs:
            break
    rng.shuffle(chosen)
    for k, signal in enumerate(chosen):
        b.output(signal, f"o{k}")


def random_dag(
    inputs: int = 6,
    outputs: int = 3,
    gates: int = 24,
    seed: int = 0,
) -> LogicNetwork:
    """Random combinational DAG over the LogicNetwork gate alphabet.

    Args:
        inputs: Primary inputs (named ``i0..``).
        outputs: Primary outputs (named ``o0..``), drawn from the deepest
            signals of the cloud.
        gates: Random gates to grow over the inputs.
        seed: The only randomness source; same arguments, same netlist.
    """
    rng = random.Random(seed)
    b = NetworkBuilder(f"dag{inputs}x{outputs}")
    pis = [b.input(f"i{k}") for k in range(max(1, inputs))]
    pool = _random_cloud(b, rng, pis, max(1, gates))
    _pick_outputs(b, rng, pool, len(pis), max(1, outputs))
    return b.finish()


#: Mutable two-input gate types arith_mutant may swap between.
_SWAP_GROUP: Tuple[GateType, ...] = _BINARY_OPS


def arith_mutant(
    width: int = 4,
    mutations: int = 2,
    seed: int = 0,
) -> LogicNetwork:
    """A ripple-adder/comparator slice with random structural mutations.

    Builds a ``width``-bit ripple-carry adder plus an equality comparator
    over the operands, then applies ``mutations`` random edits: swap a
    two-input gate's type within the AND/OR/XOR group, swap a gate's
    fanin order, or insert an inverter on one fanin.  Mutants are valid
    circuits by construction (the golden oracle is the mutated network
    itself), but their near-arithmetic shape drives the optimiser's
    rewriting passes down unusual paths.
    """
    rng = random.Random(seed)
    b = NetworkBuilder(f"arith{width}")
    a_word = [b.input(f"a{k}") for k in range(max(1, width))]
    b_word = [b.input(f"b{k}") for k in range(max(1, width))]
    cin = b.input("cin")
    sums, carry = b.ripple_adder(a_word, b_word, cin)
    eq_bits = [b.xnor(x, y) for x, y in zip(a_word, b_word)]
    equal = b.and_(*eq_bits) if len(eq_bits) > 1 else eq_bits[0]
    network = b.network

    # Mutate before declaring outputs so inserted inverters stay internal.
    mutable = [
        g.name
        for g in network.gates.values()
        if g.gate_type in _SWAP_GROUP and len(g.fanins) == 2
    ]
    for _ in range(max(0, mutations)):
        if not mutable:
            break
        gate = network.gates[rng.choice(mutable)]
        edit = rng.random()
        if edit < 0.45:
            choices = [t for t in _SWAP_GROUP if t is not gate.gate_type]
            gate.gate_type = rng.choice(choices)
        elif edit < 0.75:
            gate.fanins = [gate.fanins[1], gate.fanins[0]]
        else:
            victim = rng.randrange(2)
            gate.fanins[victim] = b.not_(gate.fanins[victim])

    for k, signal in enumerate(sums):
        b.output(signal, f"o{k}")
    b.output(carry, f"o{len(sums)}")
    b.output(equal, f"o{len(sums) + 1}")
    return b.finish()


def random_fsm(
    state: int = 3,
    inputs: int = 2,
    outputs: int = 2,
    gates: int = 18,
    seed: int = 0,
    moore: bool = False,
) -> LogicNetwork:
    """Random Mealy (default) or Moore machine.

    Args:
        state: Flip-flop count; initial values are random (seeded).
        inputs: Primary inputs.
        outputs: Primary outputs.
        gates: Random gates in the next-state/output cloud.
        seed: The only randomness source.
        moore: When True, outputs are functions of the present state
            only; Mealy outputs may also read the primary inputs.
    """
    rng = random.Random(seed)
    kind = "moore" if moore else "mealy"
    b = NetworkBuilder(f"{kind}{state}s{inputs}i")
    pis = [b.input(f"i{k}") for k in range(max(1, inputs))]
    regs = [
        b.dff(b.const(0), name=f"q{k}", init=rng.randint(0, 1))
        for k in range(max(1, state))
    ]
    pool = _random_cloud(b, rng, pis + regs, max(1, gates))
    created = pool[len(pis) + len(regs):] or pool

    # Next-state: each flip-flop samples a random cloud signal.
    for reg in regs:
        b.network.gates[reg].fanins = [rng.choice(created)]

    if moore:
        # Moore outputs read the state only: a small dedicated cloud.
        moore_pool = _random_cloud(b, rng, list(regs), max(1, outputs))
        source = moore_pool[len(regs):] or list(regs)
    else:
        source = created
    seen = set()
    chosen: List[str] = []
    for name in reversed(source):
        if name not in seen:
            seen.add(name)
            chosen.append(name)
        if len(chosen) == max(1, outputs):
            break
    while len(chosen) < max(1, outputs):
        chosen.append(rng.choice(source))
    for k, signal in enumerate(chosen):
        b.output(signal, f"o{k}")
    return b.finish()


# ---------------------------------------------------------------------------
# Family registry
# ---------------------------------------------------------------------------

FamilyFn = Callable[..., LogicNetwork]


@dataclass(frozen=True)
class FamilyInfo:
    """Registry entry for one random-circuit family.

    Attributes:
        name: Family key (also the middle token of generated names).
        fn: The generator; keyword parameters plus ``seed``.
        kind: ``"combinational"`` or ``"sequential"``.
        defaults: Full parameter namespace with default values (``seed``
            excluded); specs may only override these keys.
        fuzz_ranges: Per-parameter ``(lo, hi)`` inclusive integer ranges
            the campaign generator draws from (booleans are drawn from
            0/1 ranges).
        description: One-line human description.
    """

    name: str
    fn: FamilyFn
    kind: str
    defaults: Tuple[Tuple[str, object], ...]
    fuzz_ranges: Tuple[Tuple[str, Tuple[int, int]], ...]
    description: str = ""


FAMILIES: Dict[str, FamilyInfo] = {}


def register_family(
    name: str,
    fn: FamilyFn,
    kind: str,
    defaults: Mapping[str, object],
    fuzz_ranges: Mapping[str, Tuple[int, int]],
    description: str = "",
) -> FamilyInfo:
    """Register a family (replacing any previous one of the same name)."""
    info = FamilyInfo(
        name=name,
        fn=fn,
        kind=kind,
        defaults=tuple(sorted(defaults.items())),
        fuzz_ranges=tuple(sorted(fuzz_ranges.items())),
        description=description,
    )
    FAMILIES[name] = info
    return info


def family_info(name: str) -> FamilyInfo:
    """Look up a family; raises ``KeyError`` listing the known names."""
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(f"unknown circuit family {name!r}; known: {known}") from None


register_family(
    "dag",
    random_dag,
    "combinational",
    defaults={"inputs": 6, "outputs": 3, "gates": 24},
    fuzz_ranges={"inputs": (3, 8), "outputs": (1, 4), "gates": (6, 40)},
    description="random combinational DAG over the full gate alphabet",
)
register_family(
    "arith",
    arith_mutant,
    "combinational",
    defaults={"width": 4, "mutations": 2},
    fuzz_ranges={"width": (2, 6), "mutations": (0, 5)},
    description="ripple-adder/comparator slice with random mutations",
)
register_family(
    "fsm",
    random_fsm,
    "sequential",
    defaults={"state": 3, "inputs": 2, "outputs": 2, "gates": 18, "moore": False},
    fuzz_ranges={
        "state": (2, 5),
        "inputs": (1, 4),
        "outputs": (1, 3),
        "gates": (6, 28),
        "moore": (0, 1),
    },
    description="random Mealy/Moore machine (seeded next-state/output cloud)",
)
