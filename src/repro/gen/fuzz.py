"""Differential fuzzing campaigns: generated circuits x flow variants.

A :class:`FuzzCampaign` is a pure function of ``(budget, seed, families,
flows)``: it derives ``budget`` generated circuits with
:func:`repro.gen.spec.generate_specs` and crosses each with every
selected flow variant from
:data:`repro.core.flowgraph.FLOW_VARIANTS`, yielding one
:class:`FuzzUnit` per ``(circuit, flow)`` pair.  Each unit *is* a
:class:`~repro.verify.campaign.VerificationSpec` — the pulse-accurate
equivalence oracle from PR 3 judges every pair for free — so campaign
verdicts land in the same content-addressed result cache as ``repro
verify``, workers never recompute a seen pair, and a warm cache replays
a whole campaign in milliseconds.

Failures carry their full identity in the circuit name
(``gen:<family>:<params>:s<seed>``), so the one line the CLI prints
replays anywhere; :func:`shrink_unit` additionally reduces the failing
netlist to a 1-minimal reproducer with
:func:`repro.gen.shrink.shrink_network` (the oracle re-runs the failing
flow variant on every candidate).

Scheduling lives in :meth:`repro.eval.runner.Runner.fuzz`; the CLI
surface is ``repro fuzz`` (see ``docs/fuzzing.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.flowgraph import flow_variant
from ..core.report import format_table
from ..netlist.bench import write_bench
from ..netlist.network import LogicNetwork
from ..verify.campaign import VerificationSpec
from ..verify.equivalence import verify_result
from .shrink import ShrinkResult, shrink_network
from .spec import GenSpec, generate_specs, parse_name

__all__ = [
    "DEFAULT_FLOWS",
    "FuzzCampaign",
    "FuzzReport",
    "FuzzUnit",
    "replay_line",
    "shrink_unit",
]

#: Flow variants a campaign runs when the caller does not choose —
#: the paper's full flow plus the two mapping ablations, covering both
#: polarity strategies and (via "default" vs "no-retime") both
#: sequential storage styles.
DEFAULT_FLOWS: Tuple[str, ...] = ("default", "direct", "no-retime")


@dataclass(frozen=True)
class FuzzUnit:
    """One schedulable ``(generated circuit, flow variant)`` pair."""

    gen: GenSpec
    flow_name: str
    spec: VerificationSpec

    @classmethod
    def create(
        cls,
        gen: GenSpec,
        flow_name: str,
        patterns: int = 64,
        stimulus_seed: int = 0,
        sequence_length: int = 8,
    ) -> "FuzzUnit":
        return cls(
            gen=gen,
            flow_name=flow_name,
            spec=VerificationSpec.create(
                gen.name(),
                flow=flow_variant(flow_name),
                patterns=patterns,
                seed=stimulus_seed,
                sequence_length=sequence_length,
            ),
        )

    def annotate(self, record: Mapping[str, object]) -> Dict[str, object]:
        """The verification record plus this unit's generation metadata."""
        merged = dict(record)
        merged["flow_variant"] = self.flow_name
        merged["family"] = self.gen.family
        merged["gen_params"] = dict(self.gen.params)
        merged["gen_seed"] = self.gen.seed
        return merged


@dataclass(frozen=True)
class FuzzCampaign:
    """Declarative identity of one differential fuzzing run.

    Attributes:
        budget: Circuits to generate.
        seed: Master seed deriving every circuit's ``(params, seed)``.
        families: Family subset (default: every registered family).
        flows: Flow-variant names to cross every circuit with.
        patterns: Stimulus budget per verification.
        sequence_length: Cycles per trajectory for sequential circuits.
        stimulus_seed: Seed of the stimulus suites (independent of the
            circuit-generation master seed).
        steer: Draw circuits with the coverage-steered generator
            (:func:`repro.cov.steer.steered_specs`) instead of the pure
            uniform stream.  Still fully deterministic: the steered
            stream is a pure function of ``(budget, seed, families)``.
    """

    budget: int = 100
    seed: int = 0
    families: Tuple[str, ...] = ()
    flows: Tuple[str, ...] = DEFAULT_FLOWS
    patterns: int = 64
    sequence_length: int = 8
    stimulus_seed: int = 0
    steer: bool = False

    def circuits(self) -> List[GenSpec]:
        """The campaign's generated circuits, in order."""
        if self.steer:
            # Imported lazily: repro.cov feeds on repro.gen at module
            # level, so the dependency must not run both ways at import.
            from ..cov.steer import steered_specs

            return steered_specs(self.budget, self.seed, self.families or None)
        return generate_specs(self.budget, self.seed, self.families or None)

    def units(self) -> List[FuzzUnit]:
        """Every ``(circuit, flow)`` pair, circuit-major order."""
        return [
            FuzzUnit.create(
                gen,
                flow_name,
                patterns=self.patterns,
                stimulus_seed=self.stimulus_seed,
                sequence_length=self.sequence_length,
            )
            for gen in self.circuits()
            for flow_name in self.flows
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "families": list(self.families),
            "flows": list(self.flows),
            "patterns": self.patterns,
            "sequence_length": self.sequence_length,
            "stimulus_seed": self.stimulus_seed,
            "steer": self.steer,
        }


def replay_line(record: Mapping[str, object]) -> str:
    """The one-line reproducer printed for a failing record."""
    return (
        f"{record.get('circuit')} [flow={record.get('flow_variant')}] -- replay: "
        f"repro fuzz --replay '{record.get('circuit')}' "
        f"--flows {record.get('flow_variant')}"
    )


def shrink_unit(
    gen: GenSpec,
    flow_name: str,
    patterns: int = 64,
    stimulus_seed: int = 0,
    sequence_length: int = 8,
    max_attempts: int = 400,
) -> Optional[ShrinkResult]:
    """Minimise a failing ``(circuit, flow)`` pair.

    Rebuilds the circuit from its spec, confirms the failure, then
    greedily shrinks the netlist while the same flow variant still
    produces a counterexample.  Returns ``None`` when the failure does
    not reproduce in-process (e.g. a stale cached verdict).
    """
    network = gen.build()

    def failing(candidate: LogicNetwork) -> bool:
        try:
            result = flow_variant(flow_name).run(candidate, use_stage_cache=False)
            verdict = verify_result(
                result,
                golden=candidate,
                patterns=patterns,
                seed=stimulus_seed,
                sequence_length=sequence_length,
            )
        except Exception:
            # A crash is a different bug than the counterexample being
            # minimised; shrinking must preserve *this* failure.
            return False
        return verdict.status == "counterexample"

    if not failing(network):
        return None
    return shrink_network(network, failing, max_attempts=max_attempts)


@dataclass
class FuzzReport:
    """Everything one campaign produced.

    Attributes:
        campaign: The campaign identity that was run.
        records: One annotated verdict record per ``(circuit, flow)``
            unit, in unit order.
        shrunk: Bench text of each minimised reproducer, keyed by
            ``"<circuit>|<flow>"``, plus the shrink statistics.
        jobs: Worker-pool width.
        computed: Units verified this run (cache misses).
        cached: Units replayed from the result cache.
        elapsed_s: Wall clock for the whole campaign.
    """

    campaign: FuzzCampaign
    records: List[Dict[str, object]] = field(default_factory=list)
    shrunk: Dict[str, Dict[str, object]] = field(default_factory=dict)
    jobs: int = 1
    computed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "counterexample"]

    @property
    def all_equivalent(self) -> bool:
        return not self.failures

    def circuits_verified(self) -> int:
        return len({r.get("circuit") for r in self.records})

    def total_patterns(self) -> int:
        return sum(int(r.get("patterns") or 0) for r in self.records)

    def attach_shrink(self, record: Mapping[str, object], result: ShrinkResult) -> None:
        key = f"{record.get('circuit')}|{record.get('flow_variant')}"
        self.shrunk[key] = {
            **result.to_dict(),
            "bench": write_bench(result.network),
        }

    def table(self) -> str:
        """Aggregate per-(family, flow) summary table."""
        buckets: Dict[Tuple[str, str], Dict[str, int]] = {}
        for record in self.records:
            key = (str(record.get("family")), str(record.get("flow_variant")))
            bucket = buckets.setdefault(
                key, {"circuits": 0, "equivalent": 0, "counterexamples": 0, "skipped": 0, "patterns": 0}
            )
            bucket["circuits"] += 1
            status = str(record.get("status"))
            if status == "equivalent":
                bucket["equivalent"] += 1
            elif status == "counterexample":
                bucket["counterexamples"] += 1
            else:
                bucket["skipped"] += 1
            bucket["patterns"] += int(record.get("patterns") or 0)
        rows = [
            [
                family,
                flow,
                bucket["circuits"],
                bucket["equivalent"],
                bucket["counterexamples"],
                bucket["skipped"],
                bucket["patterns"],
            ]
            for (family, flow), bucket in sorted(buckets.items())
        ]
        return format_table(
            ["Family", "Flow", "Units", "Equiv", "Cex", "Skip", "Patterns"], rows
        )

    def summary(self) -> Dict[str, object]:
        return {
            "circuits": self.circuits_verified(),
            "units": len(self.records),
            "flows": len(self.campaign.flows),
            "equivalent": sum(1 for r in self.records if r.get("status") == "equivalent"),
            "counterexamples": len(self.failures),
            "skipped": sum(1 for r in self.records if r.get("status") == "skipped"),
            "total_patterns": self.total_patterns(),
            "all_equivalent": self.all_equivalent,
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": "fuzz",
            "campaign": self.campaign.to_dict(),
            "jobs": self.jobs,
            "computed": self.computed,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "rows": self.records,
            "shrunk": {k: dict(v) for k, v in self.shrunk.items()},
            "text": self.table(),
            "summary": self.summary(),
        }


def units_for_replay(
    name: str,
    flows: Sequence[str],
    patterns: int = 64,
    stimulus_seed: int = 0,
    sequence_length: int = 8,
) -> List[FuzzUnit]:
    """Units re-verifying one generated circuit (``repro fuzz --replay``)."""
    gen = parse_name(name)
    return [
        FuzzUnit.create(
            gen,
            flow_name,
            patterns=patterns,
            stimulus_seed=stimulus_seed,
            sequence_length=sequence_length,
        )
        for flow_name in flows
    ]
