"""Greedy counterexample shrinking for differential fuzzing failures.

When a generated circuit fails verification under some flow variant, the
raw reproducer can be dozens of gates deep — far more than the bug
needs.  :func:`shrink_network` reduces it with the classic greedy loop:
propose a structural simplification, keep it iff the failure predicate
still holds, repeat until a whole round proposes nothing acceptable.

Reductions, coarsest first:

1. **output restriction** — drop all primary outputs but one (tried for
   each output), then prune the dead cone;
2. **gate bypass** — rewire a gate's consumers to one of its fanins and
   delete the gate (collapses logic depth fast);
3. **gate constancy** — replace a gate with constant 0/1;
4. **input tying** — replace a primary input with constant 0.

Every candidate is validated before the (expensive) predicate runs, so
the oracle only ever sees well-formed networks.  The loop is
deterministic: candidates are proposed in a fixed order, so the same
failure always shrinks to the same minimal reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..netlist.network import Gate, GateType, LogicNetwork

__all__ = ["ShrinkResult", "shrink_network"]

#: Predicate deciding whether a candidate still exhibits the failure.
FailurePredicate = Callable[[LogicNetwork], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrinking run.

    Attributes:
        network: The minimal failing network found.
        initial_gates: Combinational gate count of the input network.
        final_gates: Combinational gate count after shrinking.
        attempts: Candidate reductions proposed.
        accepted: Candidate reductions that preserved the failure.
        log: One line per accepted reduction, in order.
    """

    network: LogicNetwork
    initial_gates: int = 0
    final_gates: int = 0
    attempts: int = 0
    accepted: int = 0
    log: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"shrunk {self.initial_gates} -> {self.final_gates} gates "
            f"({self.accepted}/{self.attempts} reductions accepted)"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "initial_gates": self.initial_gates,
            "final_gates": self.final_gates,
            "attempts": self.attempts,
            "accepted": self.accepted,
            "log": list(self.log),
        }


def _pruned(network: LogicNetwork) -> LogicNetwork:
    """Copy with dead logic removed (keeps the original untouched)."""
    dup = network.copy()
    dup.remove_dangling()
    return dup


def _restrict_outputs(network: LogicNetwork, keep: str) -> LogicNetwork:
    dup = network.copy()
    dup.outputs = [keep]
    dup.remove_dangling()
    return dup


def _bypass_gate(network: LogicNetwork, name: str, replacement: str) -> Optional[LogicNetwork]:
    """Delete gate ``name``, rewiring its consumers to ``replacement``."""
    if replacement == name:
        return None
    dup = network.copy()
    del dup.gates[name]
    for gate in dup.gates.values():
        gate.fanins = [replacement if f == name else f for f in gate.fanins]
    dup.outputs = [replacement if o == name else o for o in dup.outputs]
    dup.remove_dangling()
    return dup


def _constant_gate(network: LogicNetwork, name: str, value: int) -> LogicNetwork:
    dup = network.copy()
    gate = dup.gates[name]
    gate.gate_type = GateType.CONST1 if value else GateType.CONST0
    gate.fanins = []
    dup.remove_dangling()
    return dup


def _tie_input(network: LogicNetwork, name: str) -> Optional[LogicNetwork]:
    if len(network.inputs) <= 1:
        return None  # keep at least one input: stimulus needs a domain
    dup = network.copy()
    dup.gates[name] = Gate(name, GateType.CONST0, [])
    dup.inputs = [pi for pi in dup.inputs if pi != name]
    dup.remove_dangling()
    return dup


def _candidates(network: LogicNetwork) -> Iterator[tuple]:
    """Propose ``(description, candidate)`` pairs, coarsest first."""
    if len(set(network.outputs)) > 1:
        for out in list(dict.fromkeys(network.outputs)):
            yield f"keep only output {out!r}", _restrict_outputs(network, out)
    for name in list(network.topological_order()):
        gate = network.gates.get(name)
        if gate is None or not gate.is_combinational():
            continue
        for fanin in dict.fromkeys(gate.fanins):
            candidate = _bypass_gate(network, name, fanin)
            if candidate is not None:
                yield f"bypass {name!r} -> {fanin!r}", candidate
        yield f"const0 {name!r}", _constant_gate(network, name, 0)
        yield f"const1 {name!r}", _constant_gate(network, name, 1)
    for pi in list(network.inputs):
        candidate = _tie_input(network, pi)
        if candidate is not None:
            yield f"tie input {pi!r} to 0", candidate


def _is_valid(network: LogicNetwork) -> bool:
    if not network.outputs:
        return False
    try:
        network.validate()
    except Exception:
        return False
    return True


def shrink_network(
    network: LogicNetwork,
    failing: FailurePredicate,
    max_attempts: int = 400,
) -> ShrinkResult:
    """Greedily minimise ``network`` while ``failing`` stays True.

    Args:
        network: The failing circuit (left untouched; a pruned copy is
            shrunk).
        failing: Oracle returning True when a candidate still fails.
            It must be True for ``network`` itself — callers should check
            before invoking the (potentially expensive) shrink loop.
        max_attempts: Hard budget on oracle invocations.

    Returns:
        A :class:`ShrinkResult` whose ``network`` is 1-minimal with
        respect to the reduction set (no single proposed reduction can
        be applied without losing the failure), unless the attempt
        budget ran out first.
    """
    current = _pruned(network)
    result = ShrinkResult(
        network=current,
        initial_gates=current.num_gates(),
        final_gates=current.num_gates(),
    )
    progress = True
    while progress and result.attempts < max_attempts:
        progress = False
        for description, candidate in _candidates(current):
            if result.attempts >= max_attempts:
                break
            if not _is_valid(candidate) or len(candidate) >= len(current):
                continue
            result.attempts += 1
            if failing(candidate):
                current = candidate
                result.accepted += 1
                result.log.append(description)
                progress = True
                break  # restart proposals on the smaller network
    result.network = current
    result.final_gates = current.num_gates()
    return result
