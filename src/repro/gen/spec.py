"""``(family, params, seed)`` triples as first-class, catalogued circuits.

A :class:`GenSpec` is the reproducible identity of one generated
circuit.  Its canonical :meth:`~GenSpec.name` encodes the full identity
in a single parseable token::

    gen:dag:gates=24,inputs=6,outputs=3:s7
    gen:fsm:gates=18,inputs=2,moore=0,outputs=2,state=3:s41

which makes generated circuits *self-describing*: any process that sees
the name can rebuild the exact netlist with :func:`build_named` — no
shared registry state, no pickled generator closures.  That is how the
fuzzing campaign ships work to ``multiprocessing`` workers and how a
failure line printed by ``repro fuzz`` replays anywhere.

:func:`resolve` turns a spec into a synthetic
:class:`~repro.circuits.registry.CircuitInfo` (suite ``"gen"``), and
:mod:`repro.circuits.registry` falls back to it for any ``gen:``-prefixed
name, so the whole eval/verify machinery — ``VerificationSpec``,
``SynthesisJob``, result caching — works on generated circuits exactly
as it does on the catalogue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits.registry import CATALOG, CircuitInfo
from ..netlist.network import LogicNetwork
from .families import FAMILIES, FamilyInfo, family_info

__all__ = [
    "GenSpec",
    "build_named",
    "draw_spec",
    "generate_specs",
    "is_gen_name",
    "parse_name",
    "register_spec",
    "resolve",
    "resolve_families",
]

#: Canonical name prefix of generated circuits.
GEN_PREFIX = "gen:"


def _coerce_param(value: str) -> object:
    """Parse one ``k=v`` value back into the type the family expects."""
    if value in ("True", "False"):
        return value == "True"
    try:
        return int(value)
    except ValueError:
        return value


@dataclass(frozen=True)
class GenSpec:
    """The reproducible identity of one generated circuit.

    Attributes:
        family: Key into :data:`repro.gen.families.FAMILIES`.
        params: Sorted ``(key, value)`` pairs; always the family's full
            parameter namespace so equal circuits have equal specs.
        seed: The generator seed.
    """

    family: str
    params: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0

    @classmethod
    def create(cls, family: str, seed: int = 0, **params: object) -> "GenSpec":
        """Build a spec, validating parameter names against the family.

        Parameters not overridden default to the family's values, so two
        specs describing the same circuit are always equal.
        """
        info = family_info(family)
        defaults = dict(info.defaults)
        unknown = set(params) - set(defaults)
        if unknown:
            raise ValueError(
                f"family {family!r} has no parameter(s) {sorted(unknown)}; "
                f"valid: {sorted(defaults)}"
            )
        defaults.update(params)
        return cls(family=family, params=tuple(sorted(defaults.items())), seed=int(seed))

    def info(self) -> FamilyInfo:
        return family_info(self.family)

    @property
    def kind(self) -> str:
        """``"combinational"`` or ``"sequential"``."""
        return self.info().kind

    def name(self) -> str:
        """Canonical self-describing circuit name (see module docstring)."""
        rendered = ",".join(
            f"{key}={int(value) if isinstance(value, bool) else value}"
            for key, value in self.params
        )
        return f"{GEN_PREFIX}{self.family}:{rendered}:s{self.seed}"

    def build(self) -> LogicNetwork:
        """Instantiate the circuit (named after the spec)."""
        network = self.info().fn(seed=self.seed, **dict(self.params))
        network.name = self.name()
        return network

    def to_dict(self) -> Dict[str, object]:
        return {"family": self.family, "params": dict(self.params), "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GenSpec":
        return cls.create(
            str(data["family"]),
            seed=int(data.get("seed", 0)),
            **dict(data.get("params") or {}),
        )


def is_gen_name(name: str) -> bool:
    """True when ``name`` uses the generated-circuit grammar."""
    return name.startswith(GEN_PREFIX)


def parse_name(name: str) -> GenSpec:
    """Parse a canonical ``gen:family:k=v,...:s<seed>`` name back to a spec."""
    if not is_gen_name(name):
        raise ValueError(f"{name!r} is not a generated-circuit name ({GEN_PREFIX}...)")
    parts = name.split(":")
    if len(parts) != 4 or not parts[3].startswith("s"):
        raise ValueError(
            f"malformed generated-circuit name {name!r}; "
            "expected gen:<family>:<k=v,...>:s<seed>"
        )
    _, family, rendered, seed_token = parts
    params: Dict[str, object] = {}
    for pair in filter(None, rendered.split(",")):
        key, _, value = pair.partition("=")
        if not key or not value:
            raise ValueError(f"malformed parameter {pair!r} in {name!r}")
        params[key] = _coerce_param(value)
    try:
        seed = int(seed_token[1:])
    except ValueError:
        raise ValueError(f"malformed seed token {seed_token!r} in {name!r}") from None
    info = family_info(family)
    # Boolean parameters are rendered as 0/1 integers; coerce them back.
    defaults = dict(info.defaults)
    for key, value in list(params.items()):
        if isinstance(defaults.get(key), bool):
            params[key] = bool(value)
    return GenSpec.create(family, seed=seed, **params)


def build_named(name: str) -> LogicNetwork:
    """Build a generated circuit from its canonical name alone."""
    return parse_name(name).build()


def _generator_shim(name: str = "") -> LogicNetwork:
    """Registry-compatible generator: the spec identity rides in ``name``."""
    return build_named(name)


def resolve(name_or_spec) -> CircuitInfo:
    """Synthetic :class:`CircuitInfo` for a generated circuit.

    Accepts a :class:`GenSpec` or a canonical name.  The returned entry
    behaves exactly like a hand-registered catalogue row — ``build``
    works at either scale (generated circuits have a single scale) — and
    its generator is a plain module-level function, so the entry stays
    picklable across worker processes.
    """
    spec = name_or_spec if isinstance(name_or_spec, GenSpec) else parse_name(name_or_spec)
    name = spec.name()
    info = spec.info()
    return CircuitInfo(
        name=name,
        suite="gen",
        kind=info.kind,
        generator=_generator_shim,
        paper_params={"name": name},
        quick_params={"name": name},
        description=f"generated: {info.description} (seed {spec.seed})",
    )


def register_spec(spec: GenSpec) -> CircuitInfo:
    """Insert a generated circuit into the live catalogue (idempotent).

    Registration is only needed to make the circuit show up in listings
    (``repro list --circuits``); building and verifying generated
    circuits works without it via the registry's ``gen:`` fallback.
    """
    entry = CATALOG.get(spec.name())
    if entry is None:
        entry = resolve(spec)
        CATALOG[entry.name] = entry
    return entry


def draw_spec(master: random.Random, info: FamilyInfo) -> GenSpec:
    """Draw one uniform spec of ``info`` from the master stream.

    This is the single sampling primitive behind both
    :func:`generate_specs` and the coverage-steered stream of
    :func:`repro.cov.steer.steered_specs`: parameters come from the
    family's ``fuzz_ranges`` and the per-circuit seed from the same
    stream, so any consumer advancing ``master`` identically produces
    identical specs.
    """
    params: Dict[str, object] = {}
    for key, (lo, hi) in info.fuzz_ranges:
        value: object = master.randint(lo, hi)
        if isinstance(dict(info.defaults)[key], bool):
            value = bool(value)
        params[key] = value
    return GenSpec.create(info.name, seed=master.getrandbits(32), **params)


def resolve_families(families: Optional[Sequence[str]] = None) -> List[str]:
    """The family cycle a campaign iterates, validated early."""
    selected = list(families) if families else sorted(FAMILIES)
    for family in selected:
        family_info(family)  # raise early on unknown names
    return selected


def generate_specs(
    budget: int,
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
) -> List[GenSpec]:
    """Deterministically derive ``budget`` specs from one master seed.

    Families are cycled round-robin; each circuit's parameters are drawn
    from the family's ``fuzz_ranges`` and its per-circuit seed from the
    master stream, so the whole campaign is a pure function of
    ``(budget, seed, families)``.
    """
    selected = resolve_families(families)
    master = random.Random(seed)
    return [
        draw_spec(master, family_info(selected[index % len(selected)]))
        for index in range(max(0, int(budget)))
    ]
