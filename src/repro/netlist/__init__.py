"""Technology-independent gate-level netlists and file-format front ends.

This package is the framework's replacement for the netlist layer of the
Yosys/ABC flow used in the paper: circuits enter the flow as
:class:`~repro.netlist.network.LogicNetwork` objects — built procedurally
(:class:`~repro.netlist.network.NetworkBuilder`), generated from the RTL eDSL
(:mod:`repro.rtl`), or parsed from ISCAS ``.bench``, BLIF, or structural
Verilog files — and are then converted to AND-Inverter graphs for
optimisation and mapping.
"""

from .network import (
    COMBINATIONAL_TYPES,
    Gate,
    GateType,
    LogicNetwork,
    NetworkBuilder,
    NetworkError,
)
from .bench import parse_bench, read_bench, save_bench, write_bench
from .blif import parse_blif, read_blif, save_blif, write_blif
from .verilog import parse_verilog, read_verilog, save_verilog, write_verilog
from .truth import (
    format_truth_table,
    input_assignment,
    networks_equivalent,
    sequential_traces_equal,
    truth_tables,
)

__all__ = [
    "COMBINATIONAL_TYPES",
    "Gate",
    "GateType",
    "LogicNetwork",
    "NetworkBuilder",
    "NetworkError",
    "parse_bench",
    "read_bench",
    "save_bench",
    "write_bench",
    "parse_blif",
    "read_blif",
    "save_blif",
    "write_blif",
    "parse_verilog",
    "read_verilog",
    "save_verilog",
    "write_verilog",
    "truth_tables",
    "networks_equivalent",
    "sequential_traces_equal",
    "input_assignment",
    "format_truth_table",
]
