"""Reader/writer for the ISCAS ``.bench`` netlist format.

The ISCAS85 and ISCAS89 benchmark suites used in the paper's evaluation are
distributed in the ``.bench`` format::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G17 = NOT(G10)
    G7  = DFF(G10)

This module parses that format into a :class:`~repro.netlist.network.LogicNetwork`
and writes networks back out, so generated benchmark circuits can be exported
and externally produced circuits can be imported into the flow.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Union

from .network import GateType, LogicNetwork, NetworkError

_GATE_NAMES: Dict[str, GateType] = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "MUX": GateType.MUX,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_TYPE_NAMES: Dict[GateType, str] = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
    GateType.MUX: "MUX",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}

_ASSIGN_RE = re.compile(r"^\s*([^\s=]+)\s*=\s*([A-Za-z0-9_]+)\s*\((.*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)\s*$", re.IGNORECASE)


class BenchParseError(NetworkError):
    """Raised when a ``.bench`` file cannot be parsed."""


def parse_bench(text: str, name: str = "bench") -> LogicNetwork:
    """Parse ``.bench`` source text into a :class:`LogicNetwork`."""
    network = LogicNetwork(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, signal = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                network.add_input(signal)
            else:
                network.add_output(signal)
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise BenchParseError(f"line {lineno}: cannot parse {raw!r}")
        target, func, args = assign.group(1), assign.group(2).upper(), assign.group(3)
        if func not in _GATE_NAMES:
            raise BenchParseError(f"line {lineno}: unknown gate type {func!r}")
        fanins = [a.strip() for a in args.split(",") if a.strip()]
        gate_type = _GATE_NAMES[func]
        try:
            if gate_type is GateType.DFF:
                network.add_latch(target, fanins[0] if fanins else "")
            else:
                network.add_gate(target, gate_type, fanins)
        except NetworkError as exc:
            raise BenchParseError(f"line {lineno}: {exc}") from exc
    network.validate()
    return network


def read_bench(path: Union[str, Path]) -> LogicNetwork:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(network: LogicNetwork) -> str:
    """Serialise a network to ``.bench`` source text.

    Gates whose type has no ``.bench`` spelling raise :class:`NetworkError`.
    """
    lines: List[str] = [f"# {network.name}"]
    for pi in network.inputs:
        lines.append(f"INPUT({pi})")
    for po in network.outputs:
        lines.append(f"OUTPUT({po})")
    for gate in network.gates.values():
        if gate.gate_type is GateType.INPUT:
            continue
        keyword = _TYPE_NAMES.get(gate.gate_type)
        if keyword is None:
            raise NetworkError(f"gate type {gate.gate_type} has no .bench representation")
        lines.append(f"{gate.name} = {keyword}({', '.join(gate.fanins)})")
    return "\n".join(lines) + "\n"


def save_bench(network: LogicNetwork, path: Union[str, Path]) -> None:
    """Write a network to a ``.bench`` file."""
    Path(path).write_text(write_bench(network))
