"""Reader/writer for a practical subset of the Berkeley BLIF format.

BLIF is the interchange format between Yosys and ABC in the paper's flow.
Supported constructs:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end``
* ``.names`` with single-output cover rows (PLA style, ``-`` don't-cares)
* ``.latch <input> <output> [<type> <control>] [<init>]``

``.names`` covers are converted into AND/OR/NOT structure when read, so the
resulting :class:`~repro.netlist.network.LogicNetwork` only contains primitive
gate types.  When writing, every gate is expressed as a ``.names`` cover.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .network import Gate, GateType, LogicNetwork, NetworkError


class BlifParseError(NetworkError):
    """Raised when BLIF source text cannot be parsed."""


def _join_continuations(text: str) -> List[str]:
    """Join lines ending with a backslash and strip comments."""
    lines: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        lines.append((pending + line).strip())
        pending = ""
    if pending.strip():
        lines.append(pending.strip())
    return [ln for ln in lines if ln]


def _cover_to_gates(
    network: LogicNetwork, output: str, inputs: Sequence[str], rows: Sequence[Tuple[str, str]]
) -> None:
    """Lower a single-output PLA cover onto primitive gates driving ``output``."""
    uid = [0]

    def fresh(hint: str) -> str:
        while True:
            uid[0] += 1
            name = f"{output}${hint}{uid[0]}"
            if name not in network:
                return name

    if not inputs:
        # Constant: a row of output value 1 means constant 1.
        value = 1 if any(out_val == "1" for _, out_val in rows) else 0
        network.add_gate(output, GateType.CONST1 if value else GateType.CONST0, [])
        return
    if not rows:
        network.add_gate(output, GateType.CONST0, [])
        return

    out_polarity = rows[0][1]
    if any(out_val != out_polarity for _, out_val in rows):
        raise BlifParseError(f".names {output}: mixed output polarities are not supported")
    positive = out_polarity == "1"

    # Collect each row as (signal, is_positive) literal pairs first, so the
    # final gate can be created directly *as* ``output``.  Materialising
    # helper gates eagerly and BUF/NOT-wrapping the sum (the previous
    # strategy) made write -> parse -> write grow a fresh inverter layer on
    # every trip instead of reaching a fixpoint.
    row_literals: List[List[Tuple[str, bool]]] = []
    for pattern, _ in rows:
        if len(pattern) != len(inputs):
            raise BlifParseError(
                f".names {output}: row {pattern!r} does not match {len(inputs)} inputs"
            )
        literals: List[Tuple[str, bool]] = []
        for bit, signal in zip(pattern, inputs):
            if bit == "1":
                literals.append((signal, True))
            elif bit == "0":
                literals.append((signal, False))
            elif bit != "-":
                raise BlifParseError(f".names {output}: invalid cover character {bit!r}")
        row_literals.append(literals)

    inv_cache: Dict[str, str] = {}

    def as_signal(literal: Tuple[str, bool]) -> str:
        signal, is_positive = literal
        if is_positive:
            return signal
        if signal not in inv_cache:
            inv = fresh("inv")
            network.add_gate(inv, GateType.NOT, [signal])
            inv_cache[signal] = inv
        return inv_cache[signal]

    if len(row_literals) == 1:
        literals = row_literals[0]
        if not literals:
            network.add_gate(output, GateType.CONST1 if positive else GateType.CONST0, [])
        elif len(literals) == 1:
            signal, is_positive = literals[0]
            buffer_like = is_positive == positive
            network.add_gate(output, GateType.BUF if buffer_like else GateType.NOT, [signal])
        else:
            fanins = [as_signal(lit) for lit in literals]
            network.add_gate(output, GateType.AND if positive else GateType.NAND, fanins)
        return

    product_terms: List[str] = []
    for literals in row_literals:
        if not literals:
            term = fresh("one")
            network.add_gate(term, GateType.CONST1, [])
        elif len(literals) == 1:
            term = as_signal(literals[0])
        else:
            term = fresh("and")
            network.add_gate(term, GateType.AND, [as_signal(lit) for lit in literals])
        product_terms.append(term)
    network.add_gate(output, GateType.OR if positive else GateType.NOR, product_terms)


def parse_blif(text: str) -> LogicNetwork:
    """Parse BLIF source text into a :class:`LogicNetwork`."""
    lines = _join_continuations(text)
    network: Optional[LogicNetwork] = None
    idx = 0
    while idx < len(lines):
        tokens = lines[idx].split()
        keyword = tokens[0]
        if keyword == ".model":
            if network is not None:
                raise BlifParseError("multiple .model sections are not supported")
            network = LogicNetwork(tokens[1] if len(tokens) > 1 else "blif")
            idx += 1
        elif keyword == ".inputs":
            assert network is not None
            for name in tokens[1:]:
                network.add_input(name)
            idx += 1
        elif keyword == ".outputs":
            assert network is not None
            for name in tokens[1:]:
                network.add_output(name)
            idx += 1
        elif keyword == ".names":
            assert network is not None
            signals = tokens[1:]
            if not signals:
                raise BlifParseError(".names requires at least an output signal")
            output, inputs = signals[-1], signals[:-1]
            rows: List[Tuple[str, str]] = []
            idx += 1
            while idx < len(lines) and not lines[idx].startswith("."):
                row = lines[idx].split()
                if inputs:
                    if len(row) != 2:
                        raise BlifParseError(f"invalid cover row {lines[idx]!r}")
                    rows.append((row[0], row[1]))
                else:
                    rows.append(("", row[0]))
                idx += 1
            _cover_to_gates(network, output, inputs, rows)
        elif keyword == ".latch":
            assert network is not None
            if len(tokens) < 3:
                raise BlifParseError(f"invalid .latch line {lines[idx]!r}")
            data_in, data_out = tokens[1], tokens[2]
            init = 0
            if len(tokens) >= 4 and tokens[-1] in {"0", "1", "2", "3"}:
                init = 1 if tokens[-1] == "1" else 0
            network.add_latch(data_out, data_in, init=init)
            idx += 1
        elif keyword == ".end":
            idx += 1
        else:
            raise BlifParseError(f"unsupported BLIF construct {keyword!r}")
    if network is None:
        raise BlifParseError("no .model section found")
    network.validate()
    return network


def read_blif(path: Union[str, Path]) -> LogicNetwork:
    """Read a BLIF file from disk."""
    return parse_blif(Path(path).read_text())


_COVERS: Dict[GateType, str] = {
    GateType.BUF: "1 1\n",
    GateType.NOT: "0 1\n",
}


def _gate_cover(gate: Gate) -> str:
    """Return the .names body for one gate."""
    n = len(gate.fanins)
    if gate.gate_type in _COVERS:
        return _COVERS[gate.gate_type]
    if gate.gate_type is GateType.CONST0:
        return ""
    if gate.gate_type is GateType.CONST1:
        return "1\n"
    if gate.gate_type is GateType.AND:
        return "1" * n + " 1\n"
    if gate.gate_type is GateType.NAND:
        return "".join("-" * i + "0" + "-" * (n - i - 1) + " 1\n" for i in range(n))
    if gate.gate_type is GateType.OR:
        return "".join("-" * i + "1" + "-" * (n - i - 1) + " 1\n" for i in range(n))
    if gate.gate_type is GateType.NOR:
        return "0" * n + " 1\n"
    if gate.gate_type in (GateType.XOR, GateType.XNOR):
        want_odd = gate.gate_type is GateType.XOR
        rows = []
        for mask in range(1 << n):
            ones = bin(mask).count("1")
            if (ones % 2 == 1) == want_odd:
                rows.append("".join("1" if mask >> i & 1 else "0" for i in range(n)) + " 1\n")
        return "".join(rows)
    if gate.gate_type is GateType.MUX:
        # fanins are (sel, d0, d1)
        return "01- 1\n1-1 1\n"
    raise NetworkError(f"cannot express gate type {gate.gate_type} in BLIF")


def write_blif(network: LogicNetwork) -> str:
    """Serialise a network to BLIF source text."""
    lines: List[str] = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for gate in network.gates.values():
        if gate.gate_type is GateType.INPUT:
            continue
        if gate.gate_type is GateType.DFF:
            lines.append(f".latch {gate.fanins[0]} {gate.name} re clk {gate.init}")
            continue
        lines.append(".names " + " ".join(list(gate.fanins) + [gate.name]))
        cover = _gate_cover(gate)
        if cover:
            lines.append(cover.rstrip("\n"))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_blif(network: LogicNetwork, path: Union[str, Path]) -> None:
    """Write a network to a BLIF file."""
    Path(path).write_text(write_blif(network))
