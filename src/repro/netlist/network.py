"""Gate-level logic networks.

This module provides :class:`LogicNetwork`, the technology-independent
gate-level netlist used as the common interchange format of the framework.
It plays the role Yosys' RTLIL / ABC's network layer play in the paper's
flow: RTL generators (:mod:`repro.rtl`), benchmark generators
(:mod:`repro.circuits`) and the file-format front ends
(:mod:`repro.netlist.bench`, :mod:`repro.netlist.blif`,
:mod:`repro.netlist.verilog`) all produce ``LogicNetwork`` objects, which are
then converted into AND-Inverter graphs (:mod:`repro.aig`) for optimisation
and finally mapped to xSFQ (:mod:`repro.core`) or RSFQ
(:mod:`repro.baselines`) cell netlists.

A network is a named directed acyclic graph of logic gates plus a set of
D flip-flops (latches).  Signals are identified by strings.  Primary outputs
reference signals by name; a signal may drive any number of outputs and
gate inputs.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple


class GateType(enum.Enum):
    """Supported gate functions.

    ``AND``/``OR``/``NAND``/``NOR``/``XOR``/``XNOR`` accept two or more
    inputs, ``NOT``/``BUF`` exactly one, ``MUX`` exactly three
    (``sel``, ``d0``, ``d1`` — output is ``d1`` when ``sel`` is 1),
    ``CONST0``/``CONST1`` none, and ``DFF`` exactly one (the next-state
    signal).  ``INPUT`` marks a primary input and has no fanins.
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"
    DFF = "dff"


#: Gate types that represent combinational logic functions.
COMBINATIONAL_TYPES = frozenset(
    {
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.MUX,
    }
)

#: Minimum/maximum fanin arity per gate type (None means unbounded).
_ARITY: Dict[GateType, Tuple[int, Optional[int]]] = {
    GateType.INPUT: (0, 0),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.BUF: (1, 1),
    GateType.NOT: (1, 1),
    GateType.AND: (1, None),
    GateType.NAND: (1, None),
    GateType.OR: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (1, None),
    GateType.XNOR: (1, None),
    GateType.MUX: (3, 3),
    GateType.DFF: (1, 1),
}


class NetworkError(Exception):
    """Raised for malformed networks or invalid operations on them."""


@dataclass
class Gate:
    """A single named node of a :class:`LogicNetwork`.

    Attributes:
        name: Output signal name of the gate (unique within the network).
        gate_type: The logic function computed by the gate.
        fanins: Names of the gate's input signals, in order.
        init: Initial state for ``DFF`` gates (0 or 1); ignored otherwise.
    """

    name: str
    gate_type: GateType
    fanins: List[str] = field(default_factory=list)
    init: int = 0

    def validate(self) -> None:
        """Check the fanin arity against the gate type."""
        lo, hi = _ARITY[self.gate_type]
        n = len(self.fanins)
        if n < lo or (hi is not None and n > hi):
            raise NetworkError(
                f"gate {self.name!r} of type {self.gate_type.value} has {n} fanins, "
                f"expected between {lo} and {hi if hi is not None else 'inf'}"
            )

    def is_combinational(self) -> bool:
        """Return True when the gate computes a combinational function."""
        return self.gate_type in COMBINATIONAL_TYPES

    def is_latch(self) -> bool:
        """Return True when the gate is a D flip-flop."""
        return self.gate_type is GateType.DFF


def _eval_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a combinational gate on 0/1 values."""
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.NOT:
        return 1 - values[0]
    if gate_type is GateType.AND:
        return int(all(values))
    if gate_type is GateType.NAND:
        return 1 - int(all(values))
    if gate_type is GateType.OR:
        return int(any(values))
    if gate_type is GateType.NOR:
        return 1 - int(any(values))
    if gate_type is GateType.XOR:
        return sum(values) & 1
    if gate_type is GateType.XNOR:
        return 1 - (sum(values) & 1)
    if gate_type is GateType.MUX:
        sel, d0, d1 = values
        return d1 if sel else d0
    raise NetworkError(f"cannot evaluate gate type {gate_type}")


class LogicNetwork:
    """A named gate-level netlist with primary inputs, outputs and latches.

    The network stores one :class:`Gate` per signal.  Primary inputs are
    gates of type ``INPUT``; D flip-flops are gates of type ``DFF`` whose
    name is the latch *output* (present-state) signal and whose single fanin
    is the next-state signal.  Primary outputs are references to signal
    names (the same signal may be listed several times, matching how the
    ISCAS ``.bench`` format treats outputs).
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input signal and return its name."""
        self._add_gate(Gate(name, GateType.INPUT))
        self.inputs.append(name)
        return name

    def add_output(self, signal: str) -> None:
        """Declare ``signal`` as a primary output (it may not exist yet)."""
        self.outputs.append(signal)

    def add_gate(self, name: str, gate_type: GateType, fanins: Sequence[str], init: int = 0) -> str:
        """Add a gate driving signal ``name`` and return the name.

        Fanin signals do not need to exist yet; :meth:`validate` checks that
        every referenced signal is eventually defined.
        """
        gate = Gate(name, gate_type, list(fanins), init=init)
        gate.validate()
        self._add_gate(gate)
        return name

    def add_const(self, name: str, value: int) -> str:
        """Add a constant-0 or constant-1 gate."""
        return self.add_gate(name, GateType.CONST1 if value else GateType.CONST0, [])

    def add_latch(self, name: str, next_state: str, init: int = 0) -> str:
        """Add a D flip-flop with output ``name`` and data input ``next_state``."""
        return self.add_gate(name, GateType.DFF, [next_state], init=init)

    def _add_gate(self, gate: Gate) -> None:
        if gate.name in self.gates:
            raise NetworkError(f"signal {gate.name!r} is defined twice")
        self.gates[gate.name] = gate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.gates

    def __len__(self) -> int:
        return len(self.gates)

    def gate(self, name: str) -> Gate:
        """Return the gate driving ``name``."""
        try:
            return self.gates[name]
        except KeyError as exc:
            raise NetworkError(f"unknown signal {name!r}") from exc

    @property
    def latches(self) -> List[Gate]:
        """All DFF gates, in insertion order."""
        return [g for g in self.gates.values() if g.is_latch()]

    @property
    def logic_gates(self) -> List[Gate]:
        """All combinational gates, in insertion order."""
        return [g for g in self.gates.values() if g.is_combinational()]

    def is_combinational(self) -> bool:
        """Return True when the network contains no flip-flops."""
        return not any(g.is_latch() for g in self.gates.values())

    def num_gates(self, gate_type: Optional[GateType] = None) -> int:
        """Count gates, optionally restricted to one type."""
        if gate_type is None:
            return sum(1 for g in self.gates.values() if g.is_combinational())
        return sum(1 for g in self.gates.values() if g.gate_type is gate_type)

    def fanouts(self) -> Dict[str, List[str]]:
        """Map each signal to the list of gate names that consume it."""
        result: Dict[str, List[str]] = {name: [] for name in self.gates}
        for gate in self.gates.values():
            for fanin in gate.fanins:
                result.setdefault(fanin, []).append(gate.name)
        return result

    # ------------------------------------------------------------------
    # Validation / ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Verifies that every referenced signal is defined, every output
        exists, arity constraints hold, and the combinational part is
        acyclic (cycles may only pass through flip-flops).
        """
        for gate in self.gates.values():
            gate.validate()
            for fanin in gate.fanins:
                if fanin not in self.gates:
                    raise NetworkError(
                        f"gate {gate.name!r} references undefined signal {fanin!r}"
                    )
        for out in self.outputs:
            if out not in self.gates:
                raise NetworkError(f"primary output {out!r} is not defined")
        # Acyclicity of the combinational part is checked by attempting a
        # topological ordering.
        self.topological_order()

    def topological_order(self) -> List[str]:
        """Return signal names in combinational topological order.

        Sources are primary inputs, constants and latch outputs; each
        combinational gate appears after all of its fanins.  Latches appear
        at the position of their output signal (as sources).  Raises
        :class:`NetworkError` when the combinational logic contains a cycle.
        """
        indegree: Dict[str, int] = {}
        consumers: Dict[str, List[str]] = {name: [] for name in self.gates}
        for gate in self.gates.values():
            if gate.is_combinational():
                indegree[gate.name] = len(gate.fanins)
                for fanin in gate.fanins:
                    consumers.setdefault(fanin, []).append(gate.name)
            else:
                indegree[gate.name] = 0
        ready = deque(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for consumer in consumers.get(name, []):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            cyclic = sorted(set(self.gates) - set(order))
            raise NetworkError(f"combinational cycle involving signals {cyclic[:8]}")
        return order

    def levels(self) -> Dict[str, int]:
        """Logic level of every signal (sources are level 0)."""
        level: Dict[str, int] = {}
        for name in self.topological_order():
            gate = self.gates[name]
            if gate.is_combinational():
                level[name] = 1 + max(level[f] for f in gate.fanins) if gate.fanins else 0
            else:
                level[name] = 0
        return level

    def depth(self) -> int:
        """Maximum logic level over all signals (0 for an empty network)."""
        lv = self.levels()
        return max(lv.values()) if lv else 0

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Mapping[str, int],
        state: Optional[Mapping[str, int]] = None,
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Evaluate the network for one cycle.

        Args:
            input_values: Value (0/1) for every primary input.
            state: Present-state value for every latch output; defaults to
                each latch's ``init`` value.

        Returns:
            A pair ``(outputs, next_state)`` where ``outputs`` maps each
            primary-output signal name to its value and ``next_state`` maps
            each latch output name to the value it will hold after the clock
            edge.
        """
        values: Dict[str, int] = {}
        for name in self.inputs:
            if name not in input_values:
                raise NetworkError(f"missing value for primary input {name!r}")
            values[name] = int(bool(input_values[name]))
        for latch in self.latches:
            if state is not None and latch.name in state:
                values[latch.name] = int(bool(state[latch.name]))
            else:
                values[latch.name] = latch.init
        for name in self.topological_order():
            gate = self.gates[name]
            if gate.is_combinational() or gate.gate_type in (GateType.CONST0, GateType.CONST1):
                values[name] = _eval_gate(gate.gate_type, [values[f] for f in gate.fanins])
        outputs = {out: values[out] for out in self.outputs}
        next_state = {latch.name: values[latch.fanins[0]] for latch in self.latches}
        return outputs, next_state

    def simulate_sequence(
        self, input_sequence: Sequence[Mapping[str, int]]
    ) -> List[Dict[str, int]]:
        """Run a multi-cycle simulation starting from the latch init state.

        Returns one output dictionary per cycle.
        """
        state = {latch.name: latch.init for latch in self.latches}
        trace: List[Dict[str, int]] = []
        for vector in input_sequence:
            outputs, state = self.evaluate(vector, state)
            trace.append(outputs)
        return trace

    def output_vector(self, input_values: Mapping[str, int]) -> Tuple[int, ...]:
        """Convenience: evaluate a combinational network and return outputs as a tuple."""
        outputs, _ = self.evaluate(input_values)
        return tuple(outputs[o] for o in self.outputs)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def cone_of_influence(self, roots: Iterable[str]) -> Set[str]:
        """Return all signals in the transitive fanin of ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = [r for r in roots]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.gate(name).fanins)
        return seen

    def remove_dangling(self) -> int:
        """Delete gates not in the transitive fanin of any output or latch.

        Latches themselves are kept only when reachable from outputs (or from
        kept latches).  Returns the number of removed gates.
        """
        # Iterate because removing a latch may render more logic dangling.
        removed_total = 0
        while True:
            keep = set(self.outputs)
            frontier = list(self.outputs)
            seen: Set[str] = set()
            while frontier:
                name = frontier.pop()
                if name in seen:
                    continue
                seen.add(name)
                keep.add(name)
                frontier.extend(self.gate(name).fanins)
            dangling = [
                name
                for name, gate in self.gates.items()
                if name not in keep and gate.gate_type is not GateType.INPUT
            ]
            if not dangling:
                return removed_total
            for name in dangling:
                del self.gates[name]
            removed_total += len(dangling)

    def copy(self) -> "LogicNetwork":
        """Return a deep copy of the network."""
        dup = LogicNetwork(self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.gates = {
            name: Gate(g.name, g.gate_type, list(g.fanins), g.init)
            for name, g in self.gates.items()
        }
        return dup

    def rename_signals(self, mapping: Mapping[str, str]) -> "LogicNetwork":
        """Return a copy with signals renamed according to ``mapping``.

        Signals absent from ``mapping`` keep their names.
        """
        def rn(name: str) -> str:
            return mapping.get(name, name)

        dup = LogicNetwork(self.name)
        dup.inputs = [rn(n) for n in self.inputs]
        dup.outputs = [rn(n) for n in self.outputs]
        for name, g in self.gates.items():
            dup.gates[rn(name)] = Gate(rn(name), g.gate_type, [rn(f) for f in g.fanins], g.init)
        return dup

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Return a summary dictionary (inputs, outputs, gates, latches, depth)."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": self.num_gates(),
            "latches": len(self.latches),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<LogicNetwork {self.name!r}: {s['inputs']} PI, {s['outputs']} PO, "
            f"{s['gates']} gates, {s['latches']} FF, depth {s['depth']}>"
        )


class NetworkBuilder:
    """Helper for building networks with automatically generated signal names.

    The builder offers one method per gate function and returns the name of
    the created signal, which keeps generator code (e.g. the benchmark
    circuit generators in :mod:`repro.circuits`) compact and readable.
    """

    def __init__(self, name: str = "top", prefix: str = "n") -> None:
        self.network = LogicNetwork(name)
        self._prefix = prefix
        self._counter = 0
        self._const0: Optional[str] = None
        self._const1: Optional[str] = None

    def fresh(self, hint: str = "") -> str:
        """Return a fresh unused signal name."""
        while True:
            self._counter += 1
            name = f"{self._prefix}{self._counter}" if not hint else f"{hint}_{self._counter}"
            if name not in self.network:
                return name

    def input(self, name: str) -> str:
        return self.network.add_input(name)

    def inputs(self, names: Iterable[str]) -> List[str]:
        return [self.network.add_input(n) for n in names]

    def output(self, signal: str, name: Optional[str] = None) -> str:
        """Mark ``signal`` as primary output, optionally buffering it under ``name``."""
        if name is not None and name != signal:
            self.network.add_gate(name, GateType.BUF, [signal])
            signal = name
        self.network.add_output(signal)
        return signal

    def const(self, value: int) -> str:
        if value:
            if self._const1 is None:
                self._const1 = self.network.add_const(self.fresh("const1"), 1)
            return self._const1
        if self._const0 is None:
            self._const0 = self.network.add_const(self.fresh("const0"), 0)
        return self._const0

    def _gate(self, gate_type: GateType, fanins: Sequence[str], name: Optional[str]) -> str:
        out = name if name is not None else self.fresh()
        return self.network.add_gate(out, gate_type, fanins)

    def buf(self, a: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.BUF, [a], name)

    def not_(self, a: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.NOT, [a], name)

    def and_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.AND, list(fanins), name)

    def nand(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.NAND, list(fanins), name)

    def or_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.OR, list(fanins), name)

    def nor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.NOR, list(fanins), name)

    def xor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.XOR, list(fanins), name)

    def xnor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._gate(GateType.XNOR, list(fanins), name)

    def mux(self, sel: str, d0: str, d1: str, name: Optional[str] = None) -> str:
        """2:1 multiplexer: output is ``d1`` when ``sel`` is 1, else ``d0``."""
        return self._gate(GateType.MUX, [sel, d0, d1], name)

    def dff(self, next_state: str, name: Optional[str] = None, init: int = 0) -> str:
        out = name if name is not None else self.fresh("ff")
        return self.network.add_latch(out, next_state, init=init)

    # -- word-level helpers -------------------------------------------------
    def word_inputs(self, base: str, width: int) -> List[str]:
        """Declare ``width`` primary inputs named ``base[i]`` (LSB first)."""
        return [self.network.add_input(f"{base}[{i}]") for i in range(width)]

    def word_outputs(self, signals: Sequence[str], base: str) -> List[str]:
        """Expose ``signals`` as primary outputs named ``base[i]`` (LSB first)."""
        return [self.output(sig, f"{base}[{i}]") for i, sig in enumerate(signals)]

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Return (sum, carry)."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Return (sum, carry-out) of a 1-bit full adder."""
        s1 = self.xor(a, b)
        s = self.xor(s1, cin)
        c1 = self.and_(a, b)
        c2 = self.and_(s1, cin)
        cout = self.or_(c1, c2)
        return s, cout

    def ripple_adder(self, a: Sequence[str], b: Sequence[str], cin: Optional[str] = None) -> Tuple[List[str], str]:
        """Ripple-carry adder over equal-width LSB-first words.

        Returns (sum bits, carry out).
        """
        if len(a) != len(b):
            raise NetworkError("ripple_adder operands must have equal width")
        carry = cin if cin is not None else self.const(0)
        sums: List[str] = []
        for ai, bi in zip(a, b):
            s, carry = self.full_adder(ai, bi, carry)
            sums.append(s)
        return sums, carry

    def finish(self, validate: bool = True) -> LogicNetwork:
        """Return the built network (validated by default)."""
        if validate:
            self.network.validate()
        return self.network
