"""Exhaustive truth-table utilities for small combinational networks.

These helpers are used throughout the test-suite to check that netlist
transformations (AIG optimisation, dual-rail mapping, polarity optimisation)
preserve functionality, and by the refactoring pass to resynthesise small
logic cones.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from .network import LogicNetwork, NetworkError


def truth_tables(network: LogicNetwork, max_inputs: int = 16) -> Dict[str, int]:
    """Compute the truth table of every primary output of a combinational network.

    The table for an output is returned as an integer bitmask with
    ``2**len(inputs)`` bits; bit ``i`` holds the output value for the input
    assignment where input ``k`` (in ``network.inputs`` order) takes the value
    of bit ``k`` of ``i``.

    Raises :class:`NetworkError` for sequential networks or when the number of
    inputs exceeds ``max_inputs``.
    """
    if not network.is_combinational():
        raise NetworkError("truth_tables requires a combinational network")
    n = len(network.inputs)
    if n > max_inputs:
        raise NetworkError(f"network has {n} inputs, exceeding the limit of {max_inputs}")
    tables: Dict[str, int] = {out: 0 for out in network.outputs}
    for assignment in range(1 << n):
        vector = {name: (assignment >> k) & 1 for k, name in enumerate(network.inputs)}
        outputs, _ = network.evaluate(vector)
        for out, value in outputs.items():
            if value:
                tables[out] |= 1 << assignment
    return tables


def networks_equivalent(a: LogicNetwork, b: LogicNetwork, max_inputs: int = 14) -> bool:
    """Exhaustively check that two combinational networks are equivalent.

    The networks must have identical primary-input and primary-output name
    lists (order-insensitive for inputs, order-sensitive for outputs).
    """
    if sorted(a.inputs) != sorted(b.inputs):
        return False
    if list(a.outputs) != list(b.outputs):
        return False
    n = len(a.inputs)
    if n > max_inputs:
        raise NetworkError(f"too many inputs ({n}) for exhaustive comparison")
    for assignment in range(1 << n):
        vector = {name: (assignment >> k) & 1 for k, name in enumerate(sorted(a.inputs))}
        if a.output_vector(vector) != b.output_vector(vector):
            return False
    return True


def sequential_traces_equal(
    a: LogicNetwork,
    b: LogicNetwork,
    input_sequence: Sequence[Mapping[str, int]],
) -> bool:
    """Compare the output traces of two sequential networks on a stimulus."""
    trace_a = a.simulate_sequence(input_sequence)
    trace_b = b.simulate_sequence(input_sequence)
    if len(trace_a) != len(trace_b):
        return False
    for out_a, out_b in zip(trace_a, trace_b):
        if out_a != out_b:
            return False
    return True


def input_assignment(network: LogicNetwork, index: int) -> Dict[str, int]:
    """Return the input vector corresponding to truth-table bit ``index``."""
    return {name: (index >> k) & 1 for k, name in enumerate(network.inputs)}


def format_truth_table(network: LogicNetwork) -> str:
    """Render the full truth table of a small network as text (for examples)."""
    n = len(network.inputs)
    header = " ".join(network.inputs) + " | " + " ".join(network.outputs)
    rows: List[str] = [header, "-" * len(header)]
    for assignment in range(1 << n):
        vector = {name: (assignment >> k) & 1 for k, name in enumerate(network.inputs)}
        outputs, _ = network.evaluate(vector)
        rows.append(
            " ".join(str(vector[name]) for name in network.inputs)
            + " | "
            + " ".join(str(outputs[o]) for o in network.outputs)
        )
    return "\n".join(rows)
