"""Structural-Verilog reader/writer (gate-primitive subset).

The paper's flow starts "from arbitrary register transfer level (RTL) code";
in this reproduction the RTL front end is the eDSL in :mod:`repro.rtl`, and
this module provides the complementary text format: a structural Verilog
subset using gate primitives, so synthesised netlists can be exported to and
imported from other tools.

Supported constructs::

    module top(a, b, y);
      input a, b;
      output y;
      wire w1;
      and g1 (w1, a, b);     // and/or/nand/nor/xor/xnor/not/buf primitives
      assign y = w1;          // simple identifier/constant assigns
      dff r1 (q, d);          // behavioural-free flip-flop primitive
    endmodule
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from .network import GateType, LogicNetwork, NetworkError

_PRIMITIVES: Dict[str, GateType] = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "dff": GateType.DFF,
    "mux": GateType.MUX,
}

_PRIMITIVE_NAMES: Dict[GateType, str] = {v: k for k, v in _PRIMITIVES.items()}

_MODULE_RE = re.compile(r"module\s+(\\\S+|[A-Za-z_][\w$]*)\s*\(([^;]*)\)\s*;", re.S)
_GATE_RE = re.compile(
    r"^(and|nand|or|nor|xor|xnor|not|buf|dff|mux)\s+(?:[A-Za-z_][\w$]*\s+)?\(([^)]*)\)$"
)
_ASSIGN_RE = re.compile(r"^assign\s+([^\s=]+)\s*=\s*(.+)$")


class VerilogParseError(NetworkError):
    """Raised when structural Verilog cannot be parsed."""


def _escape(name: str) -> str:
    """Escape a signal name for Verilog output if needed."""
    if re.fullmatch(r"[A-Za-z_][\w$]*", name):
        return name
    return "\\" + name + " "


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return text


def parse_verilog(text: str) -> LogicNetwork:
    """Parse a single structural-Verilog module into a :class:`LogicNetwork`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if not module:
        raise VerilogParseError("no module declaration found")
    name = module.group(1).lstrip("\\")
    body_start = module.end()
    body_end = text.find("endmodule", body_start)
    if body_end < 0:
        raise VerilogParseError("missing endmodule")
    body = text[body_start:body_end]

    network = LogicNetwork(name)
    outputs: List[str] = []
    statements = [s.strip() for s in body.split(";") if s.strip()]
    for stmt in statements:
        stmt = " ".join(stmt.split())
        if stmt.startswith("input "):
            for sig in stmt[len("input "):].split(","):
                sig = sig.strip().lstrip("\\").strip()
                if sig:
                    network.add_input(sig)
            continue
        if stmt.startswith("output "):
            for sig in stmt[len("output "):].split(","):
                sig = sig.strip().lstrip("\\").strip()
                if sig:
                    outputs.append(sig)
            continue
        if stmt.startswith("wire ") or stmt.startswith("reg "):
            continue  # declarations carry no structural information here
        assign = _ASSIGN_RE.match(stmt)
        if assign:
            target = assign.group(1).lstrip("\\").strip()
            source = assign.group(2).strip()
            if source in ("1'b0", "1'd0", "0"):
                network.add_gate(target, GateType.CONST0, [])
            elif source in ("1'b1", "1'd1", "1"):
                network.add_gate(target, GateType.CONST1, [])
            elif source.startswith("~"):
                network.add_gate(target, GateType.NOT, [source[1:].lstrip("\\").strip()])
            else:
                network.add_gate(target, GateType.BUF, [source.lstrip("\\").strip()])
            continue
        gate = _GATE_RE.match(stmt)
        if gate:
            gtype = _PRIMITIVES[gate.group(1)]
            ports = [p.strip().lstrip("\\").strip() for p in gate.group(2).split(",")]
            if len(ports) < 2:
                raise VerilogParseError(f"gate statement {stmt!r} needs output and inputs")
            out, fanins = ports[0], ports[1:]
            if gtype is GateType.DFF:
                network.add_latch(out, fanins[0])
            elif gtype is GateType.MUX:
                # Verilog-style port order (out, d0, d1, sel) -> internal (sel, d0, d1)
                if len(fanins) != 3:
                    raise VerilogParseError(f"mux {stmt!r} needs 3 inputs")
                d0, d1, sel = fanins
                network.add_gate(out, GateType.MUX, [sel, d0, d1])
            else:
                network.add_gate(out, gtype, fanins)
            continue
        raise VerilogParseError(f"unsupported statement: {stmt!r}")

    for out in outputs:
        network.add_output(out)
    network.validate()
    return network


def read_verilog(path: Union[str, Path]) -> LogicNetwork:
    """Read a structural Verilog file from disk."""
    return parse_verilog(Path(path).read_text())


def write_verilog(network: LogicNetwork) -> str:
    """Serialise a network as a structural-Verilog module."""
    ports = list(network.inputs) + list(dict.fromkeys(network.outputs))
    # Module names (e.g. generated-circuit names like "gen:dag:...:s7")
    # need the same escaped-identifier treatment as signals.
    module_name = _escape(network.name).rstrip()
    lines: List[str] = [f"module {module_name} (" + ", ".join(_escape(p).strip() for p in ports) + ");"]
    if network.inputs:
        lines.append("  input " + ", ".join(_escape(p).strip() for p in network.inputs) + ";")
    if network.outputs:
        lines.append("  output " + ", ".join(_escape(p).strip() for p in dict.fromkeys(network.outputs)) + ";")
    wires = [
        g.name
        for g in network.gates.values()
        if g.gate_type is not GateType.INPUT and g.name not in network.outputs
    ]
    if wires:
        lines.append("  wire " + ", ".join(_escape(w).strip() for w in wires) + ";")
    counter = 0
    for gate in network.gates.values():
        if gate.gate_type is GateType.INPUT:
            continue
        counter += 1
        if gate.gate_type is GateType.CONST0:
            lines.append(f"  assign {_escape(gate.name).strip()} = 1'b0;")
        elif gate.gate_type is GateType.CONST1:
            lines.append(f"  assign {_escape(gate.name).strip()} = 1'b1;")
        elif gate.gate_type is GateType.MUX:
            sel, d0, d1 = gate.fanins
            ports_str = ", ".join(_escape(s).strip() for s in (gate.name, d0, d1, sel))
            lines.append(f"  mux g{counter} ({ports_str});")
        else:
            keyword = _PRIMITIVE_NAMES.get(gate.gate_type)
            if keyword is None:
                raise NetworkError(f"gate type {gate.gate_type} has no Verilog primitive")
            ports_str = ", ".join(_escape(s).strip() for s in [gate.name] + list(gate.fanins))
            lines.append(f"  {keyword} g{counter} ({ports_str});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(network: LogicNetwork, path: Union[str, Path]) -> None:
    """Write a network to a Verilog file."""
    Path(path).write_text(write_verilog(network))
