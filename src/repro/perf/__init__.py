"""Performance harness: declarative benchmarks, BENCH_*.json, regression gates.

``repro bench`` (see :mod:`repro.eval.cli`) is the operator entry point;
this package holds the measurement machinery (:mod:`repro.perf.harness`)
and the registered workload suites (:mod:`repro.perf.suites`).  See
``docs/performance.md`` for the JSON schema and the regression workflow.
"""

from .harness import (
    BENCH_SCHEMA,
    BenchComparison,
    BenchDelta,
    BenchReport,
    BenchResult,
    BenchSpec,
    RateDelta,
    compare_reports,
    load_bench,
    render_comparison,
    render_results_table,
    run_spec,
    run_suite,
)
from .suites import SPECS, SUITES, suite_names, suite_specs

__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchDelta",
    "BenchReport",
    "BenchResult",
    "BenchSpec",
    "RateDelta",
    "SPECS",
    "SUITES",
    "compare_reports",
    "load_bench",
    "render_comparison",
    "render_results_table",
    "run_spec",
    "run_suite",
    "suite_names",
    "suite_specs",
]
