"""Declarative benchmark harness: specs, measurement, JSON emission, diffing.

This is the measurement core of the ``repro.perf`` subsystem.  A
:class:`BenchSpec` names a workload callable plus warmup/repeat control;
:func:`run_spec` executes it under isolation (fresh synthesis stage cache
per invocation, so repeats measure real work, and the caller's in-process
caches stay unpolluted), recording wall time, CPU time, the process RSS
high-water mark and *domain counters* — patterns, pulse events and
netlist elaborations are captured automatically around every workload,
and workloads may return extra counters of their own.  Rates (counter per
second of best wall time) are derived for throughput-style counters.

Results aggregate into a :class:`BenchReport` that serialises to a
schema-versioned ``BENCH_<suite>.json``; :func:`compare_reports` diffs a
fresh report against a stored baseline and drives the
``repro bench --compare BASELINE.json --fail-on-regress PCT`` workflow
(see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exec import CallableUnit, SerialExecutor
from ..schema import SchemaError, atomic_write_json, load_document, pack, schema_tag

#: Schema tag stamped into every emitted benchmark JSON document (the
#: ``bench`` kind of the ``repro.schema`` registry).
BENCH_SCHEMA = schema_tag("bench")

#: Counters that represent throughput and get a derived ``<name>_per_s`` rate.
RATE_COUNTERS = ("patterns", "events", "units", "new_features")

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class BenchSpec:
    """One declarative, repeatable benchmark.

    Attributes:
        name: Stable identifier (baseline comparison matches on it).
        title: Human-readable description of the measured scenario.
        workload: Zero-argument callable performing the work; may return a
            mapping of extra domain counters (e.g. ``{"patterns": 600}``).
        warmup: Unmeasured invocations before timing starts (imports,
            lazy registries, allocator steady-state).
        repeat: Measured invocations; wall/CPU statistics aggregate them.
        tags: Free-form labels (suite membership is separate, see
            :mod:`repro.perf.suites`).
    """

    name: str
    title: str
    workload: Callable[[], Optional[Mapping[str, float]]]
    warmup: int = 1
    repeat: int = 3
    tags: Tuple[str, ...] = ()


@dataclass
class BenchResult:
    """Measurements of one :class:`BenchSpec` run.

    ``wall_s`` / ``cpu_s`` carry ``min``/``mean``/``max`` over the measured
    repeats (comparisons use ``min`` — the least-noise estimator of the
    workload's true cost).  ``counters`` come from the best (minimum-wall)
    repeat; ``rates`` divide throughput counters by the best wall time.

    ``peak_rss_kb`` is the **process-lifetime** high-water mark sampled
    after the benchmark (``ru_maxrss`` never decreases), so within one
    suite run it is monotone across benchmarks and attributes memory to
    the heaviest workload seen *so far*, not to each benchmark
    individually.  Compare it across runs of the same suite order only.
    """

    name: str
    title: str
    warmup: int
    repeat: int
    wall_s: Dict[str, float] = field(default_factory=dict)
    cpu_s: Dict[str, float] = field(default_factory=dict)
    peak_rss_kb: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "wall_s": dict(self.wall_s),
            "cpu_s": dict(self.cpu_s),
            "peak_rss_kb": self.peak_rss_kb,
            "counters": dict(self.counters),
            "rates": dict(self.rates),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "BenchResult":
        return cls(
            name=str(record.get("name", "")),
            title=str(record.get("title", "")),
            warmup=int(record.get("warmup", 0)),
            repeat=int(record.get("repeat", 0)),
            wall_s={k: float(v) for k, v in (record.get("wall_s") or {}).items()},
            cpu_s={k: float(v) for k, v in (record.get("cpu_s") or {}).items()},
            peak_rss_kb=int(record.get("peak_rss_kb", 0)),
            counters={k: float(v) for k, v in (record.get("counters") or {}).items()},
            rates={k: float(v) for k, v in (record.get("rates") or {}).items()},
        )


@dataclass
class BenchReport:
    """Every result one suite run produced, ready for JSON emission."""

    suite: str
    results: List[BenchResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """The tagged ``repro-bench/1`` document (validated by ``pack``)."""
        return pack(
            "bench",
            {
                "suite": self.suite,
                "python": platform.python_version(),
                "platform": platform.platform(),
                "elapsed_s": self.elapsed_s,
                "results": [result.to_dict() for result in self.results],
            },
        )

    def write(self, directory: Path) -> Path:
        """Write ``BENCH_<suite>.json`` into ``directory`` and return the path.

        Emission is atomic (temp file + ``os.replace`` via
        :func:`repro.schema.atomic_write_json`): a crash mid-write
        leaves any previous report — e.g. a committed baseline the CI
        gate reads — intact instead of truncated.
        """
        path = Path(directory) / f"BENCH_{self.suite}.json"
        return atomic_write_json(path, self.to_dict())


def load_bench(path: Path) -> BenchReport:
    """Load (schema-check, and migrate) a previously emitted ``BENCH_*.json``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    try:
        payload = load_document(data, "bench")
    except SchemaError as error:
        raise SchemaError(f"{path}: {error}") from None
    report = BenchReport(suite=str(payload.get("suite", "")))
    report.elapsed_s = float(payload.get("elapsed_s", 0.0))
    report.results = [BenchResult.from_dict(r) for r in payload.get("results") or []]
    return report


def _peak_rss_kb() -> int:
    """Process RSS high-water mark in KB (``ru_maxrss`` is bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _domain_counter_snapshot() -> Dict[str, int]:
    """Process-wide domain counters captured around every workload."""
    from ..sim.pulse import elaboration_count, total_events_processed

    return {
        "events": total_events_processed(),
        "elaborations": elaboration_count(),
    }


def _isolated_invocation(workload: Callable[[], Optional[Mapping[str, float]]]):
    """Run the workload under a fresh synthesis stage cache.

    The flow's process-wide :class:`~repro.core.flowgraph.StageCache`
    would otherwise serve repeat N>1 from memory — benchmarks must pay
    the full synthesis cost every time, and must not pollute the caller's
    cache with benchmark artefacts.
    """
    from ..core.flowgraph import StageCache, set_stage_cache

    previous = set_stage_cache(StageCache())
    try:
        return workload()
    finally:
        set_stage_cache(previous)


def _bench_unit(spec: BenchSpec) -> CallableUnit:
    """Wrap a spec's workload as an in-process work unit.

    Benchmark workloads are closures over live objects, so only the
    serial backend can run them — but routing them through
    :mod:`repro.exec` gives the harness the same timed, error-capturing
    execution wrapper as every campaign path.  Domain counters are
    process-wide, which is another reason execution must stay
    in-process.
    """
    return CallableUnit(
        name=spec.name,
        fn=lambda: _isolated_invocation(spec.workload),
        kind="bench",
    )


def _run_bench_unit(
    executor: SerialExecutor, spec: BenchSpec
) -> Tuple[Optional[Mapping[str, float]], float, float]:
    """One measured invocation: ``(extra counters, wall_s, cpu_s)``.

    A workload exception was captured by the execution wrapper; re-raise
    it so ``repro bench`` still crashes loudly on a broken workload
    instead of emitting a bogus report.
    """
    result = next(iter(executor.map([_bench_unit(spec)])))
    if result.error is not None:
        raise RuntimeError(
            f"benchmark workload {spec.name!r} failed: "
            f"{result.error.get('type')}: {result.error.get('message')}\n"
            f"{result.error.get('traceback', '')}"
        )
    return result.record, result.seconds, result.cpu_s


def run_spec(
    spec: BenchSpec,
    repeat: Optional[int] = None,
    warmup: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> BenchResult:
    """Execute one benchmark spec and aggregate its measurements."""
    note = progress or (lambda line: None)
    repeats = max(1, int(repeat if repeat is not None else spec.repeat))
    warmups = max(0, int(warmup if warmup is not None else spec.warmup))
    executor = SerialExecutor()

    for index in range(warmups):
        note(f"    warmup {index + 1}/{warmups} {spec.name}")
        _run_bench_unit(executor, spec)

    walls: List[float] = []
    cpus: List[float] = []
    best_counters: Dict[str, float] = {}
    for index in range(repeats):
        before = _domain_counter_snapshot()
        extra, wall, cpu = _run_bench_unit(executor, spec)
        after = _domain_counter_snapshot()
        counters: Dict[str, float] = {
            key: float(after[key] - before[key]) for key in after
        }
        for key, value in (extra or {}).items():
            counters[key] = float(value)
        if not walls or wall < min(walls):
            best_counters = counters
        walls.append(wall)
        cpus.append(cpu)
        note(f"    [{index + 1}/{repeats}] {spec.name} {wall:.3f}s wall")

    best_wall = min(walls)
    rates = {
        f"{key}_per_s": best_counters[key] / best_wall
        for key in RATE_COUNTERS
        if best_counters.get(key) and best_wall > 0
    }
    return BenchResult(
        name=spec.name,
        title=spec.title,
        warmup=warmups,
        repeat=repeats,
        wall_s={
            "min": best_wall,
            "mean": sum(walls) / len(walls),
            "max": max(walls),
        },
        cpu_s={
            "min": min(cpus),
            "mean": sum(cpus) / len(cpus),
            "max": max(cpus),
        },
        peak_rss_kb=_peak_rss_kb(),
        counters=best_counters,
        rates=rates,
    )


def run_suite(
    suite: str,
    specs: Sequence[BenchSpec],
    repeat: Optional[int] = None,
    warmup: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> BenchReport:
    """Run every spec of a suite and collect a :class:`BenchReport`."""
    note = progress or (lambda line: None)
    started = time.perf_counter()
    report = BenchReport(suite=suite)
    for spec in specs:
        note(f"  bench {spec.name}: {spec.title}")
        report.results.append(
            run_spec(spec, repeat=repeat, warmup=warmup, progress=progress)
        )
    report.elapsed_s = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


@dataclass
class BenchDelta:
    """Wall-time delta of one benchmark against the baseline."""

    name: str
    baseline_s: Optional[float]
    current_s: float
    delta_pct: Optional[float]

    def status(self, fail_on_regress: Optional[float]) -> str:
        if self.delta_pct is None:
            return "new"
        if fail_on_regress is not None and self.delta_pct > fail_on_regress:
            return "REGRESS"
        if self.delta_pct < 0:
            return "faster"
        return "ok"


@dataclass
class RateDelta:
    """Throughput-rate delta of one benchmark counter against the baseline.

    Rates are informational: the regression gate runs on wall time only,
    so a rate that is ``new`` (the baseline predates the counter — e.g. a
    benchmark refreshed after a kernel grew a new domain counter) or
    ``gone`` (the counter vanished from the current run) never fails the
    comparison; it is surfaced instead of crashing or being silently
    skipped.
    """

    name: str
    rate: str
    baseline: Optional[float]
    current: Optional[float]
    delta_pct: Optional[float]

    @property
    def status(self) -> str:
        if self.baseline is None:
            return "new"
        if self.current is None:
            return "gone"
        if self.delta_pct is not None and self.delta_pct > 0:
            return "faster"
        return "ok"


@dataclass
class BenchComparison:
    """Diff of a fresh report against a baseline report."""

    deltas: List[BenchDelta] = field(default_factory=list)
    rate_deltas: List[RateDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    fail_on_regress: Optional[float] = None

    @property
    def regressions(self) -> List[BenchDelta]:
        return [
            delta
            for delta in self.deltas
            if delta.status(self.fail_on_regress) == "REGRESS"
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    fail_on_regress: Optional[float] = None,
) -> BenchComparison:
    """Compare best wall times (and throughput rates) by benchmark name.

    ``fail_on_regress`` is a percentage: a benchmark whose best wall time
    grew by more than that over the baseline counts as a regression.
    Benchmarks absent from the baseline are flagged ``new`` (never a
    failure); baseline entries absent from the current run are listed in
    ``missing`` so a silently skipped workload cannot masquerade as green.

    Throughput rates (``*_per_s``) are additionally diffed per counter
    into ``rate_deltas``.  A counter the baseline predates is reported
    with status ``new`` rather than crashing the comparison or being
    silently dropped — refreshed baselines regularly gain counters when
    kernels or workloads grow; rates never affect the regression gate.
    """
    baseline_by_name = {result.name: result for result in baseline.results}
    comparison = BenchComparison(fail_on_regress=fail_on_regress)
    seen = set()
    for result in current.results:
        seen.add(result.name)
        base = baseline_by_name.get(result.name)
        current_s = float(result.wall_s.get("min", 0.0))
        base_rates: Mapping[str, float] = base.rates if base is not None else {}
        for rate in sorted(set(result.rates) | set(base_rates)):
            cur_value = result.rates.get(rate)
            base_value = base_rates.get(rate) if base is not None else None
            delta_pct = None
            if cur_value is not None and base_value:
                delta_pct = (cur_value - base_value) / base_value * 100.0
            comparison.rate_deltas.append(
                RateDelta(result.name, rate, base_value, cur_value, delta_pct)
            )
        if base is None:
            comparison.deltas.append(BenchDelta(result.name, None, current_s, None))
            continue
        base_s = float(base.wall_s.get("min", 0.0))
        delta_pct = ((current_s - base_s) / base_s * 100.0) if base_s > 0 else 0.0
        comparison.deltas.append(
            BenchDelta(result.name, base_s, current_s, delta_pct)
        )
    comparison.missing = sorted(set(baseline_by_name) - seen)
    return comparison


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_results_table(report: BenchReport) -> str:
    """Text table of one suite run (the ``repro bench`` default output)."""
    from ..core import format_table

    rows = []
    for result in report.results:
        interesting = [
            f"{key}={int(value):,}"
            for key, value in sorted(result.counters.items())
            if key in RATE_COUNTERS and value
        ]
        rates = [
            f"{key.removesuffix('_per_s')}/s={value:,.0f}"
            for key, value in sorted(result.rates.items())
        ]
        rows.append(
            [
                result.name,
                f"{result.wall_s.get('min', 0.0):.3f}",
                f"{result.wall_s.get('mean', 0.0):.3f}",
                f"{result.cpu_s.get('min', 0.0):.3f}",
                f"{result.peak_rss_kb / 1024:.0f}",
                " ".join(interesting + rates),
            ]
        )
    return format_table(
        ["Benchmark", "Wall min (s)", "Wall mean (s)", "CPU min (s)", "RSS (MB)", "Throughput"],
        rows,
    )


def render_comparison(comparison: BenchComparison) -> str:
    """Text tables for ``repro bench --compare`` (wall gate + rate info)."""
    from ..core import format_table

    rows = []
    for delta in comparison.deltas:
        rows.append(
            [
                delta.name,
                "-" if delta.baseline_s is None else f"{delta.baseline_s:.3f}",
                f"{delta.current_s:.3f}",
                "-" if delta.delta_pct is None else f"{delta.delta_pct:+.1f}%",
                delta.status(comparison.fail_on_regress),
            ]
        )
    for name in comparison.missing:
        rows.append([name, "?", "-", "-", "MISSING"])
    table = format_table(
        ["Benchmark", "Baseline (s)", "Current (s)", "Delta", "Status"], rows
    )
    if not comparison.rate_deltas:
        return table

    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:,.0f}"

    rate_rows = [
        [
            delta.name,
            delta.rate,
            fmt(delta.baseline),
            fmt(delta.current),
            "-" if delta.delta_pct is None else f"{delta.delta_pct:+.1f}%",
            delta.status,
        ]
        for delta in comparison.rate_deltas
    ]
    rate_table = format_table(
        ["Benchmark", "Rate", "Baseline", "Current", "Delta", "Status"],
        rate_rows,
    )
    return f"{table}\n\nThroughput rates (informational, not gated):\n{rate_table}"
