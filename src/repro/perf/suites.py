"""Registered benchmark suites over the repo's real workloads.

Five scenario families mirror the operator-facing campaigns (catalog
verification, differential fuzzing, fault-margin search, synthesis
flow) plus the two simulation kernels the campaigns spend their time in
(batched pulse simulation, word-parallel AIG simulation).  Every family exists in a
``smoke`` size — seconds, CI-friendly, compared against the committed
baseline in ``benchmarks/baselines/`` — and a full size for local
optimisation work.

All workloads run with the on-disk result cache disabled and (via the
harness) a fresh in-process stage cache per invocation, so repeats pay
the true cost.  Verification workloads additionally assert that every
verdict is EQUIVALENT — a benchmark silently timing a broken campaign
would be worse than no benchmark.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from .harness import BenchSpec

#: Circuits small enough for the smoke suite but structurally diverse
#: (EPFL control, ISCAS85 combinational, two sequential controllers).
SMOKE_VERIFY_CIRCUITS = ("ctrl", "c432", "s27", "s298")
SMOKE_SYNTH_CIRCUITS = ("c880", "s344")
FULL_SYNTH_CIRCUITS = ("c1908", "c3540", "voter", "s838.1")
SMOKE_FAULT_CIRCUITS = ("ctrl", "s27", "s298")


def _verify_workload(
    circuits, patterns: int, effort: str = "medium"
) -> Callable[[], Mapping[str, float]]:
    def run() -> Mapping[str, float]:
        from ..core import Flow, FlowOptions
        from ..eval.runner import Runner
        from ..verify import catalog_specs

        flow = Flow.from_options(FlowOptions(effort=effort))
        specs = catalog_specs(
            circuits=list(circuits) if circuits else None,
            scale="quick",
            flow=flow,
            patterns=patterns,
        )
        report = Runner(jobs=1, cache=None).verify(specs)
        if not report.all_equivalent:
            raise RuntimeError(
                f"verify benchmark produced non-equivalent verdicts: "
                f"{[r.get('circuit') for r in report.failures]}"
            )
        return {"patterns": report.total_patterns(), "circuits": len(specs)}

    return run


def _fuzz_workload(budget: int, seed: int = 0) -> Callable[[], Mapping[str, float]]:
    def run() -> Mapping[str, float]:
        from ..eval.runner import Runner
        from ..gen import FuzzCampaign

        campaign = FuzzCampaign(budget=budget, seed=seed)
        report = Runner(jobs=1, cache=None).fuzz(campaign, shrink=False)
        summary = report.summary()
        if not report.all_equivalent:
            raise RuntimeError("fuzz benchmark produced counterexamples")
        return {
            "patterns": float(summary.get("total_patterns", 0)),
            "units": float(summary.get("units", 0)),
        }

    return run


def _soak_batch_workload(
    budget: int, batch_size: int, seed: int = 0
) -> Callable[[], Mapping[str, float]]:
    """One cold soak shard: batched verify + coverage folding + checkpoints.

    Each invocation runs in a fresh temporary checkpoint directory, so
    repeats measure the full batch loop (verification, feature
    extraction, checkpoint serialisation) rather than a resume no-op.
    """

    def run() -> Mapping[str, float]:
        import tempfile
        from pathlib import Path

        from ..cov.soak import SoakCampaign
        from ..eval.runner import Runner
        from ..gen import FuzzCampaign

        campaign = SoakCampaign(
            fuzz=FuzzCampaign(budget=budget, seed=seed, steer=True),
            batch_size=batch_size,
        )
        with tempfile.TemporaryDirectory(prefix="repro-soak-bench-") as tmp:
            state = Runner(jobs=1, cache=None).soak(campaign, Path(tmp))
        if state.failures:
            raise RuntimeError("soak benchmark produced counterexamples")
        return {
            "units": float(state.units_done),
            "new_features": float(state.new_features_total()),
        }

    return run


def _faults_margin_workload(
    circuits: Sequence[str], kind: str = "jitter", patterns: int = 32
) -> Callable[[], Mapping[str, float]]:
    """Margin bisection per circuit: the fault subsystem's hot loop.

    Each margin search re-verifies the circuit once per probe with the
    fault model installed, so this times the injected simulator path
    (per-net RNG draws on every emission) end to end.
    """

    def run() -> Mapping[str, float]:
        from ..eval.runner import Runner
        from ..faults import FaultCampaign

        campaign = FaultCampaign(
            circuits=tuple(circuits),
            kinds=(kind,),
            patterns=patterns,
            margin=True,
        )
        report = Runner(jobs=1, cache=None).faults(campaign)
        if report.failures:
            raise RuntimeError(
                f"faults benchmark hit nominal miscompares: "
                f"{[r.get('circuit') for r in report.failures]}"
            )
        return {
            "units": float(len(report.records)),
            "probes": float(
                sum(len(r.get("margin_probes") or ()) for r in report.records)
            ),
        }

    return run


def _synthesis_workload(
    circuits: Sequence[str], effort: str = "medium"
) -> Callable[[], Mapping[str, float]]:
    def run() -> Mapping[str, float]:
        from ..circuits import build as build_circuit
        from ..core import Flow, FlowOptions

        flow = Flow.from_options(FlowOptions(effort=effort))
        cells = 0
        for name in circuits:
            result = flow.run(build_circuit(name, "quick"))
            cells += len(result.netlist.cells)
        return {"circuits": float(len(circuits)), "cells": float(cells)}

    return run


@lru_cache(maxsize=None)
def _synthesized(circuit: str, effort: str):
    """Synthesise once per process: the kernel benches time simulation only."""
    from ..circuits import build as build_circuit
    from ..core import Flow, FlowOptions

    network = build_circuit(circuit, "quick")
    return network, Flow.from_options(FlowOptions(effort=effort)).run(network)


def _pulse_batch_workload(
    circuit: str, patterns: int, effort: str = "medium"
) -> Callable[[], Mapping[str, float]]:
    def run() -> Mapping[str, float]:
        from ..sim.pulse import BatchedNetlistSimulator

        network, result = _synthesized(circuit, effort)
        sim = BatchedNetlistSimulator(result.netlist)
        rng = random.Random(0)
        vectors = [
            {name: rng.randint(0, 1) for name in sim.pi_names}
            for _ in range(patterns)
        ]
        sim.run_combinational(vectors)
        return {"patterns": float(patterns)}

    return run


def _aig_sim_workload(
    circuit: str, num_patterns: int, rounds: int
) -> Callable[[], Mapping[str, float]]:
    def run() -> Mapping[str, float]:
        from ..aig import network_to_aig
        from ..aig.simulate import simulate_random
        from ..circuits import build as build_circuit

        aig = network_to_aig(build_circuit(circuit, "quick"))
        for round_index in range(rounds):
            simulate_random(aig, num_patterns=num_patterns, seed=round_index)
        return {"patterns": float(num_patterns * rounds)}

    return run


@lru_cache(maxsize=None)
def _wide_aig(num_pis: int, width: int, depth: int):
    """Deterministic wide synthetic DAG exercising the numpy AIG kernel.

    The catalog circuits are narrow (mean AND-level width below ~10), so
    the ``auto`` dispatch correctly keeps them on the bigint kernel; a
    dedicated wide graph is needed to benchmark the levelised numpy
    sweep at its operating point.
    """
    from ..aig.graph import Aig

    rng = random.Random(0xA16)
    aig = Aig(f"wide{width}x{depth}")
    layer = [aig.add_pi() for _ in range(num_pis)]
    for _ in range(depth):
        layer = [
            aig.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1))
            for a, b in (rng.sample(layer, 2) for _ in range(width))
        ]
    for lit in layer[: min(8, len(layer))]:
        aig.add_po(lit)
    return aig


def _aig_sim_wide_workload(
    num_patterns: int, rounds: int, width: int = 1500, depth: int = 8
) -> Callable[[], Mapping[str, float]]:
    def run() -> Mapping[str, float]:
        from ..aig.simulate import simulate_random

        aig = _wide_aig(64, width, depth)
        for round_index in range(rounds):
            simulate_random(aig, num_patterns=num_patterns, seed=round_index)
        return {"patterns": float(num_patterns * rounds)}

    return run


def _exec_overhead_workload(
    units: int = 400, spin: int = 200
) -> Callable[[], Mapping[str, float]]:
    """Pure scheduling overhead of the supervised persistent-worker backend.

    Probe units do near-zero work, so the measured wall time is
    dominated by the ``repro.exec`` lifecycle itself: keying, dispatch
    over the worker queues, result collection, event emission.  A
    regression here means every campaign pays more per unit.
    """

    def run() -> Mapping[str, float]:
        from ..exec import PersistentWorkerExecutor, ProbeUnit, run_units

        probes = [ProbeUnit(index=i, spin=spin) for i in range(units)]
        with PersistentWorkerExecutor(jobs=2) as executor:
            outcome = run_units(probes, executor=executor, jobs=2)
        if outcome.errors or outcome.computed != units:
            raise RuntimeError("exec overhead benchmark lost units")
        return {"units": float(units)}

    return run


def _specs(entries: Sequence[BenchSpec]) -> Dict[str, BenchSpec]:
    return {spec.name: spec for spec in entries}


SPECS: Dict[str, BenchSpec] = _specs(
    [
        # Smoke workloads are sized to run a few hundred milliseconds at
        # least: much shorter and the CI regression gate's percentage
        # threshold starts measuring scheduler jitter instead of code.
        BenchSpec(
            "verify-smoke",
            f"catalog verify subset ({', '.join(SMOKE_VERIFY_CIRCUITS)}, 128 patterns)",
            _verify_workload(SMOKE_VERIFY_CIRCUITS, patterns=128),
            tags=("verify",),
        ),
        BenchSpec(
            "fuzz-smoke",
            "differential fuzz campaign (budget 20, default flows)",
            _fuzz_workload(budget=20),
            tags=("fuzz",),
        ),
        BenchSpec(
            "soak-batch-smoke",
            "steered soak shard (budget 8, batch 4, fresh checkpoints)",
            _soak_batch_workload(budget=8, batch_size=4),
            tags=("fuzz", "soak"),
        ),
        BenchSpec(
            "soak-batch",
            "steered soak shard (budget 60, batch 20, fresh checkpoints)",
            _soak_batch_workload(budget=60, batch_size=20),
            repeat=2,
            tags=("fuzz", "soak"),
        ),
        BenchSpec(
            "faults-margin-smoke",
            f"fault-margin bisection, jitter ({', '.join(SMOKE_FAULT_CIRCUITS)}, 32 patterns)",
            _faults_margin_workload(SMOKE_FAULT_CIRCUITS),
            tags=("faults",),
        ),
        BenchSpec(
            "synthesis-smoke",
            f"synthesis flow, medium effort ({', '.join(SMOKE_SYNTH_CIRCUITS)})",
            _synthesis_workload(SMOKE_SYNTH_CIRCUITS),
            tags=("synthesis",),
        ),
        BenchSpec(
            "pulse-batch-smoke",
            "batched pulse simulation of c880 (512 patterns, one elaboration)",
            _pulse_batch_workload("c880", patterns=512),
            tags=("kernel",),
        ),
        BenchSpec(
            "aig-sim-smoke",
            "word-parallel AIG simulation of voter (256-bit words x 2048 rounds)",
            _aig_sim_workload("voter", num_patterns=256, rounds=2048),
            tags=("kernel",),
        ),
        BenchSpec(
            "aig-sim-wide-smoke",
            "levelised numpy AIG sweep, wide synthetic DAG (12k nodes, 64-bit words x 1024 rounds)",
            _aig_sim_wide_workload(num_patterns=64, rounds=1024),
            tags=("kernel",),
        ),
        BenchSpec(
            "aig-sim-wide",
            "levelised numpy AIG sweep, wide synthetic DAG (12k nodes, 256-bit words x 4096 rounds)",
            _aig_sim_wide_workload(num_patterns=256, rounds=4096),
            tags=("kernel",),
        ),
        BenchSpec(
            "exec-overhead-smoke",
            "repro.exec per-unit scheduling overhead (400 probe units, 2 workers)",
            _exec_overhead_workload(units=400),
            tags=("exec",),
        ),
        BenchSpec(
            "verify-catalog",
            "full catalog verification campaign (37 circuits, 256 patterns)",
            _verify_workload(None, patterns=256),
            repeat=2,
            tags=("verify",),
        ),
        BenchSpec(
            "fuzz-campaign",
            "differential fuzz campaign (budget 200, default flows)",
            _fuzz_workload(budget=200),
            repeat=2,
            tags=("fuzz",),
        ),
        BenchSpec(
            "synthesis-flow",
            f"synthesis flow, medium effort ({', '.join(FULL_SYNTH_CIRCUITS)})",
            _synthesis_workload(FULL_SYNTH_CIRCUITS),
            repeat=2,
            tags=("synthesis",),
        ),
        BenchSpec(
            "pulse-batch",
            "batched pulse simulation of c1908 (1024 patterns, one elaboration)",
            _pulse_batch_workload("c1908", patterns=1024),
            tags=("kernel",),
        ),
        BenchSpec(
            "aig-sim",
            "word-parallel AIG simulation of c6288 (1024-bit words x 64 rounds)",
            _aig_sim_workload("c6288", num_patterns=1024, rounds=64),
            tags=("kernel",),
        ),
    ]
)

#: Suite name -> ordered benchmark names.
SUITES: Dict[str, Tuple[str, ...]] = {
    "smoke": (
        "verify-smoke",
        "fuzz-smoke",
        "synthesis-smoke",
        "faults-margin-smoke",
        "pulse-batch-smoke",
        "aig-sim-smoke",
        "aig-sim-wide-smoke",
        "exec-overhead-smoke",
    ),
    "exec": ("exec-overhead-smoke",),
    "verify": ("verify-catalog",),
    "faults": ("faults-margin-smoke",),
    "fuzz": ("fuzz-campaign",),
    "soak": ("soak-batch-smoke", "soak-batch"),
    "synthesis": ("synthesis-flow",),
    "kernels": ("pulse-batch", "aig-sim", "aig-sim-wide"),
    "full": (
        "verify-catalog",
        "fuzz-campaign",
        "synthesis-flow",
        "pulse-batch",
        "aig-sim",
        "aig-sim-wide",
    ),
}


def suite_names() -> List[str]:
    return sorted(SUITES)


def suite_specs(suite: str) -> List[BenchSpec]:
    """Resolve a suite name into its ordered benchmark specs."""
    try:
        names = SUITES[suite]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {suite!r}; known: {', '.join(suite_names())}"
        ) from None
    return [SPECS[name] for name in names]
