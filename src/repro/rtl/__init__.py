"""RTL front end: a small Python-embedded HDL that elaborates to LogicNetwork."""

from .dsl import Register, RtlModule, Signal, Word, WordRegister

__all__ = ["RtlModule", "Signal", "Register", "Word", "WordRegister"]
