"""A tiny RTL eDSL that elaborates to :class:`LogicNetwork`.

The paper's flow starts "from arbitrary register transfer level (RTL)
code"; this module provides the Python-embedded front end for that role:
designs are described with :class:`Signal` / :class:`Word` expressions and
registers, and :meth:`RtlModule.elaborate` lowers them onto the
technology-independent gate network that the rest of the flow consumes.

Example::

    m = RtlModule("accumulator")
    enable = m.input("enable")
    data = m.input_word("data", 8)
    acc = m.register_word("acc", 8)
    total = acc + data
    acc.next_value(Word.mux(enable, acc, total))
    m.output_word("total", acc)
    network = m.elaborate()
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..netlist.network import LogicNetwork, NetworkBuilder


class Signal:
    """A single-bit signal inside an :class:`RtlModule`."""

    def __init__(self, module: "RtlModule", net: str) -> None:
        self.module = module
        self.net = net

    # -- boolean operators -------------------------------------------------
    def __and__(self, other: "Signal") -> "Signal":
        return self.module._wrap(self.module._builder.and_(self.net, other.net))

    def __or__(self, other: "Signal") -> "Signal":
        return self.module._wrap(self.module._builder.or_(self.net, other.net))

    def __xor__(self, other: "Signal") -> "Signal":
        return self.module._wrap(self.module._builder.xor(self.net, other.net))

    def __invert__(self) -> "Signal":
        return self.module._wrap(self.module._builder.not_(self.net))

    def mux(self, if_zero: "Signal", if_one: "Signal") -> "Signal":
        """``self ? if_one : if_zero``."""
        return self.module._wrap(self.module._builder.mux(self.net, if_zero.net, if_one.net))


class Register(Signal):
    """A single-bit state element; assign its next value with :meth:`next_value`."""

    def __init__(self, module: "RtlModule", net: str) -> None:
        super().__init__(module, net)
        self._assigned = False

    def next_value(self, value: Signal) -> None:
        """Set the signal captured at every clock edge."""
        self.module._builder.network.gates[self.net].fanins = [value.net]
        self._assigned = True


class Word:
    """A fixed-width little-endian vector of :class:`Signal` bits."""

    def __init__(self, bits: Sequence[Signal]) -> None:
        if not bits:
            raise ValueError("a Word needs at least one bit")
        self.bits = list(bits)
        self.module = bits[0].module

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index: Union[int, slice]) -> Union[Signal, "Word"]:
        if isinstance(index, slice):
            return Word(self.bits[index])
        return self.bits[index]

    # -- bitwise -----------------------------------------------------------
    def _zip(self, other: "Word", op) -> "Word":
        if len(other) != len(self):
            raise ValueError("word width mismatch")
        return Word([op(a, b) for a, b in zip(self.bits, other.bits)])

    def __and__(self, other: "Word") -> "Word":
        return self._zip(other, lambda a, b: a & b)

    def __or__(self, other: "Word") -> "Word":
        return self._zip(other, lambda a, b: a | b)

    def __xor__(self, other: "Word") -> "Word":
        return self._zip(other, lambda a, b: a ^ b)

    def __invert__(self) -> "Word":
        return Word([~bit for bit in self.bits])

    # -- arithmetic / comparison -------------------------------------------
    def __add__(self, other: "Word") -> "Word":
        builder = self.module._builder
        sums, _ = builder.ripple_adder([b.net for b in self.bits], [b.net for b in other.bits])
        return Word([self.module._wrap(net) for net in sums])

    def add_with_carry(self, other: "Word") -> tuple["Word", Signal]:
        """Sum and carry-out."""
        builder = self.module._builder
        sums, carry = builder.ripple_adder([b.net for b in self.bits], [b.net for b in other.bits])
        return Word([self.module._wrap(net) for net in sums]), self.module._wrap(carry)

    def equals(self, other: "Word") -> Signal:
        builder = self.module._builder
        bits = [builder.xnor(a.net, b.net) for a, b in zip(self.bits, other.bits)]
        return self.module._wrap(builder.and_(*bits))

    def reduce_or(self) -> Signal:
        builder = self.module._builder
        return self.module._wrap(builder.or_(*[b.net for b in self.bits]))

    def reduce_and(self) -> Signal:
        builder = self.module._builder
        return self.module._wrap(builder.and_(*[b.net for b in self.bits]))

    def reduce_xor(self) -> Signal:
        result = self.bits[0]
        for bit in self.bits[1:]:
            result = result ^ bit
        return result

    @staticmethod
    def mux(select: Signal, if_zero: "Word", if_one: "Word") -> "Word":
        return Word([select.mux(z, o) for z, o in zip(if_zero.bits, if_one.bits)])

    def shifted_left(self, amount: int = 1) -> "Word":
        """Logical shift left by a constant, keeping the width."""
        zeros = [self.module.constant(0) for _ in range(amount)]
        return Word((zeros + self.bits)[: len(self.bits)])


class WordRegister(Word):
    """A register word; assign its next value with :meth:`next_value`."""

    def next_value(self, value: Word) -> None:
        if len(value) != len(self):
            raise ValueError("word width mismatch in register assignment")
        for bit, nxt in zip(self.bits, value.bits):
            self.module._builder.network.gates[bit.net].fanins = [nxt.net]


class RtlModule:
    """A small RTL design that elaborates into a :class:`LogicNetwork`."""

    def __init__(self, name: str = "rtl") -> None:
        self.name = name
        self._builder = NetworkBuilder(name)

    # -- construction helpers ------------------------------------------------
    def _wrap(self, net: str) -> Signal:
        return Signal(self, net)

    def constant(self, value: int) -> Signal:
        return self._wrap(self._builder.const(value))

    def constant_word(self, value: int, width: int) -> Word:
        return Word([self.constant((value >> k) & 1) for k in range(width)])

    def input(self, name: str) -> Signal:
        return self._wrap(self._builder.input(name))

    def input_word(self, name: str, width: int) -> Word:
        return Word([self._wrap(net) for net in self._builder.word_inputs(name, width)])

    def register(self, name: str, init: int = 0) -> Register:
        net = self._builder.dff(self._builder.const(0), name=name, init=init)
        return Register(self, net)

    def register_word(self, name: str, width: int, init: int = 0) -> WordRegister:
        bits = [
            Register(self, self._builder.dff(self._builder.const(0), name=f"{name}[{k}]", init=(init >> k) & 1))
            for k in range(width)
        ]
        return WordRegister(bits)

    def output(self, name: str, signal: Signal) -> None:
        self._builder.output(signal.net, name)

    def output_word(self, name: str, word: Word) -> None:
        for k, bit in enumerate(word.bits):
            self._builder.output(bit.net, f"{name}[{k}]")

    # -- elaboration ----------------------------------------------------------
    def elaborate(self, validate: bool = True) -> LogicNetwork:
        """Lower the module to a gate-level network."""
        return self._builder.finish(validate=validate)
