"""``repro.schema`` — the typed, versioned message layer.

Every document family that crosses a process or disk boundary — eval
cache records, verification and fault records, bench reports, coverage
maps, soak checkpoints, fault-campaign reports, regression-corpus
entries — is declared here once and shares:

* one versioned envelope: the reserved top-level key
  ``"schema": "repro-<kind>/<version>"`` beside the payload fields
  (:func:`pack` stamps it, :func:`load_document` strips it);
* per-type field validation on load and explicit
  ``migrate(vN -> vN+1)`` hooks, so old on-disk documents keep loading
  forever (:mod:`repro.schema.registry`);
* one canonical serialiser with **no** ``default=str`` escape hatch
  (:mod:`repro.schema.canonical`) — non-wire-safe values raise
  :class:`WireFormatError` instead of silently stringifying, and
  content-addressed keys are ``PYTHONHASHSEED``-stable by
  construction;
* shared durable IO: temp-file + ``os.replace`` writes and corrupt-file
  quarantine (:mod:`repro.schema.io`).

See ``docs/schema.md`` for the envelope, versioning and migration
policy.  ROADMAP item 1 (the campaign service daemon) consumes this
layer as its wire format.
"""

from .canonical import (
    SchemaError,
    WireFormatError,
    canonical_json,
    content_key,
    ensure_wire_safe,
)
from .io import atomic_write_json, quarantine
from .registry import (
    TAG_KEY,
    MessageType,
    load_document,
    message_type,
    pack,
    parse_tag,
    register,
    registered_kinds,
    schema_tag,
)
from . import types as _types  # noqa: F401  - registers the concrete kinds

__all__ = [
    "MessageType",
    "SchemaError",
    "TAG_KEY",
    "WireFormatError",
    "atomic_write_json",
    "canonical_json",
    "content_key",
    "ensure_wire_safe",
    "load_document",
    "message_type",
    "pack",
    "parse_tag",
    "quarantine",
    "register",
    "registered_kinds",
    "schema_tag",
]
