"""Canonical wire serialisation: one JSON dialect for every document.

Every document the package persists or keys on — cache records, verdict
records, bench reports, coverage maps, soak checkpoints, fault reports —
is serialised through this module, which pins down exactly one byte
representation per value:

* mappings sort their keys, sequences keep their order;
* separators are compact (``(",", ":")``) for content-addressed /
  canonical text (pretty-printed emission goes through
  :func:`repro.schema.io.atomic_write_json`, which shares the same
  wire-safety rules);
* only JSON-native values are accepted.  There is deliberately **no**
  ``default=`` hook: an object that is not wire-safe raises
  :class:`WireFormatError` instead of being silently stringified.
  ``default=str`` was how two distinct payloads could collide (any two
  objects whose ``str()`` agree) or destabilise (a ``str()`` embedding a
  memory address hashes differently every run);
* NaN / Infinity floats are rejected — ``json.dump`` would emit them as
  the non-standard ``NaN``/``Infinity`` tokens, which
  ``json.loads``-compatible readers outside Python refuse.

:class:`SchemaError` subclasses :class:`ValueError` so call sites (and
tests) that predate the schema layer — ``except ValueError`` around
loaders, ``pytest.raises(ValueError, match="schema")`` — keep working
unchanged.
"""

from __future__ import annotations

import hashlib
import json
import math

__all__ = [
    "SchemaError",
    "WireFormatError",
    "canonical_json",
    "content_key",
    "ensure_wire_safe",
]


class SchemaError(ValueError):
    """A document violates the typed schema layer's contract."""


class WireFormatError(SchemaError):
    """A value cannot be represented losslessly in canonical wire JSON."""


def ensure_wire_safe(value: object, path: str = "$") -> object:
    """Validate (and return) ``value`` as canonical-JSON representable.

    Accepts exactly the JSON-native types — ``str``, ``int``, finite
    ``float``, ``bool``, ``None``, and ``list``/``tuple``/``dict``
    compositions thereof with string keys.  Anything else raises
    :class:`WireFormatError` naming the offending ``path``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise WireFormatError(
                f"non-finite float {value!r} at {path} is not wire-safe; "
                "the schema serialiser rejects NaN/Infinity"
            )
        return value
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            ensure_wire_safe(item, f"{path}[{index}]")
        return value
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireFormatError(
                    f"non-string mapping key {key!r} at {path} is not "
                    "wire-safe; schema documents use string keys only"
                )
            ensure_wire_safe(item, f"{path}.{key}")
        return value
    raise WireFormatError(
        f"{type(value).__name__} value at {path} is not wire-safe; the "
        "canonical schema serialiser refuses to stringify non-JSON-native "
        f"values (got {value!r})"
    )


def canonical_json(value: object) -> str:
    """The one canonical text form of ``value``: sorted, compact, strict.

    Equal values serialise byte-identically in every process on every
    platform (``PYTHONHASHSEED`` never leaks into the output), which is
    what content-addressed keys and byte-stability contracts are built
    on.  Raises :class:`WireFormatError` for non-wire-safe input.
    """
    ensure_wire_safe(value)
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def content_key(value: object) -> str:
    """SHA-256 hex digest of the canonical serialisation of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
