"""Durable document IO shared by every schema family.

Two primitives every writer and loader in the package now routes
through:

* :func:`atomic_write_json` — wire-safety-checked JSON emission via a
  same-directory temp file + ``os.replace``, so a crash (or a full
  disk) mid-write never corrupts the previous version of the document.
  The cache, the soak checkpoints and the bench baselines all share
  this one implementation.
* :func:`quarantine` — move a document that failed to parse or
  validate aside as ``<name>.corrupt`` instead of deleting it, so a
  recompute can proceed while the evidence survives for inspection.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Optional

from .canonical import ensure_wire_safe

__all__ = ["atomic_write_json", "quarantine"]

logger = logging.getLogger(__name__)


def atomic_write_json(
    path: os.PathLike,
    document: object,
    indent: Optional[int] = 2,
    sort_keys: bool = True,
    compact: bool = False,
    newline: bool = True,
) -> Path:
    """Atomically write ``document`` as JSON to ``path``.

    The document is wire-safety-checked first (no ``default=str``
    fallback, no NaN/Infinity), serialised to a temp file in the target
    directory, then ``os.replace``d over ``path`` — readers see either
    the old bytes or the new bytes, never a prefix.  ``compact=True``
    switches to the canonical compact separators (cache records);
    the default pretty form (``indent=2``, sorted keys, trailing
    newline) matches every pinned on-disk artefact format.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ensure_wire_safe(document)
    if compact:
        text = json.dumps(
            document, sort_keys=sort_keys, separators=(",", ":"), allow_nan=False
        )
    else:
        text = json.dumps(document, indent=indent, sort_keys=sort_keys, allow_nan=False)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if newline:
                handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def quarantine(path: os.PathLike) -> Optional[Path]:
    """Move a corrupt document aside as ``<name>.corrupt``.

    Returns the quarantine path, or ``None`` when the move itself
    failed (the original may be gone already); never raises.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target
