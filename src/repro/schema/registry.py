"""The typed message registry: one versioned envelope for every document.

A :class:`MessageType` declares one *kind* of document the package puts
on a wire or a disk: its current version, the fields a valid payload
must carry, and the explicit ``migrate(vN -> vN+1)`` hooks that carry
old documents forward.  Every persisted document is tagged with the
envelope ``"schema": "repro-<kind>/<version>"`` inlined beside its
payload fields (the tag is a reserved top-level key, *not* a nesting
level — several document families pin the byte position of their first
payload key, so the envelope must stay flat).

* :func:`pack` stamps a payload with its kind's current tag after
  validating it (wire-safe values, required fields, no pre-existing
  ``"schema"`` key).
* :func:`load_document` does the reverse: parse the tag (or apply the
  kind's *legacy sniff* for documents written before tagging existed),
  run the migration chain up to the current version, validate the
  resulting payload, and return it with the tag stripped — so
  ``load_document(pack(kind, payload), kind) == payload`` and cached
  replays stay byte-identical.

Versioning policy (documented in ``docs/schema.md``): bump the version
whenever a reader of the previous version would misread a new document,
and register a migration from the previous version in the same change.
Migrations are total functions ``payload -> payload`` from version N to
exactly N+1; loaders chain them, so a v1 document loads through every
hop to current.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from .canonical import SchemaError, ensure_wire_safe

__all__ = [
    "TAG_KEY",
    "MessageType",
    "load_document",
    "message_type",
    "pack",
    "parse_tag",
    "register",
    "registered_kinds",
    "schema_tag",
]

#: The reserved envelope key carrying the ``repro-<kind>/<N>`` tag.
TAG_KEY = "schema"

_TAG_PATTERN = re.compile(r"^repro-([a-z][a-z0-9-]*)/([0-9]+)$")

#: A migration hook: payload at version N -> payload at version N+1.
Migration = Callable[[Dict[str, object]], Dict[str, object]]

#: Required payload fields: name -> accepted types (empty = any value).
FieldSpec = Tuple[Tuple[str, Tuple[type, ...]], ...]


@dataclass(frozen=True)
class MessageType:
    """Declaration of one document kind the registry knows how to handle.

    Attributes:
        kind: Short lowercase family name (``record``, ``bench``, ...).
        version: Current version; :func:`pack` stamps it, loaders
            migrate up to it.
        required: Required payload fields with their accepted types
            (checked after migration; extra fields are always allowed,
            so payloads can grow without a version bump).
        legacy_version: Version to assume for *untagged* documents, for
            families that predate the envelope (``None`` = a missing
            tag is an error).
        migrations: ``{from_version: hook}`` where each hook produces
            the ``from_version + 1`` payload.
    """

    kind: str
    version: int
    required: FieldSpec = ()
    legacy_version: Optional[int] = None
    migrations: Mapping[int, Migration] = field(default_factory=dict)

    @property
    def tag(self) -> str:
        return f"repro-{self.kind}/{self.version}"

    def validate(self, payload: Mapping[str, object]) -> None:
        """Check required fields and their types (post-migration shape)."""
        for name, types in self.required:
            if name not in payload:
                raise SchemaError(
                    f"schema {self.tag!r} document is missing required "
                    f"field {name!r}"
                )
            value = payload[name]
            if not types:
                continue
            if isinstance(value, bool) and bool not in types:
                # bool subclasses int; an int-typed field must not
                # silently accept True/False.
                raise SchemaError(
                    f"schema {self.tag!r} field {name!r} expects "
                    f"{_type_names(types)}, got bool"
                )
            if not isinstance(value, tuple(types)):
                raise SchemaError(
                    f"schema {self.tag!r} field {name!r} expects "
                    f"{_type_names(types)}, got {type(value).__name__}"
                )


def _type_names(types: Tuple[type, ...]) -> str:
    return "/".join(t.__name__ for t in types)


_REGISTRY: Dict[str, MessageType] = {}


def register(message: MessageType) -> MessageType:
    """Add a message type to the global registry (kinds are unique)."""
    if message.kind in _REGISTRY:
        raise SchemaError(f"schema kind {message.kind!r} is already registered")
    if not _TAG_PATTERN.match(message.tag):
        raise SchemaError(f"invalid schema kind/version: {message.tag!r}")
    _REGISTRY[message.kind] = message
    return message


def registered_kinds() -> Tuple[str, ...]:
    """Every registered kind, sorted."""
    return tuple(sorted(_REGISTRY))


def message_type(kind: str) -> MessageType:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise SchemaError(
            f"unknown schema kind {kind!r}; registered: {', '.join(registered_kinds())}"
        ) from None


def schema_tag(kind: str) -> str:
    """The current ``repro-<kind>/<N>`` tag of a registered kind."""
    return message_type(kind).tag


def parse_tag(tag: object) -> Tuple[str, int]:
    """Split a ``repro-<kind>/<N>`` tag into ``(kind, version)``."""
    match = _TAG_PATTERN.match(tag) if isinstance(tag, str) else None
    if match is None:
        raise SchemaError(
            f"malformed schema tag {tag!r}; expected 'repro-<kind>/<version>'"
        )
    return match.group(1), int(match.group(2))


def pack(kind: str, payload: Mapping[str, object]) -> Dict[str, object]:
    """Validate ``payload`` and stamp it with ``kind``'s current tag.

    The payload must be wire-safe, must carry the kind's required
    fields, and must not already contain the reserved ``"schema"`` key
    (double-tagging would make the envelope ambiguous on load).
    """
    message = message_type(kind)
    if TAG_KEY in payload:
        raise SchemaError(
            f"payload for schema {message.tag!r} already carries a "
            f"{TAG_KEY!r} key; the envelope tag is reserved"
        )
    ensure_wire_safe(dict(payload))
    message.validate(payload)
    document = dict(payload)
    document[TAG_KEY] = message.tag
    return document


def load_document(
    document: Mapping[str, object], kind: str, source: str = ""
) -> Dict[str, object]:
    """Parse, migrate and validate one document of ``kind``.

    Returns the payload with the envelope tag stripped.  Untagged
    documents are accepted only for kinds with a ``legacy_version``
    (document families that predate the envelope) and enter the
    migration chain at that version.  Raises :class:`SchemaError` — a
    ``ValueError`` — on a foreign tag, an unknown version with no
    migration path, or a payload that fails validation.
    """
    message = message_type(kind)
    where = f"{source}: " if source else ""
    if not isinstance(document, Mapping):
        raise SchemaError(
            f"{where}schema {message.tag!r} document must be a mapping, "
            f"got {type(document).__name__}"
        )
    tag = document.get(TAG_KEY)
    payload = {key: value for key, value in document.items() if key != TAG_KEY}
    if tag is None:
        if message.legacy_version is None:
            raise SchemaError(
                f"{where}document carries no schema tag; expected {message.tag!r}"
            )
        version = message.legacy_version
    else:
        tag_kind, version = parse_tag(tag)
        if tag_kind != message.kind:
            raise SchemaError(
                f"{where}document carries schema {tag!r}, expected {message.tag!r}"
            )
    while version != message.version:
        migrate = message.migrations.get(version)
        if migrate is None:
            raise SchemaError(
                f"{where}document carries schema 'repro-{message.kind}/{version}', "
                f"expected {message.tag!r}, and no migration path covers v{version}"
            )
        payload = dict(migrate(payload))
        version += 1
    message.validate(payload)
    return payload
