"""Registrations of every concrete document family.

One :class:`~repro.schema.registry.MessageType` per family the package
persists.  The version history (details in ``docs/schema.md``):

``record`` (synthesis cache records, ``repro.eval.engine``)
    v1–v2 predate the envelope and were written untagged (the version
    lived only in the cache key).  v3 introduces the on-disk tag;
    untagged documents sniff as v2 and migrate by identity.
``verify`` (verification/fuzz verdict records, ``repro.verify``)
    v2 (untagged, gained ``cell_counts``) -> v3 (tagged), identity
    migration.  Fuzz units verify a ``VerificationSpec``, so their
    records ride this kind.
``fault`` (fault-injection records, ``repro.faults``)
    v1 (untagged) -> v2 (tagged), identity migration.
``bench`` / ``cov`` / ``soak`` / ``faults``
    Born tagged at v1 (``repro-bench/1`` etc.); unchanged layouts, now
    loaded/stamped through the shared registry.
``corpus`` (pinned regression-corpus entries, ``tests/gen/corpus``)
    The committed entries are untagged v1 documents and stay that way
    (``legacy_version=1``): the corpus is hand-edited, so the loaders
    accept the bare form and validation is the value added.
"""

from __future__ import annotations

from typing import Dict

from .registry import MessageType, register

__all__ = [
    "BENCH",
    "CORPUS",
    "COV",
    "FAULT",
    "FAULTS_REPORT",
    "RECORD",
    "SOAK",
    "VERIFY",
]


def _identity(payload: Dict[str, object]) -> Dict[str, object]:
    """Tag-introduction migration: the payload layout did not change."""
    return payload


RECORD = register(
    MessageType(
        kind="record",
        version=3,
        required=(
            ("circuit", (str,)),
            ("scale", (str,)),
            ("flow", (list, tuple)),
        ),
        legacy_version=2,
        migrations={2: _identity},
    )
)

VERIFY = register(
    MessageType(
        kind="verify",
        version=3,
        required=(
            ("circuit", (str,)),
            ("status", (str,)),
            ("flow", (list, tuple)),
            ("patterns", (int,)),
        ),
        legacy_version=2,
        migrations={2: _identity},
    )
)

FAULT = register(
    MessageType(
        kind="fault",
        version=2,
        required=(
            ("circuit", (str,)),
            ("scenario", (str,)),
            ("status", (str,)),
            ("fault_kind", (str,)),
        ),
        legacy_version=1,
        migrations={1: _identity},
    )
)

BENCH = register(
    MessageType(
        kind="bench",
        version=1,
        required=(
            ("suite", (str,)),
            ("results", (list, tuple)),
        ),
    )
)

COV = register(
    MessageType(
        kind="cov",
        version=1,
        required=(("features", (dict,)),),
    )
)

SOAK = register(
    MessageType(
        kind="soak",
        version=1,
        required=(
            ("campaign", (dict,)),
            ("units_total", (int,)),
            ("units_done", (int,)),
            ("batches", (list, tuple)),
            ("records", (list, tuple)),
            ("coverage", (dict,)),
        ),
    )
)

FAULTS_REPORT = register(
    MessageType(
        kind="faults",
        version=1,
        required=(
            ("campaign", (dict,)),
            ("rows", (list, tuple)),
            ("summary", (dict,)),
            ("text", (str,)),
        ),
    )
)

CORPUS = register(
    MessageType(
        kind="corpus",
        version=1,
        required=(
            ("family", (str,)),
            ("params", (dict,)),
            ("seed", (int,)),
            ("flows", (list, tuple)),
        ),
        legacy_version=1,
    )
)
