"""Simulation substrates: pulse-level (event-driven) and analog (RCSJ)."""

from . import pulse

__all__ = ["pulse"]
