"""Reduced analog (RCSJ phase-model) simulation and cell characterisation."""

from .rcsj import (
    PHI0,
    PHI0_BAR,
    CurrentSource,
    Inductor,
    JjCircuit,
    JjWaveforms,
    Junction,
    propagation_delay,
    sfq_pulse_train,
)
from .cells import AnalogCell, drive, droc_cell, fa_cell, jtl_chain, la_cell
from .characterize import (
    CharacterizationResult,
    characterization_report,
    characterize_droc,
    characterize_fa,
    characterize_jtl,
    characterize_la,
)

__all__ = [
    "PHI0",
    "PHI0_BAR",
    "Junction",
    "Inductor",
    "CurrentSource",
    "JjCircuit",
    "JjWaveforms",
    "sfq_pulse_train",
    "propagation_delay",
    "AnalogCell",
    "jtl_chain",
    "la_cell",
    "fa_cell",
    "droc_cell",
    "drive",
    "CharacterizationResult",
    "characterize_jtl",
    "characterize_la",
    "characterize_fa",
    "characterize_droc",
    "characterization_report",
]
