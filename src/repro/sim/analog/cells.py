"""Analog cell templates: JTL, LA (C element), FA and DROC in the RCSJ model.

Each builder returns a :class:`JjCircuit` plus the node indices used for
stimulus and observation, so characterisation (delay extraction from phase
slips) can be scripted the same way the paper scripts HSPICE.  The
parameters are loosely based on the 100 uA/um2 SFQ5ee process the paper
uses (Ic around 100-250 uA, inductances of a few pH); they are tuned for
robust pulse propagation in the reduced model rather than for layout
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .rcsj import CurrentSource, Inductor, JjCircuit, Junction, sfq_pulse_train


@dataclass
class AnalogCell:
    """A JJ circuit plus its interface node indices."""

    circuit: JjCircuit
    input_nodes: Dict[str, int]
    output_node: int
    description: str = ""


def jtl_chain(num_stages: int = 3, bias_fraction: float = 0.7) -> AnalogCell:
    """A chain of JTL stages: the canonical pulse-propagation test bench."""
    circuit = JjCircuit(num_stages)
    for stage in range(num_stages):
        circuit.add_junction(Junction(stage, critical_current=150e-6))
        circuit.add_source(CurrentSource(stage, amplitude=bias_fraction * 150e-6))
        if stage > 0:
            circuit.add_inductor(Inductor(stage - 1, stage, 4e-12))
    return AnalogCell(circuit, {"a": 0}, num_stages - 1, "JTL chain")


def la_cell(bias_fraction: float = 0.65) -> AnalogCell:
    """Last-Arrival (C element) template: two input branches merging on an output junction.

    Each input branch is under-biased so a single incoming pulse cannot flip
    the output junction; the stored flux from the first pulse plus the
    current of the second pushes the output junction over its critical
    current — the AND behaviour of the dual-rail mapping.
    """
    # Nodes: 0 = input a buffer, 1 = input b buffer, 2 = output junction.
    # The 12 pH coupling inductors make a single 2*pi slip on one input
    # insufficient (Phi0 / 12 pH ~ 170 uA of loop current against a 220 uA
    # output junction at ~35% bias); the second input's slip tips it over.
    circuit = JjCircuit(3)
    circuit.add_junction(Junction(0, critical_current=150e-6))
    circuit.add_junction(Junction(1, critical_current=150e-6))
    circuit.add_junction(Junction(2, critical_current=220e-6))
    circuit.add_source(CurrentSource(0, amplitude=0.7 * 150e-6))
    circuit.add_source(CurrentSource(1, amplitude=0.7 * 150e-6))
    circuit.add_source(CurrentSource(2, amplitude=bias_fraction * 220e-6 * 0.5))
    circuit.add_inductor(Inductor(0, 2, 12e-12))
    circuit.add_inductor(Inductor(1, 2, 12e-12))
    return AnalogCell(circuit, {"a": 0, "b": 1}, 2, "Last Arrival (C element)")


def fa_cell(bias_fraction: float = 0.92) -> AnalogCell:
    """First-Arrival (inverse C element) template.

    The output junction is biased close to its critical current, so the
    first incoming pulse fires it; the merging inductors are sized so the
    second pulse finds the loop already holding compensating flux and is
    absorbed.
    """
    circuit = JjCircuit(3)
    circuit.add_junction(Junction(0, critical_current=150e-6))
    circuit.add_junction(Junction(1, critical_current=150e-6))
    circuit.add_junction(Junction(2, critical_current=160e-6))
    circuit.add_source(CurrentSource(0, amplitude=0.7 * 150e-6))
    circuit.add_source(CurrentSource(1, amplitude=0.7 * 150e-6))
    circuit.add_source(CurrentSource(2, amplitude=bias_fraction * 160e-6))
    circuit.add_inductor(Inductor(0, 2, 5e-12))
    circuit.add_inductor(Inductor(1, 2, 5e-12))
    return AnalogCell(circuit, {"a": 0, "b": 1}, 2, "First Arrival (inverse C element)")


def droc_cell() -> AnalogCell:
    """DROC template: data loop junction read out by a clock branch.

    Node 0 receives data pulses and stores flux in the loop to node 2;
    node 1 receives the clock; node 2 is the ``Qp`` output junction, which
    fires when the clock arrives while the loop holds flux (the preloading
    hardware of Figure 3 simply deposits that flux at start-up, modelled by
    the ``initial_phases`` argument of :meth:`JjCircuit.simulate`).
    """
    circuit = JjCircuit(3)
    circuit.add_junction(Junction(0, critical_current=150e-6))
    circuit.add_junction(Junction(1, critical_current=150e-6))
    circuit.add_junction(Junction(2, critical_current=200e-6))
    circuit.add_source(CurrentSource(0, amplitude=0.7 * 150e-6))
    circuit.add_source(CurrentSource(1, amplitude=0.7 * 150e-6))
    circuit.add_source(CurrentSource(2, amplitude=0.35 * 200e-6))
    circuit.add_inductor(Inductor(0, 2, 7e-12))
    circuit.add_inductor(Inductor(1, 2, 5e-12))
    return AnalogCell(circuit, {"data": 0, "clk": 1}, 2, "DRO with complementary outputs (Qp path)")


def drive(cell: AnalogCell, pulses: Dict[str, Sequence[float]]) -> None:
    """Attach pulse-train current sources to a cell's input nodes."""
    for port, times in pulses.items():
        node = cell.input_nodes[port]
        cell.circuit.add_source(CurrentSource(node, waveform=sfq_pulse_train(times)))
