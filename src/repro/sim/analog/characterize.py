"""Cell characterisation on the reduced analog model (paper Section 2.3 / Figures 2-3).

``characterize_jtl`` and friends run the RCSJ templates, verify that pulses
propagate (or are suppressed, for the protocol-violating cases) and extract
propagation delays from junction phase slips — the same procedure the paper
applies in HSPICE to build its Liberty tables.  The shipped library numbers
(Table 2) remain authoritative; these routines exist to reproduce the
*methodology* and the waveform-level Figures 2-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .cells import AnalogCell, drive, droc_cell, fa_cell, jtl_chain, la_cell
from .rcsj import JjWaveforms, propagation_delay


@dataclass
class CharacterizationResult:
    """Outcome of one analog characterisation run.

    Attributes:
        cell: Cell name.
        scenario: Stimulus description.
        output_pulses: Number of SFQ pulses observed at the output.
        delay_ps: Input-to-output delay in picoseconds (None when no pulse).
        waveforms: Raw phase waveforms for plotting / inspection.
    """

    cell: str
    scenario: str
    output_pulses: int
    delay_ps: Optional[float]
    waveforms: JjWaveforms


def _run(cell: AnalogCell, scenario: str, pulses: Dict[str, List[float]], duration: float = 300e-12,
         reference_port: Optional[str] = None, initial_phases=None) -> CharacterizationResult:
    drive(cell, pulses)
    waveforms = cell.circuit.simulate(duration=duration, initial_phases=initial_phases)
    delay = None
    if reference_port is not None and pulses.get(reference_port):
        delay_s = propagation_delay(waveforms, cell.input_nodes[reference_port], cell.output_node)
        delay = delay_s * 1e12 if delay_s is not None else None
    return CharacterizationResult(
        cell=cell.description,
        scenario=scenario,
        output_pulses=waveforms.num_pulses(cell.output_node),
        delay_ps=delay,
        waveforms=waveforms,
    )


def characterize_jtl(num_stages: int = 3) -> CharacterizationResult:
    """Propagate one pulse down a JTL chain and measure its delay."""
    cell = jtl_chain(num_stages)
    return _run(cell, "single pulse", {"a": [50e-12]}, reference_port="a")


def characterize_la() -> List[CharacterizationResult]:
    """Figure 2(i): LA fires only after both inputs have pulsed."""
    results = []
    cell = la_cell()
    results.append(_run(cell, "a only", {"a": [50e-12]}, reference_port="a"))
    cell = la_cell()
    results.append(
        _run(cell, "a then b", {"a": [50e-12], "b": [90e-12]}, reference_port="b")
    )
    return results


def characterize_fa() -> List[CharacterizationResult]:
    """Figure 2(ii): FA fires on the first input pulse."""
    results = []
    cell = fa_cell()
    results.append(_run(cell, "a only", {"a": [50e-12]}, reference_port="a"))
    cell = fa_cell()
    results.append(
        _run(cell, "a then b", {"a": [50e-12], "b": [120e-12]}, reference_port="a")
    )
    return results


def characterize_droc() -> List[CharacterizationResult]:
    """Figure 3: DROC read-out with and without stored (preloaded) flux."""
    results = []
    cell = droc_cell()
    results.append(_run(cell, "clock without data", {"clk": [80e-12]}, reference_port="clk"))
    cell = droc_cell()
    results.append(
        _run(cell, "data then clock", {"data": [40e-12], "clk": [100e-12]}, reference_port="clk")
    )
    return results


def characterization_report() -> str:
    """Text report covering the JTL, LA, FA and DROC characterisation runs."""
    lines = ["Analog (RCSJ) characterisation", "=" * 34]
    jtl = characterize_jtl()
    lines.append(
        f"JTL chain: {jtl.output_pulses} output pulse(s), delay "
        f"{jtl.delay_ps:.1f} ps" if jtl.delay_ps is not None else "JTL chain: no propagation"
    )
    for result in characterize_la() + characterize_fa() + characterize_droc():
        delay = f"{result.delay_ps:.1f} ps" if result.delay_ps is not None else "-"
        lines.append(f"{result.cell:<40} {result.scenario:<18} pulses={result.output_pulses} delay={delay}")
    return "\n".join(lines)
