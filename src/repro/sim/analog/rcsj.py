"""Reduced analog model of Josephson-junction circuits (RCSJ phase dynamics).

The paper characterises its cells with HSPICE and the MIT-LL SFQ5ee JJ
models; this module provides the methodological stand-in: a small
nonlinear-phase-model simulator based on the resistively-and-capacitively
shunted junction (RCSJ) equation

    C (Phi0/2pi) d2(phi)/dt2 + (1/R) (Phi0/2pi) d(phi)/dt + Ic sin(phi) = I(t)

integrated with SciPy over networks of junctions, inductors and bias current
sources.  A 2*pi phase slip of a junction corresponds to one SFQ pulse; the
delay-extraction helpers measure the time between input and output phase
slips, which is exactly how the paper derives the Table-2 delays from "JJ
phase rise times".

The goal is demonstrative rather than sign-off accurate: the JTL and
C-element templates in :mod:`repro.sim.analog.cells` propagate pulses and
produce delays of the right order of magnitude, and the shipped library
numbers remain those of the paper's Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.integrate import solve_ivp

#: Magnetic flux quantum (Wb).
PHI0 = 2.067833848e-15
#: Reduced flux quantum Phi0 / 2 pi.
PHI0_BAR = PHI0 / (2.0 * math.pi)


@dataclass
class Junction:
    """One Josephson junction between ``node`` and ground.

    Attributes:
        node: Circuit node index the junction is attached to.
        critical_current: Ic in amperes.
        capacitance: Shunt capacitance in farads.
        resistance: Shunt resistance in ohms.
    """

    node: int
    critical_current: float = 100e-6
    capacitance: float = 0.5e-12
    resistance: float = 2.0


@dataclass
class Inductor:
    """Inductor between two nodes (node index -1 denotes ground)."""

    node_a: int
    node_b: int
    inductance: float = 4e-12


@dataclass
class CurrentSource:
    """Current injected into a node: constant bias or a time function."""

    node: int
    amplitude: float = 0.0
    waveform: Optional[Callable[[float], float]] = None

    def current(self, time: float) -> float:
        if self.waveform is not None:
            return self.waveform(time)
        return self.amplitude


def sfq_pulse_train(times: Sequence[float], amplitude: float = 250e-6, width: float = 4e-12) -> Callable[[float], float]:
    """Gaussian current pulses approximating incoming SFQ pulses."""

    def waveform(t: float) -> float:
        total = 0.0
        for center in times:
            total += amplitude * math.exp(-((t - center) ** 2) / (2.0 * (width / 2.355) ** 2))
        return total

    return waveform


class JjCircuit:
    """A small JJ circuit solved in the phase domain.

    The state vector holds the phase of the node each junction sits on plus
    its time derivative; inductors couple node phases, bias sources and
    input pulse sources inject current.  Every node must carry exactly one
    junction (the standard situation inside SFQ cells), which keeps the
    formulation a plain ODE system.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.junctions: List[Junction] = []
        self.inductors: List[Inductor] = []
        self.sources: List[CurrentSource] = []

    def add_junction(self, junction: Junction) -> Junction:
        self.junctions.append(junction)
        return junction

    def add_inductor(self, inductor: Inductor) -> Inductor:
        self.inductors.append(inductor)
        return inductor

    def add_source(self, source: CurrentSource) -> CurrentSource:
        self.sources.append(source)
        return source

    # ------------------------------------------------------------------
    def _junction_on_node(self) -> Dict[int, Junction]:
        by_node: Dict[int, Junction] = {}
        for junction in self.junctions:
            if junction.node in by_node:
                raise ValueError(f"node {junction.node} carries two junctions")
            by_node[junction.node] = junction
        if len(by_node) != self.num_nodes:
            raise ValueError("every node must carry exactly one junction")
        return by_node

    def simulate(
        self,
        duration: float = 200e-12,
        dt: float = 0.1e-12,
        initial_phases: Optional[Sequence[float]] = None,
    ) -> "JjWaveforms":
        """Integrate the phase dynamics and return node waveforms."""
        by_node = self._junction_on_node()
        order = sorted(by_node)
        index_of = {node: k for k, node in enumerate(order)}

        def phase_of(state: np.ndarray, node: int) -> float:
            if node < 0:
                return 0.0
            return state[index_of[node]]

        def derivatives(t: float, state: np.ndarray) -> np.ndarray:
            n = len(order)
            phases = state[:n]
            velocities = state[n:]
            currents = np.zeros(n)
            for source in self.sources:
                if source.node in index_of:
                    currents[index_of[source.node]] += source.current(t)
            for inductor in self.inductors:
                phase_a = phase_of(state, inductor.node_a)
                phase_b = phase_of(state, inductor.node_b)
                branch = PHI0_BAR * (phase_a - phase_b) / inductor.inductance
                if inductor.node_a in index_of:
                    currents[index_of[inductor.node_a]] -= branch
                if inductor.node_b in index_of:
                    currents[index_of[inductor.node_b]] += branch
            accelerations = np.zeros(n)
            for node in order:
                k = index_of[node]
                junction = by_node[node]
                supercurrent = junction.critical_current * math.sin(phases[k])
                damping = PHI0_BAR * velocities[k] / junction.resistance
                accelerations[k] = (currents[k] - supercurrent - damping) / (
                    junction.capacitance * PHI0_BAR
                )
            return np.concatenate([velocities, accelerations])

        n = len(order)
        state0 = np.zeros(2 * n)
        if initial_phases is not None:
            state0[:n] = list(initial_phases)[:n]
        times = np.arange(0.0, duration, dt)
        solution = solve_ivp(
            derivatives,
            (0.0, duration),
            state0,
            t_eval=times,
            method="RK45",
            max_step=dt * 5,
            rtol=1e-6,
            atol=1e-9,
        )
        phases = {node: solution.y[index_of[node]] for node in order}
        return JjWaveforms(times=solution.t, phases=phases)


@dataclass
class JjWaveforms:
    """Phase waveforms of every junction node."""

    times: np.ndarray
    phases: Dict[int, np.ndarray]

    def pulse_times(self, node: int, threshold: float = math.pi) -> List[float]:
        """Times at which the node's phase crosses successive 2*pi slips.

        Each 2*pi phase slip corresponds to one SFQ pulse; the reported time
        is the crossing of ``2*pi*k + threshold``.
        """
        phase = self.phases[node]
        crossings: List[float] = []
        level = threshold
        for k in range(1, len(phase)):
            while phase[k] >= level > phase[k - 1] - 1e-12:
                # Linear interpolation of the crossing instant.
                fraction = (level - phase[k - 1]) / max(phase[k] - phase[k - 1], 1e-18)
                crossings.append(float(self.times[k - 1] + fraction * (self.times[k] - self.times[k - 1])))
                level += 2.0 * math.pi
        return crossings

    def num_pulses(self, node: int) -> int:
        """Number of SFQ pulses (2*pi slips) observed on the node."""
        return len(self.pulse_times(node))

    def voltage(self, node: int) -> np.ndarray:
        """Node voltage waveform V = Phi0_bar * d(phi)/dt (numerical gradient)."""
        return PHI0_BAR * np.gradient(self.phases[node], self.times)


def propagation_delay(
    waveforms: JjWaveforms, input_node: int, output_node: int, pulse_index: int = 0
) -> Optional[float]:
    """Delay between the k-th input pulse and the k-th output pulse (seconds)."""
    inputs = waveforms.pulse_times(input_node)
    outputs = waveforms.pulse_times(output_node)
    if pulse_index >= len(inputs) or pulse_index >= len(outputs):
        return None
    return outputs[pulse_index] - inputs[pulse_index]
