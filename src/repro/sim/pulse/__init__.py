"""Event-driven pulse-transfer-level simulation (the PyLSE role in the paper)."""

from .elements import (
    DroCell,
    DrocCell,
    FaCell,
    JtlCell,
    LaCell,
    MergerCell,
    PulseElement,
    SourceCell,
    SplitterCell,
)
from .reference import ReferencePulseSimulator
from .simulator import PulseSimulator, SimulationError, total_events_processed
from .xsfq_sim import (
    BatchedNetlistSimulator,
    XsfqSimulationResult,
    build_simulator,
    elaboration_count,
    reference_start_state,
    simulate_combinational,
    simulate_sequential,
    suggest_phase_period,
)

__all__ = [
    "PulseElement",
    "LaCell",
    "FaCell",
    "SplitterCell",
    "MergerCell",
    "JtlCell",
    "DroCell",
    "DrocCell",
    "SourceCell",
    "PulseSimulator",
    "ReferencePulseSimulator",
    "SimulationError",
    "BatchedNetlistSimulator",
    "build_simulator",
    "elaboration_count",
    "simulate_combinational",
    "simulate_sequential",
    "suggest_phase_period",
    "total_events_processed",
    "reference_start_state",
    "XsfqSimulationResult",
]
