"""Event-driven pulse-transfer-level simulation (the PyLSE role in the paper)."""

from .elements import (
    DroCell,
    DrocCell,
    FaCell,
    JtlCell,
    LaCell,
    MergerCell,
    PulseElement,
    SourceCell,
    SplitterCell,
)
from .simulator import PulseSimulator, SimulationError
from .xsfq_sim import (
    XsfqSimulationResult,
    build_simulator,
    reference_start_state,
    simulate_combinational,
    simulate_sequential,
)

__all__ = [
    "PulseElement",
    "LaCell",
    "FaCell",
    "SplitterCell",
    "MergerCell",
    "JtlCell",
    "DroCell",
    "DrocCell",
    "SourceCell",
    "PulseSimulator",
    "SimulationError",
    "build_simulator",
    "simulate_combinational",
    "simulate_sequential",
    "reference_start_state",
    "XsfqSimulationResult",
]
