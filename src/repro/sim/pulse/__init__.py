"""Event-driven pulse-transfer-level simulation (the PyLSE role in the paper)."""

from .elements import (
    DroCell,
    DrocCell,
    FaCell,
    JtlCell,
    LaCell,
    MergerCell,
    PulseElement,
    SourceCell,
    SplitterCell,
)
from .simulator import PulseSimulator, SimulationError
from .xsfq_sim import (
    BatchedNetlistSimulator,
    XsfqSimulationResult,
    build_simulator,
    elaboration_count,
    reference_start_state,
    simulate_combinational,
    simulate_sequential,
    suggest_phase_period,
)

__all__ = [
    "PulseElement",
    "LaCell",
    "FaCell",
    "SplitterCell",
    "MergerCell",
    "JtlCell",
    "DroCell",
    "DrocCell",
    "SourceCell",
    "PulseSimulator",
    "SimulationError",
    "BatchedNetlistSimulator",
    "build_simulator",
    "elaboration_count",
    "simulate_combinational",
    "simulate_sequential",
    "suggest_phase_period",
    "reference_start_state",
    "XsfqSimulationResult",
]
