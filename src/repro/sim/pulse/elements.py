"""Behavioural pulse-level models of the xSFQ cells (paper Table 1).

Each element consumes SFQ pulses on its input nets and produces pulses on
its output nets after a configurable delay.  The models implement exactly
the state machines of the paper:

* **LA (Last Arrival, Muller C element)** — fires when *both* inputs have
  received a pulse since the last firing, then returns to its initial state;
* **FA (First Arrival, inverse C element)** — fires on the *first* input
  pulse and silently absorbs the second, returning to its initial state;
* **Splitter / Merger / JTL** — stateless fanout, confluence and repeater;
* **DRO** — clocked destructive read-out: a data pulse sets the internal
  flux state, the next clock pulse reads it out (pulse if set, nothing if
  not) and clears it;
* **DROC** — DRO with complementary outputs: the clock produces a pulse on
  ``Qp`` when the state was set and on ``Qn`` otherwise; the preloaded
  variant starts with its state set (modelling the DC-to-SFQ preload).

The alternating dual-rail protocol guarantees that every LA/FA cell returns
to its initial state at the end of each logical cycle; the simulator's
:meth:`PulseElement.is_initial_state` hook lets tests assert exactly that
(Table 1's property).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: (net, time) pair describing an emitted pulse.
Emission = Tuple[str, float]


class PulseElement:
    """Base class of all pulse-level cell models."""

    def __init__(self, name: str, inputs: Sequence[str], outputs: Sequence[str], delay: float) -> None:
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.delay = delay
        # The event loop calls on_pulse millions of times per campaign;
        # resolving the (fixed) output nets once keeps it lean.
        self._out0 = self.outputs[0] if self.outputs else None
        self._out1 = self.outputs[1] if len(self.outputs) > 1 else None
        self.reset()

    def reset(self) -> None:
        """Return the element to its power-up state."""

    def is_initial_state(self) -> bool:
        """True when the element is back in its initial (reset) state."""
        return True

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        """React to a pulse on input ``port`` at ``time``; return emitted pulses."""
        raise NotImplementedError


class LaCell(PulseElement):
    """Last Arrival cell (C element): AND of the dual-rail protocol."""

    def reset(self) -> None:
        self._arrived = [False, False]

    def is_initial_state(self) -> bool:
        return not any(self._arrived)

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        if self._arrived[port]:
            # A second pulse on the same input within one phase violates the
            # protocol; the physical cell would stay put, so we do too.
            return []
        self._arrived[port] = True
        if all(self._arrived):
            self._arrived = [False, False]
            return [(self._out0, time + self.delay)]
        return []


class FaCell(PulseElement):
    """First Arrival cell (inverse C element): OR of the dual-rail protocol."""

    def reset(self) -> None:
        self._fired = False

    def is_initial_state(self) -> bool:
        return not self._fired

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        if not self._fired:
            self._fired = True
            return [(self._out0, time + self.delay)]
        self._fired = False
        return []


class SplitterCell(PulseElement):
    """1:2 pulse splitter."""

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        return [(net, time + self.delay) for net in self.outputs]


class MergerCell(PulseElement):
    """2:1 confluence buffer."""

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        return [(self._out0, time + self.delay)]


class JtlCell(PulseElement):
    """Josephson transmission line segment (pure delay)."""

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        return [(self._out0, time + self.delay)]


class DroCell(PulseElement):
    """Destructive read-out cell.

    Port 0 is data, port 1 is the clock.  Output 0 pulses on a clock edge
    when the state was set.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        delay: float,
        preload: bool = False,
    ) -> None:
        self._preload = preload
        super().__init__(name, inputs, outputs, delay)

    def reset(self) -> None:
        self.state = bool(self._preload)

    def is_initial_state(self) -> bool:
        return self.state == bool(self._preload)

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        if port == 0:
            self.state = True
            return []
        had_state = self.state
        self.state = False
        if had_state:
            return [(self._out0, time + self.delay)]
        return []


class DrocCell(DroCell):
    """DRO with complementary outputs (``Qp``, ``Qn``).

    On a clock pulse the cell emits on ``Qp`` when its state was set and on
    ``Qn`` otherwise, then clears the state.  The preloaded variant starts
    set, so its very first clock (the start-up trigger) emits a logical 1 —
    the initialisation strategy of paper Section 3.2.
    """

    def on_pulse(self, port: int, time: float) -> List[Emission]:
        if port == 0:
            self.state = True
            return []
        had_state = self.state
        self.state = False
        target = self._out0 if had_state else self._out1
        return [(target, time + self.delay)]


class SourceCell(PulseElement):
    """Pulse source: emits a pre-programmed pulse train on its output."""

    def __init__(self, name: str, output: str, times: Sequence[float]) -> None:
        self.times = sorted(times)
        super().__init__(name, [], [output], 0.0)

    def on_pulse(self, port: int, time: float) -> List[Emission]:  # pragma: no cover
        return []

    def initial_emissions(self) -> List[Emission]:
        """Pulses to schedule when the simulation starts."""
        return [(self.outputs[0], t) for t in self.times]
