"""Reference (pre-optimisation) pulse simulator core.

This is the original string-keyed, dict-based event loop that
:class:`repro.sim.pulse.PulseSimulator` replaced with an int-net-id
implementation.  It is kept verbatim — minus the two scheduling bugs the
optimised core also fixes (duplicate source emissions on resumed runs,
and the event sequence counter surviving :meth:`reset`) — as the oracle
for the differential micro-benchmarks in ``tests/perf``: both simulators
must produce bit-identical traces on every generated circuit family.

It is **not** used by the production flow; do not optimise it.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .elements import PulseElement, SourceCell


class ReferencePulseSimulator:
    """Discrete-event simulator over pulse elements (reference core)."""

    def __init__(self) -> None:
        self.elements: List[PulseElement] = []
        self._sinks: Dict[str, List[Tuple[PulseElement, int]]] = defaultdict(list)
        self._trace: Dict[str, List[float]] = defaultdict(list)
        self._queue: List[Tuple[float, int, str]] = []
        self._sequence = 0
        self._dangling: set = set()
        self._sources_scheduled = False

    def add_element(self, element: PulseElement) -> PulseElement:
        self.elements.append(element)
        for port, net in enumerate(element.inputs):
            self._sinks[net].append((element, port))
        return element

    def add_elements(self, elements: Iterable[PulseElement]) -> None:
        for element in elements:
            self.add_element(element)

    def schedule(self, net: str, time: float) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, net))

    def run(
        self,
        stimulus: Optional[Mapping[str, Sequence[float]]] = None,
        until: Optional[float] = None,
    ) -> Dict[str, List[float]]:
        if stimulus:
            for net, times in stimulus.items():
                for time in times:
                    self.schedule(net, time)
        if not self._sources_scheduled:
            self._sources_scheduled = True
            for element in self.elements:
                if isinstance(element, SourceCell):
                    for net, time in element.initial_emissions():
                        self.schedule(net, time)

        while self._queue:
            time, sequence, net = heapq.heappop(self._queue)
            if until is not None and time > until:
                heapq.heappush(self._queue, (time, sequence, net))
                break
            self._trace[net].append(time)
            sinks = self._sinks.get(net)
            if not sinks:
                self._dangling.add(net)
                continue
            for element, port in sinks:
                for out_net, out_time in element.on_pulse(port, time):
                    self._sequence += 1
                    heapq.heappush(self._queue, (out_time, self._sequence, out_net))
        return {net: sorted(times) for net, times in self._trace.items()}

    def trace(self, net: str) -> List[float]:
        return sorted(self._trace.get(net, []))

    def pulses_in_window(self, net: str, start: float, end: float) -> int:
        return sum(1 for t in self._trace.get(net, []) if start <= t < end)

    def dangling_nets(self) -> List[str]:
        return sorted(self._dangling)

    def has_sinks(self, net: str) -> bool:
        return bool(self._sinks.get(net))

    def elements_in_initial_state(self) -> bool:
        return all(element.is_initial_state() for element in self.elements)

    def reset(self) -> None:
        self._trace.clear()
        self._queue.clear()
        self._dangling.clear()
        self._sequence = 0
        self._sources_scheduled = False
        for element in self.elements:
            element.reset()
