"""Event-driven pulse simulator core.

A :class:`PulseSimulator` owns a set of :class:`PulseElement` instances
connected by named nets and processes pulses in global time order.  Unlike
a physical xSFQ netlist, the simulator allows a net to fan out to several
element inputs (convenient for test benches); synthesised netlists carry
explicit splitters anyway, so simulating them exercises the real structure.

The event loop is the innermost hot path of the verification and fuzzing
campaigns, so the implementation works on integer net ids: every net name
is interned once at construction time, sinks and traces live in flat lists
indexed by net id, and the heap carries ``(time, sequence, net_id)``
tuples.  Trace capture can additionally be restricted to an observed net
subset (:meth:`observe_only`) so batched netlist simulation only pays for
the rails it decodes.  ``repro.sim.pulse.reference`` keeps the original
string-keyed implementation for differential testing.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..._compat import scalar_kernels_forced
from . import soa
from .elements import (
    JtlCell,
    MergerCell,
    PulseElement,
    SourceCell,
    SplitterCell,
)

#: Cell types whose response to a pulse is a fixed fan of delayed output
#: events — the simulator inlines them instead of calling ``on_pulse``.
#: Exact types only: subclasses may override ``on_pulse`` (test probes do).
_STATELESS_TYPES = (SplitterCell, MergerCell, JtlCell)


class SimulationError(Exception):
    """Raised for malformed pulse circuits or stimuli."""


#: Process-wide count of processed pulse events (see :func:`total_events_processed`).
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Cumulative pulse events processed by every simulator in this process.

    The performance harness (:mod:`repro.perf`) snapshots this around a
    workload to derive its events/s domain rate; per-instance counts are
    on :attr:`PulseSimulator.events_processed`.
    """
    return _TOTAL_EVENTS


class PulseSimulator:
    """Discrete-event simulator over pulse elements."""

    def __init__(self) -> None:
        self.elements: List[PulseElement] = []
        #: Cumulative number of events processed by :meth:`run` (a domain
        #: counter for the performance harness; survives :meth:`reset`).
        self.events_processed = 0
        self._net_id: Dict[str, int] = {}
        self._net_names: List[str] = []
        #: Per-net fanout: ``(bound on_pulse, port, 0.0)`` for stateful
        #: sinks, ``(None, output-net-id tuple, delay)`` for inlined
        #: stateless fan cells (splitter / merger / JTL).
        self._sink_table: List[List[Tuple[object, object, float]]] = []
        self._trace_lists: List[List[float]] = []
        self._capture: List[bool] = []
        self._observed: Optional[Set[str]] = None
        self._dangling_ids: Set[int] = set()
        self._queue: List[Tuple[float, int, int]] = []
        self._sequence = 0
        self._pending_sources: List[SourceCell] = []
        #: Time of the last processed event; stimuli may not be injected
        #: behind it (that would break the monotone-trace invariant the
        #: sort-free traces and bisect-based decode windows rely on).
        self._processed_until = float("-inf")
        #: Optional fault model perturbing cell emissions (see
        #: :meth:`set_fault_model`); ``None`` keeps the loop fault-free.
        self._fault_model = None
        #: ``None`` follows the module default (numpy present and
        #: ``REPRO_SCALAR_KERNELS`` unset); ``True``/``False`` force the
        #: struct-of-arrays fast path on or off for this instance.
        self.vectorize: Optional[bool] = None
        #: Number of :meth:`run` calls served by the SoA fast path (the
        #: differential tests assert both engagement and fallback).
        self.vectorized_runs = 0
        #: Compiled feed-forward plan: ``None`` = not compiled for the
        #: current element set, ``False`` = netlist ineligible.
        self._ff_plan = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _intern(self, net: str) -> int:
        nid = self._net_id.get(net)
        if nid is None:
            nid = len(self._net_names)
            self._net_id[net] = nid
            self._net_names.append(net)
            self._sink_table.append([])
            self._trace_lists.append([])
            self._capture.append(self._observed is None or net in self._observed)
        return nid

    def add_element(self, element: PulseElement) -> PulseElement:
        """Register an element and its input connections."""
        self.elements.append(element)
        self._ff_plan = None  # structural change: recompile the SoA plan
        if type(element) in _STATELESS_TYPES:
            # Stateless fan cell: a pulse on any input port becomes one
            # delayed event per output net (all outputs for a splitter,
            # the single output for merger/JTL) — inlined in the loop.
            out_ids = tuple(self._intern(net) for net in element.outputs)
            if type(element) is not SplitterCell:
                out_ids = out_ids[:1]
            sink = (None, out_ids, element.delay)
            for net in element.inputs:
                self._sink_table[self._intern(net)].append(sink)
        else:
            for port, net in enumerate(element.inputs):
                self._sink_table[self._intern(net)].append(
                    (element.on_pulse, port, 0.0)
                )
            for net in element.outputs:
                self._intern(net)
        if isinstance(element, SourceCell):
            self._pending_sources.append(element)
        return element

    def add_elements(self, elements: Iterable[PulseElement]) -> None:
        for element in elements:
            self.add_element(element)

    def observe_only(self, nets: Optional[Iterable[str]]) -> None:
        """Restrict trace capture to ``nets`` (``None`` restores all nets).

        Pulses on unobserved nets still propagate, still count as events
        and still flag dangling nets — they are simply not recorded, which
        is what makes large batched runs cheap when only the primary
        output rails are decoded.
        """
        self._observed = None if nets is None else set(nets)
        if self._observed is None:
            self._capture = [True] * len(self._net_names)
        else:
            observed = self._observed
            self._capture = [name in observed for name in self._net_names]

    def set_fault_model(self, model) -> None:
        """Install (or with ``None`` remove) a fault model on cell emissions.

        Every output event a cell emits — stateful ``on_pulse`` results
        and inlined stateless fans alike — is routed through the model's
        ``emissions`` hook, which may drop it, duplicate it or shift its
        delivery time (clamped to the causing event, preserving the
        monotone-trace invariant).  Externally scheduled stimulus pulses
        are *not* perturbed: stimulus-side faults (clock skew) are
        applied where the stimulus is built.  The model binds to the
        live interned net-name table so its per-net streams are keyed on
        stable names, never ids.
        """
        self._fault_model = model
        if model is not None:
            model.bind(self._net_names)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def schedule(self, net: str, time: float) -> None:
        """Schedule an externally driven pulse.

        Raises:
            SimulationError: When ``time`` lies behind an already
                processed event — a resumed run cannot rewrite history,
                and traces must stay monotone.
        """
        if time < self._processed_until:
            raise SimulationError(
                f"cannot schedule a pulse on {net!r} at {time} behind the "
                f"simulated frontier {self._processed_until}; reset() first"
            )
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, self._intern(net)))

    def run(
        self,
        stimulus: Optional[Mapping[str, Sequence[float]]] = None,
        until: Optional[float] = None,
    ) -> Dict[str, List[float]]:
        """Run the simulation and return the pulse trace of every net.

        Args:
            stimulus: Extra pulses to drive, mapping net name to pulse times.
            until: Stop processing events beyond this time (None = run dry).
                Later events stay pending; a subsequent :meth:`run` resumes
                from them without re-injecting source emissions.

        Returns:
            Mapping from net name to the list of pulse times observed, in
            time order (events pop off the heap monotonically, so no sort
            is needed).  The lists are live internal buffers shared with
            later resumed runs; treat them as read-only.

        Fresh, fault-free runs of feed-forward netlists are served by the
        struct-of-arrays fast path (:mod:`repro.sim.pulse.soa`) when its
        checks pass; every other run — resumed, sequential, faulted,
        ineligible — takes the scalar event loop below.  Both produce
        bit-identical traces, counters and dangling records.
        """
        if self._vectorize_enabled():
            result = self._run_vectorized(stimulus, until)
            if result is not None:
                return result
        if stimulus:
            frontier = self._processed_until
            for net, times in stimulus.items():
                nid = self._intern(net)
                for time in times:
                    if time < frontier:
                        raise SimulationError(
                            f"cannot schedule a pulse on {net!r} at {time} "
                            f"behind the simulated frontier {frontier}; "
                            f"reset() first"
                        )
                    self._sequence += 1
                    heapq.heappush(self._queue, (time, self._sequence, nid))
        if self._pending_sources:
            # Initial emissions are injected exactly once per reset: a
            # resumed run() must not duplicate the pulse trains already
            # consumed (or still pending) from a previous call.
            for element in self._pending_sources:
                for net, time in element.initial_emissions():
                    self.schedule(net, time)
            self._pending_sources.clear()

        queue = self._queue
        net_id = self._net_id
        sink_table = self._sink_table
        trace_lists = self._trace_lists
        capture = self._capture
        dangling = self._dangling_ids
        heappop = heapq.heappop
        heappush = heapq.heappush
        limit = float("inf") if until is None else until
        sequence = self._sequence
        frontier = self._processed_until
        fault = self._fault_model
        processed = 0
        while queue:
            event = heappop(queue)
            time = event[0]
            if time > limit:
                # Keep late events pending rather than silently dropping
                # them: a later run() (or a larger ``until``) observes them.
                heappush(queue, event)
                break
            frontier = time
            nid = event[2]
            processed += 1
            if capture[nid]:
                trace_lists[nid].append(time)
            sinks = sink_table[nid]
            if not sinks:
                # The pulse is still recorded in the trace above; remember
                # the net so verifiers can surface a dangling-net warning.
                dangling.add(nid)
                continue
            if fault is None:
                for on_pulse, payload, delay in sinks:
                    if on_pulse is None:
                        out_time = time + delay
                        for oid in payload:
                            sequence += 1
                            heappush(queue, (out_time, sequence, oid))
                    else:
                        for out_net, out_time in on_pulse(payload, time):
                            sequence += 1
                            heappush(queue, (out_time, sequence, net_id[out_net]))
            else:
                # Fault-injected variant of the branch above: every cell
                # emission is routed through the model, which may drop it,
                # echo it, or shift its delivery (never behind ``time``).
                for on_pulse, payload, delay in sinks:
                    if on_pulse is None:
                        out_time = time + delay
                        for oid in payload:
                            for t in fault.emissions(oid, out_time, time):
                                sequence += 1
                                heappush(queue, (t, sequence, oid))
                    else:
                        for out_net, out_time in on_pulse(payload, time):
                            oid = net_id[out_net]
                            for t in fault.emissions(oid, out_time, time):
                                sequence += 1
                                heappush(queue, (t, sequence, oid))
        self._sequence = sequence
        self._processed_until = frontier
        self.events_processed += processed
        global _TOTAL_EVENTS
        _TOTAL_EVENTS += processed
        return {
            name: times
            for name, times in zip(self._net_names, trace_lists)
            if times
        }

    def _vectorize_enabled(self) -> bool:
        """Whether this :meth:`run` call may try the SoA fast path.

        Only fresh (never-run / freshly reset) fault-free states qualify:
        resumed runs carry pending heap events and cell state that only
        the scalar loop models.
        """
        if self.vectorize is not None:
            if not self.vectorize:
                return False
        elif scalar_kernels_forced():
            return False
        return (
            self._fault_model is None
            and not self._queue
            and self._processed_until == float("-inf")
        )

    def _run_vectorized(
        self,
        stimulus: Optional[Mapping[str, Sequence[float]]],
        until: Optional[float],
    ) -> Optional[Dict[str, List[float]]]:
        """Try the SoA fast path; commit and return its trace, or ``None``."""
        plan = self._ff_plan
        if plan is None:
            plan = soa.compile_plan(self)
            # Cache ``False`` for ineligible netlists so the (linear)
            # compile is attempted once per structure, not once per run.
            self._ff_plan = plan if plan is not None else False
        if plan is False or plan is None:
            return None
        outcome = soa.run_vectorized(self, plan, stimulus, until)
        if outcome is None:
            return None
        net_pulses, total, frontier = outcome
        trace_lists = self._trace_lists
        capture = self._capture
        sink_table = self._sink_table
        dangling = self._dangling_ids
        for nid, pulses in enumerate(net_pulses):
            if pulses is None:
                continue
            if capture[nid]:
                trace_lists[nid].extend(pulses.tolist())
            if not sink_table[nid]:
                dangling.add(nid)
        self._pending_sources.clear()
        # The scalar loop bumps ``_sequence`` once per scheduled event;
        # tracking the same count keeps a scalar run resumed *after* a
        # vectorized one ordering ties exactly as an all-scalar history.
        self._sequence += total
        if frontier > self._processed_until:
            self._processed_until = frontier
        self.events_processed += total
        self.vectorized_runs += 1
        global _TOTAL_EVENTS
        _TOTAL_EVENTS += total
        return {
            name: times
            for name, times in zip(self._net_names, trace_lists)
            if times
        }

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def trace(self, net: str) -> List[float]:
        """Pulse times recorded on ``net`` so far (already time-ordered)."""
        nid = self._net_id.get(net)
        if nid is None:
            return []
        return list(self._trace_lists[nid])

    def pulses_in_window(self, net: str, start: float, end: float) -> int:
        """Number of pulses on ``net`` with ``start <= time < end``."""
        nid = self._net_id.get(net)
        if nid is None:
            return 0
        times = self._trace_lists[nid]
        return bisect_left(times, end) - bisect_left(times, start)

    def dangling_nets(self) -> List[str]:
        """Nets that received pulses but have no registered sinks.

        Externally observed nets (primary outputs, probes) legitimately
        appear here; anything else usually indicates a mis-wired netlist.
        """
        return sorted(self._net_names[nid] for nid in self._dangling_ids)

    def has_sinks(self, net: str) -> bool:
        """True when at least one element input listens on ``net``."""
        nid = self._net_id.get(net)
        return nid is not None and bool(self._sink_table[nid])

    def elements_in_initial_state(self) -> bool:
        """True when every element reports its initial state (Table 1 check)."""
        return all(element.is_initial_state() for element in self.elements)

    def reset(self) -> None:
        """Clear traces, pending events, dangling records and element state.

        Also rewinds the event sequence counter (so tie-breaking — and
        therefore traces — are bit-identical across resets) and re-arms
        every :class:`SourceCell`'s initial emissions for the next run.
        Trace buffers are replaced, not cleared in place: trace dicts
        returned by earlier :meth:`run` calls keep their recorded pulses.
        """
        self._trace_lists = [[] for _ in self._trace_lists]
        self._queue.clear()
        self._dangling_ids.clear()
        self._sequence = 0
        self._processed_until = float("-inf")
        self._pending_sources = [
            element for element in self.elements if isinstance(element, SourceCell)
        ]
        if self._fault_model is not None:
            # Rewind the injection streams alongside the sequence counter:
            # each trajectory of a batched run replays identical faults.
            self._fault_model.reset_streams()
        for element in self.elements:
            element.reset()
