"""Event-driven pulse simulator core.

A :class:`PulseSimulator` owns a set of :class:`PulseElement` instances
connected by named nets and processes pulses in global time order.  Unlike
a physical xSFQ netlist, the simulator allows a net to fan out to several
element inputs (convenient for test benches); synthesised netlists carry
explicit splitters anyway, so simulating them exercises the real structure.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .elements import PulseElement, SourceCell


class SimulationError(Exception):
    """Raised for malformed pulse circuits or stimuli."""


class PulseSimulator:
    """Discrete-event simulator over pulse elements."""

    def __init__(self) -> None:
        self.elements: List[PulseElement] = []
        self._sinks: Dict[str, List[Tuple[PulseElement, int]]] = defaultdict(list)
        self._trace: Dict[str, List[float]] = defaultdict(list)
        self._queue: List[Tuple[float, int, str]] = []
        self._sequence = 0
        self._dangling: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_element(self, element: PulseElement) -> PulseElement:
        """Register an element and its input connections."""
        self.elements.append(element)
        for port, net in enumerate(element.inputs):
            self._sinks[net].append((element, port))
        return element

    def add_elements(self, elements: Iterable[PulseElement]) -> None:
        for element in elements:
            self.add_element(element)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def schedule(self, net: str, time: float) -> None:
        """Schedule an externally driven pulse."""
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, net))

    def run(
        self,
        stimulus: Optional[Mapping[str, Sequence[float]]] = None,
        until: Optional[float] = None,
    ) -> Dict[str, List[float]]:
        """Run the simulation and return the pulse trace of every net.

        Args:
            stimulus: Extra pulses to drive, mapping net name to pulse times.
            until: Stop processing events beyond this time (None = run dry).

        Returns:
            Mapping from net name to the sorted list of pulse times observed.
        """
        if stimulus:
            for net, times in stimulus.items():
                for time in times:
                    self.schedule(net, time)
        for element in self.elements:
            if isinstance(element, SourceCell):
                for net, time in element.initial_emissions():
                    self.schedule(net, time)

        while self._queue:
            time, sequence, net = heapq.heappop(self._queue)
            if until is not None and time > until:
                # Keep the event pending rather than silently dropping it:
                # a later run() (or a larger ``until``) still observes it.
                heapq.heappush(self._queue, (time, sequence, net))
                break
            self._trace[net].append(time)
            sinks = self._sinks.get(net)
            if not sinks:
                # The pulse is still recorded in the trace above; remember
                # the net so verifiers can surface a dangling-net warning.
                self._dangling.add(net)
                continue
            for element, port in sinks:
                for out_net, out_time in element.on_pulse(port, time):
                    self._sequence += 1
                    heapq.heappush(self._queue, (out_time, self._sequence, out_net))
        return {net: sorted(times) for net, times in self._trace.items()}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def trace(self, net: str) -> List[float]:
        """Pulse times recorded on ``net`` so far."""
        return sorted(self._trace.get(net, []))

    def pulses_in_window(self, net: str, start: float, end: float) -> int:
        """Number of pulses on ``net`` with ``start <= time < end``."""
        return sum(1 for t in self._trace.get(net, []) if start <= t < end)

    def dangling_nets(self) -> List[str]:
        """Nets that received pulses but have no registered sinks.

        Externally observed nets (primary outputs, probes) legitimately
        appear here; anything else usually indicates a mis-wired netlist.
        """
        return sorted(self._dangling)

    def has_sinks(self, net: str) -> bool:
        """True when at least one element input listens on ``net``."""
        return bool(self._sinks.get(net))

    def elements_in_initial_state(self) -> bool:
        """True when every element reports its initial state (Table 1 check)."""
        return all(element.is_initial_state() for element in self.elements)

    def reset(self) -> None:
        """Clear traces, pending events, dangling records and element state."""
        self._trace.clear()
        self._queue.clear()
        self._dangling.clear()
        for element in self.elements:
            element.reset()
