"""Struct-of-arrays fast path for feed-forward pulse netlists.

The scalar event loop in :mod:`repro.sim.pulse.simulator` pays Python-level
heap traffic for every pulse.  Synthesised combinational xSFQ netlists do
not need any of that machinery: they are acyclic, every cell is one of
LA / FA / splitter / merger / JTL, and under the alternating dual-rail
protocol each cell's pulse stream can be computed *per net* as a sorted
float64 array:

* **LA** (C element) pairs the i-th pulse of each input and fires at
  ``max(a_i, b_i) + delay``;
* **FA** (inverse C element) fires at ``min(a_i, b_i) + delay`` and
  absorbs the other pulse of the pair;
* **splitter / JTL** delay-shift their input onto each output;
* **merger** contributes a delay-shifted copy of each input to its output
  (net finalisation sorts the merged contributions).

The pairing for LA/FA is only valid when consecutive pulse pairs do not
interleave (``max(pair i) < min(pair i+1)``) and both inputs carry the
same number of pulses — exactly the protocol the batched stimulus
generators produce.  Whenever any check fails — cycles, unknown or
subclassed cell types, interleaved pairs, events beyond ``until``,
non-float stimulus times — the fast path aborts *without having mutated
any simulator state* and the caller falls back to the scalar event loop,
which remains the semantics oracle (fault injection and sequential
netlists always take the scalar path).

The differential suites in ``tests/sim/test_kernel_differential.py`` pin
traces, event counts, dangling-net records and decode results bit-equal
to the scalar core and to ``ReferencePulseSimulator``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..._compat import load_numpy
from .elements import (
    FaCell,
    JtlCell,
    LaCell,
    MergerCell,
    SourceCell,
    SplitterCell,
)

#: Op kinds of the compiled plan.
_OP_LA = 0
_OP_FA = 1
_OP_FAN = 2  # delay-shift one input onto one or more outputs

#: Cell types the fast path understands.  Exact types only: subclasses
#: (test probes) may override ``on_pulse`` and must run scalar.
_PAIRED_TYPES = {LaCell: _OP_LA, FaCell: _OP_FA}
_FAN_TYPES = (SplitterCell, MergerCell, JtlCell)


class FeedForwardPlan:
    """Topologically ordered vector ops compiled from a feed-forward netlist."""

    __slots__ = ("ops",)

    def __init__(self, ops: Sequence[Tuple[int, Tuple[int, ...], Tuple[int, ...], float]]) -> None:
        #: ``(kind, input net ids, output net ids, delay)`` in dataflow order.
        self.ops = list(ops)


def compile_plan(sim) -> Optional[FeedForwardPlan]:
    """Compile ``sim``'s element graph into a :class:`FeedForwardPlan`.

    Returns ``None`` when the netlist is ineligible: numpy missing, any
    element outside the supported exact types, an LA/FA without exactly
    two inputs, or a combinational cycle.
    """
    if load_numpy() is None:
        return None

    net_id = sim._net_id
    ops: List[Tuple[int, Tuple[int, ...], Tuple[int, ...], float]] = []
    for element in sim.elements:
        cell_type = type(element)
        if cell_type is SourceCell:
            # Sources carry no dataflow deps; their emissions enter as
            # stimulus-like contributions at run time.
            continue
        kind = _PAIRED_TYPES.get(cell_type)
        if kind is not None:
            if len(element.inputs) != 2 or not element.outputs:
                return None
            ins = (net_id[element.inputs[0]], net_id[element.inputs[1]])
            ops.append((kind, ins, (net_id[element.outputs[0]],), element.delay))
        elif cell_type in _FAN_TYPES:
            outs = tuple(net_id[net] for net in element.outputs)
            if cell_type is not SplitterCell:
                outs = outs[:1]
            if not outs:
                return None
            # Each input contributes an independent delay-fan; merger
            # confluence happens when the output net is finalised.
            for net in element.inputs:
                ops.append((_OP_FAN, (net_id[net],), outs, element.delay))
        else:
            return None

    # Kahn topological sort over net producers.  ``indegree[i]`` counts,
    # with multiplicity, the producer ops feeding op i's input nets.
    producers: Dict[int, List[int]] = {}
    for index, (_, _, outs, _) in enumerate(ops):
        for out in outs:
            producers.setdefault(out, []).append(index)
    consumers: Dict[int, List[int]] = {}
    indegree = [0] * len(ops)
    for index, (_, ins, _, _) in enumerate(ops):
        for net in ins:
            indegree[index] += len(producers.get(net, ()))
            consumers.setdefault(net, []).append(index)
    ready = [index for index, degree in enumerate(indegree) if degree == 0]
    order: List[int] = []
    while ready:
        index = ready.pop()
        order.append(index)
        for out in ops[index][2]:
            for consumer in consumers.get(out, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
    if len(order) != len(ops):
        return None  # combinational cycle: scalar loop handles it
    return FeedForwardPlan([ops[index] for index in order])


def run_vectorized(sim, plan: FeedForwardPlan, stimulus, until):
    """Evaluate one fresh run on the SoA arrays, without mutating ``sim``.

    Returns ``(net_pulses, total_events, frontier)`` on success — where
    ``net_pulses[nid]`` is a sorted float64 array (or ``None``) of every
    pulse on that net — or ``None`` when the run must fall back to the
    scalar event loop.  Interning stimulus net names is the only side
    effect, and it is idempotent with what the scalar path would do.
    """
    np = load_numpy()
    if np is None:
        return None

    contrib: Dict[int, List[object]] = {}

    def add_stimulus(nid: int, times) -> bool:
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            return False
        if arr.size:
            contrib.setdefault(nid, []).append(np.sort(arr))
        return True

    if stimulus:
        for net, times in stimulus.items():
            # Scalar traces keep stimulus times exactly as given; ints
            # would be recorded as ints there but as floats here, so any
            # non-float time sends the whole run to the scalar loop.
            if not all(type(t) is float for t in times):
                return None
            if not add_stimulus(sim._intern(net), times):
                return None
    for element in sim._pending_sources:
        times = element.times
        if not all(type(t) is float for t in times):
            return None
        if not add_stimulus(sim._net_id[element.outputs[0]], times):
            return None

    empty = np.empty(0, dtype=np.float64)
    finalized: Dict[int, object] = {}

    def final(nid: int):
        arr = finalized.get(nid)
        if arr is None:
            parts = contrib.get(nid)
            if not parts:
                arr = empty
            elif len(parts) == 1:
                arr = parts[0]
            else:
                arr = np.sort(np.concatenate(parts))
            finalized[nid] = arr
        return arr

    for kind, ins, outs, delay in plan.ops:
        if kind == _OP_FAN:
            pulses = final(ins[0])
            if pulses.size:
                shifted = pulses + delay
                for out in outs:
                    contrib.setdefault(out, []).append(shifted)
            continue
        a = final(ins[0])
        b = final(ins[1])
        if a.size != b.size:
            return None  # unpaired pulses: cell state carries across, go scalar
        if a.size:
            upper = np.maximum(a, b)
            lower = np.minimum(a, b)
            if a.size > 1 and not (upper[:-1] < lower[1:]).all():
                return None  # interleaved pairs: scalar state machine decides
            out_times = (upper if kind == _OP_LA else lower) + delay
            contrib.setdefault(outs[0], []).append(out_times)

    net_pulses: List[Optional[object]] = [None] * len(sim._net_names)
    total = 0
    frontier = float("-inf")
    for nid in range(len(net_pulses)):
        arr = final(nid)
        if arr.size:
            net_pulses[nid] = arr
            total += int(arr.size)
            last = float(arr[-1])
            if last > frontier:
                frontier = last
    limit = float("inf") if until is None else until
    if frontier > limit:
        # Some events would stay pending past ``until``; resumable
        # pending state only exists in the scalar loop.
        return None
    return net_pulses, total, frontier
