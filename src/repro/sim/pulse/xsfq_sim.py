"""Pulse-level simulation of synthesised xSFQ netlists.

This is the functional-verification back end of the flow: the cell netlists
produced by :mod:`repro.core` are elaborated into pulse elements, their
primary inputs are driven with the alternating dual-rail encoding of
Figure 1, DROC ranks are clocked (with the one-shot trigger of Section 3.2)
and the primary outputs are decoded back into logical values, one per
logical cycle.  The test-suite compares those decoded values against the
cycle-accurate :class:`LogicNetwork` simulation of the original design,
which closes the loop from RTL to pulses — the role PyLSE plays in the
paper (Figure 7).

Protocol summary (see the paper's Figures 1, 6 and 7):

* every logical cycle spans two synchronous phases, excite then relax;
* a primary input with value ``v`` pulses its positive rail during the
  excite phase iff ``v = 1`` and its negative rail otherwise, with the
  mirrored pattern in the relax phase;
* sequential designs receive one trigger phase before normal operation —
  the preloaded DROC rank emits its stored 1s, which primes the downstream
  LA/FA cells into their excite phase;
* the architectural state visible in logical cycle 1 is therefore the
  next-state function evaluated on that all-ones preload pattern, and the
  design behaves like the original network initialised accordingly from
  cycle 2 onward (the tests account for this start-up convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.cells import CellKind, XsfqLibrary, default_library
from ...core.dual_rail import XsfqNetlist
from ...core.polarity import Rail
from ...core.sequential import CLOCK_NET, TRIGGER_NET
from .elements import (
    DroCell,
    DrocCell,
    FaCell,
    JtlCell,
    LaCell,
    MergerCell,
    PulseElement,
    SplitterCell,
)
from .simulator import PulseSimulator, SimulationError


@dataclass
class XsfqSimulationResult:
    """Decoded output of a pulse-level run.

    Attributes:
        outputs: One dictionary per logical cycle mapping PO name to 0/1.
        trace: Raw pulse times per net.
        phase_period: Phase length used (ps).
        all_cells_reinitialised: Whether every LA/FA cell was back in its
            initial state when the simulation ended (the Table 1 property).
    """

    outputs: List[Dict[str, int]]
    trace: Dict[str, List[float]]
    phase_period: float
    all_cells_reinitialised: bool


def build_simulator(
    netlist: XsfqNetlist, library: Optional[XsfqLibrary] = None
) -> Tuple[PulseSimulator, List[str]]:
    """Elaborate an :class:`XsfqNetlist` into a :class:`PulseSimulator`.

    Returns the simulator and the list of clock input nets of all DROC
    cells (the preloaded rank listens on the merged clock+trigger net when
    the netlist carries a trigger merger).
    """
    library = library or default_library()
    simulator = PulseSimulator()
    droc_clock_nets: List[str] = []
    preload_clock = f"{CLOCK_NET}_preload" if netlist.trigger_nets else CLOCK_NET

    for cell in netlist.cells:
        delay = library.delay(cell.kind if not (cell.kind is CellKind.DROC and cell.preload) else CellKind.DROC)
        if cell.kind is CellKind.LA:
            simulator.add_element(LaCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.FA:
            simulator.add_element(FaCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.SPLITTER:
            simulator.add_element(SplitterCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.MERGER:
            simulator.add_element(MergerCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.JTL:
            simulator.add_element(JtlCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.DRO:
            clock = preload_clock if cell.preload else CLOCK_NET
            simulator.add_element(
                DroCell(cell.name, [cell.inputs[0], clock], cell.outputs, delay, preload=cell.preload)
            )
            droc_clock_nets.append(clock)
        elif cell.kind in (CellKind.DROC, CellKind.DROC_PRELOAD):
            clock = preload_clock if cell.preload else CLOCK_NET
            simulator.add_element(
                DrocCell(cell.name, [cell.inputs[0], clock], cell.outputs, delay, preload=cell.preload)
            )
            droc_clock_nets.append(clock)
        else:
            raise SimulationError(f"cell kind {cell.kind} is not supported by the pulse simulator")
    return simulator, droc_clock_nets


def _input_rail_nets(pi_name: str) -> Tuple[str, str]:
    return f"{pi_name}_p", f"{pi_name}_n"


def _drive_input(
    stimulus: Dict[str, List[float]],
    pi_name: str,
    value: int,
    excite_start: float,
    relax_start: float,
    offset: float,
) -> None:
    pos, neg = _input_rail_nets(pi_name)
    if value:
        stimulus.setdefault(pos, []).append(excite_start + offset)
        stimulus.setdefault(neg, []).append(relax_start + offset)
    else:
        stimulus.setdefault(neg, []).append(excite_start + offset)
        stimulus.setdefault(pos, []).append(relax_start + offset)


def _constant_nets(netlist: XsfqNetlist) -> List[str]:
    """Constant-rail nets referenced by the netlist (``const0_p`` / ``const0_n``)."""
    referenced = set()
    for cell in netlist.cells:
        referenced.update(cell.inputs)
    referenced.update(port.net for port in netlist.output_ports)
    return [net for net in ("const0_p", "const0_n") if net in referenced]


def _drive_constants(
    stimulus: Dict[str, List[float]],
    nets: Sequence[str],
    excite_start: float,
    relax_start: float,
    offset: float,
) -> None:
    """Present the constant-0 value: negative rail in excite, positive in relax."""
    if "const0_n" in nets:
        stimulus.setdefault("const0_n", []).append(excite_start + offset)
    if "const0_p" in nets:
        stimulus.setdefault("const0_p", []).append(relax_start + offset)


def _decode_output(
    trace: Mapping[str, Sequence[float]],
    net: str,
    rail: Rail,
    window_start: float,
    window_end: float,
) -> int:
    pulsed = any(window_start <= t < window_end for t in trace.get(net, []))
    value = 1 if pulsed else 0
    return value if rail is Rail.POS else 1 - value


def simulate_combinational(
    netlist: XsfqNetlist,
    input_vectors: Sequence[Mapping[str, int]],
    phase_period: float = 500.0,
    library: Optional[XsfqLibrary] = None,
) -> XsfqSimulationResult:
    """Pulse-simulate a clock-free combinational xSFQ netlist.

    Each entry of ``input_vectors`` supplies one logical cycle's primary
    input values (by original PI name); the result carries one decoded
    output dictionary per logical cycle.
    """
    simulator, droc_clocks = build_simulator(netlist, library)
    if droc_clocks:
        raise SimulationError("netlist contains storage cells; use simulate_sequential")

    pi_names = sorted({port.rsplit("_", 1)[0] for port in netlist.input_ports})
    constant_nets = _constant_nets(netlist)
    stimulus: Dict[str, List[float]] = {}
    for cycle, vector in enumerate(input_vectors):
        excite_start = (2 * cycle) * phase_period
        relax_start = (2 * cycle + 1) * phase_period
        for pi in pi_names:
            value = int(bool(vector.get(pi, 0)))
            _drive_input(stimulus, pi, value, excite_start, relax_start, offset=1.0)
        _drive_constants(stimulus, constant_nets, excite_start, relax_start, offset=1.0)

    total_time = 2 * len(input_vectors) * phase_period + phase_period
    trace = simulator.run(stimulus, until=total_time)

    outputs: List[Dict[str, int]] = []
    for cycle in range(len(input_vectors)):
        window_start = (2 * cycle) * phase_period
        window_end = (2 * cycle + 1) * phase_period
        decoded = {
            port.name: _decode_output(trace, port.net, port.rail, window_start, window_end)
            for port in netlist.output_ports
        }
        outputs.append(decoded)
    return XsfqSimulationResult(
        outputs=outputs,
        trace=trace,
        phase_period=phase_period,
        all_cells_reinitialised=simulator.elements_in_initial_state(),
    )


def simulate_sequential(
    netlist: XsfqNetlist,
    input_vectors: Sequence[Mapping[str, int]],
    phase_period: float = 500.0,
    library: Optional[XsfqLibrary] = None,
) -> XsfqSimulationResult:
    """Pulse-simulate a sequential xSFQ netlist (DROC pairs, trigger, clock).

    The stimulus follows the paper's start-up protocol: one trigger phase
    (clocking only the preloaded DROC rank), then two clocked phases per
    logical cycle.  ``input_vectors[k]`` supplies the PI values of logical
    cycle ``k``; the same values are also presented during the start-up
    phase pair so the first architectural state is well defined.

    Decoded outputs are reported per logical cycle, starting with cycle 0 =
    the first excite/relax pair after start-up.
    """
    simulator, droc_clocks = build_simulator(netlist, library)
    if not droc_clocks:
        raise SimulationError("netlist has no storage cells; use simulate_combinational")

    pi_names = sorted(
        {
            port.rsplit("_", 1)[0]
            for port in netlist.input_ports
            if port not in netlist.clock_nets and port not in netlist.trigger_nets
        }
    )

    stimulus: Dict[str, List[float]] = {}
    # Start-up: the trigger pulse clocks only the preloaded rank (through the
    # merged clock+trigger net) during phase 0, emitting the preloaded 1s.
    trigger_time = 1.0
    if netlist.trigger_nets:
        stimulus.setdefault(TRIGGER_NET, []).append(trigger_time)
    # Regular clock pulses at every subsequent phase boundary.
    num_phases = 2 * len(input_vectors) + 2
    for phase in range(1, num_phases + 1):
        stimulus.setdefault(CLOCK_NET, []).append(phase * phase_period + 1.0)

    # Primary inputs.  Logical cycle c occupies the phase pair
    # (2c+1, 2c+2): the excite phase starts one phase after the trigger so
    # the PI rails stay aligned with the state rails emitted by the DROCs.
    constant_nets = _constant_nets(netlist)
    for cycle, vector in enumerate(input_vectors):
        excite_start = (2 * cycle + 1) * phase_period
        relax_start = (2 * cycle + 2) * phase_period
        for pi in pi_names:
            value = int(bool(vector.get(pi, 0)))
            _drive_input(stimulus, pi, value, excite_start, relax_start, offset=5.0)
        _drive_constants(stimulus, constant_nets, excite_start, relax_start, offset=5.0)

    total_time = (num_phases + 2) * phase_period
    trace = simulator.run(stimulus, until=total_time)

    outputs: List[Dict[str, int]] = []
    for cycle in range(len(input_vectors)):
        window_start = (2 * cycle + 1) * phase_period
        window_end = (2 * cycle + 2) * phase_period
        decoded = {
            port.name: _decode_output(trace, port.net, port.rail, window_start, window_end)
            for port in netlist.output_ports
        }
        outputs.append(decoded)
    return XsfqSimulationResult(
        outputs=outputs,
        trace=trace,
        phase_period=phase_period,
        all_cells_reinitialised=simulator.elements_in_initial_state(),
    )


def reference_start_state(latch_names: Sequence[str]) -> Dict[str, int]:
    """The architectural state the preload/trigger start-up establishes.

    The preloaded DROC rank emits logical 1s during the trigger phase, so
    the state visible to the first logical cycle is the next-state function
    evaluated on an all-ones present state (see the module docstring).  The
    reference :class:`LogicNetwork` simulation therefore starts from the
    all-ones state when comparing against the pulse-level run.
    """
    return {name: 1 for name in latch_names}
