"""Pulse-level simulation of synthesised xSFQ netlists.

This is the functional-verification back end of the flow: the cell netlists
produced by :mod:`repro.core` are elaborated into pulse elements, their
primary inputs are driven with the alternating dual-rail encoding of
Figure 1, DROC ranks are clocked (with the one-shot trigger of Section 3.2)
and the primary outputs are decoded back into logical values, one per
logical cycle.  The test-suite and :mod:`repro.verify` compare those decoded
values against golden gate-level/AIG simulation of the original design,
which closes the loop from RTL to pulses — the role PyLSE plays in the
paper (Figure 7).

The work-horse is :class:`BatchedNetlistSimulator`: the netlist is
elaborated into pulse elements **once** and then driven with any number of
stimulus batches — hundreds of combinational patterns ride in a single
event-queue run (one logical cycle each), and sequential trajectories reuse
the elaborated elements across runs via :meth:`PulseSimulator.reset`.  The
module-level :func:`simulate_combinational` / :func:`simulate_sequential`
helpers are thin one-batch wrappers kept for convenience and backwards
compatibility.  :func:`elaboration_count` exposes a process-wide counter of
netlist elaborations so regression tests can assert that batched
verification does not rebuild the simulator per pattern.

Protocol summary (see the paper's Figures 1, 6 and 7):

* every logical cycle spans two synchronous phases, excite then relax;
* a primary input with value ``v`` pulses its positive rail during the
  excite phase iff ``v = 1`` and its negative rail otherwise, with the
  mirrored pattern in the relax phase;
* sequential designs receive one trigger phase before normal operation —
  the preloaded DROC rank emits its stored pulses, which primes the
  downstream LA/FA cells into their excite phase;
* the architectural state visible in logical cycle 1 is recorded per latch
  by the mapper (``SequentialMappingInfo.start_state``): a boundary DROC
  capturing the positive rail of its next-state value starts at 1, one
  capturing the negative rail starts at 0 (historically every capture was
  positive, hence the all-ones convention of :func:`reference_start_state`);
* retimed netlists register every cut-crossing signal in a mid-rank DROC;
  input waves then need one extra phase to traverse that rank, so they are
  driven ``XsfqNetlist.input_phase_lead`` phases early — aligned with the
  start-up trigger — which keeps the output decode windows unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.cells import CellKind, XsfqLibrary, default_library
from ...core.dual_rail import XsfqNetlist
from ...core.polarity import Rail
from ...core.sequential import CLOCK_NET, TRIGGER_NET
from .elements import (
    DroCell,
    DrocCell,
    FaCell,
    JtlCell,
    LaCell,
    MergerCell,
    SplitterCell,
)
from .simulator import PulseSimulator, SimulationError

#: Process-wide count of netlist elaborations (see :func:`elaboration_count`).
_ELABORATIONS = 0


def elaboration_count() -> int:
    """How many times :func:`build_simulator` elaborated a netlist.

    Regression tests snapshot this before and after a batched verification
    run to assert that N patterns cost one elaboration, not N.
    """
    return _ELABORATIONS


@dataclass
class XsfqSimulationResult:
    """Decoded output of a pulse-level run.

    Attributes:
        outputs: One dictionary per logical cycle mapping PO name to 0/1.
        trace: Raw pulse times per net, in time order.  Covers every net
            for the one-shot ``simulate_*`` helpers; a
            :class:`BatchedNetlistSimulator` restricts capture to the
            primary-output rails unless built with ``full_trace=True``.
        phase_period: Phase length used (ps).
        all_cells_reinitialised: Whether every LA/FA cell was back in its
            initial state when the simulation ended (the Table 1 property).
        dangling_nets: Nets that pulsed but have no consuming element —
            primary outputs legitimately appear here; anything else points
            at a mis-wired netlist (see ``repro.verify``).
    """

    outputs: List[Dict[str, int]]
    trace: Dict[str, List[float]]
    phase_period: float
    all_cells_reinitialised: bool
    dangling_nets: List[str] = field(default_factory=list)


def build_simulator(
    netlist: XsfqNetlist, library: Optional[XsfqLibrary] = None
) -> Tuple[PulseSimulator, List[str]]:
    """Elaborate an :class:`XsfqNetlist` into a :class:`PulseSimulator`.

    Returns the simulator and the list of clock input nets of all DROC
    cells (the preloaded rank listens on the merged clock+trigger net when
    the netlist carries a trigger merger).
    """
    global _ELABORATIONS
    _ELABORATIONS += 1
    library = library or default_library()
    simulator = PulseSimulator()
    droc_clock_nets: List[str] = []
    preload_clock = f"{CLOCK_NET}_preload" if netlist.trigger_nets else CLOCK_NET

    for cell in netlist.cells:
        delay = library.delay(cell.kind if not (cell.kind is CellKind.DROC and cell.preload) else CellKind.DROC)
        if cell.kind is CellKind.LA:
            simulator.add_element(LaCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.FA:
            simulator.add_element(FaCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.SPLITTER:
            simulator.add_element(SplitterCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.MERGER:
            simulator.add_element(MergerCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.JTL:
            simulator.add_element(JtlCell(cell.name, cell.inputs, cell.outputs, delay))
        elif cell.kind is CellKind.DRO:
            clock = preload_clock if cell.preload else CLOCK_NET
            simulator.add_element(
                DroCell(cell.name, [cell.inputs[0], clock], cell.outputs, delay, preload=cell.preload)
            )
            droc_clock_nets.append(clock)
        elif cell.kind in (CellKind.DROC, CellKind.DROC_PRELOAD):
            clock = preload_clock if cell.preload else CLOCK_NET
            simulator.add_element(
                DrocCell(cell.name, [cell.inputs[0], clock], cell.outputs, delay, preload=cell.preload)
            )
            droc_clock_nets.append(clock)
        else:
            raise SimulationError(f"cell kind {cell.kind} is not supported by the pulse simulator")
    return simulator, droc_clock_nets


def suggest_phase_period(
    netlist: XsfqNetlist, library: Optional[XsfqLibrary] = None
) -> float:
    """A safe synchronous phase length for a netlist (picoseconds).

    Every wave must settle through the worst combinational segment well
    inside one phase, so the period is sized from the netlist's critical
    path delay with generous margin (never below the historical 500 ps).
    """
    delay = netlist.critical_path_delay(library or default_library())
    return max(500.0, 1.5 * delay + 50.0)


def _input_rail_nets(pi_name: str) -> Tuple[str, str]:
    return f"{pi_name}_p", f"{pi_name}_n"


def _drive_input(
    stimulus: Dict[str, List[float]],
    pi_name: str,
    value: int,
    excite_start: float,
    relax_start: float,
    offset: float,
) -> None:
    pos, neg = _input_rail_nets(pi_name)
    if value:
        stimulus.setdefault(pos, []).append(excite_start + offset)
        stimulus.setdefault(neg, []).append(relax_start + offset)
    else:
        stimulus.setdefault(neg, []).append(excite_start + offset)
        stimulus.setdefault(pos, []).append(relax_start + offset)


def _constant_nets(netlist: XsfqNetlist) -> List[str]:
    """Constant-rail nets referenced by the netlist (``const0_p`` / ``const0_n``)."""
    referenced = set()
    for cell in netlist.cells:
        referenced.update(cell.inputs)
    referenced.update(port.net for port in netlist.output_ports)
    return [net for net in ("const0_p", "const0_n") if net in referenced]


def _drive_constants(
    stimulus: Dict[str, List[float]],
    nets: Sequence[str],
    excite_start: float,
    relax_start: float,
    offset: float,
) -> None:
    """Present the constant-0 value: negative rail in excite, positive in relax."""
    if "const0_n" in nets:
        stimulus.setdefault("const0_n", []).append(excite_start + offset)
    if "const0_p" in nets:
        stimulus.setdefault("const0_p", []).append(relax_start + offset)


def _decode_output(
    trace: Mapping[str, Sequence[float]],
    net: str,
    rail: Rail,
    window_start: float,
    window_end: float,
) -> int:
    # Trace lists come out of the event queue in time order, so a binary
    # search bounds the decode window instead of scanning every pulse the
    # net ever carried (which made wide batches quadratic).
    times = trace.get(net)
    pulsed = bool(times) and bisect_left(times, window_end) > bisect_left(times, window_start)
    value = 1 if pulsed else 0
    return value if rail is Rail.POS else 1 - value


class BatchedNetlistSimulator:
    """Elaborate a netlist once and pulse-simulate many stimulus batches.

    Combinational netlists process a whole batch of input patterns in a
    single event-queue run (one logical cycle per pattern — the alternating
    protocol returns every LA/FA cell to its initial state between cycles,
    so consecutive patterns cannot interfere).  Sequential netlists process
    one multi-cycle trajectory per run, reusing the elaborated elements via
    :meth:`PulseSimulator.reset` between trajectories.  Either way the
    elaboration cost is paid exactly once, which is what makes catalog-wide
    verification campaigns (:mod:`repro.verify`) affordable.

    Attributes:
        phase_period: Synchronous phase length in ps.  Defaults to
            :func:`suggest_phase_period`, which scales with the netlist's
            critical path so deep designs settle inside one phase.
        elaborations: Number of netlist elaborations performed (always 1).
        batches_run / patterns_run: Cumulative usage statistics.
        full_trace: When False (the default), pulse capture is restricted
            to the primary-output rail nets — the only ones the decode
            windows read — which keeps large batches cheap.  Pass
            ``full_trace=True`` to record every net (needed for
            divergence localisation and waveform inspection).
        fault_model: Optional :class:`repro.faults.FaultModel`.  Its
            drop/dup/jitter aspects are installed on the pulse
            simulator's cell emissions; its ``skew`` aspect shifts every
            relax-phase stimulus event (input rails, constants and clock
            pulses of relax phases) built here — modelling skew between
            the two xSFQ phases.  A zero-magnitude model leaves traces
            byte-identical to a fault-free run.
        vectorize: Forwarded to :attr:`PulseSimulator.vectorize` —
            ``None`` (default) lets eligible fault-free combinational
            batches run on the struct-of-arrays fast path, ``False``
            forces the scalar event loop (the differential tests pin the
            two bit-identical), ``True`` insists on trying the fast path
            even when ``REPRO_SCALAR_KERNELS`` is set.
    """

    def __init__(
        self,
        netlist: XsfqNetlist,
        library: Optional[XsfqLibrary] = None,
        phase_period: Optional[float] = None,
        full_trace: bool = False,
        fault_model=None,
        vectorize: Optional[bool] = None,
    ) -> None:
        self.netlist = netlist
        self.library = library or default_library()
        self.full_trace = bool(full_trace)
        self.fault_model = fault_model
        self._skew = float(fault_model.skew) if fault_model is not None else 0.0
        self.simulator, self._droc_clocks = build_simulator(netlist, self.library)
        self.simulator.vectorize = vectorize
        if fault_model is not None:
            self.simulator.set_fault_model(fault_model)
        self.is_sequential = bool(self._droc_clocks)
        self.phase_period = (
            float(phase_period)
            if phase_period is not None
            else suggest_phase_period(netlist, self.library)
        )
        self.input_phase_lead = int(getattr(netlist, "input_phase_lead", 0))
        self.elaborations = 1
        self.batches_run = 0
        self.patterns_run = 0
        self._pi_names = sorted(
            {
                port.rsplit("_", 1)[0]
                for port in netlist.input_ports
                if port not in netlist.clock_nets and port not in netlist.trigger_nets
            }
        )
        self._constant_nets = _constant_nets(netlist)
        self._output_nets = {port.net for port in netlist.output_ports}
        self._driven_nets = {net for cell in netlist.cells for net in cell.outputs}
        if not self.full_trace:
            self.simulator.observe_only(self._output_nets)

    @property
    def pi_names(self) -> List[str]:
        """Original primary-input names (rail suffixes stripped, clocks
        and triggers excluded) — the keys :meth:`run_combinational` /
        :meth:`run_sequence` vectors are read by."""
        return list(self._pi_names)

    # ------------------------------------------------------------------
    # Decode windows
    # ------------------------------------------------------------------
    def cycle_window(self, cycle: int) -> Tuple[float, float]:
        """The excite-phase time window in which cycle ``cycle`` is decoded."""
        period = self.phase_period
        first = 2 * cycle + 1 if self.is_sequential else 2 * cycle
        return first * period, (first + 1) * period

    def decode_net(
        self,
        trace: Mapping[str, Sequence[float]],
        net: str,
        rail: Rail,
        cycle: int,
    ) -> int:
        """Decode the logical value a net carried during one cycle."""
        start, end = self.cycle_window(cycle)
        return _decode_output(trace, net, rail, start, end)

    def unexpected_dangling_nets(self) -> List[str]:
        """Cell-driven dangling pulsed nets that are *not* primary outputs.

        Primary outputs are observed externally, so pulses on them are
        supposed to reach no element, and stimulus pulses on unused input
        rails never enter the netlist at all; but a *cell output* pulsing
        into the void is surfaced by the verifier as a netlist-hygiene
        warning (DROC complement branches are the known-benign case).
        """
        return [
            net
            for net in self.simulator.dangling_nets()
            if net not in self._output_nets and net in self._driven_nets
        ]

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_combinational(
        self, input_vectors: Sequence[Mapping[str, int]]
    ) -> XsfqSimulationResult:
        """Simulate one batch of combinational patterns, one per logical cycle."""
        if self.is_sequential:
            raise SimulationError("netlist contains storage cells; use run_sequence")
        period = self.phase_period
        self.simulator.reset()
        stimulus: Dict[str, List[float]] = {}
        # Phase skew (fault injection): the relax wave arrives late by
        # ``skew`` ps relative to the excite wave.
        skew = self._skew
        for cycle, vector in enumerate(input_vectors):
            excite_start = (2 * cycle) * period
            relax_start = (2 * cycle + 1) * period + skew
            for pi in self._pi_names:
                value = int(bool(vector.get(pi, 0)))
                _drive_input(stimulus, pi, value, excite_start, relax_start, offset=1.0)
            _drive_constants(stimulus, self._constant_nets, excite_start, relax_start, offset=1.0)

        total_time = 2 * len(input_vectors) * period + period
        trace = self.simulator.run(stimulus, until=total_time)

        outputs: List[Dict[str, int]] = []
        for cycle in range(len(input_vectors)):
            window_start, window_end = self.cycle_window(cycle)
            outputs.append(
                {
                    port.name: _decode_output(trace, port.net, port.rail, window_start, window_end)
                    for port in self.netlist.output_ports
                }
            )
        self.batches_run += 1
        self.patterns_run += len(input_vectors)
        return XsfqSimulationResult(
            outputs=outputs,
            trace=trace,
            phase_period=period,
            all_cells_reinitialised=self.simulator.elements_in_initial_state(),
            dangling_nets=self.simulator.dangling_nets(),
        )

    def run_sequence(
        self, input_vectors: Sequence[Mapping[str, int]]
    ) -> XsfqSimulationResult:
        """Simulate one multi-cycle trajectory of a sequential netlist.

        The stimulus follows the paper's start-up protocol: one trigger
        phase (clocking only the preloaded DROC rank), then two clocked
        phases per logical cycle.  ``input_vectors[k]`` supplies the PI
        values of logical cycle ``k``.  Repeated calls reuse the elaborated
        elements — state is cleared with :meth:`PulseSimulator.reset`.
        """
        if not self.is_sequential:
            raise SimulationError("netlist has no storage cells; use run_combinational")
        period = self.phase_period
        netlist = self.netlist
        self.simulator.reset()

        stimulus: Dict[str, List[float]] = {}
        # Start-up: the trigger pulse clocks only the preloaded rank (through
        # the merged clock+trigger net) during phase 0, emitting the
        # preloaded start state.
        if netlist.trigger_nets:
            stimulus.setdefault(TRIGGER_NET, []).append(1.0)
        # Regular clock pulses at every subsequent phase boundary.  Under
        # injected phase skew the relax phases — the even-numbered ones,
        # since logical cycle c occupies the (2c+1, 2c+2) pair — fire
        # late, modelling skew between the two synchronous xSFQ phases.
        skew = self._skew
        num_phases = 2 * len(input_vectors) + 2
        for phase in range(1, num_phases + 1):
            late = skew if phase % 2 == 0 else 0.0
            stimulus.setdefault(CLOCK_NET, []).append(phase * period + 1.0 + late)

        # Primary inputs.  Logical cycle c occupies the phase pair
        # (2c+1, 2c+2): the excite phase starts one phase after the trigger
        # so the PI rails stay aligned with the state rails emitted by the
        # DROCs.  Retimed netlists drive the inputs ``input_phase_lead``
        # phases early — their waves spend that extra phase crossing the
        # mid-rank registers, re-aligning with the state rails above the cut.
        #
        # The stimulus offset must clear every clock arrival of the same
        # phase: the preloaded rank sees the clock only after the trigger
        # merger (clock inject 1.0 + merger delay), so a PI or constant
        # rail wired *directly* into a preloaded DROC — a latch whose
        # next-state is a bare input/constant, which random FSM fuzzing
        # generates but the fixed catalog never does — would be captured
        # one phase early by a smaller offset.
        offset = 2.0 + (
            self.library.delay(CellKind.MERGER) if netlist.trigger_nets else 0.0
        )
        lead = self.input_phase_lead
        for cycle, vector in enumerate(input_vectors):
            excite_start = (2 * cycle + 1 - lead) * period
            relax_start = (2 * cycle + 2 - lead) * period + skew
            for pi in self._pi_names:
                value = int(bool(vector.get(pi, 0)))
                _drive_input(stimulus, pi, value, excite_start, relax_start, offset=offset)
            _drive_constants(stimulus, self._constant_nets, excite_start, relax_start, offset=offset)

        total_time = (num_phases + 2) * period
        trace = self.simulator.run(stimulus, until=total_time)

        outputs: List[Dict[str, int]] = []
        for cycle in range(len(input_vectors)):
            window_start, window_end = self.cycle_window(cycle)
            outputs.append(
                {
                    port.name: _decode_output(trace, port.net, port.rail, window_start, window_end)
                    for port in netlist.output_ports
                }
            )
        self.batches_run += 1
        self.patterns_run += len(input_vectors)
        return XsfqSimulationResult(
            outputs=outputs,
            trace=trace,
            phase_period=period,
            all_cells_reinitialised=self.simulator.elements_in_initial_state(),
            dangling_nets=self.simulator.dangling_nets(),
        )


def simulate_combinational(
    netlist: XsfqNetlist,
    input_vectors: Sequence[Mapping[str, int]],
    phase_period: Optional[float] = None,
    library: Optional[XsfqLibrary] = None,
) -> XsfqSimulationResult:
    """Pulse-simulate a clock-free combinational xSFQ netlist (one batch).

    Each entry of ``input_vectors`` supplies one logical cycle's primary
    input values (by original PI name); the result carries one decoded
    output dictionary per logical cycle.  ``phase_period`` defaults to
    :func:`suggest_phase_period`.  For many batches over the same netlist,
    hold a :class:`BatchedNetlistSimulator` instead of calling this in a
    loop — this helper re-elaborates the netlist on every call.
    """
    sim = BatchedNetlistSimulator(
        netlist, library=library, phase_period=phase_period, full_trace=True
    )
    if sim.is_sequential:
        raise SimulationError("netlist contains storage cells; use simulate_sequential")
    return sim.run_combinational(input_vectors)


def simulate_sequential(
    netlist: XsfqNetlist,
    input_vectors: Sequence[Mapping[str, int]],
    phase_period: Optional[float] = None,
    library: Optional[XsfqLibrary] = None,
) -> XsfqSimulationResult:
    """Pulse-simulate a sequential xSFQ netlist (one multi-cycle trajectory).

    Decoded outputs are reported per logical cycle, starting with cycle 0 =
    the first excite/relax pair after start-up.  See
    :meth:`BatchedNetlistSimulator.run_sequence` for the protocol details
    and batching.
    """
    sim = BatchedNetlistSimulator(
        netlist, library=library, phase_period=phase_period, full_trace=True
    )
    if not sim.is_sequential:
        raise SimulationError("netlist has no storage cells; use simulate_combinational")
    return sim.run_sequence(input_vectors)


def reference_start_state(latch_names: Sequence[str]) -> Dict[str, int]:
    """The classic all-ones architectural start state.

    Historically every boundary DROC captured the positive rail of its
    next-state function, so the preload/trigger start-up established an
    all-ones state.  Mappings that capture a negative rail start the
    corresponding latch at 0; prefer
    ``SequentialMappingInfo.start_state`` (carried on
    ``XsfqSynthesisResult.sequential_info``) which records the exact state
    per latch.  This helper is kept for circuits known to use positive
    captures only (e.g. the Figure 7 counter).
    """
    return {name: 1 for name in latch_names}
