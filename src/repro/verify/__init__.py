"""Pulse-accurate verification: does the mapped netlist actually work?

The subsystem answers that question at three granularities:

* :func:`verify_result` — one synthesis result, one reproducible
  stimulus suite, one batched pulse-simulation run cross-checked against
  word-parallel golden AIG simulation, one machine-checkable
  :class:`VerificationVerdict` (counterexample pattern + first
  divergence net on failure);
* the ``verify`` **flow stage** (registered on import, see
  :mod:`repro.verify.flowstage`) — any composed
  :class:`~repro.core.flowgraph.Flow` can end in a verdict;
* :class:`VerificationSpec` **campaigns** — declarative, cacheable,
  picklable units scheduled across a ``multiprocessing`` pool by
  :meth:`repro.eval.runner.Runner.verify` and surfaced as
  ``repro verify [--catalog|--circuit NAME]`` on the CLI.

See ``docs/verification.md`` for the stimulus model, the batching
strategy and how to read counterexamples.
"""

from .stimulus import StimulusSuite, stimulus_suite
from .equivalence import (
    Counterexample,
    VerificationError,
    VerificationVerdict,
    verify_result,
)
from .campaign import (
    VerificationReport,
    VerificationSpec,
    catalog_specs,
    render_verification_table,
    timed_verification_record,
    verification_record,
)
from . import flowstage  # noqa: F401  - registers the 'verify' stage

__all__ = [
    "StimulusSuite",
    "stimulus_suite",
    "Counterexample",
    "VerificationError",
    "VerificationVerdict",
    "verify_result",
    "VerificationReport",
    "VerificationSpec",
    "catalog_specs",
    "render_verification_table",
    "timed_verification_record",
    "verification_record",
]
