"""Catalog-wide verification campaigns on the eval execution engine.

A :class:`VerificationSpec` is the verification analogue of
:class:`repro.eval.engine.SynthesisJob`: a declarative, picklable unit —
circuit name, scale, the flow's canonical signature, and the stimulus
parameters (pattern budget, seed, trajectory length).  Its
content-addressed :meth:`~VerificationSpec.key` is what the shared
:class:`repro.eval.engine.ResultCache` stores verdict records under, so a
warm cache replays an entire catalog campaign with zero re-synthesis and
zero re-simulation, and ``multiprocessing`` workers in
:meth:`repro.eval.runner.Runner.verify` never compute the same spec
twice.

:func:`verification_record` is the worker-process entry point: build the
catalogued circuit, run the flow (reusing the in-process stage cache),
verify the mapped netlist against the *source network* — an end-to-end
check of the whole synthesis stack — and flatten the verdict to JSON.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits import build as build_circuit
from ..circuits import info as circuit_info
from ..circuits import names as circuit_names
from ..core import Flow, get_stage_cache
from ..core.report import format_table
from ..schema import content_key, schema_tag
from .equivalence import VerificationVerdict, verify_result

__all__ = [
    "VerificationReport",
    "VerificationSpec",
    "catalog_specs",
    "render_verification_table",
    "timed_verification_record",
    "verification_record",
]

#: Current version of the ``repro-verify/<N>`` message type.
#: 2: records gained ``cell_counts`` (mapped cell-family histogram).
#: 3: records are stamped with the ``repro.schema`` envelope on disk
#: (untagged v2 documents still load, via migration).
VERIFY_SCHEMA = 3

#: A flow signature as stored on a spec (same shape as SynthesisJob.stages).
StageSignature = Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]


def _package_version() -> str:
    from .. import __version__

    return __version__


@dataclass(frozen=True)
class VerificationSpec:
    """One schedulable, cacheable verification unit.

    Attributes:
        circuit: Name from :mod:`repro.circuits.registry`.
        scale: ``"quick"`` or ``"paper"`` circuit dimensions.
        stages: Canonical flow signature of the synthesis under test.
        patterns: Stimulus pattern budget.
        seed: Stimulus seed.
        sequence_length: Cycles per trajectory (sequential circuits).
    """

    #: Message kind this spec's records are stored under (see ``repro.schema``).
    schema_kind: ClassVar[str] = "verify"

    circuit: str
    scale: str = "quick"
    stages: StageSignature = ()
    patterns: int = 256
    seed: int = 0
    sequence_length: int = 8

    @classmethod
    def create(
        cls,
        circuit: str,
        scale: str = "quick",
        flow: Optional[Flow] = None,
        patterns: int = 256,
        seed: int = 0,
        sequence_length: int = 8,
    ) -> "VerificationSpec":
        """Build a spec for a circuit under an arbitrary flow (default flow when omitted)."""
        flow = flow if flow is not None else Flow.default()
        return cls(
            circuit=circuit,
            scale=scale,
            stages=flow.signature(),
            patterns=int(patterns),
            seed=int(seed),
            sequence_length=int(sequence_length),
        )

    def flow(self) -> Flow:
        """Reconstruct the runnable flow this spec verifies."""
        return Flow.from_signature(self.stages) if self.stages else Flow.default()

    def key(self) -> str:
        """Content-addressed cache key: flow signature + stimulus identity.

        Canonicalised through :func:`repro.schema.content_key` — no
        ``default=str`` escape hatch, so a non-JSON-native value in the
        flow signature raises instead of destabilising the key.
        """
        payload = {
            "schema": schema_tag(self.schema_kind),
            "version": _package_version(),
            "circuit": self.circuit,
            "scale": self.scale,
            "flow": self.stages or Flow.default().signature(),
            "patterns": self.patterns,
            "seed": self.seed,
            "sequence_length": self.sequence_length,
        }
        return content_key(payload)

    def label(self) -> str:
        return f"{self.circuit}@{self.scale} n={self.patterns} seed={self.seed}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "scale": self.scale,
            "flow": [[name, dict(options)] for name, options in self.stages],
            "patterns": self.patterns,
            "seed": self.seed,
            "sequence_length": self.sequence_length,
        }


def catalog_specs(
    circuits: Optional[Sequence[str]] = None,
    scale: str = "quick",
    flow: Optional[Flow] = None,
    patterns: int = 256,
    seed: int = 0,
    sequence_length: int = 8,
) -> List[VerificationSpec]:
    """Specs for a circuit subset (default: the whole registry catalog)."""
    names = list(circuits) if circuits else circuit_names()
    return [
        VerificationSpec.create(
            name,
            scale=scale,
            flow=flow,
            patterns=patterns,
            seed=seed,
            sequence_length=sequence_length,
        )
        for name in names
    ]


def verification_record(spec: VerificationSpec) -> Dict[str, object]:
    """Worker-process entry: synthesise, verify, flatten to a JSON record."""
    info = circuit_info(spec.circuit)
    network = build_circuit(spec.circuit, spec.scale)
    synth_started = time.perf_counter()
    result = spec.flow().run(network, stage_cache=get_stage_cache())
    synth_seconds = time.perf_counter() - synth_started
    verdict = verify_result(
        result,
        golden=network,
        patterns=spec.patterns,
        seed=spec.seed,
        sequence_length=spec.sequence_length,
    )
    record = verdict.to_dict()
    spec_fields = spec.to_dict()
    # The verdict's "patterns" is the count actually verified (exhaustive
    # suites finish in fewer than requested); keep it, and store the
    # request under its own key instead of clobbering it.
    record["requested_patterns"] = spec_fields.pop("patterns")
    record.update(spec_fields)
    record["kind"] = info.kind
    record["suite"] = info.suite
    record["synth_seconds"] = synth_seconds
    record["cell_counts"] = _cell_counts(result)
    return record


def _cell_counts(result) -> Dict[str, int]:
    """Histogram of mapped cell families, sorted by family name.

    The coverage subsystem (:mod:`repro.cov`) buckets these into
    flow x cell-family features; sorting keeps records canonical.
    """
    counts: Dict[str, int] = {}
    netlist = getattr(result, "netlist", None)
    for cell in getattr(netlist, "cells", ()) or ():
        family = cell.kind.value
        counts[family] = counts.get(family, 0) + 1
    return dict(sorted(counts.items()))


def timed_verification_record(
    spec: VerificationSpec,
) -> Tuple[VerificationSpec, Dict[str, object], float]:
    """Record plus the seconds it took to compute.

    Compatibility shim: the runner now schedules bare
    :func:`verification_record` through :mod:`repro.exec`, which times
    every unit itself; this wrapper remains for external callers that
    used it as a pool worker function.
    """
    started = time.perf_counter()
    record = verification_record(spec)
    return spec, record, time.perf_counter() - started


@dataclass
class VerificationReport:
    """Everything one campaign produced (mirrors ``RunReport`` for verify).

    Attributes:
        records: One flattened verdict record per spec, in spec order.
        scale: Circuit scale used.
        patterns: Requested pattern budget.
        seed: Stimulus seed.
        jobs: Worker-pool width.
        computed: Specs verified this run (cache misses).
        cached: Specs replayed from the result cache.
        elapsed_s: Wall clock for the whole campaign.
    """

    records: List[Dict[str, object]] = field(default_factory=list)
    scale: str = "quick"
    patterns: int = 256
    seed: int = 0
    jobs: int = 1
    computed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("status") == "counterexample"]

    @property
    def all_equivalent(self) -> bool:
        return not self.failures

    def total_patterns(self) -> int:
        return sum(int(r.get("patterns") or 0) for r in self.records)

    def table(self) -> str:
        return render_verification_table(self.records)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": "verify",
            "scale": self.scale,
            "patterns": self.patterns,
            "seed": self.seed,
            "jobs": self.jobs,
            "computed": self.computed,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "rows": self.records,
            # Rendered table, so `repro report` re-renders saved campaigns.
            "text": self.table(),
            "summary": {
                "circuits": len(self.records),
                "equivalent": sum(1 for r in self.records if r.get("status") == "equivalent"),
                "counterexamples": len(self.failures),
                "skipped": sum(1 for r in self.records if r.get("status") == "skipped"),
                "total_patterns": self.total_patterns(),
                "all_equivalent": self.all_equivalent,
            },
        }


def render_verification_table(records: Sequence[Mapping[str, object]]) -> str:
    """The ``repro verify`` summary table."""

    def detail(record: Mapping[str, object]) -> str:
        verdict = VerificationVerdict.from_dict(record)
        return verdict.summary()

    rows = [
        [
            record.get("circuit", "?"),
            record.get("kind", "?"),
            record.get("status", "?").upper(),
            int(record.get("patterns") or 0),
            int(record.get("elaborations") or 0),
            f"{float(record.get('seconds') or 0.0):.2f}",
            detail(record),
        ]
        for record in records
    ]
    return format_table(
        ["Circuit", "Kind", "Status", "Patterns", "Elab", "Sim (s)", "Detail"],
        rows,
    )
