"""Pulse-level equivalence checking against word-parallel golden simulation.

:func:`verify_result` is the core of the verification subsystem: it takes
a finished :class:`~repro.core.flow.XsfqSynthesisResult`, elaborates the
mapped netlist into a :class:`~repro.sim.pulse.BatchedNetlistSimulator`
**once**, drives a reproducible :class:`~repro.verify.stimulus.StimulusSuite`
through it, and cross-checks every decoded output against the golden
AND-inverter graph simulated word-parallel by
:mod:`repro.aig.simulate` (one pass over the graph evaluates the whole
suite — Python integers are the bit-parallel vectors).

On a mismatch the verdict carries a full :class:`Counterexample` — the
input pattern, the cycle, the offending primary output — plus the *first
divergence net*: the topologically earliest rail net of the mapped
netlist whose pulse activity disagrees with the mapped AIG on the failing
pattern.  That is the net to stare at when debugging a mapping bug; see
``docs/verification.md`` for a worked reading.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..aig import Aig, network_to_aig
from ..aig.simulate import lit_values, simulate_patterns
from ..core.dual_rail import XsfqNetlist
from ..core.flow import XsfqSynthesisResult
from ..core.polarity import Rail
from ..netlist.network import LogicNetwork
from ..sim.pulse import BatchedNetlistSimulator
from .stimulus import StimulusSuite, stimulus_suite

__all__ = [
    "Counterexample",
    "VerificationError",
    "VerificationVerdict",
    "verify_result",
]


class VerificationError(Exception):
    """Raised for requests the verifier cannot serve (not for mismatches)."""


@dataclass(frozen=True)
class Counterexample:
    """A concrete input pattern on which pulse and golden outputs diverge.

    Attributes:
        inputs: The primary-input assignment of the failing cycle.
        output: Name of the first diverging primary output.
        expected: Golden value of that output.
        observed: Value decoded from the pulse trace.
        pattern: Index of the failing pattern within the stimulus suite.
        cycle: Cycle index within the trajectory (equals ``pattern`` for
            combinational circuits, where each pattern is one cycle).
        sequence: Trajectory index (0 for combinational circuits).
    """

    inputs: Dict[str, int]
    output: str
    expected: int
    observed: int
    pattern: int
    cycle: int
    sequence: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "inputs": dict(self.inputs),
            "output": self.output,
            "expected": self.expected,
            "observed": self.observed,
            "pattern": self.pattern,
            "cycle": self.cycle,
            "sequence": self.sequence,
        }


@dataclass
class VerificationVerdict:
    """Machine-checkable outcome of one verification run.

    Attributes:
        circuit: Name of the verified design.
        status: ``"equivalent"``, ``"counterexample"`` or ``"skipped"``.
        patterns: Number of input patterns actually verified.
        mode: Stimulus mode (``"exhaustive"`` / ``"random+corners"``).
        seed: Stimulus seed.
        counterexample: Present when ``status == "counterexample"``.
        first_divergence_net: Topologically earliest netlist rail whose
            pulse activity disagrees with the mapped AIG on the failing
            pattern (falls back to the failing output port's net).
        dangling_nets: Pulsed nets with no consuming element other than
            the primary outputs.  Expected for DROC complement branches;
            anything unexpected deserves a look (hence the warning).
        elaborations: Netlist elaborations performed (1 — that is the
            point of batching).
        seconds: Wall-clock spent verifying.
        reason: Human explanation for ``"skipped"`` verdicts.
    """

    circuit: str
    status: str
    patterns: int = 0
    mode: str = ""
    seed: int = 0
    counterexample: Optional[Counterexample] = None
    first_divergence_net: Optional[str] = None
    dangling_nets: List[str] = field(default_factory=list)
    elaborations: int = 0
    seconds: float = 0.0
    reason: str = ""

    @property
    def equivalent(self) -> bool:
        return self.status == "equivalent"

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serialisable record (the cached campaign unit)."""
        return {
            "circuit": self.circuit,
            "status": self.status,
            "patterns": self.patterns,
            "mode": self.mode,
            "seed": self.seed,
            "counterexample": self.counterexample.to_dict() if self.counterexample else None,
            "first_divergence_net": self.first_divergence_net,
            "dangling_nets": list(self.dangling_nets),
            "elaborations": self.elaborations,
            "seconds": self.seconds,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "VerificationVerdict":
        cex = record.get("counterexample")
        return cls(
            circuit=str(record.get("circuit", "")),
            status=str(record.get("status", "")),
            patterns=int(record.get("patterns", 0)),
            mode=str(record.get("mode", "")),
            seed=int(record.get("seed", 0)),
            counterexample=Counterexample(**cex) if cex else None,
            first_divergence_net=record.get("first_divergence_net"),
            dangling_nets=list(record.get("dangling_nets") or []),
            elaborations=int(record.get("elaborations", 0)),
            seconds=float(record.get("seconds", 0.0)),
            reason=str(record.get("reason", "")),
        )

    def summary(self) -> str:
        """One-line human rendering (CLI detail column)."""
        if self.status == "equivalent":
            extra = f", {len(self.dangling_nets)} dangling" if self.dangling_nets else ""
            return f"{self.patterns} patterns ok ({self.mode}{extra})"
        if self.status == "skipped":
            return self.reason or "skipped"
        cex = self.counterexample
        where = f"pattern {cex.pattern}" if cex else "unknown pattern"
        out = f"{cex.output}: expected {cex.expected}, got {cex.observed}" if cex else ""
        net = f"; first divergence at net {self.first_divergence_net!r}" if self.first_divergence_net else ""
        return f"{where}, {out}{net}"


def _golden_aig(golden: Union[LogicNetwork, Aig]) -> Aig:
    if isinstance(golden, Aig):
        return golden
    return network_to_aig(golden)


def _pi_words(aig: Aig, suite_words: Mapping[str, int]) -> Dict[int, int]:
    """Map the suite's per-name pattern words onto the AIG's PI nodes."""
    return {
        node: suite_words.get(name, 0)
        for node, name in zip(aig.pi_nodes, aig.pi_names)
    }


def _first_divergence_net(
    netlist: XsfqNetlist,
    aig: Aig,
    vector: Mapping[str, int],
    trace: Mapping[str, Sequence[float]],
    window: Tuple[float, float],
) -> Optional[str]:
    """Topologically earliest rail whose pulses disagree with the mapped AIG.

    Simulates the *mapped* AIG (the one the netlist was generated from) on
    the failing pattern and walks its AND nodes in topological order,
    decoding each node's rail nets from the pulse trace: the positive rail
    must pulse in the excite window iff the node's value is 1, the
    negative rail iff it is 0.  The first disagreement localises the bug
    below the failing output.
    """
    name_to_value = {name: int(bool(vector.get(name, 0))) for name in aig.pi_names}
    patterns = {
        node: name_to_value[name]
        for node, name in zip(aig.pi_nodes, aig.pi_names)
    }
    values = simulate_patterns(aig, patterns, 1)
    window_start, window_end = window
    for node in aig.and_nodes():
        value = values.get(node, 0) & 1
        for rail in (Rail.POS, Rail.NEG):
            net = netlist.node_rail_nets.get((node, rail))
            if net is None:
                continue
            expected_pulse = value == 1 if rail is Rail.POS else value == 0
            observed_pulse = any(
                window_start <= t < window_end for t in trace.get(net, ())
            )
            if expected_pulse != observed_pulse:
                return net
    return None


def _verify_combinational(
    verdict: VerificationVerdict,
    result: XsfqSynthesisResult,
    golden: Aig,
    suite: StimulusSuite,
    sim: BatchedNetlistSimulator,
    fault_model=None,
) -> None:
    num_patterns = len(suite)
    # ``simulate_patterns`` returns a Mapping — a plain dict from the
    # bigint kernel or a lazy PackedValues view from the numpy kernel;
    # only the PO words are materialised here either way.
    golden_values = simulate_patterns(golden, _pi_words(golden, suite.packed_words()), num_patterns)
    golden_outputs = {
        name: lit_values(golden_values, lit, num_patterns)
        for name, lit in zip(golden.po_names, golden.po_lits)
    }

    run = sim.run_combinational(suite.as_dicts())
    verdict.patterns = num_patterns
    verdict.dangling_nets = sim.unexpected_dangling_nets()
    for index in range(num_patterns):
        observed = run.outputs[index]
        for name in observed:
            expected = (golden_outputs.get(name, 0) >> index) & 1
            if observed[name] == expected:
                continue
            vector = suite.vector_dict(index)
            verdict.status = "counterexample"
            verdict.counterexample = Counterexample(
                inputs=vector,
                output=name,
                expected=expected,
                observed=observed[name],
                pattern=index,
                cycle=index,
            )
            port_net = next(
                (p.net for p in result.netlist.output_ports if p.name == name), None
            )
            # The batched run only captured the primary-output rails;
            # localisation needs every internal rail, so re-simulate with
            # full capture.  Fault-free runs replay just the failing
            # pattern (patterns are independent — the alternating
            # protocol returns every cell to its initial state between
            # cycles); fault-injected runs must replay the *whole* batch
            # on a cloned model, because injection streams are positional
            # — the draws hitting pattern ``index`` depend on every
            # emission before it.
            debug_model = fault_model.clone() if fault_model is not None else None
            debug_sim = BatchedNetlistSimulator(
                result.netlist,
                library=sim.library,
                phase_period=sim.phase_period,
                full_trace=True,
                fault_model=debug_model,
            )
            if debug_model is not None:
                debug_run = debug_sim.run_combinational(suite.as_dicts())
                window = debug_sim.cycle_window(index)
            else:
                debug_run = debug_sim.run_combinational([vector])
                window = debug_sim.cycle_window(0)
            verdict.first_divergence_net = (
                _first_divergence_net(
                    result.netlist,
                    result.aig,
                    vector,
                    debug_run.trace,
                    window,
                )
                or port_net
            )
            return
    verdict.status = "equivalent"


def _verify_sequential(
    verdict: VerificationVerdict,
    result: XsfqSynthesisResult,
    golden: Aig,
    suite: StimulusSuite,
    sim: BatchedNetlistSimulator,
    sequence_length: int,
) -> None:
    sequence_length = max(1, min(int(sequence_length), len(suite)))
    sequences = list(suite.sequences(sequence_length))
    if not sequences:
        raise VerificationError("stimulus suite is empty")
    num_sequences = len(sequences)
    mask = (1 << num_sequences) - 1

    info = result.sequential_info
    start_state = dict(info.start_state) if info is not None else {}
    state_words = {
        latch.node: (mask if start_state.get(latch.name, 1) else 0)
        for latch in golden.latches
    }

    # Golden: all trajectories evolve word-parallel, bit j = trajectory j.
    name_index = {name: k for k, name in enumerate(suite.inputs)}
    golden_outputs_per_cycle: List[Dict[str, int]] = []
    for cycle in range(sequence_length):
        pi_words: Dict[int, int] = {}
        for node, name in zip(golden.pi_nodes, golden.pi_names):
            word = 0
            column = name_index.get(name)
            if column is not None:
                for j, sequence in enumerate(sequences):
                    if sequence[cycle][column]:
                        word |= 1 << j
            pi_words[node] = word
        values = simulate_patterns(golden, {**pi_words, **state_words}, num_sequences)
        golden_outputs_per_cycle.append(
            {
                name: lit_values(values, lit, num_sequences)
                for name, lit in zip(golden.po_names, golden.po_lits)
            }
        )
        state_words = {
            latch.node: lit_values(values, latch.next_lit, num_sequences)
            for latch in golden.latches
        }

    # Pulse side: one trajectory per run, all on the same elaborated netlist.
    dangling: set = set()
    for j, sequence in enumerate(sequences):
        vectors = [dict(zip(suite.inputs, cycle_vector)) for cycle_vector in sequence]
        run = sim.run_sequence(vectors)
        dangling.update(sim.unexpected_dangling_nets())
        for cycle in range(sequence_length):
            observed = run.outputs[cycle]
            for name in observed:
                expected = (golden_outputs_per_cycle[cycle].get(name, 0) >> j) & 1
                if observed[name] == expected:
                    continue
                verdict.status = "counterexample"
                verdict.patterns = j * sequence_length + cycle + 1
                verdict.dangling_nets = sorted(dangling)
                port_net = next(
                    (p.net for p in result.netlist.output_ports if p.name == name), None
                )
                verdict.counterexample = Counterexample(
                    inputs=vectors[cycle],
                    output=name,
                    expected=expected,
                    observed=observed[name],
                    pattern=j * sequence_length + cycle,
                    cycle=cycle,
                    sequence=j,
                )
                verdict.first_divergence_net = port_net
                return
    verdict.status = "equivalent"
    verdict.patterns = num_sequences * sequence_length
    verdict.dangling_nets = sorted(dangling)


def verify_result(
    result: XsfqSynthesisResult,
    golden: Optional[Union[LogicNetwork, Aig]] = None,
    patterns: int = 256,
    seed: int = 0,
    sequence_length: int = 8,
    phase_period: Optional[float] = None,
    library=None,
    fault_model=None,
) -> VerificationVerdict:
    """Batched pulse-level equivalence check of a synthesis result.

    Args:
        result: Finished synthesis result (mapped netlist + AIG).
        golden: Reference design — the *source* :class:`LogicNetwork` (or
            pre-optimisation AIG) for an end-to-end check of the whole
            flow.  ``None`` falls back to the mapped AIG inside ``result``,
            which verifies the mapping/netlist layers only.
        patterns: Stimulus budget (see :func:`stimulus_suite`; small input
            spaces are verified exhaustively in fewer patterns).
        seed: Stimulus seed — part of the campaign cache identity.
        sequence_length: Cycles per trajectory for sequential circuits
            (the budget is spent as ``patterns // sequence_length``
            trajectories of this length).
        phase_period: Override the auto-sized synchronous phase length.
        library: Cell library for delays (defaults to Table 2).
        fault_model: Optional :class:`repro.faults.FaultModel` injected
            into the pulse side only — the golden AIG stays fault-free,
            so the verdict measures whether the injected faults corrupt
            any decoded output (the robustness campaigns of
            :mod:`repro.faults` are built on exactly this asymmetry).

    Returns:
        A :class:`VerificationVerdict`; never raises on a mismatch.
    """
    started = time.perf_counter()
    golden_aig = _golden_aig(golden if golden is not None else result.aig)
    verdict = VerificationVerdict(circuit=result.name, status="skipped", seed=seed)

    if result.pipeline_result is not None:
        verdict.reason = (
            "architecturally pipelined netlists have cycle latency; "
            "pulse-vs-golden alignment is not modelled yet"
        )
        verdict.seconds = time.perf_counter() - started
        return verdict

    sim = BatchedNetlistSimulator(
        result.netlist,
        library=library,
        phase_period=phase_period,
        fault_model=fault_model,
    )
    # Sequential budgets are spent on random trajectories: enumerating the
    # input space once would not exercise the state space.
    suite = stimulus_suite(
        golden_aig.pi_names,
        num_patterns=patterns,
        seed=seed,
        allow_exhaustive=not sim.is_sequential,
    )
    verdict.mode = suite.mode
    if sim.is_sequential:
        _verify_sequential(verdict, result, golden_aig, suite, sim, sequence_length)
    else:
        _verify_combinational(
            verdict, result, golden_aig, suite, sim, fault_model=fault_model
        )
    verdict.elaborations = sim.elaborations
    verdict.seconds = time.perf_counter() - started
    return verdict
