"""The ``verify`` stage: equivalence checking as a first-class flow step.

Importing :mod:`repro.verify` registers a ``verify`` stage in the global
:data:`repro.core.flowgraph.STAGES` registry, so any composed flow can
end in a machine-checkable verdict::

    flow = repro.Flow.default().with_stage("verify", {"patterns": 128})
    state = flow.run_state(repro.build_circuit("c880"))
    state.artifacts["verification"].equivalent   # -> True

The stage verifies the mapped netlist against the best golden reference
available in the :class:`~repro.core.flowgraph.FlowState`: the *source
network* when the state still carries one (an end-to-end check of the
whole flow), falling back to the mapped AIG when the run resumed from a
cached mid-flow snapshot (which drops the source network) — then the
check covers the mapping and netlist layers only.  The verdict travels
in ``state.artifacts["verification"]`` (the object) and
``state.metrics["verification"]`` (its JSON form); with ``strict`` (the
default) a counterexample aborts the flow with a :class:`FlowError`
naming the failing pattern and the first divergence net.
"""

from __future__ import annotations

from typing import Mapping

from ..core.flowgraph import FlowError, FlowState, register_stage
from .equivalence import verify_result

__all__ = ["verify_stage"]


@register_stage(
    "verify",
    defaults={"patterns": 256, "seed": 0, "sequence_length": 8, "strict": True},
    description="Batched pulse-level equivalence verdict against the golden design",
)
def verify_stage(state: FlowState, options: Mapping[str, object]) -> FlowState:
    """Cross-check the mapped netlist against golden simulation."""
    if state.result is None:
        raise FlowError(
            "'verify' needs a finished synthesis result; "
            "place it after the 'report' stage"
        )
    golden = state.network  # None when resuming from a cached snapshot
    verdict = verify_result(
        state.result,
        golden=golden,
        patterns=int(options["patterns"]),
        seed=int(options["seed"]),
        sequence_length=int(options["sequence_length"]),
    )
    state = state.copy()
    state.artifacts["verification"] = verdict
    state.metrics["verification"] = verdict.to_dict()
    state.metrics["verification_golden"] = (
        "source-network" if golden is not None else "mapped-aig"
    )
    if bool(options["strict"]) and verdict.status == "counterexample":
        raise FlowError(
            f"verification failed for {state.name!r}: {verdict.summary()}"
        )
    return state
