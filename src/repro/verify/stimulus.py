"""Reproducible stimulus suites for pulse-level verification.

A :class:`StimulusSuite` is a deterministic function of ``(input names,
requested pattern count, seed)`` — nothing else.  The same arguments
produce bit-identical vectors in any process on any platform (the
generator is a seeded Mersenne twister), which is what lets the
verification campaign key its content-addressed cache on the stimulus
seed and fan work out across ``multiprocessing`` workers.

Three pattern sources, in priority order:

* **exhaustive** — when ``2**num_inputs`` fits inside the requested
  pattern budget, every input assignment is enumerated and the suite is
  a complete truth-table check;
* **directed corners** — all-zeros, all-ones, one-hot and one-cold
  (walking zero) patterns, the classic "edges of the input space" that
  random sampling is slow to hit;
* **seeded random** — uniform random assignments filling the remaining
  budget, de-duplicated against everything generated before.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["StimulusSuite", "stimulus_suite"]

#: Input counts up to this size are candidates for exhaustive enumeration.
MAX_EXHAUSTIVE_INPUTS = 16


@dataclass(frozen=True)
class StimulusSuite:
    """An ordered, reproducible batch of input patterns.

    Attributes:
        inputs: Input names, in the order the vector bits are stored.
        vectors: One tuple of 0/1 values per pattern, aligned with
            ``inputs``.
        seed: Seed the random fill was drawn from.
        mode: ``"exhaustive"`` or ``"random+corners"``.
    """

    inputs: Tuple[str, ...]
    vectors: Tuple[Tuple[int, ...], ...]
    seed: int
    mode: str

    def __len__(self) -> int:
        return len(self.vectors)

    def as_dicts(self) -> List[Dict[str, int]]:
        """The patterns as ``{input name: value}`` dictionaries."""
        return [dict(zip(self.inputs, vector)) for vector in self.vectors]

    def vector_dict(self, index: int) -> Dict[str, int]:
        """One pattern as a ``{input name: value}`` dictionary."""
        return dict(zip(self.inputs, self.vectors[index]))

    def packed_words(self) -> Dict[str, int]:
        """Pack the suite for word-parallel simulation.

        Returns one integer per input whose bit ``i`` is the input's value
        in pattern ``i`` — the layout
        :func:`repro.aig.simulate.simulate_patterns` consumes.
        """
        words: Dict[str, int] = {name: 0 for name in self.inputs}
        for index, vector in enumerate(self.vectors):
            bit = 1 << index
            for name, value in zip(self.inputs, vector):
                if value:
                    words[name] |= bit
        return words

    def sequences(self, length: int) -> Iterator[Tuple[Tuple[int, ...], ...]]:
        """Split the suite into consecutive multi-cycle sequences.

        Used for sequential circuits, where one *pattern* is one cycle of
        a trajectory.  The final partial chunk (if any) is dropped so
        every trajectory has equal length.
        """
        length = max(1, int(length))
        for start in range(0, len(self.vectors) - length + 1, length):
            yield self.vectors[start:start + length]

    def fingerprint(self) -> str:
        """Stable content hash (cache identity of the stimulus)."""
        canonical = json.dumps(
            {"inputs": self.inputs, "vectors": self.vectors, "seed": self.seed},
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _corner_vectors(num_inputs: int) -> List[Tuple[int, ...]]:
    """Directed corner patterns: all-0, all-1, one-hot and one-cold rows."""
    corners: List[Tuple[int, ...]] = [
        tuple([0] * num_inputs),
        tuple([1] * num_inputs),
    ]
    for position in range(num_inputs):
        one_hot = [0] * num_inputs
        one_hot[position] = 1
        corners.append(tuple(one_hot))
        one_cold = [1] * num_inputs
        one_cold[position] = 0
        corners.append(tuple(one_cold))
    return corners


def stimulus_suite(
    inputs: Sequence[str],
    num_patterns: int = 256,
    seed: int = 0,
    allow_exhaustive: bool = True,
) -> StimulusSuite:
    """Generate a reproducible stimulus suite over named inputs.

    Args:
        inputs: Input names (order defines the vector layout).
        num_patterns: Requested pattern budget.  When the full input space
            fits (``2**len(inputs) <= num_patterns``), the suite is the
            exhaustive enumeration instead — a complete check in fewer
            patterns.
        seed: Seed for the random fill; part of the suite identity.
        allow_exhaustive: Disable the exhaustive shortcut.  Sequential
            verification sets this to False — its patterns are *cycles* of
            multi-cycle trajectories, so enumerating the input space once
            would not exercise the state space and the full budget is
            spent on random trajectories instead.

    Returns:
        A :class:`StimulusSuite` with at most ``num_patterns`` patterns.
    """
    names = tuple(inputs)
    n = len(names)
    num_patterns = max(1, int(num_patterns))
    if allow_exhaustive and n <= MAX_EXHAUSTIVE_INPUTS and (1 << n) <= num_patterns:
        vectors = tuple(
            tuple((assignment >> k) & 1 for k in range(n))
            for assignment in range(1 << n)
        )
        return StimulusSuite(names, vectors, seed=seed, mode="exhaustive")

    seen = set()
    vectors: List[Tuple[int, ...]] = []
    for corner in _corner_vectors(n):
        if len(vectors) >= num_patterns:
            break
        if corner not in seen:
            seen.add(corner)
            vectors.append(corner)
    rng = random.Random(seed)
    # Combinational suites de-duplicate (repeating an assignment verifies
    # nothing new); trajectory suites (allow_exhaustive=False) keep the
    # raw random stream — cycles of a sequential trajectory may and must
    # repeat input vectors.  The attempt cap keeps the dedup loop finite
    # when the budget approaches the size of the input space.
    deduplicate = allow_exhaustive
    attempts = 0
    max_attempts = 64 * num_patterns
    while len(vectors) < num_patterns and attempts < max_attempts:
        attempts += 1
        vector = tuple(rng.randint(0, 1) for _ in range(n))
        if deduplicate:
            if vector in seen:
                continue
            seen.add(vector)
        vectors.append(vector)
    return StimulusSuite(names, tuple(vectors), seed=seed, mode="random+corners")
