"""Unit tests for the AIG data structure and literal encoding."""

import pytest

from repro.aig import (
    FALSE,
    TRUE,
    Aig,
    AigError,
    lit_is_complemented,
    lit_node,
    lit_not,
    lit_regular,
    make_lit,
)


class TestLiterals:
    def test_encoding_roundtrip(self):
        lit = make_lit(7, True)
        assert lit_node(lit) == 7
        assert lit_is_complemented(lit)
        assert lit_regular(lit) == make_lit(7, False)

    def test_not_is_involution(self):
        lit = make_lit(3, False)
        assert lit_not(lit_not(lit)) == lit

    def test_constants(self):
        assert lit_node(FALSE) == 0
        assert TRUE == lit_not(FALSE)


class TestStructuralHashing:
    def test_and_is_hashed(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        assert aig.add_and(a, b) == aig.add_and(b, a)
        assert aig.num_ands == 1

    def test_trivial_rules(self):
        aig = Aig()
        a = aig.add_pi("a")
        assert aig.add_and(a, FALSE) == FALSE
        assert aig.add_and(a, TRUE) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == FALSE
        assert aig.num_ands == 0

    def test_derived_operators_semantics(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        aig.add_po(aig.add_or(a, b), "or")
        aig.add_po(aig.add_xor(a, b), "xor")
        aig.add_po(aig.add_mux(a, b, lit_not(b)), "mux")
        from repro.aig import exhaustive_truth_tables

        or_tt, xor_tt, mux_tt = exhaustive_truth_tables(aig)
        assert or_tt == 0b1110
        assert xor_tt == 0b0110
        # mux: a ? !b : b == a xor b
        assert mux_tt == 0b0110

    def test_multi_input_helpers(self):
        aig = Aig()
        lits = [aig.add_pi(f"x{i}") for i in range(5)]
        aig.add_po(aig.add_and_multi(lits), "all")
        aig.add_po(aig.add_or_multi(lits), "any")
        from repro.aig import exhaustive_truth_tables

        all_tt, any_tt = exhaustive_truth_tables(aig)
        assert all_tt == 1 << 31
        assert any_tt == (1 << 32) - 2

    def test_empty_multi_and_is_true(self):
        aig = Aig()
        assert aig.add_and_multi([]) == TRUE


class TestLatches:
    def test_latch_requires_next_state(self):
        aig = Aig()
        q = aig.add_latch("q")
        aig.add_po(q, "out")
        with pytest.raises(AigError):
            aig.combinational_roots()

    def test_latch_next_assignment(self):
        aig = Aig()
        a = aig.add_pi("a")
        q = aig.add_latch("q", init=1)
        aig.set_latch_next(q, aig.add_xor(q, a))
        aig.add_po(q, "out")
        assert aig.num_latches == 1
        assert aig.latches[0].init == 1
        assert len(aig.combinational_roots()) == 2


class TestAnalysisAndCleanup:
    def build(self):
        aig = Aig("t")
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.add_and(a, c)  # dangling
        aig.add_po(abc, "y")
        return aig

    def test_levels_and_depth(self):
        aig = self.build()
        assert aig.depth() == 2

    def test_fanout_counts(self):
        aig = self.build()
        counts = aig.fanout_counts()
        a_node = lit_node(make_lit(aig.pi_nodes[0]))
        assert counts[a_node] == 2  # used by ab and the dangling node

    def test_dangling_detection_and_cleanup(self):
        aig = self.build()
        assert aig.num_dangling() == 1
        cleaned = aig.cleanup()
        assert cleaned.num_dangling() == 0
        assert cleaned.num_ands == 2
        assert cleaned.pi_names == aig.pi_names
        assert cleaned.po_names == aig.po_names

    def test_stats(self):
        stats = self.build().stats()
        assert stats["pis"] == 3
        assert stats["pos"] == 1
        assert stats["ands"] == 3

    def test_copy_independent(self):
        aig = self.build()
        dup = aig.copy()
        dup.add_pi("extra")
        assert dup.num_pis == aig.num_pis + 1

    def test_cleanup_preserves_latches(self):
        aig = Aig()
        a = aig.add_pi("a")
        q = aig.add_latch("q")
        aig.set_latch_next(q, aig.add_and(a, q))
        aig.add_po(q, "out")
        cleaned = aig.cleanup()
        assert cleaned.num_latches == 1
        assert cleaned.latches[0].name == "q"
