"""Tests for the AIG optimisation passes (balance / rewrite / refactor / scripts).

Every pass must preserve functionality; on the paper's full-adder example the
optimiser must reach the 7-node minimal AIG of Figure 4.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    DEFAULT_SCRIPT,
    Aig,
    balance,
    check_equivalence,
    exhaustive_truth_tables,
    network_to_aig,
    optimize,
    optimize_with_report,
    refactor,
    rewrite,
    run_script,
)
from repro.netlist import NetworkBuilder


def full_adder_aig():
    b = NetworkBuilder("fa")
    x, y, z = b.input("a"), b.input("b"), b.input("cin")
    s, cout = b.full_adder(x, y, z)
    b.output(s, "s")
    b.output(cout, "cout")
    return network_to_aig(b.finish())


def random_aig(seed: int, num_pis: int = 5, num_nodes: int = 25) -> Aig:
    """A random, messy AIG used for property-based equivalence checks."""
    rng = random.Random(seed)
    aig = Aig(f"rand{seed}")
    literals = [aig.add_pi(f"x{i}") for i in range(num_pis)]
    for _ in range(num_nodes):
        a, b = rng.sample(literals, 2)
        if rng.random() < 0.5:
            a ^= 1
        if rng.random() < 0.5:
            b ^= 1
        op = rng.choice(["and", "or", "xor"])
        if op == "and":
            literals.append(aig.add_and(a, b))
        elif op == "or":
            literals.append(aig.add_or(a, b))
        else:
            literals.append(aig.add_xor(a, b))
    for k in range(3):
        lit = literals[-(k + 1)]
        aig.add_po(lit ^ (k & 1), f"y{k}")
    return aig


PASSES = {
    "balance": balance,
    "rewrite": rewrite,
    "refactor": refactor,
    "cleanup": lambda aig: aig.cleanup(),
}


class TestIndividualPasses:
    @pytest.mark.parametrize("name", sorted(PASSES))
    def test_pass_preserves_function_on_full_adder(self, name):
        aig = full_adder_aig()
        before = exhaustive_truth_tables(aig)
        after_aig = PASSES[name](aig)
        assert exhaustive_truth_tables(after_aig) == before

    @pytest.mark.parametrize("name", ["rewrite", "refactor"])
    def test_area_passes_do_not_grow(self, name):
        aig = full_adder_aig()
        assert PASSES[name](aig).num_ands <= aig.num_ands

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_passes_preserve_function_on_random_aigs(self, seed):
        aig = random_aig(seed)
        reference = exhaustive_truth_tables(aig)
        for name, pass_fn in PASSES.items():
            optimised = pass_fn(aig)
            assert exhaustive_truth_tables(optimised) == reference, name

    def test_balance_reduces_depth_of_chain(self):
        aig = Aig("chain")
        literals = [aig.add_pi(f"x{i}") for i in range(8)]
        acc = literals[0]
        for lit in literals[1:]:
            acc = aig.add_and(acc, lit)
        aig.add_po(acc, "y")
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert exhaustive_truth_tables(balanced) == exhaustive_truth_tables(aig)

    def test_balance_handles_latches(self):
        aig = Aig("seq")
        a = aig.add_pi("a")
        q = aig.add_latch("q")
        chain = aig.add_and(aig.add_and(a, q), aig.add_and(a, q))
        aig.set_latch_next(q, chain)
        aig.add_po(q, "out")
        balanced = balance(aig)
        assert balanced.num_latches == 1


class TestScripts:
    def test_full_adder_reaches_paper_minimum(self):
        optimised = optimize(full_adder_aig(), effort="high")
        assert optimised.num_ands == 7  # Figure 4 of the paper
        assert exhaustive_truth_tables(optimised) == exhaustive_truth_tables(full_adder_aig())

    def test_optimize_never_grows(self):
        aig = full_adder_aig()
        for effort in ("low", "medium", "high"):
            assert optimize(aig, effort=effort).num_ands <= aig.num_ands

    def test_optimize_rejects_unknown_effort(self):
        with pytest.raises(ValueError):
            optimize(full_adder_aig(), effort="turbo")

    def test_run_script_rejects_unknown_pass(self):
        with pytest.raises(ValueError):
            run_script(full_adder_aig(), ["balance", "frobnicate"])

    def test_optimize_with_report(self):
        optimised, report = optimize_with_report(full_adder_aig(), effort="medium")
        assert report.nodes_before >= report.nodes_after == optimised.num_ands
        assert 0.0 <= report.node_reduction <= 1.0
        assert len(report.history) == len(DEFAULT_SCRIPT)

    def test_optimize_with_verification_enabled(self):
        optimised = optimize(full_adder_aig(), effort="low", verify=True)
        result = check_equivalence(full_adder_aig(), optimised)
        assert result.equivalent

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_full_optimize_preserves_random_functions(self, seed):
        aig = random_aig(seed, num_pis=5, num_nodes=20)
        optimised = optimize(aig, effort="medium")
        assert exhaustive_truth_tables(optimised) == exhaustive_truth_tables(aig)
        assert optimised.num_ands <= aig.cleanup().num_ands
