"""Tests for pipelining / register placement on AIGs."""

import random

import pytest

from repro.aig import (
    aig_to_network,
    cut_signals,
    insert_pipeline_registers,
    level_cut,
    network_to_aig,
    optimize,
    stage_assignment,
    stage_thresholds,
)
from repro.aig.retime import pipeline_register_ranks
from repro.netlist import NetworkBuilder


def adder_aig(width=8):
    b = NetworkBuilder("add")
    wa = b.word_inputs("a", width)
    wb = b.word_inputs("b", width)
    sums, cout = b.ripple_adder(wa, wb)
    b.word_outputs(sums, "s")
    b.output(cout, "cout")
    return optimize(network_to_aig(b.finish()), effort="low")


class TestStageMath:
    def test_thresholds_are_balanced(self):
        assert stage_thresholds(30, 2) == [10, 20]
        assert stage_thresholds(10, 0) == []

    def test_stage_assignment_monotone_along_paths(self):
        aig = adder_aig(6)
        thresholds = stage_thresholds(aig.depth(), 2)
        stages = stage_assignment(aig, thresholds)
        for node in aig.and_nodes():
            for lit in aig.fanins(node):
                assert stages[lit >> 1] <= stages[node]

    def test_level_cut_and_cut_signals(self):
        aig = adder_aig(6)
        threshold = level_cut(aig, 0.5)
        crossing = cut_signals(aig, threshold)
        assert crossing, "a mid-depth cut of an adder must cross some signals"
        levels = aig.levels()
        assert all(levels[node] <= threshold for node in crossing)


class TestPipelineInsertion:
    @pytest.mark.parametrize("ranks", [1, 2, 3])
    def test_latency_matches_rank_count(self, ranks):
        aig = adder_aig(6)
        pipelined = insert_pipeline_registers(aig, ranks)
        assert pipelined.num_latches > 0
        network = aig_to_network(pipelined)
        reference = aig_to_network(aig)

        rng = random.Random(ranks)
        vectors = []
        for _ in range(5):
            vectors.append({pi: rng.randint(0, 1) for pi in network.inputs})
        # Hold the last vector so the pipeline can drain.
        stimulus = vectors + [vectors[-1]] * ranks
        trace = network.simulate_sequence(stimulus)
        for index, vector in enumerate(vectors):
            expected, _ = reference.evaluate(vector)
            assert trace[index + ranks] == expected

    def test_zero_ranks_is_identity(self):
        aig = adder_aig(4)
        assert insert_pipeline_registers(aig, 0).num_latches == 0

    def test_rejects_sequential_input(self):
        aig = adder_aig(4)
        pipelined = insert_pipeline_registers(aig, 1)
        with pytest.raises(ValueError):
            insert_pipeline_registers(pipelined, 1)

    def test_depth_reduction(self):
        aig = adder_aig(8)
        pipelined = insert_pipeline_registers(aig, 3)
        assert pipelined.depth() < aig.depth()

    def test_register_ranks_recoverable(self):
        aig = adder_aig(6)
        pipelined = insert_pipeline_registers(aig, 2)
        ranks = pipeline_register_ranks(pipelined)
        assert set(ranks.values()) <= {1, 2}
        assert len(ranks) == pipelined.num_latches

    def test_registers_shared_across_consumers(self):
        # A signal consumed by several later-stage nodes should get one
        # register chain, not one per consumer: latch count stays bounded by
        # (#nodes + #PIs) * ranks.
        aig = adder_aig(6)
        pipelined = insert_pipeline_registers(aig, 2)
        assert pipelined.num_latches <= 2 * (aig.num_ands + aig.num_pis)
