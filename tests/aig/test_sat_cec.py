"""Tests for the CDCL SAT solver and SAT-based equivalence checking."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import Aig, AigError, SatSolver, assert_equivalent, check_equivalence, network_to_aig
from repro.netlist import NetworkBuilder


def brute_force_sat(num_vars, clauses):
    for assignment in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == assignment[abs(lit) - 1] for lit in clause) for clause in clauses):
            return True
    return False


def random_cnf(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, min(3, num_vars))
        variables = rng.sample(range(1, num_vars + 1), size)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


class TestSatSolver:
    def test_simple_sat(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is True
        assert solver.model_value(b) is True

    def test_simple_unsat(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve() is False

    def test_pigeonhole_3_in_2_is_unsat(self):
        # 3 pigeons, 2 holes: variables x[p][h]
        solver = SatSolver()
        var = [[solver.new_var() for _ in range(2)] for _ in range(3)]
        for p in range(3):
            solver.add_clause([var[p][0], var[p][1]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var[p1][h], -var[p2][h]])
        assert solver.solve() is False

    def test_assumptions(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a, -b]) is False
        assert solver.solve(assumptions=[-a]) is True

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_against_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 6)
        clauses = random_cnf(rng, num_vars, rng.randint(2, 14))
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(clause)
        expected = brute_force_sat(num_vars, clauses)
        result = solver.solve()
        assert result is expected
        if result:
            # The reported model must satisfy every clause.
            model = [solver.model_value(v) for v in range(1, num_vars + 1)]
            assert all(
                any((lit > 0) == model[abs(lit) - 1] for lit in clause) for clause in clauses
            )

    def test_rejects_unknown_variable(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([1])


def adder_network(width, broken=False):
    b = NetworkBuilder("add")
    wa = b.word_inputs("a", width)
    wb = b.word_inputs("b", width)
    sums, cout = b.ripple_adder(wa, wb)
    if broken:
        sums = list(sums)
        sums[1] = b.or_(wa[1], wb[1])  # wrong bit
    b.word_outputs(sums, "s")
    b.output(cout, "cout")
    return b.finish()


class TestCec:
    def test_equivalent_designs(self):
        a = network_to_aig(adder_network(4))
        b = network_to_aig(adder_network(4))
        result = check_equivalence(a, b)
        assert result.equivalent

    def test_inequivalent_designs_found_with_counterexample(self):
        good = network_to_aig(adder_network(4))
        bad = network_to_aig(adder_network(4, broken=True))
        result = check_equivalence(good, bad)
        assert not result.equivalent
        assert result.failing_output is not None
        assert result.counterexample is not None
        # The counterexample must actually distinguish the designs.
        net_good = adder_network(4)
        net_bad = adder_network(4, broken=True)
        out_good, _ = net_good.evaluate(result.counterexample)
        out_bad, _ = net_bad.evaluate(result.counterexample)
        assert out_good != out_bad

    def test_simulation_only_mode(self):
        a = network_to_aig(adder_network(3))
        b = network_to_aig(adder_network(3))
        result = check_equivalence(a, b, use_sat=False)
        assert result.equivalent
        assert result.method == "simulation"

    def test_mismatched_interfaces_rejected(self):
        a = network_to_aig(adder_network(3))
        b = network_to_aig(adder_network(4))
        with pytest.raises(AigError):
            check_equivalence(a, b)

    def test_assert_equivalent_raises_on_difference(self):
        good = network_to_aig(adder_network(3))
        bad = network_to_aig(adder_network(3, broken=True))
        with pytest.raises(AigError):
            assert_equivalent(good, bad)

    def test_sequential_cec_over_latch_boundary(self):
        def counter(width, broken=False):
            b = NetworkBuilder("cnt")
            en = b.input("en")
            state = [b.dff(b.const(0), name=f"q{i}") for i in range(width)]
            carry = en
            for i in range(width):
                nxt = b.xor(state[i], carry) if not broken or i != 1 else b.or_(state[i], carry)
                carry = b.and_(state[i], carry)
                b.network.gates[f"q{i}"].fanins = [nxt]
            b.output(state[-1], "msb")
            return network_to_aig(b.finish())

        assert check_equivalence(counter(3), counter(3)).equivalent
        assert not check_equivalence(counter(3), counter(3, broken=True)).equivalent
