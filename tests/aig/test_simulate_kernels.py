"""Differential wall for the numpy AIG simulation kernel.

Pins ``simulate_patterns(backend="numpy")`` bit-equal to the bigint
kernel and to :func:`simulate_patterns_reference` across every
``repro.gen`` family, plus the packing edge cases the word-parallel
layout introduces: multi-word boundaries (63/64/65), zero-pattern
batches, 1-PI and constant-only graphs, dirty bits above
``num_patterns``, and the lazy :class:`PackedValues` mapping contract.
"""

import random

import pytest

from repro.aig import network_to_aig
from repro.aig.graph import Aig, TRUE, FALSE
from repro.aig.simulate import (
    PackedValues,
    select_backend,
    simulate_patterns,
    simulate_patterns_reference,
)
from repro.gen import FAMILIES, generate_specs

FAMILY_SPECS = [
    spec
    for family in sorted(FAMILIES)
    for spec in generate_specs(3, seed=19, families=[family])
]


def _input_nodes(aig):
    return list(aig.pi_nodes) + [latch.node for latch in aig.latches]


def _random_patterns(aig, num_patterns, seed=0):
    rng = random.Random(seed)
    return {node: rng.getrandbits(max(num_patterns, 1)) for node in _input_nodes(aig)}


def _wide_aig(num_pis=48, width=900, depth=6, seed=5):
    """Synthetic AIG wide enough for the auto heuristic to pick numpy."""
    rng = random.Random(seed)
    aig = Aig("wide")
    layer = [aig.add_pi() for _ in range(num_pis)]
    for _ in range(depth):
        layer = [
            aig.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1))
            for a, b in (rng.sample(layer, 2) for _ in range(width))
        ]
    for lit in layer[:4]:
        aig.add_po(lit)
    return aig


@pytest.mark.parametrize("spec", FAMILY_SPECS, ids=lambda s: s.name())
@pytest.mark.parametrize("num_patterns", [64, 65])
def test_numpy_kernel_matches_references_on_families(spec, num_patterns):
    aig = network_to_aig(spec.build())
    patterns = _random_patterns(aig, num_patterns, seed=11)
    via_numpy = simulate_patterns(aig, patterns, num_patterns, backend="numpy")
    via_int = simulate_patterns(aig, patterns, num_patterns, backend="int")
    reference = simulate_patterns_reference(aig, patterns, num_patterns)
    assert isinstance(via_numpy, PackedValues)
    assert via_numpy == via_int
    assert via_int == via_numpy  # reflected comparison against a plain dict
    assert all(via_numpy[node] == reference[node] for node in reference)


@pytest.mark.parametrize("num_patterns", [0, 1, 63, 64, 65, 128, 129, 200])
def test_multi_word_packing_boundaries(num_patterns):
    aig = _wide_aig()
    patterns = _random_patterns(aig, num_patterns, seed=num_patterns)
    fast = simulate_patterns(aig, patterns, num_patterns, backend="numpy")
    slow = simulate_patterns(aig, patterns, num_patterns, backend="int")
    assert fast == slow
    if num_patterns == 0:
        assert all(fast[node] == 0 for node in aig.nodes())


def test_dirty_bits_above_num_patterns_are_masked_identically():
    aig = _wide_aig(width=64, depth=4)
    rng = random.Random(2)
    patterns = {node: rng.getrandbits(300) for node in _input_nodes(aig)}
    for num_patterns in (7, 64, 65):
        fast = simulate_patterns(aig, patterns, num_patterns, backend="numpy")
        slow = simulate_patterns(aig, patterns, num_patterns, backend="int")
        assert fast == slow


def test_single_pi_and_constant_only_graphs():
    single = Aig("single")
    pi = single.add_pi("a")
    single.add_po(pi, "y")
    patterns = {node: 0b1011 for node in single.pi_nodes}
    fast = simulate_patterns(single, patterns, 4, backend="numpy")
    slow = simulate_patterns(single, patterns, 4, backend="int")
    assert fast == slow
    assert fast[single.pi_nodes[0]] == 0b1011

    consts = Aig("consts")
    consts.add_po(FALSE, "zero")
    consts.add_po(TRUE, "one")
    fast = simulate_patterns(consts, {}, 3, backend="numpy")
    slow = simulate_patterns(consts, {}, 3, backend="int")
    assert fast == slow
    assert dict(fast) == {0: 0}


def test_strict_missing_inputs_error_is_backend_independent():
    aig = _wide_aig(width=32, depth=3)
    patterns = _random_patterns(aig, 8)
    removed = sorted(patterns)[:2]
    for node in removed:
        del patterns[node]
    messages = {}
    for backend in ("numpy", "int"):
        with pytest.raises(KeyError) as err:
            simulate_patterns(aig, patterns, 8, backend=backend)
        messages[backend] = str(err.value)
    assert messages["numpy"] == messages["int"]
    assert all(str(node) in messages["numpy"] for node in removed)
    # strict=False zero-fills on both backends
    fast = simulate_patterns(aig, patterns, 8, strict=False, backend="numpy")
    slow = simulate_patterns(aig, patterns, 8, strict=False, backend="int")
    assert fast == slow


def test_packed_values_mapping_contract():
    aig = _wide_aig(width=48, depth=3)
    patterns = _random_patterns(aig, 10, seed=9)
    values = simulate_patterns(aig, patterns, 10, backend="numpy")
    plain = simulate_patterns(aig, patterns, 10, backend="int")
    assert len(values) == len(plain)
    assert sorted(values) == sorted(plain)
    assert values.get(0) == 0
    assert values.get(len(aig._type) + 7) is None
    with pytest.raises(KeyError):
        values[len(aig._type) + 7]
    with pytest.raises(KeyError):
        values[-1]
    assert dict(values.items()) == plain
    assert values != {0: 0}
    assert values != object()


def test_auto_dispatch_heuristic(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    wide = _wide_aig()
    assert select_backend(wide, 64) == "numpy"
    # Huge pattern blocks tilt the crossover back toward bigints.
    assert select_backend(wide, 1 << 16) == "int"

    narrow = network_to_aig(FAMILY_SPECS[0].build())
    assert len(narrow._type) < 512
    assert select_backend(narrow, 64) == "int"

    with pytest.raises(ValueError):
        select_backend(wide, 64, backend="bogus")


def test_scalar_kernels_env_forces_int(monkeypatch):
    wide = _wide_aig()
    monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
    assert select_backend(wide, 64) == "int"
    # An explicit backend request still wins over the environment switch.
    assert select_backend(wide, 64, backend="numpy") == "numpy"
    monkeypatch.delenv("REPRO_SCALAR_KERNELS")
    assert select_backend(wide, 64) == "numpy"


def test_auto_matches_forced_backends_end_to_end(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
    wide = _wide_aig()
    patterns = _random_patterns(wide, 64, seed=21)
    auto = simulate_patterns(wide, patterns, 64)
    assert isinstance(auto, PackedValues)
    assert auto == simulate_patterns(wide, patterns, 64, backend="int")
