"""Tests for bit-parallel simulation and the ISOP/factoring machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import Aig, cone_truth_table, exhaustive_truth_tables, make_lit, simulate_random
from repro.aig.simulate import lit_values, output_signatures, simulate_patterns
from repro.aig.sop import (
    build_factor_into_aig,
    cofactor,
    cover_table,
    factor_cover,
    factor_table,
    factored_form_cost,
    isop,
    support,
    table_mask,
    var_table,
)


def xor_aig():
    aig = Aig("xor3")
    a, b, c = (aig.add_pi(n) for n in "abc")
    aig.add_po(aig.add_xor(aig.add_xor(a, b), c), "y")
    return aig


class TestSimulation:
    def test_exhaustive_truth_table_xor3(self):
        tables = exhaustive_truth_tables(xor_aig())
        assert tables[0] == 0b10010110

    def test_simulate_patterns_matches_exhaustive(self):
        aig = xor_aig()
        patterns = {node: var_table(k, 3) for k, node in enumerate(aig.pi_nodes)}
        values = simulate_patterns(aig, patterns, 8)
        assert lit_values(values, aig.po_lits[0], 8) == 0b10010110

    def test_random_simulation_is_deterministic(self):
        aig = xor_aig()
        assert output_signatures(aig, 64, seed=3) == output_signatures(aig, 64, seed=3)
        assert simulate_random(aig, 64, seed=1) == simulate_random(aig, 64, seed=1)

    def test_cone_truth_table(self):
        aig = Aig()
        a, b, c = (aig.add_pi(n) for n in "abc")
        ab = aig.add_and(a, b)
        y = aig.add_and(ab, c)
        leaves = [aig.pi_nodes[0], aig.pi_nodes[1], aig.pi_nodes[2]]
        table = cone_truth_table(aig, y, leaves)
        assert table == 1 << 7
        # Complemented root literal gives the complement table.
        from repro.aig import lit_not

        assert cone_truth_table(aig, lit_not(y), leaves) == (~(1 << 7)) & 0xFF

    def test_cone_truth_table_rejects_external_nodes(self):
        aig = Aig()
        a, b, c = (aig.add_pi(n) for n in "abc")
        y = aig.add_and(aig.add_and(a, b), c)
        with pytest.raises(ValueError):
            cone_truth_table(aig, y, [aig.pi_nodes[0], aig.pi_nodes[1]])


class TestTruthTableOps:
    def test_var_table_and_cofactor(self):
        num_vars = 3
        table = var_table(1, num_vars)
        assert cofactor(table, 1, 1, num_vars) == table_mask(num_vars)
        assert cofactor(table, 1, 0, num_vars) == 0

    def test_support(self):
        f = var_table(0, 3) & var_table(2, 3)
        assert support(f, 3) == [0, 2]

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**16 - 1))
    def test_isop_covers_exactly(self, table):
        cover, cover_tt = isop(table, table, 4)
        assert cover_tt == table
        assert cover_table(cover, 4) == table

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**16 - 1))
    def test_factoring_preserves_function(self, table):
        factor = factor_table(table, 4)
        aig = Aig()
        leaves = [aig.add_pi(f"x{i}") for i in range(4)]
        from repro.aig import lit_not

        lit = build_factor_into_aig(factor, leaves, aig.add_and, lit_not)
        aig.add_po(lit, "y")
        assert exhaustive_truth_tables(aig)[0] == table

    def test_factored_form_cost_prefers_cheaper_polarity(self):
        # f = majority complement is as expensive as majority; an OR of all
        # inputs has a much cheaper complement-free form than its inverse.
        or_table = 0
        for i in range(1, 16):
            or_table |= 1 << i
        cost, _, complemented = factored_form_cost(or_table, 4)
        assert cost <= 3

    def test_factor_cover_single_cube(self):
        factor = factor_cover([{0: 1, 2: 0}])
        assert factor.num_ops() == 1
        assert "x0" in str(factor) and "x2" in str(factor)
