"""Functional tests for the benchmark circuit generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CATALOG,
    alu,
    array_multiplier,
    binary_decoder,
    build,
    hamming_corrector,
    info,
    majority_voter,
    names,
    priority_encoder,
    ripple_carry_adder,
    round_robin_arbiter,
    s27_like,
    sequence_detector,
    traffic_light_controller,
)


def word_vector(prefix, value, width):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


def word_value(outputs, prefix, width):
    return sum(outputs[f"{prefix}[{i}]"] << i for i in range(width))


class TestArithmetic:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_multiplier_matches_python(self, a, b):
        net = array_multiplier(6)
        vector = {**word_vector("a", a, 6), **word_vector("b", b, 6)}
        outputs, _ = net.evaluate(vector)
        assert word_value(outputs, "p", 12) == a * b

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_ripple_carry_adder(self, a, b, cin):
        net = ripple_carry_adder(8)
        vector = {**word_vector("a", a, 8), **word_vector("b", b, 8), "cin": cin}
        outputs, _ = net.evaluate(vector)
        total = word_value(outputs, "sum", 8) + (outputs["cout"] << 8)
        assert total == a + b + cin

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 7))
    def test_alu_operations(self, a, b, op):
        net = alu(4)
        vector = {**word_vector("a", a, 4), **word_vector("b", b, 4), **word_vector("op", op, 3)}
        outputs, _ = net.evaluate(vector)
        result = word_value(outputs, "y", 4)
        expected = {
            0: (a + b) & 0xF,
            1: (a - b) & 0xF,
            2: a & b,
            3: a | b,
            4: a ^ b,
            5: a,
            6: (~a) & 0xF,
            7: (a << 1) & 0xF,
        }[op]
        assert result == expected
        assert outputs["zero"] == int(result == 0)
        assert outputs["a_eq_b"] == int(a == b)
        assert outputs["a_gt_b"] == int(a > b)


class TestEccAndControl:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**8 - 1), st.integers(-1, 7))
    def test_hamming_corrects_single_errors(self, data, flip):
        net = hamming_corrector(8)
        check_bits = len([i for i in net.inputs if i.startswith("c[")])
        # Compute the encoder's check bits by evaluating the syndrome at zero
        # error: use the corrector itself with trial check bits of 0 to read
        # the syndrome is cumbersome, so recompute in Python.
        from repro.circuits.ecc import _hamming_parity_positions

        _, positions = _hamming_parity_positions(8)
        checks = 0
        for check in range(check_bits):
            parity = 0
            for i, pos in enumerate(positions):
                if pos & (1 << check):
                    parity ^= (data >> i) & 1
            checks |= parity << check
        received = data if flip < 0 else data ^ (1 << flip)
        vector = {**word_vector("d", received, 8), **word_vector("c", checks, check_bits)}
        outputs, _ = net.evaluate(vector)
        assert word_value(outputs, "q", 8) == data
        assert outputs["error"] == int(flip >= 0)

    def test_binary_decoder_is_one_hot(self):
        net = binary_decoder(4)
        for value in range(16):
            outputs, _ = net.evaluate(word_vector("a", value, 4))
            ones = [k for k in range(16) if outputs[f"y[{k}]"]]
            assert ones == [value]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**12 - 1))
    def test_priority_encoder(self, mask):
        net = priority_encoder(12)
        outputs, _ = net.evaluate({f"r[{i}]": (mask >> i) & 1 for i in range(12)})
        if mask == 0:
            assert outputs["valid"] == 0
        else:
            first = (mask & -mask).bit_length() - 1
            index = sum(outputs[f"idx[{k}]"] << k for k in range(4))
            assert outputs["valid"] == 1
            assert index == first

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**9 - 1))
    def test_majority_voter(self, votes):
        net = majority_voter(9)
        outputs, _ = net.evaluate({f"v[{i}]": (votes >> i) & 1 for i in range(9)})
        assert outputs["majority"] == int(bin(votes).count("1") > 4)

    def test_arbiter_grants_at_most_one(self):
        net = round_robin_arbiter(8)
        rng = random.Random(0)
        for _ in range(20):
            req = rng.getrandbits(8)
            ptr = 1 << rng.randrange(8)
            vector = {f"req[{i}]": (req >> i) & 1 for i in range(8)}
            vector.update({f"ptr[{i}]": (ptr >> i) & 1 for i in range(8)})
            outputs, _ = net.evaluate(vector)
            grants = [i for i in range(8) if outputs[f"grant[{i}]"]]
            assert len(grants) <= 1
            if req:
                assert len(grants) == 1
                assert (req >> grants[0]) & 1
            assert outputs["busy"] == int(req != 0)


class TestSequentialGenerators:
    def test_s27_interface(self):
        net = s27_like()
        stats = net.stats()
        assert stats["inputs"] == 4 and stats["outputs"] == 1 and stats["latches"] == 3

    def test_traffic_light_outputs_one_hot(self):
        net = traffic_light_controller(num_ff=9)
        rng = random.Random(1)
        state = {latch.name: latch.init for latch in net.latches}
        for _ in range(30):
            vector = {"car": rng.randint(0, 1), "walk": rng.randint(0, 1), "reset": 0}
            outputs, state = net.evaluate(vector, state)
            assert sum(outputs[f"light[{k}]"] for k in range(6)) <= 1

    def test_sequence_detector_saturates(self):
        net = sequence_detector(num_ff=8, num_inputs=3, num_outputs=4)
        trace = net.simulate_sequence([{"in0": 1, "in1": 0, "in2": 0}] * 20)
        assert any(t["saturated"] for t in trace) or all("saturated" in t for t in trace)


class TestRegistry:
    def test_catalog_covers_all_suites(self):
        assert len(names(suite="iscas85")) == 10
        assert len(names(suite="epfl")) == 11
        assert len(names(suite="iscas89")) == 16

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_quick_scale_builds_and_validates(self, name):
        net = build(name, "quick")
        net.validate()
        entry = info(name)
        assert (len(net.latches) > 0) == (entry.kind == "sequential")
        assert net.name == name

    def test_paper_scale_interfaces_are_larger(self):
        for name in ("c6288", "priority", "voter"):
            quick = build(name, "quick")
            paper = build(name, "paper")
            assert len(paper.inputs) > len(quick.inputs)

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            build("c9999")
