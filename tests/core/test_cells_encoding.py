"""Tests for the xSFQ cell library (Table 2) and the alternating encoding (Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CellKind,
    PhaseSlot,
    XsfqLibrary,
    alternating_property_holds,
    decode_slot,
    decode_stream,
    default_library,
    encode_bit,
    encode_stream,
    format_waveform,
    rail_pulse_trains,
    table2_rows,
)
from repro.core.cells import DROC_PRELOAD_OVERHEAD_JJ


class TestLibrary:
    def test_table2_jj_counts_without_ptl(self):
        lib = default_library(False)
        assert lib.jj_count(CellKind.JTL) == 2
        assert lib.jj_count(CellKind.LA) == 4
        assert lib.jj_count(CellKind.FA) == 4
        assert lib.jj_count(CellKind.SPLITTER) == 3
        assert lib.jj_count(CellKind.DROC) == 13
        assert lib.jj_count(CellKind.DROC_PRELOAD) == 22

    def test_table2_jj_counts_with_ptl(self):
        lib = default_library(True)
        assert lib.jj_count(CellKind.LA) == 12
        assert lib.jj_count(CellKind.FA) == 12
        assert lib.jj_count(CellKind.JTL) == 7
        assert lib.jj_count(CellKind.DROC) == 27
        assert lib.jj_count(CellKind.DROC_PRELOAD) == 36
        # Splitters are abutted (paper footnote 1) so their JJ cost is unchanged.
        assert lib.jj_count(CellKind.SPLITTER) == 3

    def test_table2_delays(self):
        lib = default_library(False)
        assert lib.delay(CellKind.LA) == pytest.approx(7.2)
        assert lib.delay(CellKind.FA) == pytest.approx(9.5)
        assert lib.delay(CellKind.SPLITTER) == pytest.approx(5.1)
        assert default_library(True).delay(CellKind.LA) == pytest.approx(19.9)

    def test_preload_overhead_is_nine_jjs(self):
        lib = default_library(False)
        assert lib.jj_count(CellKind.DROC_PRELOAD) - lib.jj_count(CellKind.DROC) == DROC_PRELOAD_OVERHEAD_JJ

    def test_total_jj_accumulates(self):
        lib = default_library(False)
        counts = {CellKind.LA: 10, CellKind.FA: 4, CellKind.SPLITTER: 6}
        assert lib.total_jj(counts) == 10 * 4 + 4 * 4 + 6 * 3

    def test_describe_and_rows(self):
        text = default_library(False).describe()
        assert "LA" in text and "FA" in text
        rows = table2_rows()
        cells = [r["cell"] for r in rows]
        assert "JTL" in cells and "DROC (Qp)" in cells and "SPLITTER" in cells

    def test_paper_full_adder_jj_arithmetic(self):
        """Section 3.1.1: 18 cells + 16 splitters = 120 JJ / 264 JJ."""
        lib = default_library(False)
        lib_ptl = default_library(True)
        assert 18 * lib.jj_count(CellKind.LA) + 16 * lib.jj_count(CellKind.SPLITTER) == 120
        assert 18 * lib_ptl.jj_count(CellKind.LA) + 16 * lib_ptl.jj_count(CellKind.SPLITTER) == 264


class TestEncoding:
    def test_encode_one_and_zero(self):
        one = encode_bit(1)
        zero = encode_bit(0)
        assert one.excite_p and not one.excite_n and one.relax_n and not one.relax_p
        assert zero.excite_n and not zero.excite_p and zero.relax_p and not zero.relax_n

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=32))
    def test_roundtrip(self, bits):
        assert decode_stream(encode_stream(bits)) == bits

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=16))
    def test_each_rail_pulses_once_per_logical_cycle(self, bits):
        positive, negative = rail_pulse_trains(bits)
        for k in range(len(bits)):
            assert positive[2 * k] + positive[2 * k + 1] == 1
            assert negative[2 * k] + negative[2 * k + 1] == 1

    def test_decode_rejects_protocol_violations(self):
        with pytest.raises(ValueError):
            decode_slot(PhaseSlot(True, True, False, True))
        with pytest.raises(ValueError):
            decode_slot(PhaseSlot(True, False, True, False))

    def test_alternating_property_helper(self):
        assert alternating_property_holds(encode_stream([1, 0, 1]))
        assert not alternating_property_holds([PhaseSlot(True, True, False, False)])

    def test_waveform_rendering(self):
        text = format_waveform([1, 0])
        assert "rail +" in text and "rail -" in text
        assert "|" in text and "." in text
