"""Tests for the composable Flow pass-manager (repro.core.flowgraph)."""

import itertools

import pytest

from repro.circuits import build as build_circuit
from repro.core import (
    Flow,
    FlowError,
    FlowOptions,
    FlowState,
    STAGES,
    StageCache,
    TimingObserver,
    design_fingerprint,
    register_stage,
    synthesize_xsfq,
)
from repro.core.flowgraph import DEFAULT_STAGE_ORDER, resolve_stage

# Small circuits covering all three design kinds (combinational EPFL-ish,
# combinational ISCAS85-ish, sequential ISCAS89-ish).
GRID_CIRCUITS = ["ctrl", "int2float", "s27"]


def fresh_cache():
    return StageCache()


# ---------------------------------------------------------------------------
# Registry and composition
# ---------------------------------------------------------------------------


def test_default_stage_order_registered():
    for name in DEFAULT_STAGE_ORDER:
        assert name in STAGES
        assert STAGES[name].description


def test_aig_passes_bridged_into_registry():
    # Every named AIG pass doubles as a stage (registry unification).
    from repro.aig.scripts import PASSES

    for name in PASSES:
        assert resolve_stage(name).name == name


def test_unknown_stage_raises_with_known_names():
    with pytest.raises(FlowError, match="unknown stage 'nope'"):
        Flow.from_script(["nope"])


def test_unknown_stage_option_raises():
    with pytest.raises(FlowError, match="has no option"):
        Flow.from_script([("aig-opt", {"efort": "low"})])


def test_signature_merges_defaults_and_orders_stages():
    flow = Flow.from_script([("aig-opt", {"effort": "low"}), "map"])
    sig = flow.signature()
    assert [name for name, _ in sig] == ["aig-opt", "map"]
    assert dict(sig[0][1]) == {"effort": "low", "verify": False}
    assert dict(sig[1][1]) == {"splitter_style": "balanced"}


def test_flow_equality_and_hash_by_signature():
    assert Flow.default() == Flow.from_options(FlowOptions())
    assert hash(Flow.default()) == hash(Flow.from_options(FlowOptions()))
    assert Flow.default() != Flow.direct_mapping()


def test_from_signature_roundtrip():
    flow = Flow.from_options(FlowOptions(effort="low", retime=False))
    rebuilt = Flow.from_signature(flow.signature())
    assert rebuilt.signature() == flow.signature()


def test_with_options_and_stage_editing():
    flow = Flow.default().with_options("polarity", mode="positive")
    assert flow.stage_options("polarity")["mode"] == "positive"
    # Editing invalidates the FlowOptions provenance but keeps the rest.
    assert flow.options is None
    trimmed = flow.without_stage("pipeline")
    assert "pipeline" not in trimmed.stage_names()
    extended = trimmed.with_stage("cleanup", before="polarity")
    names = extended.stage_names()
    assert names.index("cleanup") == names.index("polarity") - 1
    with pytest.raises(FlowError, match="no stage"):
        flow.with_options("frontier", mode="x")


# ---------------------------------------------------------------------------
# Shim equivalence: synthesize_xsfq(net, opts) == Flow.from_options(opts).run
# ---------------------------------------------------------------------------


def _options_grid():
    for effort, direct, polarity, retime in itertools.product(
        ["none", "low"], [False, True], [False, True], [False, True]
    ):
        yield FlowOptions(
            effort=effort,
            direct_mapping=direct,
            optimize_polarity=polarity,
            retime=retime,
        )


@pytest.mark.parametrize("circuit", GRID_CIRCUITS)
def test_shim_equals_flow_across_options_grid(circuit):
    for options in _options_grid():
        net = build_circuit(circuit, "quick")
        shim = synthesize_xsfq(net, options)
        flowed = Flow.from_options(options).run(
            build_circuit(circuit, "quick"), stage_cache=fresh_cache()
        )
        assert shim.metrics() == flowed.metrics(), options


@pytest.mark.parametrize("circuit", GRID_CIRCUITS)
def test_default_flow_equals_default_shim(circuit):
    net = build_circuit(circuit, "quick")
    assert (
        Flow.default().run(net, stage_cache=fresh_cache()).metrics()
        == synthesize_xsfq(build_circuit(circuit, "quick")).metrics()
    )


def test_flow_equals_shim_on_every_catalogued_circuit():
    # Cheap flow options so the whole registry stays test-suite friendly.
    from repro.circuits import CATALOG

    options = FlowOptions(effort="none", polarity_sweeps=1)
    for circuit in CATALOG:
        net = build_circuit(circuit, "quick")
        shim = synthesize_xsfq(net, options)
        flowed = Flow.from_options(options).run(
            build_circuit(circuit, "quick"), stage_cache=fresh_cache()
        )
        assert shim.metrics() == flowed.metrics(), circuit


def test_pipelined_flow_equals_shim():
    options = FlowOptions(effort="low", pipeline_stages=2)
    net = build_circuit("c6288", "quick")
    shim = synthesize_xsfq(net, options)
    flowed = Flow.from_options(options).run(
        build_circuit("c6288", "quick"), stage_cache=fresh_cache()
    )
    assert shim.metrics() == flowed.metrics()
    assert flowed.pipeline_result is not None


def test_result_records_flow_options_provenance():
    result = Flow.from_options(FlowOptions(effort="none")).run(
        build_circuit("ctrl", "quick"), stage_cache=fresh_cache()
    )
    assert result.options == FlowOptions(effort="none")
    custom = Flow.from_script(
        ["frontend", "polarity", "map", "sequential", "report"]
    ).run(build_circuit("ctrl", "quick"), stage_cache=fresh_cache())
    assert custom.options is None
    assert custom.metrics()["options"] is None


# ---------------------------------------------------------------------------
# FlowOptions serialisation (satellite: strict from_dict + round-trip)
# ---------------------------------------------------------------------------


def test_flow_options_roundtrip():
    for options in _options_grid():
        assert FlowOptions.from_dict(options.to_dict()) == options


def test_flow_options_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError) as excinfo:
        FlowOptions.from_dict({"effort": "low", "efort": "high", "bogus": 1})
    message = str(excinfo.value)
    assert "'bogus'" in message and "'efort'" in message
    # The error names every valid field so the fix is obvious.
    for field_name in FlowOptions().to_dict():
        assert field_name in message


def test_flow_options_from_dict_accepts_partial():
    assert FlowOptions.from_dict({"effort": "high"}) == FlowOptions(effort="high")


# ---------------------------------------------------------------------------
# Mid-flow inspection and resume
# ---------------------------------------------------------------------------


def test_run_until_exposes_intermediate_state():
    flow = Flow.default()
    state = flow.run_state(
        build_circuit("ctrl", "quick"), until="aig-opt", stage_cache=fresh_cache()
    )
    assert state.aig is not None and state.netlist is None and state.result is None
    assert state.stage_index == 2  # frontend + aig-opt
    assert state.source_stats  # recorded before optimisation


def test_resume_continues_without_rerunning_prefix():
    flow = Flow.default()
    cache = fresh_cache()
    state = flow.run_state(build_circuit("ctrl", "quick"), until="aig-opt", stage_cache=cache)
    ands_after_opt = state.aig.num_ands
    timing = TimingObserver()
    done = flow.resume(state, observers=(timing,), stage_cache=cache)
    assert done.result is not None
    assert done.result.aig.num_ands == ands_after_opt
    # Only the remaining stages ran.
    assert [e.stage for e in timing.events] == ["pipeline", "polarity", "map", "sequential", "report"]
    # And the resumed result matches a straight-through run.
    assert done.result.metrics() == Flow.default().run(
        build_circuit("ctrl", "quick"), stage_cache=fresh_cache()
    ).metrics()


# ---------------------------------------------------------------------------
# Observers
# ---------------------------------------------------------------------------


def test_observers_receive_structured_events():
    timing = TimingObserver()
    seen = []

    class Watcher:
        def on_stage_start(self, stage, index, state):
            seen.append(("start", stage, index))

        def on_stage_end(self, event):
            seen.append(("end", event.stage, event.index))

    Flow.default().run(
        build_circuit("ctrl", "quick"),
        observers=(timing, Watcher()),
        stage_cache=fresh_cache(),
    )
    assert [e.stage for e in timing.events] == list(DEFAULT_STAGE_ORDER)
    assert all(e.seconds >= 0.0 for e in timing.events)
    # Node/cell/JJ counts appear once produced.
    assert timing.events[1].after["aig_ands"] >= 1
    assert timing.events[-1].after["jj"] > 0
    assert seen[0] == ("start", "frontend", 0)
    assert seen[-1] == ("end", "report", len(DEFAULT_STAGE_ORDER) - 1)
    table = timing.table()
    assert "aig-opt" in table and "Seconds" in table


def test_plain_callable_observer():
    events = []
    Flow.default().run(
        build_circuit("ctrl", "quick"), observers=(events.append,), stage_cache=fresh_cache()
    )
    assert [e.stage for e in events] == list(DEFAULT_STAGE_ORDER)


# ---------------------------------------------------------------------------
# Stage-level caching
# ---------------------------------------------------------------------------


def test_design_fingerprint_ignores_name_but_not_structure():
    a = build_circuit("ctrl", "quick")
    b = build_circuit("ctrl", "quick")
    b.name = "renamed"
    assert design_fingerprint(a) == design_fingerprint(b)
    assert design_fingerprint(a) != design_fingerprint(build_circuit("dec", "quick"))


def test_polarity_variants_share_aig_opt_prefix():
    cache = fresh_cache()
    base = Flow.from_options(FlowOptions(effort="low"))
    base.run(build_circuit("ctrl", "quick"), stage_cache=cache)
    assert cache.hits == 0
    hits_events = []
    variant = base.with_options("polarity", mode="positive")
    variant.run(
        build_circuit("ctrl", "quick"),
        observers=(hits_events.append,),
        stage_cache=cache,
    )
    assert cache.hits == 1  # resumed from the cached post-aig-opt state
    cached_stages = [e.stage for e in hits_events if e.from_cache]
    assert cached_stages == ["frontend", "aig-opt"]


def test_different_effort_shares_only_frontend_prefix():
    cache = fresh_cache()
    Flow.from_options(FlowOptions(effort="none")).run(
        build_circuit("ctrl", "quick"), stage_cache=cache
    )
    events = []
    Flow.from_options(FlowOptions(effort="low")).run(
        build_circuit("ctrl", "quick"), observers=(events.append,), stage_cache=cache
    )
    # The network->AIG conversion is reused, but the differing aig-opt
    # options force a fresh optimisation run.
    cached = [e.stage for e in events if e.from_cache]
    executed = [e.stage for e in events if not e.from_cache]
    assert cached == ["frontend"]
    assert "aig-opt" in executed


def test_cached_and_uncached_runs_agree():
    cache = fresh_cache()
    first = Flow.default().run(build_circuit("s27", "quick"), stage_cache=cache)
    second = Flow.default().with_options("sequential", retime=False).run(
        build_circuit("s27", "quick"), stage_cache=cache
    )
    uncached = Flow.default().with_options("sequential", retime=False).run(
        build_circuit("s27", "quick"), use_stage_cache=False
    )
    assert cache.hits >= 1
    assert second.metrics() == uncached.metrics()
    assert first.metrics() != second.metrics()  # retime actually differs


def test_structurally_identical_designs_share_prefix_but_keep_names():
    # Fingerprints ignore the design name, so a renamed copy reuses the
    # cached prefix — but the restored state must carry the new name.
    cache = fresh_cache()
    first = build_circuit("ctrl", "quick")
    renamed = build_circuit("ctrl", "quick")
    renamed.name = "ctrl_copy"
    a = Flow.from_options(FlowOptions(effort="none")).run(first, stage_cache=cache)
    b = Flow.from_options(FlowOptions(effort="none")).run(renamed, stage_cache=cache)
    assert cache.hits == 1
    assert a.name == "ctrl" and b.name == "ctrl_copy"
    assert a.metrics()["circuit"] == "ctrl"
    assert b.metrics()["circuit"] == "ctrl_copy"


def test_stage_cache_lru_eviction():
    cache = StageCache(maxsize=2)
    for circuit in ("ctrl", "dec", "int2float"):
        Flow.from_options(FlowOptions(effort="none")).run(
            build_circuit(circuit, "quick"), stage_cache=cache
        )
    assert len(cache) <= 2


# ---------------------------------------------------------------------------
# Custom user stages
# ---------------------------------------------------------------------------


def test_user_registered_stage_composes():
    calls = []

    @register_stage("test-notifier", defaults={"tag": "x"}, description="test stage")
    def notifier(state, options):
        calls.append((options["tag"], state.aig.num_ands))
        return state

    try:
        flow = Flow.from_script(
            [
                "frontend",
                ("aig-opt", {"effort": "none"}),
                ("test-notifier", {"tag": "after-opt"}),
                "polarity",
                "map",
                "sequential",
                "report",
            ]
        )
        result = flow.run(build_circuit("ctrl", "quick"), stage_cache=fresh_cache())
        assert result.netlist.num_logic_cells > 0
        assert calls and calls[0][0] == "after-opt"
        assert ("test-notifier" in [name for name, _ in flow.signature()])
    finally:
        STAGES.pop("test-notifier", None)


def test_from_script_mixes_stages_and_aig_passes():
    flow = Flow.from_script(
        ["frontend", "balance", "rewrite", "polarity", "map", "sequential", "report"]
    )
    result = flow.run(build_circuit("ctrl", "quick"), stage_cache=fresh_cache())
    assert result.netlist.num_logic_cells > 0


def test_report_without_mapping_raises():
    with pytest.raises(FlowError, match="no mapped netlist"):
        Flow.from_script(["frontend", "report"]).run(
            build_circuit("ctrl", "quick"), stage_cache=fresh_cache()
        )


def test_flow_without_report_raises_on_run():
    with pytest.raises(FlowError, match="append a 'report' stage"):
        Flow.from_script(["frontend", "polarity", "map"]).run(
            build_circuit("ctrl", "quick"), stage_cache=fresh_cache()
        )


def test_flowstate_initial_accepts_aig():
    from repro.aig import network_to_aig

    aig = network_to_aig(build_circuit("ctrl", "quick"))
    state = FlowState.initial(aig, name="renamed")
    assert state.aig is aig and state.name == "renamed"
    result = Flow.default().run(aig, stage_cache=fresh_cache())
    assert result.name == aig.name
